/root/repo/target/release/examples/distributed_replication-8052fd3568f583a3.d: examples/distributed_replication.rs

/root/repo/target/release/examples/distributed_replication-8052fd3568f583a3: examples/distributed_replication.rs

examples/distributed_replication.rs:
