/root/repo/target/release/examples/quickstart-9f0c2bd686fd4d8a.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-9f0c2bd686fd4d8a: examples/quickstart.rs

examples/quickstart.rs:
