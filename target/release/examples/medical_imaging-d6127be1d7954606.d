/root/repo/target/release/examples/medical_imaging-d6127be1d7954606.d: examples/medical_imaging.rs

/root/repo/target/release/examples/medical_imaging-d6127be1d7954606: examples/medical_imaging.rs

examples/medical_imaging.rs:
