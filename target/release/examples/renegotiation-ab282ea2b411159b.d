/root/repo/target/release/examples/renegotiation-ab282ea2b411159b.d: examples/renegotiation.rs

/root/repo/target/release/examples/renegotiation-ab282ea2b411159b: examples/renegotiation.rs

examples/renegotiation.rs:
