/root/repo/target/release/deps/quasaq_store-658e78a374efdf9b.d: crates/store/src/lib.rs crates/store/src/engine.rs crates/store/src/metadata.rs crates/store/src/object.rs crates/store/src/replication.rs

/root/repo/target/release/deps/libquasaq_store-658e78a374efdf9b.rlib: crates/store/src/lib.rs crates/store/src/engine.rs crates/store/src/metadata.rs crates/store/src/object.rs crates/store/src/replication.rs

/root/repo/target/release/deps/libquasaq_store-658e78a374efdf9b.rmeta: crates/store/src/lib.rs crates/store/src/engine.rs crates/store/src/metadata.rs crates/store/src/object.rs crates/store/src/replication.rs

crates/store/src/lib.rs:
crates/store/src/engine.rs:
crates/store/src/metadata.rs:
crates/store/src/object.rs:
crates/store/src/replication.rs:
