/root/repo/target/release/deps/bench-0f69cf08a5d70a64.d: crates/bench/src/bin/bench.rs

/root/repo/target/release/deps/bench-0f69cf08a5d70a64: crates/bench/src/bin/bench.rs

crates/bench/src/bin/bench.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
