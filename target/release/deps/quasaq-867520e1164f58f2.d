/root/repo/target/release/deps/quasaq-867520e1164f58f2.d: src/lib.rs

/root/repo/target/release/deps/libquasaq-867520e1164f58f2.rlib: src/lib.rs

/root/repo/target/release/deps/libquasaq-867520e1164f58f2.rmeta: src/lib.rs

src/lib.rs:
