/root/repo/target/release/deps/quasaq_qosapi-4ff4e150ea6d9ca2.d: crates/qosapi/src/lib.rs crates/qosapi/src/composite.rs crates/qosapi/src/manager.rs crates/qosapi/src/resource.rs

/root/repo/target/release/deps/libquasaq_qosapi-4ff4e150ea6d9ca2.rlib: crates/qosapi/src/lib.rs crates/qosapi/src/composite.rs crates/qosapi/src/manager.rs crates/qosapi/src/resource.rs

/root/repo/target/release/deps/libquasaq_qosapi-4ff4e150ea6d9ca2.rmeta: crates/qosapi/src/lib.rs crates/qosapi/src/composite.rs crates/qosapi/src/manager.rs crates/qosapi/src/resource.rs

crates/qosapi/src/lib.rs:
crates/qosapi/src/composite.rs:
crates/qosapi/src/manager.rs:
crates/qosapi/src/resource.rs:
