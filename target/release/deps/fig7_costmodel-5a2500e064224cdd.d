/root/repo/target/release/deps/fig7_costmodel-5a2500e064224cdd.d: crates/bench/benches/fig7_costmodel.rs

/root/repo/target/release/deps/fig7_costmodel-5a2500e064224cdd: crates/bench/benches/fig7_costmodel.rs

crates/bench/benches/fig7_costmodel.rs:
