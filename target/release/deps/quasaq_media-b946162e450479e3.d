/root/repo/target/release/deps/quasaq_media-b946162e450479e3.d: crates/media/src/lib.rs crates/media/src/costmodel.rs crates/media/src/drop.rs crates/media/src/encrypt.rs crates/media/src/gop.rs crates/media/src/library.rs crates/media/src/quality.rs crates/media/src/trace.rs crates/media/src/transcode.rs crates/media/src/video.rs

/root/repo/target/release/deps/libquasaq_media-b946162e450479e3.rlib: crates/media/src/lib.rs crates/media/src/costmodel.rs crates/media/src/drop.rs crates/media/src/encrypt.rs crates/media/src/gop.rs crates/media/src/library.rs crates/media/src/quality.rs crates/media/src/trace.rs crates/media/src/transcode.rs crates/media/src/video.rs

/root/repo/target/release/deps/libquasaq_media-b946162e450479e3.rmeta: crates/media/src/lib.rs crates/media/src/costmodel.rs crates/media/src/drop.rs crates/media/src/encrypt.rs crates/media/src/gop.rs crates/media/src/library.rs crates/media/src/quality.rs crates/media/src/trace.rs crates/media/src/transcode.rs crates/media/src/video.rs

crates/media/src/lib.rs:
crates/media/src/costmodel.rs:
crates/media/src/drop.rs:
crates/media/src/encrypt.rs:
crates/media/src/gop.rs:
crates/media/src/library.rs:
crates/media/src/quality.rs:
crates/media/src/trace.rs:
crates/media/src/transcode.rs:
crates/media/src/video.rs:
