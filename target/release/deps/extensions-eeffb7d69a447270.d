/root/repo/target/release/deps/extensions-eeffb7d69a447270.d: crates/bench/benches/extensions.rs

/root/repo/target/release/deps/extensions-eeffb7d69a447270: crates/bench/benches/extensions.rs

crates/bench/benches/extensions.rs:
