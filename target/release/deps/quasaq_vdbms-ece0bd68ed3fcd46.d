/root/repo/target/release/deps/quasaq_vdbms-ece0bd68ed3fcd46.d: crates/vdbms/src/lib.rs crates/vdbms/src/baseline.rs crates/vdbms/src/query.rs crates/vdbms/src/search.rs crates/vdbms/src/sql.rs

/root/repo/target/release/deps/libquasaq_vdbms-ece0bd68ed3fcd46.rlib: crates/vdbms/src/lib.rs crates/vdbms/src/baseline.rs crates/vdbms/src/query.rs crates/vdbms/src/search.rs crates/vdbms/src/sql.rs

/root/repo/target/release/deps/libquasaq_vdbms-ece0bd68ed3fcd46.rmeta: crates/vdbms/src/lib.rs crates/vdbms/src/baseline.rs crates/vdbms/src/query.rs crates/vdbms/src/search.rs crates/vdbms/src/sql.rs

crates/vdbms/src/lib.rs:
crates/vdbms/src/baseline.rs:
crates/vdbms/src/query.rs:
crates/vdbms/src/search.rs:
crates/vdbms/src/sql.rs:
