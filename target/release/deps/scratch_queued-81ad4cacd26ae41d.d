/root/repo/target/release/deps/scratch_queued-81ad4cacd26ae41d.d: crates/bench/src/bin/scratch_queued.rs

/root/repo/target/release/deps/scratch_queued-81ad4cacd26ae41d: crates/bench/src/bin/scratch_queued.rs

crates/bench/src/bin/scratch_queued.rs:
