/root/repo/target/release/deps/quasaq_sim-91c84e45cd93ecf5.d: crates/sim/src/lib.rs crates/sim/src/cpu/mod.rs crates/sim/src/cpu/dsrt.rs crates/sim/src/cpu/timesharing.rs crates/sim/src/link.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs crates/sim/src/topology.rs

/root/repo/target/release/deps/libquasaq_sim-91c84e45cd93ecf5.rlib: crates/sim/src/lib.rs crates/sim/src/cpu/mod.rs crates/sim/src/cpu/dsrt.rs crates/sim/src/cpu/timesharing.rs crates/sim/src/link.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs crates/sim/src/topology.rs

/root/repo/target/release/deps/libquasaq_sim-91c84e45cd93ecf5.rmeta: crates/sim/src/lib.rs crates/sim/src/cpu/mod.rs crates/sim/src/cpu/dsrt.rs crates/sim/src/cpu/timesharing.rs crates/sim/src/link.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs crates/sim/src/topology.rs

crates/sim/src/lib.rs:
crates/sim/src/cpu/mod.rs:
crates/sim/src/cpu/dsrt.rs:
crates/sim/src/cpu/timesharing.rs:
crates/sim/src/link.rs:
crates/sim/src/queue.rs:
crates/sim/src/rng.rs:
crates/sim/src/stats.rs:
crates/sim/src/time.rs:
crates/sim/src/topology.rs:
