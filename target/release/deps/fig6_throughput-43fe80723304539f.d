/root/repo/target/release/deps/fig6_throughput-43fe80723304539f.d: crates/bench/benches/fig6_throughput.rs

/root/repo/target/release/deps/fig6_throughput-43fe80723304539f: crates/bench/benches/fig6_throughput.rs

crates/bench/benches/fig6_throughput.rs:
