/root/repo/target/release/deps/quasaq_bench-5ee0bcf86f7f85ea.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libquasaq_bench-5ee0bcf86f7f85ea.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libquasaq_bench-5ee0bcf86f7f85ea.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
