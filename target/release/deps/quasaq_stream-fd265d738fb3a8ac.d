/root/repo/target/release/deps/quasaq_stream-fd265d738fb3a8ac.d: crates/stream/src/lib.rs crates/stream/src/cpumodel.rs crates/stream/src/engine.rs crates/stream/src/fluid.rs crates/stream/src/report.rs crates/stream/src/schedule.rs crates/stream/src/transforms.rs

/root/repo/target/release/deps/libquasaq_stream-fd265d738fb3a8ac.rlib: crates/stream/src/lib.rs crates/stream/src/cpumodel.rs crates/stream/src/engine.rs crates/stream/src/fluid.rs crates/stream/src/report.rs crates/stream/src/schedule.rs crates/stream/src/transforms.rs

/root/repo/target/release/deps/libquasaq_stream-fd265d738fb3a8ac.rmeta: crates/stream/src/lib.rs crates/stream/src/cpumodel.rs crates/stream/src/engine.rs crates/stream/src/fluid.rs crates/stream/src/report.rs crates/stream/src/schedule.rs crates/stream/src/transforms.rs

crates/stream/src/lib.rs:
crates/stream/src/cpumodel.rs:
crates/stream/src/engine.rs:
crates/stream/src/fluid.rs:
crates/stream/src/report.rs:
crates/stream/src/schedule.rs:
crates/stream/src/transforms.rs:
