/root/repo/target/release/deps/quasaq_workload-cda27842ced55722.d: crates/workload/src/lib.rs crates/workload/src/admission.rs crates/workload/src/fig5.rs crates/workload/src/parallel.rs crates/workload/src/testbed.rs crates/workload/src/throughput.rs crates/workload/src/traffic.rs

/root/repo/target/release/deps/libquasaq_workload-cda27842ced55722.rlib: crates/workload/src/lib.rs crates/workload/src/admission.rs crates/workload/src/fig5.rs crates/workload/src/parallel.rs crates/workload/src/testbed.rs crates/workload/src/throughput.rs crates/workload/src/traffic.rs

/root/repo/target/release/deps/libquasaq_workload-cda27842ced55722.rmeta: crates/workload/src/lib.rs crates/workload/src/admission.rs crates/workload/src/fig5.rs crates/workload/src/parallel.rs crates/workload/src/testbed.rs crates/workload/src/throughput.rs crates/workload/src/traffic.rs

crates/workload/src/lib.rs:
crates/workload/src/admission.rs:
crates/workload/src/fig5.rs:
crates/workload/src/parallel.rs:
crates/workload/src/testbed.rs:
crates/workload/src/throughput.rs:
crates/workload/src/traffic.rs:
