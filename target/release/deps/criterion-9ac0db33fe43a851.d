/root/repo/target/release/deps/criterion-9ac0db33fe43a851.d: crates/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-9ac0db33fe43a851.rlib: crates/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-9ac0db33fe43a851.rmeta: crates/criterion/src/lib.rs

crates/criterion/src/lib.rs:
