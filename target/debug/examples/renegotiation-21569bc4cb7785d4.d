/root/repo/target/debug/examples/renegotiation-21569bc4cb7785d4.d: examples/renegotiation.rs Cargo.toml

/root/repo/target/debug/examples/librenegotiation-21569bc4cb7785d4.rmeta: examples/renegotiation.rs Cargo.toml

examples/renegotiation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
