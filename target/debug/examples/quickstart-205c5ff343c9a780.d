/root/repo/target/debug/examples/quickstart-205c5ff343c9a780.d: examples/quickstart.rs

/root/repo/target/debug/examples/libquickstart-205c5ff343c9a780.rmeta: examples/quickstart.rs

examples/quickstart.rs:
