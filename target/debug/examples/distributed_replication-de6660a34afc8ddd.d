/root/repo/target/debug/examples/distributed_replication-de6660a34afc8ddd.d: examples/distributed_replication.rs Cargo.toml

/root/repo/target/debug/examples/libdistributed_replication-de6660a34afc8ddd.rmeta: examples/distributed_replication.rs Cargo.toml

examples/distributed_replication.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
