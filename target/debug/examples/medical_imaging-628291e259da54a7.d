/root/repo/target/debug/examples/medical_imaging-628291e259da54a7.d: examples/medical_imaging.rs Cargo.toml

/root/repo/target/debug/examples/libmedical_imaging-628291e259da54a7.rmeta: examples/medical_imaging.rs Cargo.toml

examples/medical_imaging.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
