/root/repo/target/debug/examples/distributed_replication-547fe24111e0c689.d: examples/distributed_replication.rs

/root/repo/target/debug/examples/libdistributed_replication-547fe24111e0c689.rmeta: examples/distributed_replication.rs

examples/distributed_replication.rs:
