/root/repo/target/debug/examples/distributed_replication-e37a06d61c4ec7cc.d: examples/distributed_replication.rs

/root/repo/target/debug/examples/distributed_replication-e37a06d61c4ec7cc: examples/distributed_replication.rs

examples/distributed_replication.rs:
