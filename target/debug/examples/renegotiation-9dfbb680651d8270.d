/root/repo/target/debug/examples/renegotiation-9dfbb680651d8270.d: examples/renegotiation.rs

/root/repo/target/debug/examples/renegotiation-9dfbb680651d8270: examples/renegotiation.rs

examples/renegotiation.rs:
