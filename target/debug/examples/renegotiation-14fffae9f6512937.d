/root/repo/target/debug/examples/renegotiation-14fffae9f6512937.d: examples/renegotiation.rs

/root/repo/target/debug/examples/librenegotiation-14fffae9f6512937.rmeta: examples/renegotiation.rs

examples/renegotiation.rs:
