/root/repo/target/debug/examples/medical_imaging-8287e62b86969ae5.d: examples/medical_imaging.rs

/root/repo/target/debug/examples/libmedical_imaging-8287e62b86969ae5.rmeta: examples/medical_imaging.rs

examples/medical_imaging.rs:
