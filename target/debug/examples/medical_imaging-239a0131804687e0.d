/root/repo/target/debug/examples/medical_imaging-239a0131804687e0.d: examples/medical_imaging.rs

/root/repo/target/debug/examples/medical_imaging-239a0131804687e0: examples/medical_imaging.rs

examples/medical_imaging.rs:
