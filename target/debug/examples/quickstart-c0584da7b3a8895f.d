/root/repo/target/debug/examples/quickstart-c0584da7b3a8895f.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-c0584da7b3a8895f: examples/quickstart.rs

examples/quickstart.rs:
