/root/repo/target/debug/deps/fig5_interframe-998e4f454d0f06a4.d: crates/bench/benches/fig5_interframe.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_interframe-998e4f454d0f06a4.rmeta: crates/bench/benches/fig5_interframe.rs Cargo.toml

crates/bench/benches/fig5_interframe.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
