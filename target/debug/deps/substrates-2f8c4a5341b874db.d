/root/repo/target/debug/deps/substrates-2f8c4a5341b874db.d: crates/bench/benches/substrates.rs

/root/repo/target/debug/deps/libsubstrates-2f8c4a5341b874db.rmeta: crates/bench/benches/substrates.rs

crates/bench/benches/substrates.rs:
