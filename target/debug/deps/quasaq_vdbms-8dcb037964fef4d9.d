/root/repo/target/debug/deps/quasaq_vdbms-8dcb037964fef4d9.d: crates/vdbms/src/lib.rs crates/vdbms/src/baseline.rs crates/vdbms/src/query.rs crates/vdbms/src/search.rs crates/vdbms/src/sql.rs Cargo.toml

/root/repo/target/debug/deps/libquasaq_vdbms-8dcb037964fef4d9.rmeta: crates/vdbms/src/lib.rs crates/vdbms/src/baseline.rs crates/vdbms/src/query.rs crates/vdbms/src/search.rs crates/vdbms/src/sql.rs Cargo.toml

crates/vdbms/src/lib.rs:
crates/vdbms/src/baseline.rs:
crates/vdbms/src/query.rs:
crates/vdbms/src/search.rs:
crates/vdbms/src/sql.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
