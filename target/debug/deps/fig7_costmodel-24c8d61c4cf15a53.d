/root/repo/target/debug/deps/fig7_costmodel-24c8d61c4cf15a53.d: crates/bench/benches/fig7_costmodel.rs

/root/repo/target/debug/deps/libfig7_costmodel-24c8d61c4cf15a53.rmeta: crates/bench/benches/fig7_costmodel.rs

crates/bench/benches/fig7_costmodel.rs:
