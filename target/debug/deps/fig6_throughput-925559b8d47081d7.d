/root/repo/target/debug/deps/fig6_throughput-925559b8d47081d7.d: crates/bench/benches/fig6_throughput.rs

/root/repo/target/debug/deps/libfig6_throughput-925559b8d47081d7.rmeta: crates/bench/benches/fig6_throughput.rs

crates/bench/benches/fig6_throughput.rs:
