/root/repo/target/debug/deps/quasaq_workload-d4be390032444027.d: crates/workload/src/lib.rs crates/workload/src/admission.rs crates/workload/src/fig5.rs crates/workload/src/parallel.rs crates/workload/src/testbed.rs crates/workload/src/throughput.rs crates/workload/src/traffic.rs

/root/repo/target/debug/deps/libquasaq_workload-d4be390032444027.rmeta: crates/workload/src/lib.rs crates/workload/src/admission.rs crates/workload/src/fig5.rs crates/workload/src/parallel.rs crates/workload/src/testbed.rs crates/workload/src/throughput.rs crates/workload/src/traffic.rs

crates/workload/src/lib.rs:
crates/workload/src/admission.rs:
crates/workload/src/fig5.rs:
crates/workload/src/parallel.rs:
crates/workload/src/testbed.rs:
crates/workload/src/throughput.rs:
crates/workload/src/traffic.rs:
