/root/repo/target/debug/deps/substrates-61a1ff4aab11f2d5.d: crates/bench/benches/substrates.rs Cargo.toml

/root/repo/target/debug/deps/libsubstrates-61a1ff4aab11f2d5.rmeta: crates/bench/benches/substrates.rs Cargo.toml

crates/bench/benches/substrates.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
