/root/repo/target/debug/deps/quasaq_store-c36c46eb2cfd710b.d: crates/store/src/lib.rs crates/store/src/engine.rs crates/store/src/metadata.rs crates/store/src/object.rs crates/store/src/replication.rs

/root/repo/target/debug/deps/libquasaq_store-c36c46eb2cfd710b.rlib: crates/store/src/lib.rs crates/store/src/engine.rs crates/store/src/metadata.rs crates/store/src/object.rs crates/store/src/replication.rs

/root/repo/target/debug/deps/libquasaq_store-c36c46eb2cfd710b.rmeta: crates/store/src/lib.rs crates/store/src/engine.rs crates/store/src/metadata.rs crates/store/src/object.rs crates/store/src/replication.rs

crates/store/src/lib.rs:
crates/store/src/engine.rs:
crates/store/src/metadata.rs:
crates/store/src/object.rs:
crates/store/src/replication.rs:
