/root/repo/target/debug/deps/quasaq_bench-b67b0ef2acc96281.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libquasaq_bench-b67b0ef2acc96281.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
