/root/repo/target/debug/deps/quasaq_stream-e0c61299686cb4da.d: crates/stream/src/lib.rs crates/stream/src/cpumodel.rs crates/stream/src/engine.rs crates/stream/src/fluid.rs crates/stream/src/report.rs crates/stream/src/schedule.rs crates/stream/src/transforms.rs

/root/repo/target/debug/deps/libquasaq_stream-e0c61299686cb4da.rmeta: crates/stream/src/lib.rs crates/stream/src/cpumodel.rs crates/stream/src/engine.rs crates/stream/src/fluid.rs crates/stream/src/report.rs crates/stream/src/schedule.rs crates/stream/src/transforms.rs

crates/stream/src/lib.rs:
crates/stream/src/cpumodel.rs:
crates/stream/src/engine.rs:
crates/stream/src/fluid.rs:
crates/stream/src/report.rs:
crates/stream/src/schedule.rs:
crates/stream/src/transforms.rs:
