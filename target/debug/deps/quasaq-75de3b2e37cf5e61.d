/root/repo/target/debug/deps/quasaq-75de3b2e37cf5e61.d: src/lib.rs

/root/repo/target/debug/deps/libquasaq-75de3b2e37cf5e61.rlib: src/lib.rs

/root/repo/target/debug/deps/libquasaq-75de3b2e37cf5e61.rmeta: src/lib.rs

src/lib.rs:
