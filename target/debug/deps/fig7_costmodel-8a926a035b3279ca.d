/root/repo/target/debug/deps/fig7_costmodel-8a926a035b3279ca.d: crates/bench/benches/fig7_costmodel.rs Cargo.toml

/root/repo/target/debug/deps/libfig7_costmodel-8a926a035b3279ca.rmeta: crates/bench/benches/fig7_costmodel.rs Cargo.toml

crates/bench/benches/fig7_costmodel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
