/root/repo/target/debug/deps/quasaq_store-74f336f0bd608b5c.d: crates/store/src/lib.rs crates/store/src/engine.rs crates/store/src/metadata.rs crates/store/src/object.rs crates/store/src/replication.rs Cargo.toml

/root/repo/target/debug/deps/libquasaq_store-74f336f0bd608b5c.rmeta: crates/store/src/lib.rs crates/store/src/engine.rs crates/store/src/metadata.rs crates/store/src/object.rs crates/store/src/replication.rs Cargo.toml

crates/store/src/lib.rs:
crates/store/src/engine.rs:
crates/store/src/metadata.rs:
crates/store/src/object.rs:
crates/store/src/replication.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
