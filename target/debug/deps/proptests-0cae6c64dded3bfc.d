/root/repo/target/debug/deps/proptests-0cae6c64dded3bfc.d: crates/sim/tests/proptests.rs

/root/repo/target/debug/deps/libproptests-0cae6c64dded3bfc.rmeta: crates/sim/tests/proptests.rs

crates/sim/tests/proptests.rs:
