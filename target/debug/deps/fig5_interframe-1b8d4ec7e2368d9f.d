/root/repo/target/debug/deps/fig5_interframe-1b8d4ec7e2368d9f.d: crates/bench/benches/fig5_interframe.rs

/root/repo/target/debug/deps/libfig5_interframe-1b8d4ec7e2368d9f.rmeta: crates/bench/benches/fig5_interframe.rs

crates/bench/benches/fig5_interframe.rs:
