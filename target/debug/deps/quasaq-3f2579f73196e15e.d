/root/repo/target/debug/deps/quasaq-3f2579f73196e15e.d: src/lib.rs

/root/repo/target/debug/deps/quasaq-3f2579f73196e15e: src/lib.rs

src/lib.rs:
