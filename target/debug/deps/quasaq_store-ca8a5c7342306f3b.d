/root/repo/target/debug/deps/quasaq_store-ca8a5c7342306f3b.d: crates/store/src/lib.rs crates/store/src/engine.rs crates/store/src/metadata.rs crates/store/src/object.rs crates/store/src/replication.rs

/root/repo/target/debug/deps/libquasaq_store-ca8a5c7342306f3b.rmeta: crates/store/src/lib.rs crates/store/src/engine.rs crates/store/src/metadata.rs crates/store/src/object.rs crates/store/src/replication.rs

crates/store/src/lib.rs:
crates/store/src/engine.rs:
crates/store/src/metadata.rs:
crates/store/src/object.rs:
crates/store/src/replication.rs:
