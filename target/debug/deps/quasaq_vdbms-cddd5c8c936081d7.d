/root/repo/target/debug/deps/quasaq_vdbms-cddd5c8c936081d7.d: crates/vdbms/src/lib.rs crates/vdbms/src/baseline.rs crates/vdbms/src/query.rs crates/vdbms/src/search.rs crates/vdbms/src/sql.rs

/root/repo/target/debug/deps/libquasaq_vdbms-cddd5c8c936081d7.rmeta: crates/vdbms/src/lib.rs crates/vdbms/src/baseline.rs crates/vdbms/src/query.rs crates/vdbms/src/search.rs crates/vdbms/src/sql.rs

crates/vdbms/src/lib.rs:
crates/vdbms/src/baseline.rs:
crates/vdbms/src/query.rs:
crates/vdbms/src/search.rs:
crates/vdbms/src/sql.rs:
