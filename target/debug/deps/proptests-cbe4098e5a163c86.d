/root/repo/target/debug/deps/proptests-cbe4098e5a163c86.d: crates/stream/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-cbe4098e5a163c86.rmeta: crates/stream/tests/proptests.rs Cargo.toml

crates/stream/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
