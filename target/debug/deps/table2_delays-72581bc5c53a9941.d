/root/repo/target/debug/deps/table2_delays-72581bc5c53a9941.d: crates/bench/benches/table2_delays.rs

/root/repo/target/debug/deps/libtable2_delays-72581bc5c53a9941.rmeta: crates/bench/benches/table2_delays.rs

crates/bench/benches/table2_delays.rs:
