/root/repo/target/debug/deps/quasaq_vdbms-adfe1cc5eb3476c0.d: crates/vdbms/src/lib.rs crates/vdbms/src/baseline.rs crates/vdbms/src/query.rs crates/vdbms/src/search.rs crates/vdbms/src/sql.rs

/root/repo/target/debug/deps/libquasaq_vdbms-adfe1cc5eb3476c0.rlib: crates/vdbms/src/lib.rs crates/vdbms/src/baseline.rs crates/vdbms/src/query.rs crates/vdbms/src/search.rs crates/vdbms/src/sql.rs

/root/repo/target/debug/deps/libquasaq_vdbms-adfe1cc5eb3476c0.rmeta: crates/vdbms/src/lib.rs crates/vdbms/src/baseline.rs crates/vdbms/src/query.rs crates/vdbms/src/search.rs crates/vdbms/src/sql.rs

crates/vdbms/src/lib.rs:
crates/vdbms/src/baseline.rs:
crates/vdbms/src/query.rs:
crates/vdbms/src/search.rs:
crates/vdbms/src/sql.rs:
