/root/repo/target/debug/deps/quasaq_sim-3a8d2178e50b016b.d: crates/sim/src/lib.rs crates/sim/src/cpu/mod.rs crates/sim/src/cpu/dsrt.rs crates/sim/src/cpu/timesharing.rs crates/sim/src/link.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs crates/sim/src/topology.rs Cargo.toml

/root/repo/target/debug/deps/libquasaq_sim-3a8d2178e50b016b.rmeta: crates/sim/src/lib.rs crates/sim/src/cpu/mod.rs crates/sim/src/cpu/dsrt.rs crates/sim/src/cpu/timesharing.rs crates/sim/src/link.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs crates/sim/src/topology.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/cpu/mod.rs:
crates/sim/src/cpu/dsrt.rs:
crates/sim/src/cpu/timesharing.rs:
crates/sim/src/link.rs:
crates/sim/src/queue.rs:
crates/sim/src/rng.rs:
crates/sim/src/stats.rs:
crates/sim/src/time.rs:
crates/sim/src/topology.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
