/root/repo/target/debug/deps/quasaq_workload-e3e09dde573a05e5.d: crates/workload/src/lib.rs crates/workload/src/fig5.rs crates/workload/src/parallel.rs crates/workload/src/testbed.rs crates/workload/src/throughput.rs crates/workload/src/traffic.rs

/root/repo/target/debug/deps/libquasaq_workload-e3e09dde573a05e5.rmeta: crates/workload/src/lib.rs crates/workload/src/fig5.rs crates/workload/src/parallel.rs crates/workload/src/testbed.rs crates/workload/src/throughput.rs crates/workload/src/traffic.rs

crates/workload/src/lib.rs:
crates/workload/src/fig5.rs:
crates/workload/src/parallel.rs:
crates/workload/src/testbed.rs:
crates/workload/src/throughput.rs:
crates/workload/src/traffic.rs:
