/root/repo/target/debug/deps/bench-bfa090cad6b02b09.d: crates/bench/src/bin/bench.rs

/root/repo/target/debug/deps/libbench-bfa090cad6b02b09.rmeta: crates/bench/src/bin/bench.rs

crates/bench/src/bin/bench.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
