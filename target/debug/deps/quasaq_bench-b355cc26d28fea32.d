/root/repo/target/debug/deps/quasaq_bench-b355cc26d28fea32.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/quasaq_bench-b355cc26d28fea32: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
