/root/repo/target/debug/deps/properties-dce27daf204974f6.d: tests/properties.rs

/root/repo/target/debug/deps/libproperties-dce27daf204974f6.rmeta: tests/properties.rs

tests/properties.rs:
