/root/repo/target/debug/deps/quasaq_media-9e36e7f9b7f6289c.d: crates/media/src/lib.rs crates/media/src/costmodel.rs crates/media/src/drop.rs crates/media/src/encrypt.rs crates/media/src/gop.rs crates/media/src/library.rs crates/media/src/quality.rs crates/media/src/trace.rs crates/media/src/transcode.rs crates/media/src/video.rs

/root/repo/target/debug/deps/libquasaq_media-9e36e7f9b7f6289c.rmeta: crates/media/src/lib.rs crates/media/src/costmodel.rs crates/media/src/drop.rs crates/media/src/encrypt.rs crates/media/src/gop.rs crates/media/src/library.rs crates/media/src/quality.rs crates/media/src/trace.rs crates/media/src/transcode.rs crates/media/src/video.rs

crates/media/src/lib.rs:
crates/media/src/costmodel.rs:
crates/media/src/drop.rs:
crates/media/src/encrypt.rs:
crates/media/src/gop.rs:
crates/media/src/library.rs:
crates/media/src/quality.rs:
crates/media/src/trace.rs:
crates/media/src/transcode.rs:
crates/media/src/video.rs:
