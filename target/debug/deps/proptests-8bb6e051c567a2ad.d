/root/repo/target/debug/deps/proptests-8bb6e051c567a2ad.d: crates/media/tests/proptests.rs

/root/repo/target/debug/deps/proptests-8bb6e051c567a2ad: crates/media/tests/proptests.rs

crates/media/tests/proptests.rs:
