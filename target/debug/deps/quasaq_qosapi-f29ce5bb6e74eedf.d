/root/repo/target/debug/deps/quasaq_qosapi-f29ce5bb6e74eedf.d: crates/qosapi/src/lib.rs crates/qosapi/src/composite.rs crates/qosapi/src/manager.rs crates/qosapi/src/resource.rs

/root/repo/target/debug/deps/libquasaq_qosapi-f29ce5bb6e74eedf.rmeta: crates/qosapi/src/lib.rs crates/qosapi/src/composite.rs crates/qosapi/src/manager.rs crates/qosapi/src/resource.rs

crates/qosapi/src/lib.rs:
crates/qosapi/src/composite.rs:
crates/qosapi/src/manager.rs:
crates/qosapi/src/resource.rs:
