/root/repo/target/debug/deps/quasaq_bench-374e03c19a1601a8.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libquasaq_bench-374e03c19a1601a8.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
