/root/repo/target/debug/deps/quasaq_sim-b90b0d2d5864af32.d: crates/sim/src/lib.rs crates/sim/src/cpu/mod.rs crates/sim/src/cpu/dsrt.rs crates/sim/src/cpu/timesharing.rs crates/sim/src/link.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs crates/sim/src/topology.rs

/root/repo/target/debug/deps/libquasaq_sim-b90b0d2d5864af32.rlib: crates/sim/src/lib.rs crates/sim/src/cpu/mod.rs crates/sim/src/cpu/dsrt.rs crates/sim/src/cpu/timesharing.rs crates/sim/src/link.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs crates/sim/src/topology.rs

/root/repo/target/debug/deps/libquasaq_sim-b90b0d2d5864af32.rmeta: crates/sim/src/lib.rs crates/sim/src/cpu/mod.rs crates/sim/src/cpu/dsrt.rs crates/sim/src/cpu/timesharing.rs crates/sim/src/link.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs crates/sim/src/topology.rs

crates/sim/src/lib.rs:
crates/sim/src/cpu/mod.rs:
crates/sim/src/cpu/dsrt.rs:
crates/sim/src/cpu/timesharing.rs:
crates/sim/src/link.rs:
crates/sim/src/queue.rs:
crates/sim/src/rng.rs:
crates/sim/src/stats.rs:
crates/sim/src/time.rs:
crates/sim/src/topology.rs:
