/root/repo/target/debug/deps/quasaq_stream-8b45b7ceb72f403f.d: crates/stream/src/lib.rs crates/stream/src/cpumodel.rs crates/stream/src/engine.rs crates/stream/src/fluid.rs crates/stream/src/report.rs crates/stream/src/schedule.rs crates/stream/src/transforms.rs

/root/repo/target/debug/deps/libquasaq_stream-8b45b7ceb72f403f.rlib: crates/stream/src/lib.rs crates/stream/src/cpumodel.rs crates/stream/src/engine.rs crates/stream/src/fluid.rs crates/stream/src/report.rs crates/stream/src/schedule.rs crates/stream/src/transforms.rs

/root/repo/target/debug/deps/libquasaq_stream-8b45b7ceb72f403f.rmeta: crates/stream/src/lib.rs crates/stream/src/cpumodel.rs crates/stream/src/engine.rs crates/stream/src/fluid.rs crates/stream/src/report.rs crates/stream/src/schedule.rs crates/stream/src/transforms.rs

crates/stream/src/lib.rs:
crates/stream/src/cpumodel.rs:
crates/stream/src/engine.rs:
crates/stream/src/fluid.rs:
crates/stream/src/report.rs:
crates/stream/src/schedule.rs:
crates/stream/src/transforms.rs:
