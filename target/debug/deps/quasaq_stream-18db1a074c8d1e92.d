/root/repo/target/debug/deps/quasaq_stream-18db1a074c8d1e92.d: crates/stream/src/lib.rs crates/stream/src/cpumodel.rs crates/stream/src/engine.rs crates/stream/src/fluid.rs crates/stream/src/report.rs crates/stream/src/schedule.rs crates/stream/src/transforms.rs Cargo.toml

/root/repo/target/debug/deps/libquasaq_stream-18db1a074c8d1e92.rmeta: crates/stream/src/lib.rs crates/stream/src/cpumodel.rs crates/stream/src/engine.rs crates/stream/src/fluid.rs crates/stream/src/report.rs crates/stream/src/schedule.rs crates/stream/src/transforms.rs Cargo.toml

crates/stream/src/lib.rs:
crates/stream/src/cpumodel.rs:
crates/stream/src/engine.rs:
crates/stream/src/fluid.rs:
crates/stream/src/report.rs:
crates/stream/src/schedule.rs:
crates/stream/src/transforms.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
