/root/repo/target/debug/deps/quasaq_media-9a77b7a0b618acd2.d: crates/media/src/lib.rs crates/media/src/costmodel.rs crates/media/src/drop.rs crates/media/src/encrypt.rs crates/media/src/gop.rs crates/media/src/library.rs crates/media/src/quality.rs crates/media/src/trace.rs crates/media/src/transcode.rs crates/media/src/video.rs Cargo.toml

/root/repo/target/debug/deps/libquasaq_media-9a77b7a0b618acd2.rmeta: crates/media/src/lib.rs crates/media/src/costmodel.rs crates/media/src/drop.rs crates/media/src/encrypt.rs crates/media/src/gop.rs crates/media/src/library.rs crates/media/src/quality.rs crates/media/src/trace.rs crates/media/src/transcode.rs crates/media/src/video.rs Cargo.toml

crates/media/src/lib.rs:
crates/media/src/costmodel.rs:
crates/media/src/drop.rs:
crates/media/src/encrypt.rs:
crates/media/src/gop.rs:
crates/media/src/library.rs:
crates/media/src/quality.rs:
crates/media/src/trace.rs:
crates/media/src/transcode.rs:
crates/media/src/video.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
