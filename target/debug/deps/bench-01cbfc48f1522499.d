/root/repo/target/debug/deps/bench-01cbfc48f1522499.d: crates/bench/src/bin/bench.rs

/root/repo/target/debug/deps/libbench-01cbfc48f1522499.rmeta: crates/bench/src/bin/bench.rs

crates/bench/src/bin/bench.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
