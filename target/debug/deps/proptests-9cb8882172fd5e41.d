/root/repo/target/debug/deps/proptests-9cb8882172fd5e41.d: crates/stream/tests/proptests.rs

/root/repo/target/debug/deps/proptests-9cb8882172fd5e41: crates/stream/tests/proptests.rs

crates/stream/tests/proptests.rs:
