/root/repo/target/debug/deps/quasaq_core-601e855d56778e54.d: crates/core/src/lib.rs crates/core/src/cost/mod.rs crates/core/src/cost/efficiency.rs crates/core/src/cost/lrb.rs crates/core/src/cost/minbitrate.rs crates/core/src/cost/random.rs crates/core/src/cost/weighted.rs crates/core/src/executor.rs crates/core/src/generator.rs crates/core/src/manager.rs crates/core/src/plan.rs crates/core/src/qop.rs

/root/repo/target/debug/deps/libquasaq_core-601e855d56778e54.rmeta: crates/core/src/lib.rs crates/core/src/cost/mod.rs crates/core/src/cost/efficiency.rs crates/core/src/cost/lrb.rs crates/core/src/cost/minbitrate.rs crates/core/src/cost/random.rs crates/core/src/cost/weighted.rs crates/core/src/executor.rs crates/core/src/generator.rs crates/core/src/manager.rs crates/core/src/plan.rs crates/core/src/qop.rs

crates/core/src/lib.rs:
crates/core/src/cost/mod.rs:
crates/core/src/cost/efficiency.rs:
crates/core/src/cost/lrb.rs:
crates/core/src/cost/minbitrate.rs:
crates/core/src/cost/random.rs:
crates/core/src/cost/weighted.rs:
crates/core/src/executor.rs:
crates/core/src/generator.rs:
crates/core/src/manager.rs:
crates/core/src/plan.rs:
crates/core/src/qop.rs:
