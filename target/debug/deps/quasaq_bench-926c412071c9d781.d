/root/repo/target/debug/deps/quasaq_bench-926c412071c9d781.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libquasaq_bench-926c412071c9d781.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
