/root/repo/target/debug/deps/proptests-1b805587ae959bea.d: crates/stream/tests/proptests.rs

/root/repo/target/debug/deps/libproptests-1b805587ae959bea.rmeta: crates/stream/tests/proptests.rs

crates/stream/tests/proptests.rs:
