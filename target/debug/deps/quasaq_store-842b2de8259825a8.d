/root/repo/target/debug/deps/quasaq_store-842b2de8259825a8.d: crates/store/src/lib.rs crates/store/src/engine.rs crates/store/src/metadata.rs crates/store/src/object.rs crates/store/src/replication.rs

/root/repo/target/debug/deps/libquasaq_store-842b2de8259825a8.rmeta: crates/store/src/lib.rs crates/store/src/engine.rs crates/store/src/metadata.rs crates/store/src/object.rs crates/store/src/replication.rs

crates/store/src/lib.rs:
crates/store/src/engine.rs:
crates/store/src/metadata.rs:
crates/store/src/object.rs:
crates/store/src/replication.rs:
