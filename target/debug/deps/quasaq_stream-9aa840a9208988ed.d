/root/repo/target/debug/deps/quasaq_stream-9aa840a9208988ed.d: crates/stream/src/lib.rs crates/stream/src/cpumodel.rs crates/stream/src/engine.rs crates/stream/src/fluid.rs crates/stream/src/report.rs crates/stream/src/schedule.rs crates/stream/src/transforms.rs

/root/repo/target/debug/deps/quasaq_stream-9aa840a9208988ed: crates/stream/src/lib.rs crates/stream/src/cpumodel.rs crates/stream/src/engine.rs crates/stream/src/fluid.rs crates/stream/src/report.rs crates/stream/src/schedule.rs crates/stream/src/transforms.rs

crates/stream/src/lib.rs:
crates/stream/src/cpumodel.rs:
crates/stream/src/engine.rs:
crates/stream/src/fluid.rs:
crates/stream/src/report.rs:
crates/stream/src/schedule.rs:
crates/stream/src/transforms.rs:
