/root/repo/target/debug/deps/quasaq_store-518a51e6e4bdcef7.d: crates/store/src/lib.rs crates/store/src/engine.rs crates/store/src/metadata.rs crates/store/src/object.rs crates/store/src/replication.rs

/root/repo/target/debug/deps/quasaq_store-518a51e6e4bdcef7: crates/store/src/lib.rs crates/store/src/engine.rs crates/store/src/metadata.rs crates/store/src/object.rs crates/store/src/replication.rs

crates/store/src/lib.rs:
crates/store/src/engine.rs:
crates/store/src/metadata.rs:
crates/store/src/object.rs:
crates/store/src/replication.rs:
