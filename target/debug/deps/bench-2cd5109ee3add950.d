/root/repo/target/debug/deps/bench-2cd5109ee3add950.d: crates/bench/src/bin/bench.rs Cargo.toml

/root/repo/target/debug/deps/libbench-2cd5109ee3add950.rmeta: crates/bench/src/bin/bench.rs Cargo.toml

crates/bench/src/bin/bench.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
