/root/repo/target/debug/deps/fig6_throughput-37271f4a1ff58e01.d: crates/bench/benches/fig6_throughput.rs Cargo.toml

/root/repo/target/debug/deps/libfig6_throughput-37271f4a1ff58e01.rmeta: crates/bench/benches/fig6_throughput.rs Cargo.toml

crates/bench/benches/fig6_throughput.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
