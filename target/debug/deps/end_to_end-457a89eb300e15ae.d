/root/repo/target/debug/deps/end_to_end-457a89eb300e15ae.d: tests/end_to_end.rs

/root/repo/target/debug/deps/libend_to_end-457a89eb300e15ae.rmeta: tests/end_to_end.rs

tests/end_to_end.rs:
