/root/repo/target/debug/deps/quasaq-e362a603a50cb856.d: src/lib.rs

/root/repo/target/debug/deps/libquasaq-e362a603a50cb856.rmeta: src/lib.rs

src/lib.rs:
