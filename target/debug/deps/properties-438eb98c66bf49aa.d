/root/repo/target/debug/deps/properties-438eb98c66bf49aa.d: tests/properties.rs

/root/repo/target/debug/deps/properties-438eb98c66bf49aa: tests/properties.rs

tests/properties.rs:
