/root/repo/target/debug/deps/bench-75035ffa3a22129c.d: crates/bench/src/bin/bench.rs

/root/repo/target/debug/deps/bench-75035ffa3a22129c: crates/bench/src/bin/bench.rs

crates/bench/src/bin/bench.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
