/root/repo/target/debug/deps/quasaq-ddaac58f26ae5246.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libquasaq-ddaac58f26ae5246.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
