/root/repo/target/debug/deps/quasaq_bench-c2bb4618b27564f7.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libquasaq_bench-c2bb4618b27564f7.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
