/root/repo/target/debug/deps/extensions-23662529f93977cc.d: crates/bench/benches/extensions.rs

/root/repo/target/debug/deps/libextensions-23662529f93977cc.rmeta: crates/bench/benches/extensions.rs

crates/bench/benches/extensions.rs:
