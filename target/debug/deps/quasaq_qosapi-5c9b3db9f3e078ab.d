/root/repo/target/debug/deps/quasaq_qosapi-5c9b3db9f3e078ab.d: crates/qosapi/src/lib.rs crates/qosapi/src/composite.rs crates/qosapi/src/manager.rs crates/qosapi/src/resource.rs

/root/repo/target/debug/deps/quasaq_qosapi-5c9b3db9f3e078ab: crates/qosapi/src/lib.rs crates/qosapi/src/composite.rs crates/qosapi/src/manager.rs crates/qosapi/src/resource.rs

crates/qosapi/src/lib.rs:
crates/qosapi/src/composite.rs:
crates/qosapi/src/manager.rs:
crates/qosapi/src/resource.rs:
