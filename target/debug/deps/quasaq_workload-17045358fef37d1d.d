/root/repo/target/debug/deps/quasaq_workload-17045358fef37d1d.d: crates/workload/src/lib.rs crates/workload/src/admission.rs crates/workload/src/fig5.rs crates/workload/src/parallel.rs crates/workload/src/testbed.rs crates/workload/src/throughput.rs crates/workload/src/traffic.rs

/root/repo/target/debug/deps/quasaq_workload-17045358fef37d1d: crates/workload/src/lib.rs crates/workload/src/admission.rs crates/workload/src/fig5.rs crates/workload/src/parallel.rs crates/workload/src/testbed.rs crates/workload/src/throughput.rs crates/workload/src/traffic.rs

crates/workload/src/lib.rs:
crates/workload/src/admission.rs:
crates/workload/src/fig5.rs:
crates/workload/src/parallel.rs:
crates/workload/src/testbed.rs:
crates/workload/src/throughput.rs:
crates/workload/src/traffic.rs:
