/root/repo/target/debug/deps/quasaq_workload-583d535e59474ed3.d: crates/workload/src/lib.rs crates/workload/src/admission.rs crates/workload/src/fig5.rs crates/workload/src/parallel.rs crates/workload/src/testbed.rs crates/workload/src/throughput.rs crates/workload/src/traffic.rs Cargo.toml

/root/repo/target/debug/deps/libquasaq_workload-583d535e59474ed3.rmeta: crates/workload/src/lib.rs crates/workload/src/admission.rs crates/workload/src/fig5.rs crates/workload/src/parallel.rs crates/workload/src/testbed.rs crates/workload/src/throughput.rs crates/workload/src/traffic.rs Cargo.toml

crates/workload/src/lib.rs:
crates/workload/src/admission.rs:
crates/workload/src/fig5.rs:
crates/workload/src/parallel.rs:
crates/workload/src/testbed.rs:
crates/workload/src/throughput.rs:
crates/workload/src/traffic.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
