/root/repo/target/debug/deps/proptests-65512fe06828c7ad.d: crates/media/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-65512fe06828c7ad.rmeta: crates/media/tests/proptests.rs Cargo.toml

crates/media/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
