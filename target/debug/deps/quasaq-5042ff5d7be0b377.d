/root/repo/target/debug/deps/quasaq-5042ff5d7be0b377.d: src/lib.rs

/root/repo/target/debug/deps/libquasaq-5042ff5d7be0b377.rmeta: src/lib.rs

src/lib.rs:
