/root/repo/target/debug/deps/proptests-e567e22f468338dc.d: crates/media/tests/proptests.rs

/root/repo/target/debug/deps/libproptests-e567e22f468338dc.rmeta: crates/media/tests/proptests.rs

crates/media/tests/proptests.rs:
