/root/repo/target/debug/deps/quasaq_media-0c9a4ff8e1dad254.d: crates/media/src/lib.rs crates/media/src/costmodel.rs crates/media/src/drop.rs crates/media/src/encrypt.rs crates/media/src/gop.rs crates/media/src/library.rs crates/media/src/quality.rs crates/media/src/trace.rs crates/media/src/transcode.rs crates/media/src/video.rs

/root/repo/target/debug/deps/quasaq_media-0c9a4ff8e1dad254: crates/media/src/lib.rs crates/media/src/costmodel.rs crates/media/src/drop.rs crates/media/src/encrypt.rs crates/media/src/gop.rs crates/media/src/library.rs crates/media/src/quality.rs crates/media/src/trace.rs crates/media/src/transcode.rs crates/media/src/video.rs

crates/media/src/lib.rs:
crates/media/src/costmodel.rs:
crates/media/src/drop.rs:
crates/media/src/encrypt.rs:
crates/media/src/gop.rs:
crates/media/src/library.rs:
crates/media/src/quality.rs:
crates/media/src/trace.rs:
crates/media/src/transcode.rs:
crates/media/src/video.rs:
