/root/repo/target/debug/deps/quasaq_core-91024ef162730f3a.d: crates/core/src/lib.rs crates/core/src/cost/mod.rs crates/core/src/cost/efficiency.rs crates/core/src/cost/lrb.rs crates/core/src/cost/minbitrate.rs crates/core/src/cost/random.rs crates/core/src/cost/weighted.rs crates/core/src/executor.rs crates/core/src/generator.rs crates/core/src/manager.rs crates/core/src/plan.rs crates/core/src/qop.rs Cargo.toml

/root/repo/target/debug/deps/libquasaq_core-91024ef162730f3a.rmeta: crates/core/src/lib.rs crates/core/src/cost/mod.rs crates/core/src/cost/efficiency.rs crates/core/src/cost/lrb.rs crates/core/src/cost/minbitrate.rs crates/core/src/cost/random.rs crates/core/src/cost/weighted.rs crates/core/src/executor.rs crates/core/src/generator.rs crates/core/src/manager.rs crates/core/src/plan.rs crates/core/src/qop.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/cost/mod.rs:
crates/core/src/cost/efficiency.rs:
crates/core/src/cost/lrb.rs:
crates/core/src/cost/minbitrate.rs:
crates/core/src/cost/random.rs:
crates/core/src/cost/weighted.rs:
crates/core/src/executor.rs:
crates/core/src/generator.rs:
crates/core/src/manager.rs:
crates/core/src/plan.rs:
crates/core/src/qop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
