/root/repo/target/debug/deps/proptests-583fda8379188968.d: crates/qosapi/tests/proptests.rs

/root/repo/target/debug/deps/proptests-583fda8379188968: crates/qosapi/tests/proptests.rs

crates/qosapi/tests/proptests.rs:
