/root/repo/target/debug/deps/proptests-2f926c68659fe036.d: crates/qosapi/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-2f926c68659fe036.rmeta: crates/qosapi/tests/proptests.rs Cargo.toml

crates/qosapi/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
