/root/repo/target/debug/deps/quasaq_bench-01263ab846cd0bbc.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libquasaq_bench-01263ab846cd0bbc.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libquasaq_bench-01263ab846cd0bbc.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
