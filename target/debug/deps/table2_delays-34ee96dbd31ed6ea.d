/root/repo/target/debug/deps/table2_delays-34ee96dbd31ed6ea.d: crates/bench/benches/table2_delays.rs Cargo.toml

/root/repo/target/debug/deps/libtable2_delays-34ee96dbd31ed6ea.rmeta: crates/bench/benches/table2_delays.rs Cargo.toml

crates/bench/benches/table2_delays.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
