/root/repo/target/debug/deps/overhead-db22d8d4d79f64be.d: crates/bench/benches/overhead.rs

/root/repo/target/debug/deps/liboverhead-db22d8d4d79f64be.rmeta: crates/bench/benches/overhead.rs

crates/bench/benches/overhead.rs:
