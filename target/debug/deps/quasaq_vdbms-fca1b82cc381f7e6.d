/root/repo/target/debug/deps/quasaq_vdbms-fca1b82cc381f7e6.d: crates/vdbms/src/lib.rs crates/vdbms/src/baseline.rs crates/vdbms/src/query.rs crates/vdbms/src/search.rs crates/vdbms/src/sql.rs

/root/repo/target/debug/deps/quasaq_vdbms-fca1b82cc381f7e6: crates/vdbms/src/lib.rs crates/vdbms/src/baseline.rs crates/vdbms/src/query.rs crates/vdbms/src/search.rs crates/vdbms/src/sql.rs

crates/vdbms/src/lib.rs:
crates/vdbms/src/baseline.rs:
crates/vdbms/src/query.rs:
crates/vdbms/src/search.rs:
crates/vdbms/src/sql.rs:
