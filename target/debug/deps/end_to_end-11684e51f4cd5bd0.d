/root/repo/target/debug/deps/end_to_end-11684e51f4cd5bd0.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-11684e51f4cd5bd0: tests/end_to_end.rs

tests/end_to_end.rs:
