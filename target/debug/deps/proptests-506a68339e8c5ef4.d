/root/repo/target/debug/deps/proptests-506a68339e8c5ef4.d: crates/qosapi/tests/proptests.rs

/root/repo/target/debug/deps/libproptests-506a68339e8c5ef4.rmeta: crates/qosapi/tests/proptests.rs

crates/qosapi/tests/proptests.rs:
