/root/repo/target/debug/deps/quasaq_qosapi-8f746f2bc55022dd.d: crates/qosapi/src/lib.rs crates/qosapi/src/composite.rs crates/qosapi/src/manager.rs crates/qosapi/src/resource.rs

/root/repo/target/debug/deps/libquasaq_qosapi-8f746f2bc55022dd.rmeta: crates/qosapi/src/lib.rs crates/qosapi/src/composite.rs crates/qosapi/src/manager.rs crates/qosapi/src/resource.rs

crates/qosapi/src/lib.rs:
crates/qosapi/src/composite.rs:
crates/qosapi/src/manager.rs:
crates/qosapi/src/resource.rs:
