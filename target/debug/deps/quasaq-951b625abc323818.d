/root/repo/target/debug/deps/quasaq-951b625abc323818.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libquasaq-951b625abc323818.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
