/root/repo/target/debug/deps/proptests-631a90cba9420a82.d: crates/sim/tests/proptests.rs

/root/repo/target/debug/deps/proptests-631a90cba9420a82: crates/sim/tests/proptests.rs

crates/sim/tests/proptests.rs:
