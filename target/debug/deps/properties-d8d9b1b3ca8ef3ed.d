/root/repo/target/debug/deps/properties-d8d9b1b3ca8ef3ed.d: tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-d8d9b1b3ca8ef3ed.rmeta: tests/properties.rs Cargo.toml

tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
