/root/repo/target/debug/deps/overhead-ac9c225c1a80f81d.d: crates/bench/benches/overhead.rs Cargo.toml

/root/repo/target/debug/deps/liboverhead-ac9c225c1a80f81d.rmeta: crates/bench/benches/overhead.rs Cargo.toml

crates/bench/benches/overhead.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
