/root/repo/target/debug/deps/quasaq_qosapi-16252329816d8300.d: crates/qosapi/src/lib.rs crates/qosapi/src/composite.rs crates/qosapi/src/manager.rs crates/qosapi/src/resource.rs

/root/repo/target/debug/deps/libquasaq_qosapi-16252329816d8300.rlib: crates/qosapi/src/lib.rs crates/qosapi/src/composite.rs crates/qosapi/src/manager.rs crates/qosapi/src/resource.rs

/root/repo/target/debug/deps/libquasaq_qosapi-16252329816d8300.rmeta: crates/qosapi/src/lib.rs crates/qosapi/src/composite.rs crates/qosapi/src/manager.rs crates/qosapi/src/resource.rs

crates/qosapi/src/lib.rs:
crates/qosapi/src/composite.rs:
crates/qosapi/src/manager.rs:
crates/qosapi/src/resource.rs:
