/root/repo/target/debug/deps/quasaq_qosapi-0bf8b8f5f5fa2201.d: crates/qosapi/src/lib.rs crates/qosapi/src/composite.rs crates/qosapi/src/manager.rs crates/qosapi/src/resource.rs Cargo.toml

/root/repo/target/debug/deps/libquasaq_qosapi-0bf8b8f5f5fa2201.rmeta: crates/qosapi/src/lib.rs crates/qosapi/src/composite.rs crates/qosapi/src/manager.rs crates/qosapi/src/resource.rs Cargo.toml

crates/qosapi/src/lib.rs:
crates/qosapi/src/composite.rs:
crates/qosapi/src/manager.rs:
crates/qosapi/src/resource.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
