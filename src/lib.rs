//! # quasaq — end-to-end QoS for multimedia databases
//!
//! A full Rust reproduction of *"QuaSAQ: An Approach to Enabling
//! End-to-End QoS for Multimedia Databases"* (EDBT 2004): a QoS-aware
//! query processor layered on a miniature distributed multimedia DBMS,
//! evaluated on a deterministic discrete-event simulation of the paper's
//! three-server testbed.
//!
//! This crate is a facade: it re-exports the workspace's layers under one
//! namespace and hosts the runnable examples and cross-crate integration
//! tests.
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`sim`] | `quasaq-sim` | discrete-event kernel: time, events, CPUs, links, stats |
//! | [`media`] | `quasaq-media` | video model: GOPs, VBR traces, quality specs, transforms |
//! | [`store`] | `quasaq-store` | object stores, metadata engine, replication, QoS sampling |
//! | [`qosapi`] | `quasaq-qosapi` | Composite QoS API: resource vectors, admission, reservation |
//! | [`stream`] | `quasaq-stream` | frame-level and fluid streaming executors |
//! | [`vdbms`] | `quasaq-vdbms` | SQL front-end, content search, baseline delivery stacks |
//! | [`core`] | `quasaq-core` | **QuaSAQ**: QoP, plan generation, LRB cost model, Quality Manager |
//! | [`workload`] | `quasaq-workload` | traffic generation and the paper's experiment drivers |
//! | [`scenario`] | `quasaq-scenario` | declarative TOML scenario DSL and DAG experiment pipelines |
//!
//! ## Quickstart
//!
//! ```
//! use quasaq::core::{PlanRequest, QopRequest, QopSecurity, UserProfile};
//! use quasaq::sim::Rng;
//! use quasaq::vdbms;
//! use quasaq::workload::{CostKind, Testbed, TestbedConfig};
//!
//! // Build the paper's three-server deployment.
//! let testbed = Testbed::build(TestbedConfig::default());
//!
//! // Conventional half: resolve a content query to a logical OID.
//! let query = vdbms::parse(
//!     "SELECT * FROM videos WITH QOS (resolution >= 320x240, resolution <= 352x288)",
//! )
//! .unwrap();
//! let video = vdbms::resolve_one(&testbed.engine, &query).expect("a video matches");
//!
//! // QoS half: translate the user's QoP, plan, and admit.
//! let profile = UserProfile::new("demo");
//! let request = PlanRequest {
//!     video,
//!     qos: profile.translate(&QopRequest::organizational()),
//!     security: QopSecurity::Open,
//! };
//! let mut manager = testbed.quality_manager(CostKind::Lrb);
//! let admitted = manager
//!     .process(&testbed.engine, &request, &mut Rng::new(7))
//!     .expect("the idle testbed admits");
//! assert!(request.qos.accepts(&admitted.plan.delivered));
//! manager.release(&admitted);
//! ```

pub use quasaq_core as core;
pub use quasaq_media as media;
pub use quasaq_qosapi as qosapi;
pub use quasaq_scenario as scenario;
pub use quasaq_sim as sim;
pub use quasaq_store as store;
pub use quasaq_stream as stream;
pub use quasaq_vdbms as vdbms;
pub use quasaq_workload as workload;
