//! Criterion micro-benchmarks of the simulation substrates themselves —
//! not a paper experiment, but regression coverage for the hot paths that
//! every experiment runs through (event queue, CPU schedulers, fluid
//! links, trace generation).

use criterion::{criterion_group, criterion_main, Criterion};
use quasaq_media::{FrameRate, FrameTrace, GopPattern, TraceParams};
use quasaq_sim::cpu::{CpuScheduler, Dsrt, DsrtConfig, TimeSharing};
use quasaq_sim::queue::reference::ReferenceQueue;
use quasaq_sim::{EventQueue, SharedLink, SimDuration, SimTime};
use std::hint::black_box;

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..1_000u64 {
                // Scatter times deterministically.
                q.schedule(SimTime::from_micros((i * 2_654_435_761) % 1_000_000), i);
            }
            let mut n = 0;
            while q.pop().is_some() {
                n += 1;
            }
            black_box(n)
        })
    });
}

/// The timing wheel against the retired binary-heap queue on the same
/// schedule / cancel / pop churn, so a regression in either direction is
/// visible as a ratio between adjacent rows.
fn bench_event_queue_churn(c: &mut Criterion) {
    fn churn<Q, I>(
        mut schedule: impl FnMut(&mut Q, SimTime, u64) -> I,
        mut cancel: impl FnMut(&mut Q, I),
        mut pop: impl FnMut(&mut Q) -> bool,
        q: &mut Q,
    ) -> u64 {
        let mut ids = Vec::with_capacity(1_000);
        let mut n = 0;
        for round in 0..4u64 {
            ids.clear();
            for i in 0..1_000u64 {
                // Each round's window starts past the previous round's
                // latest event, so draining never leaves `now` ahead of a
                // later schedule.
                let t = SimTime::from_micros(round * 1_000_000 + (i * 2_654_435_761) % 1_000_000);
                ids.push(schedule(q, t, i));
            }
            // Cancel every third event, then drain the survivors.
            for id in ids.drain(..).step_by(3) {
                cancel(q, id);
            }
            while pop(q) {
                n += 1;
            }
        }
        n
    }

    c.bench_function("event_queue_wheel_churn_4x1k", |b| {
        b.iter(|| {
            let mut q: EventQueue<u64> = EventQueue::new();
            black_box(churn(
                |q, t, p| q.schedule(t, p),
                |q, id| q.cancel(id),
                |q| q.pop().is_some(),
                &mut q,
            ))
        })
    });

    c.bench_function("event_queue_reference_churn_4x1k", |b| {
        b.iter(|| {
            let mut q: ReferenceQueue<u64> = ReferenceQueue::new();
            black_box(churn(
                |q, t, p| q.schedule(t, p),
                |q, id| q.cancel(id),
                |q| q.pop().is_some(),
                &mut q,
            ))
        })
    });
}

fn bench_cpu_schedulers(c: &mut Criterion) {
    c.bench_function("timesharing_50_jobs_1k_tasks", |b| {
        b.iter(|| {
            let mut cpu = TimeSharing::solaris_default();
            let jobs: Vec<_> = (0..50).map(|_| cpu.add_job(SimTime::ZERO)).collect();
            for i in 0..1_000 {
                cpu.submit(SimTime::ZERO, jobs[i % 50], SimDuration::from_micros(1_500)).unwrap();
            }
            let mut done = 0;
            while let Some(t) = cpu.next_event() {
                cpu.advance_to(t);
                done += cpu.drain_completions().len();
            }
            black_box(done)
        })
    });

    c.bench_function("dsrt_20_reserved_1k_tasks", |b| {
        b.iter(|| {
            let mut cpu = Dsrt::new(DsrtConfig::default());
            let jobs: Vec<_> = (0..20)
                .map(|_| {
                    cpu.reserve(
                        SimTime::ZERO,
                        SimDuration::from_millis(2),
                        SimDuration::from_millis(42),
                    )
                    .expect("fits")
                })
                .collect();
            for i in 0..1_000 {
                cpu.submit(SimTime::ZERO, jobs[i % 20], SimDuration::from_micros(1_500)).unwrap();
            }
            let mut done = 0;
            while let Some(t) = cpu.next_event() {
                cpu.advance_to(t);
                done += cpu.drain_completions().len();
            }
            black_box(done)
        })
    });
}

fn bench_link(c: &mut Criterion) {
    c.bench_function("fair_link_100_flows_1k_xfers", |b| {
        b.iter(|| {
            let mut link = SharedLink::fair_share(3_200_000);
            let flows: Vec<_> =
                (0..100).map(|_| link.open_flow(SimTime::ZERO, Some(48_000)).unwrap()).collect();
            for i in 0..1_000 {
                link.send(SimTime::ZERO, flows[i % 100], 4_000).unwrap();
            }
            let mut done = 0;
            while let Some(t) = link.next_event() {
                link.advance_to(t);
                done += link.drain_completions().len();
            }
            black_box(done)
        })
    });
}

fn bench_trace(c: &mut Criterion) {
    let params = TraceParams::with_bitrate(
        FrameRate::NTSC_FILM,
        SimDuration::from_secs(600),
        GopPattern::mpeg1_n15(),
        193_000.0,
    );
    c.bench_function("trace_generate_10min", |b| {
        b.iter(|| black_box(FrameTrace::generate(black_box(7), &params)))
    });
}

/// Session churn on one link: open / send / advance / close cycles that
/// stress the flow arena's free list and the incremental fair-share
/// order, rather than steady-state draining.
fn bench_link_churn(c: &mut Criterion) {
    c.bench_function("fair_link_session_churn_2k", |b| {
        b.iter(|| {
            let mut link = SharedLink::fair_share(3_200_000);
            let mut open = Vec::new();
            let mut now = SimTime::ZERO;
            let mut done = 0;
            for i in 0..2_000u64 {
                // Mixed caps so the water-fill order sees real churn.
                let cap = if i % 3 == 0 { None } else { Some(24_000 + (i % 7) * 8_000) };
                let f = link.open_flow(now, cap).unwrap();
                link.send(now, f, 2_000 + (i % 5) * 1_000).unwrap();
                open.push(f);
                if open.len() > 64 {
                    // Close the oldest flow, completed or not.
                    let victim = open.remove(0);
                    link.close_flow(now, victim);
                }
                now += SimDuration::from_micros(500);
                link.advance_to(now);
                done += link.drain_completions().len();
            }
            black_box(done)
        })
    });
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_event_queue_churn,
    bench_cpu_schedulers,
    bench_link,
    bench_link_churn,
    bench_trace
);
criterion_main!(benches);
