//! Criterion micro-benchmarks of the simulation substrates themselves —
//! not a paper experiment, but regression coverage for the hot paths that
//! every experiment runs through (event queue, CPU schedulers, fluid
//! links, trace generation).

use criterion::{criterion_group, criterion_main, Criterion};
use quasaq_media::{FrameRate, FrameTrace, GopPattern, TraceParams};
use quasaq_sim::cpu::{CpuScheduler, Dsrt, DsrtConfig, TimeSharing};
use quasaq_sim::{EventQueue, SharedLink, SimDuration, SimTime};
use std::hint::black_box;

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..1_000u64 {
                // Scatter times deterministically.
                q.schedule(SimTime::from_micros((i * 2_654_435_761) % 1_000_000), i);
            }
            let mut n = 0;
            while q.pop().is_some() {
                n += 1;
            }
            black_box(n)
        })
    });
}

fn bench_cpu_schedulers(c: &mut Criterion) {
    c.bench_function("timesharing_50_jobs_1k_tasks", |b| {
        b.iter(|| {
            let mut cpu = TimeSharing::solaris_default();
            let jobs: Vec<_> = (0..50).map(|_| cpu.add_job(SimTime::ZERO)).collect();
            for i in 0..1_000 {
                cpu.submit(SimTime::ZERO, jobs[i % 50], SimDuration::from_micros(1_500));
            }
            let mut done = 0;
            while let Some(t) = cpu.next_event() {
                cpu.advance_to(t);
                done += cpu.drain_completions().len();
            }
            black_box(done)
        })
    });

    c.bench_function("dsrt_20_reserved_1k_tasks", |b| {
        b.iter(|| {
            let mut cpu = Dsrt::new(DsrtConfig::default());
            let jobs: Vec<_> = (0..20)
                .map(|_| {
                    cpu.reserve(
                        SimTime::ZERO,
                        SimDuration::from_millis(2),
                        SimDuration::from_millis(42),
                    )
                    .expect("fits")
                })
                .collect();
            for i in 0..1_000 {
                cpu.submit(SimTime::ZERO, jobs[i % 20], SimDuration::from_micros(1_500));
            }
            let mut done = 0;
            while let Some(t) = cpu.next_event() {
                cpu.advance_to(t);
                done += cpu.drain_completions().len();
            }
            black_box(done)
        })
    });
}

fn bench_link(c: &mut Criterion) {
    c.bench_function("fair_link_100_flows_1k_xfers", |b| {
        b.iter(|| {
            let mut link = SharedLink::fair_share(3_200_000);
            let flows: Vec<_> =
                (0..100).map(|_| link.open_flow(SimTime::ZERO, Some(48_000)).unwrap()).collect();
            for i in 0..1_000 {
                link.send(SimTime::ZERO, flows[i % 100], 4_000).unwrap();
            }
            let mut done = 0;
            while let Some(t) = link.next_event() {
                link.advance_to(t);
                done += link.drain_completions().len();
            }
            black_box(done)
        })
    });
}

fn bench_trace(c: &mut Criterion) {
    let params = TraceParams::with_bitrate(
        FrameRate::NTSC_FILM,
        SimDuration::from_secs(600),
        GopPattern::mpeg1_n15(),
        193_000.0,
    );
    c.bench_function("trace_generate_10min", |b| {
        b.iter(|| black_box(FrameTrace::generate(black_box(7), &params)))
    });
}

criterion_group!(benches, bench_event_queue, bench_cpu_schedulers, bench_link, bench_trace);
criterion_main!(benches);
