//! Fig 7 reproduction: throughput of QuaSAQ systems with different cost
//! models.
//!
//! "We compare the throughput of two QuaSAQ systems using different cost
//! models: one with LRB and one with a simple randomized algorithm …
//! The number of sessions supported is 27% to 89% higher than that of the
//! system with the randomized method. The high system throughput caused
//! by the proposed cost model is also consistent with its low reject rate
//! shown in Figure 7b." Runs 7000 simulated seconds, plus the cost-model
//! ablation (MinBitrate, WeightedSum) from DESIGN.md.

use quasaq_bench::{paper, sparkline, Table};
use quasaq_sim::SimTime;
use quasaq_workload::{run_throughput_scenarios, CostKind, SystemKind, ThroughputConfig};

fn main() {
    println!("=== Fig 7: QuaSAQ throughput under different cost models ===\n");
    let cfg = ThroughputConfig::fig7();

    // Two 7000 s runs over the same shared testbed — fan them out.
    let kinds = [CostKind::Lrb, CostKind::Random];
    let scenarios: Vec<_> = kinds.iter().map(|&k| (SystemKind::Quasaq(k), cfg.clone())).collect();
    let results: Vec<_> = kinds.into_iter().zip(run_throughput_scenarios(&scenarios)).collect();
    for (_, r) in &results {
        println!(
            "{:<26} outstanding over 0..7000 s: {}",
            r.label,
            sparkline(&r.outstanding.values().collect::<Vec<_>>(), 60)
        );
    }

    // Fig 7a: outstanding sessions sampled every 500 s.
    println!("\nFig 7a — outstanding sessions:");
    let mut t7a = Table::new(&["t (s)", "LRB", "Random", "LRB/Random"]);
    let step_points = 50; // sample step is 10 s; 500 s = every 50th point
    let n = results[0].1.outstanding.points().len();
    for i in (0..n).step_by(step_points) {
        let lrb = results[0].1.outstanding.points()[i].1;
        let random = results[1].1.outstanding.points()[i].1;
        t7a.row(&[
            format!("{}", i * 10),
            format!("{lrb:.0}"),
            format!("{random:.0}"),
            if random > 0.0 { format!("{:.2}", lrb / random) } else { "-".to_string() },
        ]);
    }
    println!("{}", t7a.render());

    // Fig 7b: cumulative rejects sampled every 500 s.
    println!("\nFig 7b — cumulative rejects:");
    let mut t7b = Table::new(&["t (s)", "LRB", "Random"]);
    for ts in (500..=7000).step_by(500) {
        let t = SimTime::from_secs(ts);
        let count = |r: &quasaq_workload::ThroughputResult| {
            r.rejects
                .points()
                .iter()
                .rev()
                .find(|&&(at, _)| at <= t)
                .map(|&(_, v)| v)
                .unwrap_or(0.0)
        };
        t7b.row(&[
            format!("{ts}"),
            format!("{:.0}", count(&results[0].1)),
            format!("{:.0}", count(&results[1].1)),
        ]);
    }
    println!("{}", t7b.render());

    // Headline ratio across the run: LRB sessions vs Random sessions.
    let mut ratios = Vec::new();
    for i in 0..n {
        let lrb = results[0].1.outstanding.points()[i].1;
        let random = results[1].1.outstanding.points()[i].1;
        if random > 5.0 && results[0].1.outstanding.points()[i].0 > SimTime::from_secs(500) {
            ratios.push(lrb / random);
        }
    }
    let lo = ratios.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = ratios.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let (p_lo, p_hi) = paper::FIG7_LRB_VS_RANDOM;
    println!(
        "\nSessions supported, LRB vs Random: {:.2}x .. {:.2}x across the run \
         (paper: {p_lo:.2}x .. {p_hi:.2}x)",
        lo, hi
    );
    println!(
        "Total rejects: LRB {} vs Random {} (paper shape: LRB rejects fewer)\n",
        results[0].1.rejected, results[1].1.rejected
    );

    // Ablation: the other cost models at a shorter horizon.
    println!("=== Ablation: other cost models (2000 s horizon) ===\n");
    let mut short = cfg.clone();
    short.horizon = SimTime::from_secs(2000);
    let mut ab = Table::new(&["model", "stable outstanding", "rejected", "completed"]);
    let ab_kinds = [CostKind::Lrb, CostKind::Random, CostKind::MinBitrate, CostKind::WeightedSum];
    let ab_scenarios: Vec<_> =
        ab_kinds.iter().map(|&k| (SystemKind::Quasaq(k), short.clone())).collect();
    for (kind, r) in ab_kinds.iter().zip(run_throughput_scenarios(&ab_scenarios)) {
        ab.row(&[
            kind.label().to_string(),
            format!("{:.1}", r.stable_outstanding(short.horizon)),
            format!("{}", r.rejected),
            format!("{}", r.completed),
        ]);
    }
    println!("{}", ab.render());
    println!(
        "\nLRB and WeightedSum both track live load; MinBitrate is static and\n\
         Random ignores cost entirely — the ordering shows how much the\n\
         contention-aware max-bucket formulation buys.\n"
    );
}
