//! §5.2 "Overhead of QuaSAQ" reproduction.
//!
//! "The DSRT scheduler reports an overhead of 0.4−0.8ms for every 10ms …
//! This number is only 0.16ms in the machines we used for experiments
//! (1.6% overhead). The CPU use for processing each query (a few
//! milliseconds) in QuaSAQ is negligible."
//!
//! Criterion micro-benchmarks measure the per-query planning pipeline
//! (plan generation, LRB ranking, full admit) plus the SQL front-end, and
//! a printed section reports the modelled DSRT overhead and the pruning
//! ablation (plan-space sizes with and without the static rules).

use criterion::{criterion_group, Criterion};
use quasaq_bench::{paper, Table};
use quasaq_core::{
    GeneratorConfig, LrbModel, PlanGenerator, PlanRequest, QopRequest, QopSecurity, UserProfile,
};
use quasaq_media::VideoId;
use quasaq_sim::cpu::Dsrt;
use quasaq_sim::Rng;
use quasaq_workload::{CostKind, Testbed, TestbedConfig};
use std::hint::black_box;

fn bench_planning(c: &mut Criterion) {
    let testbed = Testbed::build(TestbedConfig::default());
    let profile = UserProfile::new("bench");
    let request = PlanRequest {
        video: VideoId(0),
        qos: profile.translate(&QopRequest::organizational()),
        security: QopSecurity::Open,
    };
    let generator = PlanGenerator::new(GeneratorConfig::default());

    c.bench_function("plan_generation", |b| {
        b.iter(|| black_box(generator.generate(&testbed.engine, black_box(&request))))
    });

    let plans = generator.generate(&testbed.engine, &request);
    let api = testbed.qos_api();
    c.bench_function("lrb_rank", |b| {
        let mut rng = Rng::new(1);
        b.iter(|| {
            black_box(quasaq_core::CostModel::rank(&LrbModel, black_box(&plans), &api, &mut rng))
        })
    });

    c.bench_function("full_admit_release", |b| {
        let mut manager = testbed.quality_manager(CostKind::Lrb);
        let mut rng = Rng::new(2);
        b.iter(|| {
            let admitted = manager.process(&testbed.engine, &request, &mut rng).expect("admits");
            manager.release(&admitted);
        })
    });

    c.bench_function("sql_parse", |b| {
        let q = "SELECT * FROM videos WHERE contains('surgery') \
                 WITH QOS (resolution >= 320x240, resolution <= 352x288, framerate >= 20) LIMIT 3";
        b.iter(|| black_box(quasaq_vdbms::parse(black_box(q)).expect("parses")))
    });
}

fn report_overheads() {
    println!("\n=== §5.2 Overhead of QuaSAQ ===\n");

    // DSRT overhead: the modelled scheduler consumes this fraction of the
    // CPU, matching the paper's measurement.
    let dsrt = Dsrt::paper_default();
    println!(
        "DSRT scheduler overhead (modelled): {:.2}% of CPU (paper: {:.1}% — 0.16 ms per 10 ms)",
        dsrt.overhead_fraction() * 100.0,
        paper::DSRT_OVERHEAD * 100.0
    );

    // Planning cost accounting for a representative request mix.
    let testbed = Testbed::build(TestbedConfig::default());
    let mut manager = testbed.quality_manager(CostKind::Lrb);
    let profile = UserProfile::new("bench");
    let mut rng = Rng::new(3);
    let mut table = Table::new(&["request", "plans generated", "feasible", "admit attempts"]);
    for (label, qop) in [
        ("organizational QoP", QopRequest::organizational()),
        ("diagnostic QoP", QopRequest::diagnostic()),
    ] {
        let request =
            PlanRequest { video: VideoId(1), qos: profile.translate(&qop), security: qop.security };
        if let Ok(admitted) = manager.process(&testbed.engine, &request, &mut rng) {
            manager.release(&admitted);
        }
        let stats = manager.last_stats();
        table.row(&[
            label.to_string(),
            format!("{}", stats.generated),
            format!("{}", stats.feasible),
            format!("{}", stats.attempts),
        ]);
    }
    println!("{}", table.render());

    // Pruning ablation: the static rules vs the combinatorial bound.
    let generator = PlanGenerator::new(GeneratorConfig::default());
    let unpruned =
        PlanGenerator::new(GeneratorConfig { prune_wasteful: false, ..GeneratorConfig::default() });
    let request = PlanRequest {
        video: VideoId(0),
        qos: profile.translate(&QopRequest::organizational()),
        security: QopSecurity::Open,
    };
    let pruned_n = generator.generate(&testbed.engine, &request).len();
    let unpruned_n = unpruned.generate(&testbed.engine, &request).len();
    let bound = generator.combinatorial_bound(&testbed.engine, VideoId(0));
    println!(
        "\nPlan-space pruning: combinatorial bound {bound}, without wasteful-pruning \
         {unpruned_n}, with static rules {pruned_n}"
    );
    println!(
        "The criterion results above give the per-query planning cost; the paper\n\
         reports \"a few milliseconds\" per query on 2002-era hardware.\n"
    );
}

criterion_group!(benches, bench_planning);

fn main() {
    report_overheads();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
