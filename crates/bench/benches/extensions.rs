//! Extensions beyond the paper's prototype, exercised end to end.
//!
//! 1. **Online replication/migration** — the paper's requirement 1
//!    ("dynamic online replication and migration has to be performed to
//!    make the system converge to the current status of user requests"),
//!    which it defers to a follow-up paper. Here: run a skewed workload,
//!    plan migrations from the observed access pattern, apply them, and
//!    rerun the same workload on the converged layout.
//! 2. **Configurable optimizer** — the paper's `E = G/C(r)` cost
//!    efficiency with a perceptual-utility gain ("a utility function can
//!    be used when our goal is to maximize the satisfiability of user
//!    perception"), compared against pure LRB on throughput *and*
//!    delivered utility.
//! 3. **Queued admission front end** — rejected queries wait, back off,
//!    and retry down the degradation ladder instead of vanishing; clients
//!    abandon after a patience window. Rerun the Fig 6 comparison behind
//!    the queue and against the fire-and-forget client.
//! 4. **Availability under faults** — deterministic fault injection:
//!    one server crashes mid-run and restarts later. Sessions fail over
//!    to replica sites (renegotiating down the QoP ladder when the
//!    survivors are tight), re-enter the admission queue with backoff, or
//!    are lost; the robustness metrics quantify each fate.

use quasaq_bench::Table;
use quasaq_sim::{SimDuration, SimTime};
use quasaq_store::{plan_migrations, Placement, QosSampler, ReplicationPlanner};
use quasaq_workload::{
    run_throughput_on, run_throughput_scenarios, CostKind, QopMix, SystemKind, Testbed,
    TestbedConfig, ThroughputConfig,
};

fn main() {
    migration_loop();
    configurable_optimizer();
    queued_admission();
    availability_under_faults();
}

fn migration_loop() {
    println!("=== Extension 1: online replication under skewed access ===\n");
    // Round-robin placement (one copy per tier) + Zipf-skewed access:
    // hot videos' tiers live on single servers, so load concentrates.
    let cfg = ThroughputConfig {
        testbed: TestbedConfig { placement: Placement::RoundRobin, ..TestbedConfig::default() },
        horizon: SimTime::from_secs(600),
        sample_step: SimDuration::from_secs(10),
        seed: 31,
        video_skew: 1.2,
        // Local-only planning makes placement bind (cross-site delivery
        // would otherwise mask the layout).
        local_plans_only: true,
        admission: None,
        faults: None,
        arrival_period: None,
        domain_workers: 0,
        qop_mix: QopMix::Uniform,
        arrival_burst: 1,
        plan_cache: false,
        links: None,
        adaptation: None,
    };
    let mut testbed = Testbed::build(cfg.testbed.clone());

    let before = run_throughput_on(&testbed, SystemKind::Quasaq(CostKind::Lrb), &cfg);

    // Maintenance pass: converge the replica layout to the observed
    // access pattern.
    let migrations = plan_migrations(&testbed.engine, &before.access, 20);
    let mut planner =
        ReplicationPlanner::new(QosSampler { cost: cfg.testbed.cost }, Placement::RoundRobin);
    let applied = {
        let Testbed { stores, engine, .. } = &mut testbed;
        planner.apply_migrations(&migrations, stores, engine).expect("stores have space")
    };

    let after = run_throughput_on(&testbed, SystemKind::Quasaq(CostKind::Lrb), &cfg);

    let mut t = Table::new(&["run", "admitted", "rejected", "stable outstanding"]);
    for (label, r) in [("before migration", &before), ("after migration", &after)] {
        t.row(&[
            label.to_string(),
            format!("{}", r.admitted),
            format!("{}", r.rejected),
            format!("{:.1}", r.stable_outstanding(cfg.horizon)),
        ]);
    }
    println!("{}", t.render());
    println!(
        "\n{applied} replica cop{} created from the access statistics; the converged\n\
         layout serves the hot content from more servers, raising admissions.\n",
        if applied == 1 { "y" } else { "ies" }
    );
}

fn configurable_optimizer() {
    println!("=== Extension 2: configurable optimizer (E = G/C with utility gain) ===\n");
    let cfg = ThroughputConfig {
        testbed: TestbedConfig::default(),
        horizon: SimTime::from_secs(800),
        sample_step: SimDuration::from_secs(10),
        seed: 33,
        video_skew: 0.0,
        local_plans_only: false,
        admission: None,
        faults: None,
        arrival_period: None,
        domain_workers: 0,
        qop_mix: QopMix::Uniform,
        arrival_burst: 1,
        plan_cache: false,
        links: None,
        adaptation: None,
    };
    let mut t = Table::new(&[
        "optimizer",
        "admitted",
        "rejected",
        "stable outstanding",
        "mean delivered utility",
    ]);
    // The migration loop above is inherently before/after-sequential (it
    // mutates the testbed between runs); these two optimizer runs are
    // independent, so they fan out.
    let kinds = [CostKind::Lrb, CostKind::Utility];
    let scenarios: Vec<_> = kinds.iter().map(|&k| (SystemKind::Quasaq(k), cfg.clone())).collect();
    for (kind, r) in kinds.iter().zip(run_throughput_scenarios(&scenarios)) {
        t.row(&[
            kind.label().to_string(),
            format!("{}", r.admitted),
            format!("{}", r.rejected),
            format!("{:.1}", r.stable_outstanding(cfg.horizon)),
            r.mean_utility.map(|u| format!("{u:.3}")).unwrap_or_default(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "\nThe throughput-configured optimizer (LRB, G = 1) maximizes concurrent\n\
         sessions; the utility-configured optimizer trades some concurrency for\n\
         richer delivered quality — the DBA-selectable goal the paper sketches\n\
         as future work.\n"
    );
}

fn queued_admission() {
    println!("=== Extension 3: queued admission front end (Fig 6 workload) ===\n");
    let queued = ThroughputConfig::queued();
    let legacy = ThroughputConfig::fig6();
    let h = queued.horizon;
    let systems = [
        ("VDBMS", SystemKind::Vdbms),
        ("VDBMS+QoS API", SystemKind::VdbmsQosApi),
        ("VDBMS+QuaSAQ (LRB)", SystemKind::Quasaq(CostKind::Lrb)),
    ];
    // 6 independent runs (3 systems x queued/legacy): fan them all out.
    let scenarios: Vec<_> =
        systems.iter().flat_map(|&(_, s)| [(s, queued.clone()), (s, legacy.clone())]).collect();
    let results = run_throughput_scenarios(&scenarios);
    let mut t = Table::new(&[
        "system",
        "admitted (was)",
        "rejected",
        "mean wait s",
        "retries",
        "abandoned wait/stream",
        "stable outstanding (was)",
    ]);
    for ((label, _), pair) in systems.iter().zip(results.chunks(2)) {
        let (r, l) = (&pair[0], &pair[1]);
        let q = r.queue.as_ref().expect("front end enabled");
        t.row(&[
            label.to_string(),
            format!("{} ({})", r.admitted, l.admitted),
            format!("{}", r.rejected),
            format!("{:.2}", q.wait.mean()),
            format!("{}", q.retries),
            format!("{}/{}", q.abandoned_waiting, q.abandoned_streaming),
            format!("{:.1} ({:.1})", r.stable_outstanding(h), l.stable_outstanding(h)),
        ]);
    }
    println!("{}", t.render());

    // Plain VDBMS at a long horizon: the patience deadline bounds session
    // lifetime, so the backlog converges instead of growing linearly.
    let long_q = ThroughputConfig { horizon: SimTime::from_secs(4000), ..queued };
    let long_l = ThroughputConfig { admission: None, ..long_q.clone() };
    let scenarios = vec![(SystemKind::Vdbms, long_q), (SystemKind::Vdbms, long_l)];
    let results = run_throughput_scenarios(&scenarios);
    let (rq, rl) = (&results[0], &results[1]);
    let mut t = Table::new(&["window s", "outstanding (queued)", "outstanding (fire-and-forget)"]);
    for k in 0..4 {
        let (a, b) = (SimTime::from_secs(k * 1000), SimTime::from_secs((k + 1) * 1000));
        t.row(&[
            format!("{}-{}", k * 1000, (k + 1) * 1000),
            format!("{:.0}", rq.outstanding.window_mean(a, b).unwrap_or(0.0)),
            format!("{:.0}", rl.outstanding.window_mean(a, b).unwrap_or(0.0)),
        ]);
    }
    println!("{}", t.render());
    println!(
        "\nWaiting out transient overload admits queries the fire-and-forget\n\
         client lost; the patience deadline turns plain VDBMS's unbounded\n\
         backlog into a plateau near arrival rate x (nominal duration +\n\
         patience).\n"
    );
}

fn availability_under_faults() {
    println!("=== Extension 4: availability under faults (crash 1000 s, restart 2000 s) ===\n");
    let cfg = ThroughputConfig::availability();
    let systems = [
        ("VDBMS", SystemKind::Vdbms),
        ("VDBMS+QoS API", SystemKind::VdbmsQosApi),
        ("VDBMS+QuaSAQ (LRB)", SystemKind::Quasaq(CostKind::Lrb)),
    ];
    let scenarios: Vec<_> = systems.iter().map(|&(_, s)| (s, cfg.clone())).collect();
    let results = run_throughput_scenarios(&scenarios);

    let mut t = Table::new(&[
        "system",
        "interrupted",
        "failed over (degraded)",
        "requeued/recovered",
        "dropped",
        "mean recovery s",
    ]);
    for ((label, _), r) in systems.iter().zip(&results) {
        let f = r.faults.as_ref().expect("fault injection enabled");
        t.row(&[
            label.to_string(),
            format!("{}", f.interrupted),
            format!("{} ({})", f.failed_over, f.failover_degraded),
            format!("{}/{}", f.requeued, f.recovered),
            format!("{}", f.dropped),
            format!("{:.2}", f.recovery.mean()),
        ]);
    }
    println!("{}", t.render());

    // Outstanding sessions before / during / after the outage: the
    // availability curve behind EXPERIMENTS.md.
    let mut t = Table::new(&["window s", "VDBMS", "VDBMS+QoS API", "VDBMS+QuaSAQ (LRB)"]);
    for k in 0..3u64 {
        let (a, b) = (SimTime::from_secs(k * 1000), SimTime::from_secs((k + 1) * 1000));
        let mut row = vec![format!("{}-{}", k * 1000, (k + 1) * 1000)];
        for r in &results {
            row.push(format!("{:.0}", r.outstanding.window_mean(a, b).unwrap_or(0.0)));
        }
        t.row(&row);
    }
    println!("{}", t.render());
    println!(
        "\nOne of three servers dies for a third of the run. Plain VDBMS fails\n\
         every displaced session straight over (full replication, no admission\n\
         bar) and keeps piling sessions onto the survivors; the reservation-based\n\
         systems shed or requeue what the remaining capacity cannot carry and\n\
         re-absorb the load after the restart.\n"
    );
}
