//! Table 2 reproduction: statistics of inter-frame and inter-GOP delays.
//!
//! "Unit for all data is millisecond, S.D. = Standard Deviation." The
//! four configurations are the four panels of Fig 5; the inter-GOP rows
//! demonstrate that the intrinsic VBR variance "can be smoothed out if we
//! collect data on the GOP level".

use quasaq_bench::{paper, Table};
use quasaq_workload::{run_fig5, Contention, Fig5Config, Fig5System};

fn main() {
    println!("=== Table 2: inter-frame and inter-GOP delay statistics ===\n");

    let cfg = Fig5Config::default();
    let rows = [
        ("VDBMS, Low Contention", Fig5System::Vdbms, Contention::Low, paper::T2_VDBMS_LOW),
        ("VDBMS, High Contention", Fig5System::Vdbms, Contention::High, paper::T2_VDBMS_HIGH),
        ("QuaSAQ, Low Contention", Fig5System::Quasaq, Contention::Low, paper::T2_QUASAQ_LOW),
        ("QuaSAQ, High Contention", Fig5System::Quasaq, Contention::High, paper::T2_QUASAQ_HIGH),
    ];

    let mut table = Table::new(&[
        "Experiment",
        "IF mean",
        "IF s.d.",
        "IG mean",
        "IG s.d.",
        "paper IF mean",
        "paper IF s.d.",
        "paper IG mean",
        "paper IG s.d.",
    ]);

    let mut measured = Vec::new();
    for (label, system, contention, reference) in rows {
        let (report, _) = run_fig5(system, contention, &cfg);
        let f = report.frame_delay_stats();
        let g = report.gop_delay_stats();
        table.row(&[
            label.to_string(),
            format!("{:.2}", f.mean()),
            format!("{:.2}", f.std_dev()),
            format!("{:.2}", g.mean()),
            format!("{:.2}", g.std_dev()),
            format!("{:.2}", reference.0),
            format!("{:.2}", reference.1),
            format!("{:.2}", reference.2),
            format!("{:.2}", reference.3),
        ]);
        measured.push((label, f, g));
    }

    println!("{}", table.render());

    // The three structural claims of Table 2.
    let vdbms_high_sd = measured[1].1.std_dev();
    let quasaq_high_sd = measured[3].1.std_dev();
    let quasaq_low_sd = measured[2].1.std_dev();
    println!("\nStructural checks:");
    println!(
        "  VDBMS high-contention frame s.d. / QuaSAQ high-contention: {:.1}x (paper: {:.1}x)",
        vdbms_high_sd / quasaq_high_sd,
        paper::T2_VDBMS_HIGH.1 / paper::T2_QUASAQ_HIGH.1
    );
    println!(
        "  QuaSAQ high vs low contention frame s.d.: {:.2}x (paper: {:.2}x — unchanged)",
        quasaq_high_sd / quasaq_low_sd,
        paper::T2_QUASAQ_HIGH.1 / paper::T2_QUASAQ_LOW.1
    );
    for (label, f, g) in &measured {
        println!(
            "  {label}: GOP-level smoothing ratio (IF sd / IG sd): {:.1}x",
            f.std_dev() / g.std_dev().max(1e-9)
        );
    }
}
