//! Fig 5 reproduction: inter-frame delays on the server side under
//! different system contentions.
//!
//! Regenerates the four panels — (a) VDBMS low contention, (b) QuaSAQ low
//! contention, (c) VDBMS high contention, (d) QuaSAQ high contention —
//! for a 23.97 fps monitored stream, printing the delay-series summary
//! and an ASCII rendering of each panel's shape.

use quasaq_bench::{paper, sparkline, Table};
use quasaq_workload::{run_fig5, Contention, Fig5Config, Fig5System};

fn main() {
    println!("=== Fig 5: inter-frame delays on the server side ===\n");
    println!(
        "Monitored stream: 23.97 fps (theoretical inter-frame delay {:.2} ms), 15-frame GOP.\n",
        paper::THEORETICAL_INTERFRAME_MS
    );

    let cfg = Fig5Config::default();
    let panels = [
        ("a", Fig5System::Vdbms, Contention::Low, paper::T2_VDBMS_LOW),
        ("b", Fig5System::Quasaq, Contention::Low, paper::T2_QUASAQ_LOW),
        ("c", Fig5System::Vdbms, Contention::High, paper::T2_VDBMS_HIGH),
        ("d", Fig5System::Quasaq, Contention::High, paper::T2_QUASAQ_HIGH),
    ];

    let mut table = Table::new(&[
        "panel",
        "system",
        "contention",
        "streams",
        "frames",
        "mean (ms)",
        "sd (ms)",
        "max (ms)",
        "paper mean",
        "paper sd",
    ]);

    for (panel, system, contention, reference) in panels {
        let (report, competitors) = run_fig5(system, contention, &cfg);
        let delays = report.inter_frame_delays_ms();
        let stats = report.frame_delay_stats();
        table.row(&[
            format!("5{panel}"),
            system.label().to_string(),
            contention.label().to_string(),
            format!("{}", competitors + 1),
            format!("{}", delays.len() + 1),
            format!("{:.2}", stats.mean()),
            format!("{:.2}", stats.std_dev()),
            format!("{:.1}", stats.max().unwrap_or(0.0)),
            format!("{:.2}", reference.0),
            format!("{:.2}", reference.1),
        ]);

        // The per-frame series itself, as the paper plots it (first ~1000
        // frames), shown as a sparkline plus a decimated excerpt.
        let first_1000: Vec<f64> = delays.iter().copied().take(1000).collect();
        println!(
            "Fig 5{panel} [{} / {}] delay series (first {} frames): {}",
            system.label(),
            contention.label(),
            first_1000.len(),
            sparkline(&first_1000, 72)
        );
        let excerpt: Vec<String> =
            first_1000.iter().step_by(100).map(|d| format!("{d:.1}")).collect();
        println!("          every 100th delay (ms): {}\n", excerpt.join(", "));
    }

    println!("{}", table.render());
    println!(
        "\nShape check: panel 5c's standard deviation should sit an order of\n\
         magnitude above the other three panels, and 5d should match 5b.\n"
    );

    // "Data collected on the client side show similar results [7]."
    println!("Client-side inter-frame delays (delivery instants, 2-3 hops away):");
    let mut client = Table::new(&["panel", "system", "contention", "mean (ms)", "sd (ms)"]);
    for (panel, system, contention, _) in panels {
        let (report, _) = run_fig5(system, contention, &cfg);
        let mut stats = quasaq_sim::OnlineStats::new();
        for d in report.client_inter_frame_delays_ms() {
            stats.push(d);
        }
        client.row(&[
            format!("5{panel}"),
            system.label().to_string(),
            contention.label().to_string(),
            format!("{:.2}", stats.mean()),
            format!("{:.2}", stats.std_dev()),
        ]);
    }
    println!("{}", client.render());
}
