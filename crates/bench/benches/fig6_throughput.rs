//! Fig 6 reproduction: throughput of different video database systems.
//!
//! Runs the same Poisson query stream (mean inter-arrival 1 s, uniform
//! video access, uniform QoS) against plain VDBMS, VDBMS + QoS API, and
//! VDBMS + QuaSAQ for 1000 s, printing (a) outstanding sessions over time
//! and (b) accomplished jobs per minute — plus the headline comparison:
//! "QuaSAQ beats the 'VDBMS + QoS API' system by about 75% on the stable
//! stage". An extension section sweeps the replication degree.

use quasaq_bench::{paper, sparkline, Table};
use quasaq_sim::SimTime;
use quasaq_workload::{
    parallel_map, run_throughput_scenarios, CostKind, QopMix, SystemKind, TestbedConfig,
    ThroughputConfig,
};

fn main() {
    println!("=== Fig 6: throughput of different video database systems ===\n");
    let cfg = ThroughputConfig::fig6();
    let systems = [SystemKind::VdbmsQosApi, SystemKind::Quasaq(CostKind::Lrb), SystemKind::Vdbms];

    // The three systems are independent runs over the same shared testbed:
    // fan them across cores, collect in scenario order.
    let scenarios: Vec<_> = systems.iter().map(|&s| (s, cfg.clone())).collect();
    let results = run_throughput_scenarios(&scenarios);
    for r in &results {
        println!(
            "{:<22} outstanding over 0..1000 s: {}",
            r.label,
            sparkline(&r.outstanding.values().collect::<Vec<_>>(), 60)
        );
    }

    // Fig 6a: outstanding sessions sampled every 100 s.
    println!("\nFig 6a — outstanding sessions:");
    let mut t6a = Table::new(&[
        "t (s)",
        &results[0].label.clone(),
        &results[1].label.clone(),
        &results[2].label.clone(),
    ]);
    for i in (0..=100).step_by(10) {
        let cells: Vec<String> = std::iter::once(format!("{}", i * 10))
            .chain(results.iter().map(|r| {
                r.outstanding.points().get(i).map(|&(_, v)| format!("{v:.0}")).unwrap_or_default()
            }))
            .collect();
        t6a.row(&cells);
    }
    println!("{}", t6a.render());

    // Fig 6b: accomplished jobs per minute.
    println!("\nFig 6b — accomplished jobs per minute:");
    let mut t6b = Table::new(&[
        "minute",
        &results[0].label.clone(),
        &results[1].label.clone(),
        &results[2].label.clone(),
    ]);
    let minutes = results.iter().map(|r| r.completions_per_min.counts().len()).max().unwrap_or(0);
    for m in (0..minutes).step_by(2) {
        let cells: Vec<String> = std::iter::once(format!("{m}"))
            .chain(results.iter().map(|r| {
                format!("{}", r.completions_per_min.counts().get(m).copied().unwrap_or(0))
            }))
            .collect();
        t6b.row(&cells);
    }
    println!("{}", t6b.render());

    // Summary and the paper's headline ratio.
    println!("\nSummary over the stable stage (second half of the run):");
    let horizon = cfg.horizon;
    let mut summary = Table::new(&[
        "system",
        "queries",
        "admitted",
        "rejected",
        "completed",
        "stable outstanding",
        "jobs/min (stable)",
    ]);
    for r in &results {
        let stable_rate = r.completions_per_min.window_rate(8, 16);
        summary.row(&[
            r.label.clone(),
            format!("{}", r.queries),
            format!("{}", r.admitted),
            format!("{}", r.rejected),
            format!("{}", r.completed),
            format!("{:.1}", r.stable_outstanding(horizon)),
            format!("{stable_rate:.1}"),
        ]);
    }
    println!("{}", summary.render());

    let qosapi = results.iter().find(|r| r.label.contains("QoS API")).unwrap();
    let quasaq = results.iter().find(|r| r.label.contains("QuaSAQ")).unwrap();
    let ratio = quasaq.stable_outstanding(horizon) / qosapi.stable_outstanding(horizon).max(1e-9);
    println!(
        "\nQuaSAQ vs VDBMS+QoS API on the stable stage: {:.2}x (paper: ~{:.2}x)",
        ratio,
        paper::FIG6_QUASAQ_VS_QOSAPI
    );
    println!(
        "Note: plain VDBMS's high outstanding count \"is just a result of lack of QoS\n\
         control: all video jobs were admitted and it took much longer time to finish\n\
         each job\" — its jobs/min column is the lowest.\n"
    );

    // Calibrated QoP mix: the paper's (unspecified) request distribution
    // evidently skewed richer than uniform — rerun the two QoS systems
    // under `QopMix::PaperSkewed` and report the recalibrated factor.
    println!("=== Calibration: rich-skewed QoP mix (QopMix::PaperSkewed) ===\n");
    let mut skewed_cfg = cfg.clone();
    skewed_cfg.qop_mix = QopMix::PaperSkewed;
    let skewed_scenarios: Vec<_> = [SystemKind::VdbmsQosApi, SystemKind::Quasaq(CostKind::Lrb)]
        .iter()
        .map(|&s| (s, skewed_cfg.clone()))
        .collect();
    let skewed = run_throughput_scenarios(&skewed_scenarios);
    let mut cal = Table::new(&["system", "admitted", "rejected", "stable outstanding"]);
    for r in &skewed {
        cal.row(&[
            r.label.clone(),
            format!("{}", r.admitted),
            format!("{}", r.rejected),
            format!("{:.1}", r.stable_outstanding(horizon)),
        ]);
    }
    println!("{}", cal.render());
    let skewed_ratio =
        skewed[1].stable_outstanding(horizon) / skewed[0].stable_outstanding(horizon).max(1e-9);
    println!(
        "\nQuaSAQ vs VDBMS+QoS API, rich-skewed mix: {:.2}x (paper: ~{:.2}x; uniform mix: {:.2}x)\n\
         Richer requests close the gap: QuaSAQ loses its cheap low-tier plans while\n\
         the QoS-API baseline was already paying full-quality reservations.\n",
        skewed_ratio,
        paper::FIG6_QUASAQ_VS_QOSAPI,
        ratio
    );

    // Extension: replication-degree sweep (DESIGN.md ablation).
    println!("=== Extension: replication degree vs QuaSAQ throughput ===\n");
    let mut sweep = Table::new(&["replicas/video", "stable outstanding", "rejected"]);
    let degrees: Vec<usize> = (1..=4).collect();
    let sweep_runs = parallel_map(&degrees, |_, &replicas| {
        let mut c = cfg.clone();
        c.testbed = TestbedConfig {
            library: quasaq_media::LibraryConfig {
                min_replicas: replicas,
                max_replicas: replicas,
                ..quasaq_media::LibraryConfig::default()
            },
            ..TestbedConfig::default()
        };
        c.horizon = SimTime::from_secs(600);
        (c.horizon, quasaq_workload::run_throughput(SystemKind::Quasaq(CostKind::Lrb), &c))
    });
    for (replicas, (horizon, r)) in degrees.iter().zip(&sweep_runs) {
        sweep.row(&[
            format!("{replicas}"),
            format!("{:.1}", r.stable_outstanding(*horizon)),
            format!("{}", r.rejected),
        ]);
    }
    println!("{}", sweep.render());
    println!(
        "\nMore quality tiers give the planner cheaper in-range replicas to choose,\n\
         raising concurrency — the rationale for QoS-aware offline replication.\n"
    );
}
