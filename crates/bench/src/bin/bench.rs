//! Wall-clock benchmark of the scenario-parallel experiment runner.
//!
//! Runs the Fig 6, Fig 7, queued-admission, and availability-under-faults
//! harness scenario suites twice — once as a plain serial loop over
//! [`run_throughput`], once through [`run_throughput_scenarios`] — verifies
//! the outputs are bit-identical, and records the timings (plus the fault
//! suite's robustness metrics) in `BENCH_throughput.json` at the repo root:
//!
//! ```text
//! cargo run --release -p quasaq-bench --bin bench [-- --quick]
//! ```
//!
//! `--quick` shrinks the horizons so the determinism check stays cheap
//! enough for CI, and skips the JSON write so CI runs never clobber the
//! committed full-mode artifact.
//!
//! Two further modes drive the declarative scenario DSL (`quasaq-scenario`):
//! `--scenario <file> [--shards N]` executes one TOML scenario serially and
//! sharded, asserts byte-identical reports, and prints harness-shaped JSON
//! rows; `--gallery [--shards N]` runs every `scenarios/*.toml` against its
//! committed golden (the CI regression gate). Speedup is bounded by the machine: on a single core the
//! runner degrades to the serial loop (speedup ~1.0), which the artifact
//! records via the `cores` field rather than pretending otherwise.
//!
//! Two modes drive the served control plane (`quasaq-shell`):
//! `--serve [--addr A] [--threads N] [--seed S]` runs a shell until killed;
//! `--load [--quick]` is the service-shell throughput study — it first pins
//! decision-identity against the in-process driver, then measures wall-clock
//! admissions/sec through the loopback at 1/2/4 shell threads and splices a
//! `"service"` section into `BENCH_throughput.json` (skipped in `--quick`,
//! which is the CI smoke variant).

use std::time::Instant;

use quasaq_sim::{FaultPlan, LinkModel, LinkPlan, LinkSpec, ServerId, SimDuration, SimTime};
use quasaq_workload::{
    run_throughput, run_throughput_scenarios, worker_count, AdaptationConfig, CostKind,
    DegradationMetrics, FaultMetrics, SystemKind, Testbed, TestbedConfig, ThroughputConfig,
    ThroughputResult,
};

struct Suite {
    name: &'static str,
    scenarios: Vec<(SystemKind, ThroughputConfig)>,
}

struct Timing {
    name: &'static str,
    serial_ms: f64,
    parallel_ms: f64,
    bit_identical: bool,
    /// Robustness metrics per fault-injected scenario (label, metrics).
    robustness: Vec<(String, FaultMetrics)>,
}

fn suites(quick: bool) -> Vec<Suite> {
    let mut fig6 = ThroughputConfig::fig6();
    let mut fig7 = ThroughputConfig::fig7();
    let mut queued = ThroughputConfig::queued();
    let mut avail = ThroughputConfig::availability();
    if quick {
        fig6.horizon = SimTime::from_secs(120);
        fig7.horizon = SimTime::from_secs(120);
        queued.horizon = SimTime::from_secs(120);
        // Shrink the outage with the horizon so the crash still fires.
        avail.horizon = SimTime::from_secs(120);
        avail.faults = Some(FaultPlan::crash_restart(
            ServerId(0),
            SimTime::from_secs(40),
            SimTime::from_secs(80),
        ));
    }
    vec![
        Suite {
            name: "fig6",
            scenarios: vec![
                (SystemKind::VdbmsQosApi, fig6.clone()),
                (SystemKind::Quasaq(CostKind::Lrb), fig6.clone()),
                (SystemKind::Vdbms, fig6),
            ],
        },
        Suite {
            name: "fig7",
            scenarios: vec![
                (SystemKind::Quasaq(CostKind::Lrb), fig7.clone()),
                (SystemKind::Quasaq(CostKind::Random), fig7),
            ],
        },
        // The queued admission front end stresses a different event mix
        // (retries, ladder walks, stream deadlines) through the same
        // serial-vs-parallel bit-identity check.
        Suite {
            name: "queued",
            scenarios: vec![
                (SystemKind::Vdbms, queued.clone()),
                (SystemKind::VdbmsQosApi, queued.clone()),
                (SystemKind::Quasaq(CostKind::Lrb), queued),
            ],
        },
        // Fault injection adds crash/failover/requeue edges to the event
        // mix; the robustness metrics land in the JSON artifact.
        Suite {
            name: "availability",
            scenarios: vec![
                (SystemKind::Vdbms, avail.clone()),
                (SystemKind::VdbmsQosApi, avail.clone()),
                (SystemKind::Quasaq(CostKind::Lrb), avail),
            ],
        },
    ]
}

/// One cluster size of the scaling study: a Spread-placement testbed with
/// load proportional to the cluster, run once with serial domain stepping
/// and once on a [`quasaq_workload::DomainPool`].
struct ScaleTiming {
    servers: u32,
    videos: usize,
    workers: usize,
    serial_ms: f64,
    sharded_ms: f64,
    bit_identical: bool,
}

fn scale_cases(quick: bool) -> Vec<(u32, usize)> {
    // 100 videos per server keeps the catalog proportional to the
    // cluster: the 100-server rung is the ISSUE's 10^4-video testbed.
    let sizes: &[u32] = if quick { &[3, 30] } else { &[3, 30, 100] };
    sizes.iter().map(|&s| (s, s as usize * 100)).collect()
}

/// Interleaved best-of-`reps` timing of two deterministic runs. A
/// single-shot timing on a shared box jitters by ~10%, which swamps the
/// few-percent serial-vs-sharded deltas the scale rows exist to measure;
/// alternating the sides inside one sampling loop makes clock drift hit
/// both equally, and best-of-N converges on each side's undisturbed cost.
#[allow(clippy::type_complexity)]
fn timed_pair<R>(
    reps: usize,
    mut a: impl FnMut() -> R,
    mut b: impl FnMut() -> R,
) -> ((f64, R), (f64, R)) {
    fn ms(t: Instant) -> f64 {
        t.elapsed().as_secs_f64() * 1e3
    }
    let t = Instant::now();
    let a_out = a();
    let mut a_ms = ms(t);
    let t = Instant::now();
    let b_out = b();
    let mut b_ms = ms(t);
    for _ in 1..reps {
        let t = Instant::now();
        let _ = a();
        a_ms = a_ms.min(ms(t));
        let t = Instant::now();
        let _ = b();
        b_ms = b_ms.min(ms(t));
    }
    ((a_ms, a_out), (b_ms, b_out))
}

/// One rung of the plan-cache study: the same Zipf-skewed run with full
/// enumeration vs the memoized plan cache. `burst > 1` turns it into the
/// flash-crowd case, where same-instant arrivals go through the
/// bulk-admit prefetch that amortizes enumeration across the batch.
struct CachedTiming {
    servers: u32,
    videos: usize,
    burst: usize,
    uncached_ms: f64,
    cached_ms: f64,
    bit_identical: bool,
}

fn run_cached(servers: u32, videos: usize, burst: usize, quick: bool) -> CachedTiming {
    let horizon = SimTime::from_secs(if quick { 30 } else { 120 });
    let period_us = (3_000_000 / servers as u64).max(1);
    let uncached_cfg = ThroughputConfig {
        testbed: quasaq_workload::TestbedConfig::scale(servers, videos),
        horizon,
        arrival_period: Some(quasaq_sim::SimDuration::from_micros(period_us)),
        // Uniform access over a 10^4-video catalog with 36 uniform QoP
        // rungs would make cache hits vanishingly rare; the Zipf skew
        // plus the paper-calibrated QoP mix (~85% of requests at the top
        // rung) model the popular-title traffic the cache exists for
        // (EXPERIMENTS.md).
        video_skew: 1.1,
        qop_mix: quasaq_workload::QopMix::PaperSkewed,
        arrival_burst: burst,
        ..ThroughputConfig::fig6()
    };
    let cached_cfg = ThroughputConfig { plan_cache: true, ..uncached_cfg.clone() };
    let _ = Testbed::shared(uncached_cfg.testbed.clone());
    let reps = if servers <= 3 {
        20
    } else if servers <= 30 {
        5
    } else {
        3
    };
    let ((uncached_ms, uncached), (cached_ms, cached)) = timed_pair(
        reps,
        || run_throughput(SystemKind::Quasaq(CostKind::Lrb), &uncached_cfg),
        || run_throughput(SystemKind::Quasaq(CostKind::Lrb), &cached_cfg),
    );
    CachedTiming {
        servers,
        videos,
        burst,
        uncached_ms,
        cached_ms,
        bit_identical: uncached == cached,
    }
}

/// One rung of the stochastic-link study: the same scaled testbed run
/// three ways — steady (fixed links), degraded (a sampled Markov capacity
/// process with the QoP ladder frozen), and adaptive (same process with
/// the congestion-driven renegotiation loop and admission brownout on) —
/// with the adaptive run checked bit-identical serial vs sharded and its
/// degradation counters recorded.
struct StochasticTiming {
    servers: u32,
    videos: usize,
    steady_ms: f64,
    degraded_ms: f64,
    adaptive_ms: f64,
    bit_identical: bool,
    degraded_violation_s: f64,
    adaptive_violation_s: f64,
    degradation: DegradationMetrics,
}

/// The Markov good/degraded/bad capacity process the stochastic rows
/// sample, dwell times scaled so several transitions land inside the
/// horizon. The bad state holds a third of the stationary distribution:
/// brownout arms when ≥25% of servers are congested at once, and at 100
/// servers the concurrently-bad fraction concentrates on its mean, so a
/// rarer bad state would never trip the fleet-wide threshold there even
/// though smaller rungs cross it on binomial noise.
fn stochastic_links(servers: u32, horizon: SimTime, seed: u64, quick: bool) -> LinkPlan {
    let dwell = if quick { [15, 10, 10] } else { [50, 30, 40] };
    LinkPlan::sample(
        seed,
        ServerId::first_n(servers),
        horizon,
        LinkModel::Markov { factors: [1.0, 0.45, 0.2], dwell: dwell.map(SimDuration::from_secs) },
    )
}

fn run_stochastic(servers: u32, videos: usize, quick: bool) -> StochasticTiming {
    // A longer quick horizon than the other studies: utilization has to
    // build up before a capacity dip congests, so 30 s would leave the
    // adaptation loop with nothing to do.
    let horizon = SimTime::from_secs(if quick { 60 } else { 120 });
    let period_us = (3_000_000 / servers as u64).max(1);
    let steady_cfg = ThroughputConfig {
        testbed: TestbedConfig::scale(servers, videos),
        horizon,
        arrival_period: Some(SimDuration::from_micros(period_us)),
        ..ThroughputConfig::fig6()
    };
    let degraded_cfg = ThroughputConfig {
        links: Some(stochastic_links(servers, horizon, steady_cfg.seed, quick)),
        ..steady_cfg.clone()
    };
    let adaptive_cfg =
        ThroughputConfig { adaptation: Some(AdaptationConfig::default()), ..degraded_cfg.clone() };
    let adaptive_sharded = ThroughputConfig { domain_workers: 4, ..adaptive_cfg.clone() };
    let _ = Testbed::shared(steady_cfg.testbed.clone());
    let reps = if servers <= 3 {
        20
    } else if servers <= 30 {
        5
    } else {
        3
    };
    let kind = SystemKind::Quasaq(CostKind::Lrb);
    let ((steady_ms, _steady), (degraded_ms, degraded)) = timed_pair(
        reps,
        || run_throughput(kind, &steady_cfg),
        || run_throughput(kind, &degraded_cfg),
    );
    let ((adaptive_ms, adaptive), (_, sharded)) = timed_pair(
        reps,
        || run_throughput(kind, &adaptive_cfg),
        || run_throughput(kind, &adaptive_sharded),
    );
    StochasticTiming {
        servers,
        videos,
        steady_ms,
        degraded_ms,
        adaptive_ms,
        bit_identical: adaptive == sharded,
        degraded_violation_s: degraded.faults.as_ref().map_or(0.0, |f| f.qos_violation_secs),
        adaptive_violation_s: adaptive.faults.as_ref().map_or(0.0, |f| f.qos_violation_secs),
        degradation: adaptive.degradation.clone().unwrap_or_default(),
    }
}

fn run_scale(
    servers: u32,
    videos: usize,
    worker_counts: &[usize],
    quick: bool,
) -> Vec<ScaleTiming> {
    let horizon = SimTime::from_secs(if quick { 30 } else { 120 });
    // Scale arrival rate with the cluster so every rung runs near the same
    // per-server load (the paper's 1 q/s targets three servers).
    let period_us = (3_000_000 / servers as u64).max(1);
    let serial_cfg = ThroughputConfig {
        testbed: quasaq_workload::TestbedConfig::scale(servers, videos),
        horizon,
        arrival_period: Some(quasaq_sim::SimDuration::from_micros(period_us)),
        ..ThroughputConfig::fig6()
    };
    // Warm the shared-testbed cache so neither side pays catalog
    // generation inside its timed region.
    let _ = Testbed::shared(serial_cfg.testbed.clone());

    // Cheap rungs get more samples — their runs are so short that a single
    // scheduler hiccup shifts the ratio by several percent.
    let reps = if servers <= 3 {
        20
    } else if servers <= 30 {
        5
    } else {
        3
    };
    // Each worker count gets its own serial measurement, interleaved with
    // its sharded one, so every row's ratio compares samples taken under
    // the same machine conditions.
    worker_counts
        .iter()
        .map(|&workers| {
            let sharded_cfg = ThroughputConfig { domain_workers: workers, ..serial_cfg.clone() };
            let ((serial_ms, serial), (sharded_ms, sharded)) = timed_pair(
                reps,
                || run_throughput(SystemKind::Quasaq(CostKind::Lrb), &serial_cfg),
                || run_throughput(SystemKind::Quasaq(CostKind::Lrb), &sharded_cfg),
            );
            ScaleTiming {
                servers,
                videos,
                workers,
                serial_ms,
                sharded_ms,
                bit_identical: serial == sharded,
            }
        })
        .collect()
}

fn run_suite(suite: &Suite) -> Timing {
    // Warm the shared-testbed cache so neither side pays library
    // generation inside its timed region.
    for (_, cfg) in &suite.scenarios {
        let _ = Testbed::shared(cfg.testbed.clone());
    }

    let t0 = Instant::now();
    let serial: Vec<ThroughputResult> =
        suite.scenarios.iter().map(|(s, c)| run_throughput(*s, c)).collect();
    let serial_ms = t0.elapsed().as_secs_f64() * 1e3;

    let t1 = Instant::now();
    let parallel = run_throughput_scenarios(&suite.scenarios);
    let parallel_ms = t1.elapsed().as_secs_f64() * 1e3;

    let robustness =
        serial.iter().filter_map(|r| r.faults.clone().map(|f| (r.label.clone(), f))).collect();
    Timing {
        name: suite.name,
        serial_ms,
        parallel_ms,
        bit_identical: serial == parallel,
        robustness,
    }
}

/// `--scenario <file>` mode: execute one TOML scenario serially and
/// sharded, assert the rendered reports are byte-identical, and print
/// rows in the harness JSON shape (one per run stage) so scenario
/// timings graft onto the `BENCH_throughput.json` schema.
fn run_scenario_mode(file: &str, shards: usize) {
    use quasaq_scenario::{run_file, ExecMode};
    let path = std::path::Path::new(file);
    let t0 = Instant::now();
    let serial = run_file(path, ExecMode::Serial).unwrap_or_else(|e| panic!("{file}: {e}"));
    let serial_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t1 = Instant::now();
    let sharded =
        run_file(path, ExecMode::Sharded(shards)).unwrap_or_else(|e| panic!("{file}: {e}"));
    let sharded_ms = t1.elapsed().as_secs_f64() * 1e3;
    let identical = serial.render() == sharded.render();
    print!("{}", serial.render());
    println!("  \"harnesses\": [");
    let rows = serial.runs.len();
    for (i, run) in serial.runs.iter().enumerate() {
        println!(
            "    {{\"name\": \"{}/{}\", \"serial_ms\": {:.3}, \"parallel_ms\": {:.3}, \
             \"speedup\": {:.3}, \"bit_identical\": {}}}{}",
            serial.name,
            run.stage,
            serial_ms,
            sharded_ms,
            serial_ms / sharded_ms.max(1e-9),
            identical,
            if i + 1 < rows { "," } else { "" }
        );
    }
    println!("  ],");
    println!("  \"fingerprint\": \"{:016x}\"", serial.fingerprint());
    assert!(identical, "{file}: sharded({shards}) report diverged from serial");
}

/// `--gallery` mode: the CI smoke gate over every committed scenario.
/// Each gallery entry runs serially and sharded(2); both renderings must
/// be byte-identical to each other and to the committed golden.
fn run_gallery_mode(shards: usize) {
    use quasaq_scenario::{run_file, ExecMode};
    let root = std::path::Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."));
    let dir = root.join("scenarios");
    let mut files: Vec<_> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", dir.display()))
        .map(|entry| entry.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "toml"))
        .collect();
    files.sort();
    assert!(files.len() >= 6, "gallery shrank below 6 scenarios: {}", files.len());
    for path in &files {
        let name = path.file_stem().unwrap().to_string_lossy().into_owned();
        let t0 = Instant::now();
        let serial = run_file(path, ExecMode::Serial).unwrap_or_else(|e| panic!("{name}: {e}"));
        let serial_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t1 = Instant::now();
        let sharded =
            run_file(path, ExecMode::Sharded(shards)).unwrap_or_else(|e| panic!("{name}: {e}"));
        let sharded_ms = t1.elapsed().as_secs_f64() * 1e3;
        let rendered = serial.render();
        assert!(
            rendered == sharded.render(),
            "{name}: sharded({shards}) report diverged from serial"
        );
        let golden = dir.join("golden").join(&name).with_extension("golden");
        let expected = std::fs::read_to_string(&golden)
            .unwrap_or_else(|e| panic!("{name}: missing golden {}: {e}", golden.display()));
        assert!(
            rendered == expected,
            "{name}: report drifted from {} — rebless via QUASAQ_BLESS=1 cargo test \
             --test scenario_gallery if intentional",
            golden.display()
        );
        println!(
            "  {name}: serial {serial_ms:>8.1} ms | sharded({shards}) {sharded_ms:>8.1} ms | \
             fp {:016x} | golden OK",
            serial.fingerprint()
        );
    }
    println!("gallery OK: {} scenarios bit-identical serial vs sharded({shards})", files.len());
}

/// One `--load` measurement row: the loopback replay at a given shell
/// thread count, striped over as many connections.
struct ServiceRow {
    threads: usize,
    queries: u64,
    admitted: u64,
    rejected: u64,
    queued: u64,
    wall_ms: f64,
    admissions_per_s: f64,
}

/// `--serve` mode: run a shell until killed, for external load drivers.
fn run_serve_mode(args: &[String]) -> ! {
    let arg =
        |name: &str| args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned();
    let addr = arg("--addr").unwrap_or_else(|| "127.0.0.1:7171".to_string());
    let threads: usize = arg("--threads").map_or(4, |v| v.parse().expect("--threads N"));
    let seed: u64 = arg("--seed").map_or(7, |v| v.parse().expect("--seed N"));
    let system = SystemKind::Quasaq(CostKind::Lrb);
    let throughput = ThroughputConfig { seed, ..ThroughputConfig::fig6() };
    let shell = quasaq_shell::Shell::serve(
        &addr,
        quasaq_shell::ShellConfig { system, throughput, threads },
    )
    .unwrap_or_else(|e| panic!("bind {addr}: {e}"));
    println!("serving {} on {} ({threads} thread(s), seed {seed})", system.label(), shell.addr());
    loop {
        std::thread::park();
    }
}

/// `--load` mode: the service-shell throughput study.
///
/// First pins the refactor's acceptance claim — a single-connection
/// loopback replay at a sub-clip horizon is decision-identical to the
/// in-process driver — then measures wall-clock admissions/sec at
/// 1/2/4 shell threads and (full mode only) splices the rows into
/// `BENCH_throughput.json` as a `"service"` section.
fn run_load_mode(quick: bool) {
    use quasaq_shell::{run_loopback, Shell, ShellConfig};
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let system = SystemKind::Quasaq(CostKind::Lrb);
    println!("load mode: service-shell throughput study ({cores} core(s))");

    // Decision-identity gate: horizon under the shortest clip (30 s), so
    // the in-process driver issues exactly one Admit per arrival — the
    // same command sequence a single-connection replay sends.
    let ident_cfg =
        ThroughputConfig { horizon: SimTime::from_secs(25), ..ThroughputConfig::fig6() };
    let shell = Shell::serve(
        "127.0.0.1:0",
        ShellConfig { system, throughput: ident_cfg.clone(), threads: 1 },
    )
    .expect("bind loopback");
    let served = run_loopback(shell.addr(), &ident_cfg, 1).expect("loopback replay");
    shell.shutdown();
    let driven = run_throughput(system, &ident_cfg);
    let identical = served.queries == driven.queries
        && served.admitted == driven.admitted
        && served.rejected == driven.rejected
        && served.access == driven.access;
    println!(
        "  decision identity vs in-process driver: {identical} \
         ({} queries, {} admitted, {} rejected)",
        served.queries, served.admitted, served.rejected
    );
    assert!(identical, "loopback decisions diverged from the in-process driver");

    let horizon = if quick { 60 } else { 300 };
    let cfg = ThroughputConfig { horizon: SimTime::from_secs(horizon), ..ThroughputConfig::fig6() };
    let mut rows = Vec::new();
    for threads in [1usize, 2, 4] {
        let shell =
            Shell::serve("127.0.0.1:0", ShellConfig { system, throughput: cfg.clone(), threads })
                .expect("bind loopback");
        let t0 = Instant::now();
        let report = run_loopback(shell.addr(), &cfg, threads).expect("loopback replay");
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        shell.shutdown();
        let admissions_per_s = report.admitted as f64 / (wall_ms / 1e3).max(1e-9);
        println!(
            "  {threads} shell thread(s) / {threads} connection(s): {} queries \
             ({} admitted, {} rejected, {} queued) in {wall_ms:.1} ms | \
             {admissions_per_s:.0} admissions/s",
            report.queries, report.admitted, report.rejected, report.queued
        );
        rows.push(ServiceRow {
            threads,
            queries: report.queries,
            admitted: report.admitted,
            rejected: report.rejected,
            queued: report.queued,
            wall_ms,
            admissions_per_s,
        });
    }

    if quick {
        println!("quick mode: skipping BENCH_throughput.json (full run owns the artifact)");
        return;
    }
    splice_service_section(&rows, identical, cores);
}

/// Replaces (or inserts) the `"service"` object in
/// `BENCH_throughput.json`, preserving the rest of the artifact so
/// `--load` composes with the main bench run in either order.
fn splice_service_section(rows: &[ServiceRow], identical: bool, cores: usize) {
    let mut section = String::from("  \"service\": {\n");
    section.push_str(&format!("    \"decision_identical\": {identical},\n"));
    section.push_str("    \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        section.push_str(&format!(
            "      {{\"shell_threads\": {}, \"connections\": {}, \"queries\": {}, \
             \"admitted\": {}, \"rejected\": {}, \"queued\": {}, \"wall_ms\": {:.3}, \
             \"admissions_per_s\": {:.1}}}{}\n",
            r.threads,
            r.threads,
            r.queries,
            r.admitted,
            r.rejected,
            r.queued,
            r.wall_ms,
            r.admissions_per_s,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    section.push_str("    ]\n  },\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_throughput.json");
    let json = match std::fs::read_to_string(path) {
        Ok(mut existing) => {
            // Drop a previous service object (fixed two-space layout).
            if let Some(start) = existing.find("  \"service\": {") {
                let tail = &existing[start..];
                let end = tail.find("\n  },\n").map(|e| start + e + "\n  },\n".len());
                if let Some(end) = end {
                    existing.replace_range(start..end, "");
                }
            }
            let anchor = existing
                .find("  \"overall_speedup\"")
                .expect("BENCH_throughput.json missing overall_speedup anchor");
            existing.insert_str(anchor, &section);
            existing
        }
        // No artifact yet: a minimal standalone one.
        Err(_) => format!(
            "{{\n  \"cores\": {cores},\n{section}  \"all_bit_identical\": {identical}\n}}\n"
        ),
    };
    std::fs::write(path, &json).expect("write BENCH_throughput.json");
    println!("wrote service section into {path}");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let smoke = args.iter().any(|a| a == "--smoke");
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let shards = args
        .iter()
        .position(|a| a == "--shards")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse::<usize>().expect("--shards takes a lane count"))
        .unwrap_or(2);
    if args.iter().any(|a| a == "--serve") {
        run_serve_mode(&args);
    }
    if args.iter().any(|a| a == "--load") {
        run_load_mode(quick);
        return;
    }
    if let Some(i) = args.iter().position(|a| a == "--scenario") {
        let file = args.get(i + 1).expect("--scenario takes a TOML file path");
        run_scenario_mode(file, shards);
        return;
    }
    if args.iter().any(|a| a == "--gallery") {
        println!("gallery mode: scenario DSL golden suite ({cores} core(s))");
        run_gallery_mode(shards);
        return;
    }

    if smoke {
        // CI determinism smoke: the 3-server quick scale case, serial vs
        // 2-lane sharded, asserting bit-identity. Seconds, not minutes.
        println!("smoke mode: 3-server scale determinism check ({cores} core(s))");
        for s in run_scale(3, 300, &[2], true) {
            println!(
                "  serial {:>9.1} ms | sharded({}) {:>9.1} ms | bit-identical: {}",
                s.serial_ms, s.workers, s.sharded_ms, s.bit_identical
            );
            assert!(s.bit_identical, "sharded scale run diverged from serial");
        }
        // Cached-admission smoke: the same quick rung with flash-crowd
        // bursts, full enumeration vs the memoized plan cache.
        let c = run_cached(3, 300, 4, true);
        println!(
            "  uncached {:>9.1} ms | cached {:>9.1} ms | bit-identical: {}",
            c.uncached_ms, c.cached_ms, c.bit_identical
        );
        assert!(c.bit_identical, "cached admission diverged from full enumeration");
        // Stochastic-link brownout smoke: crush every link to 5% mid-run.
        // The plain system must detect congestion, start shedding arrivals
        // by QoP class, and stay bit-identical serial vs sharded.
        let horizon = SimTime::from_secs(30);
        let crush = LinkPlan {
            changes: ServerId::first_n(3)
                .map(|server| LinkSpec { server, at: SimTime::from_secs(5), factor: 0.05 })
                .collect(),
        };
        let cfg = ThroughputConfig {
            testbed: TestbedConfig::scale(3, 300),
            horizon,
            arrival_period: Some(SimDuration::from_secs(1)),
            links: Some(crush),
            adaptation: Some(AdaptationConfig::default()),
            ..ThroughputConfig::fig6()
        };
        let serial = run_throughput(SystemKind::Vdbms, &cfg);
        let sharded =
            run_throughput(SystemKind::Vdbms, &ThroughputConfig { domain_workers: 2, ..cfg });
        assert!(serial == sharded, "brownout run diverged serial vs sharded");
        let dm = serial.degradation.as_ref().expect("adaptation enabled");
        println!(
            "  brownout: {} congestion event(s), {} degraded, {} rejected | bit-identical: true",
            dm.congestion_events, dm.brownout_degraded, dm.brownout_rejected
        );
        assert!(dm.congestion_events > 0, "crushed links must congest: {dm:?}");
        assert!(dm.brownout_rejected > 0, "brownout must shed arrivals: {dm:?}");
        println!("smoke OK: bit_identical: true");
        return;
    }

    println!(
        "scenario-parallel benchmark: {cores} core(s), {} worker(s) for a 3-scenario suite{}",
        worker_count(3),
        if quick { ", quick mode" } else { "" }
    );

    let mut timings = Vec::new();
    for suite in suites(quick) {
        println!(
            "running {} ({} scenarios, horizon {} s) ...",
            suite.name,
            suite.scenarios.len(),
            suite.scenarios[0].1.horizon.as_secs_f64()
        );
        let t = run_suite(&suite);
        println!(
            "  serial {:>9.1} ms | parallel {:>9.1} ms | speedup {:.2}x | bit-identical: {}",
            t.serial_ms,
            t.parallel_ms,
            t.serial_ms / t.parallel_ms.max(1e-9),
            t.bit_identical
        );
        timings.push(t);
    }

    // The within-run scaling study: same run, serial domain stepping vs a
    // persistent DomainPool, at growing cluster sizes.
    let mut scale = Vec::new();
    for (servers, videos) in scale_cases(quick) {
        println!("running scale {servers}-server / {videos}-video ...");
        for s in run_scale(servers, videos, &[2, 4], quick) {
            println!(
                "  serial {:>9.1} ms | sharded({}) {:>9.1} ms | speedup {:.2}x | bit-identical: {}",
                s.serial_ms,
                s.workers,
                s.sharded_ms,
                s.serial_ms / s.sharded_ms.max(1e-9),
                s.bit_identical
            );
            scale.push(s);
        }
    }

    // The plan-cache study: the same Zipf-skewed run with full enumeration
    // vs the memoized cache (`cached`, burst 1), plus the flash-crowd
    // bulk-admit case (`bulk`, every arrival an 8-query burst through the
    // batch prefetch).
    let mut cached = Vec::new();
    for (servers, videos) in scale_cases(quick) {
        println!("running cached {servers}-server / {videos}-video ...");
        let c = run_cached(servers, videos, 1, quick);
        println!(
            "  uncached {:>9.1} ms | cached {:>9.1} ms | speedup {:.2}x | bit-identical: {}",
            c.uncached_ms,
            c.cached_ms,
            c.uncached_ms / c.cached_ms.max(1e-9),
            c.bit_identical
        );
        cached.push(c);
    }
    let mut bulk = Vec::new();
    for (servers, videos) in scale_cases(quick) {
        println!("running bulk {servers}-server / {videos}-video (burst 8) ...");
        let c = run_cached(servers, videos, 8, quick);
        println!(
            "  uncached {:>9.1} ms | cached {:>9.1} ms | speedup {:.2}x | bit-identical: {}",
            c.uncached_ms,
            c.cached_ms,
            c.uncached_ms / c.cached_ms.max(1e-9),
            c.bit_identical
        );
        bulk.push(c);
    }

    // The stochastic-link study: steady vs degraded (ladder frozen) vs
    // adaptive (congestion renegotiation + brownout) under the same
    // sampled Markov capacity process.
    let mut stochastic = Vec::new();
    for (servers, videos) in scale_cases(quick) {
        println!("running stochastic {servers}-server / {videos}-video ...");
        let s = run_stochastic(servers, videos, quick);
        println!(
            "  steady {:>9.1} ms | degraded {:>9.1} ms | adaptive {:>9.1} ms | \
             violation {:>8.1} s -> {:>8.1} s | down {} up {} osc {} | \
             brownout {}/{} | bit-identical: {}",
            s.steady_ms,
            s.degraded_ms,
            s.adaptive_ms,
            s.degraded_violation_s,
            s.adaptive_violation_s,
            s.degradation.downshifts,
            s.degradation.upshifts,
            s.degradation.oscillations,
            s.degradation.brownout_degraded,
            s.degradation.brownout_rejected,
            s.bit_identical
        );
        stochastic.push(s);
    }

    let all_identical = timings.iter().all(|t| t.bit_identical)
        && scale.iter().all(|s| s.bit_identical)
        && cached.iter().chain(&bulk).all(|c| c.bit_identical)
        && stochastic.iter().all(|s| s.bit_identical);
    let total_serial: f64 = timings.iter().map(|t| t.serial_ms).sum();
    let total_parallel: f64 = timings.iter().map(|t| t.parallel_ms).sum();
    let overall = total_serial / total_parallel.max(1e-9);
    println!("overall speedup: {overall:.2}x | all outputs bit-identical: {all_identical}");

    if quick {
        println!("quick mode: skipping BENCH_throughput.json (full run owns the artifact)");
        assert!(all_identical, "parallel runner output diverged from serial");
        return;
    }

    // Hand-rolled JSON: no serde in the dependency closure, and the shape
    // is small and fixed.
    let mut json = String::from("{\n");
    json.push_str(&format!("  \"cores\": {cores},\n"));
    json.push_str("  \"harnesses\": [\n");
    for (i, t) in timings.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"serial_ms\": {:.3}, \"parallel_ms\": {:.3}, \
             \"speedup\": {:.3}, \"bit_identical\": {}}}{}\n",
            t.name,
            t.serial_ms,
            t.parallel_ms,
            t.serial_ms / t.parallel_ms.max(1e-9),
            t.bit_identical,
            if i + 1 < timings.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    // Robustness metrics from the fault-injected (availability) suite.
    let robustness: Vec<_> = timings.iter().flat_map(|t| t.robustness.iter()).collect();
    json.push_str("  \"robustness\": [\n");
    for (i, (label, f)) in robustness.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"label\": \"{}\", \"interrupted\": {}, \"failed_over\": {}, \
             \"failover_degraded\": {}, \"requeued\": {}, \"recovered\": {}, \
             \"dropped\": {}, \"mean_recovery_s\": {:.3}, \"qos_violation_s\": {:.3}}}{}\n",
            label,
            f.interrupted,
            f.failed_over,
            f.failover_degraded,
            f.requeued,
            f.recovered,
            f.dropped,
            f.recovery.mean(),
            f.qos_violation_secs,
            if i + 1 < robustness.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    // The within-run domain-sharding scaling section.
    json.push_str("  \"scale\": [\n");
    for (i, s) in scale.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"servers\": {}, \"videos\": {}, \"domain_workers\": {}, \
             \"serial_ms\": {:.3}, \"sharded_ms\": {:.3}, \"speedup\": {:.3}, \
             \"bit_identical\": {}}}{}\n",
            s.servers,
            s.videos,
            s.workers,
            s.serial_ms,
            s.sharded_ms,
            s.serial_ms / s.sharded_ms.max(1e-9),
            s.bit_identical,
            if i + 1 < scale.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    // The plan-cache (`cached`) and flash-crowd bulk-admit (`bulk`) rows.
    for (section, rows) in [("cached", &cached), ("bulk", &bulk)] {
        json.push_str(&format!("  \"{section}\": [\n"));
        for (i, c) in rows.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"servers\": {}, \"videos\": {}, \"burst\": {}, \
                 \"uncached_ms\": {:.3}, \"cached_ms\": {:.3}, \"speedup\": {:.3}, \
                 \"bit_identical\": {}}}{}\n",
                c.servers,
                c.videos,
                c.burst,
                c.uncached_ms,
                c.cached_ms,
                c.uncached_ms / c.cached_ms.max(1e-9),
                c.bit_identical,
                if i + 1 < rows.len() { "," } else { "" }
            ));
        }
        json.push_str("  ],\n");
    }
    // The stochastic-link degradation rows: per cluster size, the cost of
    // the capacity process and the adaptation loop's effect on QoS
    // violation exposure, plus its counters.
    json.push_str("  \"stochastic\": [\n");
    for (i, s) in stochastic.iter().enumerate() {
        let d = &s.degradation;
        json.push_str(&format!(
            "    {{\"servers\": {}, \"videos\": {}, \"steady_ms\": {:.3}, \
             \"degraded_ms\": {:.3}, \"adaptive_ms\": {:.3}, \
             \"degraded_violation_s\": {:.3}, \"adaptive_violation_s\": {:.3}, \
             \"downshifts\": {}, \"upshifts\": {}, \"oscillations\": {}, \
             \"violation_s_avoided\": {:.3}, \"brownout_degraded\": {}, \
             \"brownout_rejected\": {}, \"bit_identical\": {}}}{}\n",
            s.servers,
            s.videos,
            s.steady_ms,
            s.degraded_ms,
            s.adaptive_ms,
            s.degraded_violation_s,
            s.adaptive_violation_s,
            d.downshifts,
            d.upshifts,
            d.oscillations,
            d.violation_secs_avoided,
            d.brownout_degraded,
            d.brownout_rejected,
            s.bit_identical,
            if i + 1 < stochastic.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!("  \"overall_speedup\": {overall:.3},\n"));
    json.push_str(&format!("  \"all_bit_identical\": {all_identical}\n"));
    json.push_str("}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_throughput.json");
    std::fs::write(path, &json).expect("write BENCH_throughput.json");
    println!("wrote {path}");

    assert!(all_identical, "parallel runner output diverged from serial");
}
