//! # quasaq-bench — experiment harnesses
//!
//! Shared infrastructure for the bench targets that regenerate every
//! table and figure of the paper's evaluation:
//!
//! | Target | Paper result |
//! |---|---|
//! | `fig5_interframe` | Fig 5 (a–d): inter-frame delay traces |
//! | `table2_delays` | Table 2: inter-frame / inter-GOP delay statistics |
//! | `fig6_throughput` | Fig 6 (a, b): throughput of the three systems |
//! | `fig7_costmodel` | Fig 7 (a, b): LRB vs Random cost model |
//! | `overhead` | §5.2 "Overhead of QuaSAQ" micro-measurements |
//!
//! Each bench prints the same rows/series the paper reports, with the
//! paper's own numbers alongside for comparison. Absolute values come
//! from the simulated testbed; the comparison targets are the *shapes*:
//! who wins, by what factor, and where variance explodes.

/// Reference numbers transcribed from the paper, printed next to measured
/// values.
pub mod paper {
    /// Table 2, "VDBMS, Low Contention": inter-frame (mean, sd), inter-GOP
    /// (mean, sd), in milliseconds.
    pub const T2_VDBMS_LOW: (f64, f64, f64, f64) = (42.07, 34.12, 622.82, 64.51);
    /// Table 2, "VDBMS, High Contention".
    pub const T2_VDBMS_HIGH: (f64, f64, f64, f64) = (48.84, 164.99, 722.83, 246.85);
    /// Table 2, "QuaSAQ, Low Contention".
    pub const T2_QUASAQ_LOW: (f64, f64, f64, f64) = (42.16, 30.89, 624.84, 10.13);
    /// Table 2, "QuaSAQ, High Contention".
    pub const T2_QUASAQ_HIGH: (f64, f64, f64, f64) = (42.25, 30.29, 626.18, 8.68);
    /// "The theoretical inter-frame delay for the sample video is
    /// 1/23.97 = 41.72 ms."
    pub const THEORETICAL_INTERFRAME_MS: f64 = 41.72;
    /// Fig 6: "QuaSAQ beats the 'VDBMS + QoS API' system by about 75% on
    /// the stable stage in system throughput."
    pub const FIG6_QUASAQ_VS_QOSAPI: f64 = 1.75;
    /// Fig 7: "The number of sessions supported is 27% to 89% higher than
    /// that of the system with the randomized method."
    pub const FIG7_LRB_VS_RANDOM: (f64, f64) = (1.27, 1.89);
    /// §5.2: DSRT overhead measured at 1.6 % on the paper's hardware.
    pub const DSRT_OVERHEAD: f64 = 0.016;
}

/// Plain-text table printer for harness output.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Appends a row (must match the header arity).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for i in 0..ncols {
                line.push_str(&format!(" {:<w$} |", cells[i], w = widths[i]));
            }
            line
        };
        let sep = {
            let mut line = String::from("+");
            for w in &widths {
                line.push_str(&"-".repeat(w + 2));
                line.push('+');
            }
            line
        };
        out.push_str(&sep);
        out.push('\n');
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out.push_str(&sep);
        out
    }
}

/// An ASCII sparkline of a series for quick visual shape checks.
pub fn sparkline(values: &[f64], width: usize) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() || width == 0 {
        return String::new();
    }
    let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(1e-12);
    // Downsample to `width` buckets by mean.
    let mut out = String::new();
    let chunk = (values.len() as f64 / width as f64).max(1.0);
    let mut i = 0.0;
    while (i as usize) < values.len() && out.chars().count() < width {
        let start = i as usize;
        let end = ((i + chunk) as usize).min(values.len()).max(start + 1);
        let mean: f64 = values[start..end].iter().sum::<f64>() / (end - start) as f64;
        let level = (((mean - lo) / span) * 7.0).round() as usize;
        out.push(BARS[level.min(7)]);
        i += chunk;
    }
    out
}

/// Formats a measured-vs-paper pair.
pub fn vs(measured: f64, paper: f64) -> String {
    format!("{measured:>8.2} (paper {paper:.2})")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["a".into(), "1".into()]);
        t.row(&["longer".into(), "22".into()]);
        let s = t.render();
        assert!(s.contains("| name   | value |"));
        assert!(s.contains("| longer | 22    |"));
        assert_eq!(s.lines().filter(|l| l.starts_with('+')).count(), 3);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn row_arity_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn sparkline_shapes() {
        let rising: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let s = sparkline(&rising, 10);
        assert_eq!(s.chars().count(), 10);
        let chars: Vec<char> = s.chars().collect();
        assert!(chars[0] < chars[9]);
        assert_eq!(sparkline(&[], 10), "");
        // Constant series does not panic.
        let flat = sparkline(&[5.0; 20], 5);
        assert_eq!(flat.chars().count(), 5);
    }

    #[test]
    fn vs_format() {
        assert!(vs(42.07, 41.72).contains("paper 41.72"));
    }
}
