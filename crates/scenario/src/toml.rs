//! In-tree TOML subset: parser and canonical serializer.
//!
//! The build container has no crates.io access (see the `proptest` and
//! `criterion` shims), so the scenario DSL carries its own TOML
//! implementation. The subset is the part of TOML 1.0 the scenario schema
//! uses:
//!
//! * key/value pairs with bare (`[A-Za-z0-9_-]+`) or basic-quoted keys,
//! * basic strings with `\" \\ \n \r \t \uXXXX` escapes,
//! * integers (i64, `_` separators), floats (`.` / exponent forms),
//!   booleans,
//! * arrays (multi-line allowed) and inline tables (`{k = v, ...}`),
//! * table headers `[a.b]` and arrays of tables `[[a.b]]`,
//! * `#` comments.
//!
//! Out of scope (rejected with an error rather than misparsed): literal
//! `'...'` strings, multi-line `"""` strings, dotted keys on the left of
//! `=`, dates/times.
//!
//! Tables are [`BTreeMap`]s, so a parsed document is *key-order
//! normalized*: reordering declarations in the source cannot change the
//! parsed value, which is what makes the DAG resolver's topological order
//! reproducible across cosmetic edits (see `dag`). [`to_string`] emits a
//! canonical rendering whose reparse is structurally identical
//! (`parse(to_string(parse(s))) == parse(s)` — the round-trip property
//! pinned in `tests/proptests.rs`).

use std::collections::BTreeMap;
use std::fmt;

/// A TOML value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Str(String),
    Int(i64),
    Float(f64),
    Bool(bool),
    Array(Vec<Value>),
    Table(Table),
}

/// A TOML table, key-order normalized.
pub type Table = BTreeMap<String, Value>;

impl Value {
    /// The value's type name, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Str(_) => "string",
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Bool(_) => "boolean",
            Value::Array(_) => "array",
            Value::Table(_) => "table",
        }
    }
}

/// A parse failure with its 1-based source line.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    pub line: usize,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TOML parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> Cursor<'a> {
    fn new(text: &'a str) -> Self {
        Cursor { bytes: text.as_bytes(), pos: 0, line: 1 }
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError { line: self.line, message: message.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }

    /// Skips spaces and tabs (not newlines).
    fn skip_inline_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t')) {
            self.pos += 1;
        }
    }

    /// Skips whitespace, newlines, and comments.
    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(b' ' | b'\t' | b'\r') => {
                    self.pos += 1;
                }
                Some(b'\n') => {
                    self.bump();
                }
                Some(b'#') => {
                    while !matches!(self.peek(), None | Some(b'\n')) {
                        self.pos += 1;
                    }
                }
                _ => return,
            }
        }
    }

    /// Consumes to end of line, allowing only trailing whitespace/comment.
    fn expect_eol(&mut self) -> Result<(), ParseError> {
        self.skip_inline_ws();
        match self.peek() {
            None | Some(b'\n') => Ok(()),
            Some(b'#') => {
                while !matches!(self.peek(), None | Some(b'\n')) {
                    self.pos += 1;
                }
                Ok(())
            }
            Some(b'\r') => {
                self.pos += 1;
                self.expect_eol()
            }
            Some(c) => Err(self.err(format!("expected end of line, found {:?}", c as char))),
        }
    }
}

fn is_bare_key_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b == b'-'
}

fn parse_key(c: &mut Cursor) -> Result<String, ParseError> {
    match c.peek() {
        Some(b'"') => parse_basic_string(c),
        Some(b) if is_bare_key_byte(b) => {
            let start = c.pos;
            while c.peek().is_some_and(is_bare_key_byte) {
                c.pos += 1;
            }
            Ok(String::from_utf8_lossy(&c.bytes[start..c.pos]).into_owned())
        }
        Some(b'\'') => Err(c.err("literal-quoted keys are not supported; use \"...\"")),
        other => Err(c.err(format!("expected a key, found {other:?}"))),
    }
}

/// A dotted key path, e.g. `stage."flash crowd".links`.
fn parse_key_path(c: &mut Cursor) -> Result<Vec<String>, ParseError> {
    let mut path = vec![parse_key(c)?];
    loop {
        c.skip_inline_ws();
        if c.peek() == Some(b'.') {
            c.pos += 1;
            c.skip_inline_ws();
            path.push(parse_key(c)?);
        } else {
            return Ok(path);
        }
    }
}

fn parse_basic_string(c: &mut Cursor) -> Result<String, ParseError> {
    debug_assert_eq!(c.peek(), Some(b'"'));
    c.pos += 1;
    let mut out = String::new();
    loop {
        match c.bump() {
            None => return Err(c.err("unterminated string")),
            Some(b'"') => return Ok(out),
            Some(b'\n') => return Err(c.err("newline inside basic string (escape it as \\n)")),
            Some(b'\\') => match c.bump() {
                Some(b'n') => out.push('\n'),
                Some(b'r') => out.push('\r'),
                Some(b't') => out.push('\t'),
                Some(b'"') => out.push('"'),
                Some(b'\\') => out.push('\\'),
                Some(b'u') => {
                    let mut code = 0u32;
                    for _ in 0..4 {
                        let d = c
                            .bump()
                            .and_then(|b| (b as char).to_digit(16))
                            .ok_or_else(|| c.err("\\u expects four hex digits"))?;
                        code = code * 16 + d;
                    }
                    out.push(
                        char::from_u32(code)
                            .ok_or_else(|| c.err(format!("invalid \\u escape {code:#x}")))?,
                    );
                }
                other => return Err(c.err(format!("unsupported escape \\{other:?}"))),
            },
            Some(b) if b < 0x80 => out.push(b as char),
            Some(b) => {
                // Re-assemble a multi-byte UTF-8 scalar (the input was a
                // &str, so the bytes are valid UTF-8 by construction).
                let len = match b {
                    0xC0..=0xDF => 2,
                    0xE0..=0xEF => 3,
                    _ => 4,
                };
                let start = c.pos - 1;
                for _ in 1..len {
                    c.bump();
                }
                out.push_str(std::str::from_utf8(&c.bytes[start..c.pos]).expect("valid UTF-8"));
            }
        }
    }
}

fn parse_number(c: &mut Cursor) -> Result<Value, ParseError> {
    let start = c.pos;
    while c
        .peek()
        .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'+' | b'-' | b'.' | b'e' | b'E' | b'_'))
    {
        c.pos += 1;
    }
    let raw = std::str::from_utf8(&c.bytes[start..c.pos]).expect("ascii");
    let cleaned: String = raw.chars().filter(|&ch| ch != '_').collect();
    if cleaned.contains(['.', 'e', 'E']) {
        cleaned
            .parse::<f64>()
            .map(Value::Float)
            .map_err(|_| c.err(format!("invalid float {raw:?}")))
    } else {
        cleaned
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|_| c.err(format!("invalid integer {raw:?}")))
    }
}

fn parse_value(c: &mut Cursor) -> Result<Value, ParseError> {
    match c.peek() {
        Some(b'"') => parse_basic_string(c).map(Value::Str),
        Some(b'\'') => Err(c.err("literal strings are not supported; use \"...\"")),
        Some(b'[') => {
            c.pos += 1;
            let mut items = Vec::new();
            loop {
                c.skip_trivia();
                if c.peek() == Some(b']') {
                    c.pos += 1;
                    return Ok(Value::Array(items));
                }
                items.push(parse_value(c)?);
                c.skip_trivia();
                match c.peek() {
                    Some(b',') => {
                        c.pos += 1;
                    }
                    Some(b']') => {}
                    other => return Err(c.err(format!("expected ',' or ']', found {other:?}"))),
                }
            }
        }
        Some(b'{') => {
            c.pos += 1;
            let mut table = Table::new();
            loop {
                c.skip_trivia();
                if c.peek() == Some(b'}') {
                    c.pos += 1;
                    return Ok(Value::Table(table));
                }
                let key = parse_key(c)?;
                c.skip_inline_ws();
                if c.bump() != Some(b'=') {
                    return Err(c.err("expected '=' in inline table"));
                }
                c.skip_inline_ws();
                let value = parse_value(c)?;
                if table.insert(key.clone(), value).is_some() {
                    return Err(c.err(format!("duplicate key {key:?} in inline table")));
                }
                c.skip_trivia();
                match c.peek() {
                    Some(b',') => {
                        c.pos += 1;
                    }
                    Some(b'}') => {}
                    other => return Err(c.err(format!("expected ',' or '}}', found {other:?}"))),
                }
            }
        }
        Some(b't' | b'f') => {
            let start = c.pos;
            while c.peek().is_some_and(|b| b.is_ascii_alphabetic()) {
                c.pos += 1;
            }
            match &c.bytes[start..c.pos] {
                b"true" => Ok(Value::Bool(true)),
                b"false" => Ok(Value::Bool(false)),
                other => {
                    Err(c.err(format!("unknown literal {:?}", String::from_utf8_lossy(other))))
                }
            }
        }
        Some(b) if b.is_ascii_digit() || b == b'+' || b == b'-' => parse_number(c),
        other => Err(c.err(format!("expected a value, found {other:?}"))),
    }
}

/// Walks/creates the table at `path`, where intermediate array-of-table
/// nodes resolve to their *last* element (TOML's `[a.b]` after `[[a]]`).
fn descend<'t>(
    root: &'t mut Table,
    path: &[String],
    line: usize,
) -> Result<&'t mut Table, ParseError> {
    let mut cur = root;
    for key in path {
        let entry = cur.entry(key.clone()).or_insert_with(|| Value::Table(Table::new()));
        cur = match entry {
            Value::Table(t) => t,
            Value::Array(items) => match items.last_mut() {
                Some(Value::Table(t)) => t,
                _ => {
                    return Err(ParseError {
                        line,
                        message: format!("key {key:?} is not a table of tables"),
                    })
                }
            },
            other => {
                return Err(ParseError {
                    line,
                    message: format!("key {key:?} is a {}, not a table", other.type_name()),
                })
            }
        };
    }
    Ok(cur)
}

/// Parses a TOML document into its root table.
pub fn parse(text: &str) -> Result<Table, ParseError> {
    let mut c = Cursor::new(text);
    let mut root = Table::new();
    // Path of the currently open `[header]` (empty at the root).
    let mut open: Vec<String> = Vec::new();
    loop {
        c.skip_trivia();
        let Some(b) = c.peek() else { return Ok(root) };
        if b == b'[' {
            c.pos += 1;
            let array_of_tables = c.peek() == Some(b'[');
            if array_of_tables {
                c.pos += 1;
            }
            c.skip_inline_ws();
            let path = parse_key_path(&mut c)?;
            c.skip_inline_ws();
            if c.bump() != Some(b']') {
                return Err(c.err("expected ']' closing the table header"));
            }
            if array_of_tables && c.bump() != Some(b']') {
                return Err(c.err("expected ']]' closing the array-of-tables header"));
            }
            c.expect_eol()?;
            if array_of_tables {
                let (last, parents) = path.split_last().expect("non-empty path");
                let parent = descend(&mut root, parents, c.line)?;
                let entry = parent.entry(last.clone()).or_insert_with(|| Value::Array(Vec::new()));
                match entry {
                    Value::Array(items) => items.push(Value::Table(Table::new())),
                    other => {
                        return Err(c.err(format!(
                            "key {last:?} is a {}, not an array of tables",
                            other.type_name()
                        )))
                    }
                }
            } else {
                // Materialize the table (it may stay empty).
                descend(&mut root, &path, c.line)?;
            }
            open = path;
        } else {
            let key = parse_key(&mut c)?;
            c.skip_inline_ws();
            if c.peek() == Some(b'.') {
                return Err(c.err("dotted keys are not supported; use a [table] header"));
            }
            if c.bump() != Some(b'=') {
                return Err(c.err(format!("expected '=' after key {key:?}")));
            }
            c.skip_inline_ws();
            let value = parse_value(&mut c)?;
            c.expect_eol()?;
            let table = descend(&mut root, &open, c.line)?;
            if table.insert(key.clone(), value).is_some() {
                return Err(c.err(format!("duplicate key {key:?}")));
            }
        }
    }
}

fn key_needs_quotes(key: &str) -> bool {
    key.is_empty() || !key.bytes().all(is_bare_key_byte)
}

fn write_key(out: &mut String, key: &str) {
    if key_needs_quotes(key) {
        write_string(out, key);
    } else {
        out.push_str(key);
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04X}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_inline(out: &mut String, value: &Value) {
    match value {
        Value::Str(s) => write_string(out, s),
        Value::Int(i) => out.push_str(&i.to_string()),
        // `{:?}` is the shortest representation that reparses to the same
        // bits, which is what keeps the round-trip property exact.
        Value::Float(f) => out.push_str(&format!("{f:?}")),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_inline(out, item);
            }
            out.push(']');
        }
        Value::Table(t) => {
            out.push('{');
            for (i, (k, v)) in t.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_key(out, k);
                out.push_str(" = ");
                write_inline(out, v);
            }
            out.push('}');
        }
    }
}

fn write_table(out: &mut String, path: &mut Vec<String>, table: &Table) {
    // Scalars and arrays first, then sub-tables as headers — the canonical
    // layout every serialization emits regardless of input formatting.
    for (key, value) in table {
        if !matches!(value, Value::Table(_)) {
            write_key(out, key);
            out.push_str(" = ");
            write_inline(out, value);
            out.push('\n');
        }
    }
    for (key, value) in table {
        if let Value::Table(sub) = value {
            path.push(key.clone());
            out.push('\n');
            out.push('[');
            for (i, seg) in path.iter().enumerate() {
                if i > 0 {
                    out.push('.');
                }
                write_key(out, seg);
            }
            out.push_str("]\n");
            write_table(out, path, sub);
            path.pop();
        }
    }
}

/// Serializes a table canonically: keys sorted (the map is a `BTreeMap`),
/// scalars before sub-table headers, arrays inline (tables inside arrays
/// as inline tables).
pub fn to_string(table: &Table) -> String {
    let mut out = String::new();
    let mut path = Vec::new();
    write_table(&mut out, &mut path, table);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(pairs: &[(&str, Value)]) -> Table {
        pairs.iter().map(|(k, v)| (k.to_string(), v.clone())).collect()
    }

    #[test]
    fn parses_scalars_tables_and_arrays() {
        let doc = parse(
            "title = \"hi \\\"there\\\"\"\n\
             n = 42\nneg = -7\nbig = 1_000\nf = 2.5\nexp = 1e3\nok = true\n\
             xs = [1, 2, 3]\nmixed = [1, \"two\", [3.0]]\n\
             [a.b]\ninner = false\n",
        )
        .unwrap();
        assert_eq!(doc["title"], Value::Str("hi \"there\"".into()));
        assert_eq!(doc["n"], Value::Int(42));
        assert_eq!(doc["neg"], Value::Int(-7));
        assert_eq!(doc["big"], Value::Int(1000));
        assert_eq!(doc["f"], Value::Float(2.5));
        assert_eq!(doc["exp"], Value::Float(1000.0));
        assert_eq!(doc["ok"], Value::Bool(true));
        assert_eq!(doc["xs"], Value::Array(vec![Value::Int(1), Value::Int(2), Value::Int(3)]));
        let Value::Table(a) = &doc["a"] else { panic!("a is a table") };
        let Value::Table(b) = &a["b"] else { panic!("a.b is a table") };
        assert_eq!(b["inner"], Value::Bool(false));
    }

    #[test]
    fn parses_inline_tables_and_arrays_of_tables() {
        let doc = parse(
            "w = {server = 0, at_s = 40, kind = \"crash\"}\n\
             [[win]]\nx = 1\n[[win]]\nx = 2\n[win.sub]\ny = 3\n",
        )
        .unwrap();
        let Value::Table(w) = &doc["w"] else { panic!() };
        assert_eq!(w["server"], Value::Int(0));
        let Value::Array(wins) = &doc["win"] else { panic!() };
        assert_eq!(wins.len(), 2);
        let Value::Table(second) = &wins[1] else { panic!() };
        assert_eq!(second["x"], Value::Int(2));
        let Value::Table(sub) = &second["sub"] else { panic!("header attaches to last") };
        assert_eq!(sub["y"], Value::Int(3));
    }

    #[test]
    fn comments_and_multiline_arrays() {
        let doc = parse("# leading comment\nxs = [\n  1, # one\n  2,\n]\n# trailing\n").unwrap();
        assert_eq!(doc["xs"], Value::Array(vec![Value::Int(1), Value::Int(2)]));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse("ok = true\nbad = ???\n").unwrap_err();
        assert_eq!(err.line, 2);
        let err = parse("a = 1\na = 2\n").unwrap_err();
        assert!(err.message.contains("duplicate"), "{err}");
        let err = parse("a.b = 1\n").unwrap_err();
        assert!(err.message.contains("dotted"), "{err}");
        let err = parse("s = 'literal'\n").unwrap_err();
        assert!(err.message.contains("literal"), "{err}");
    }

    #[test]
    fn serializer_round_trips_structurally() {
        let table = t(&[
            ("zeta", Value::Float(0.1)),
            ("name", Value::Str("a \"b\"\nc".into())),
            (
                "arr",
                Value::Array(vec![Value::Int(-3), Value::Table(t(&[("k", Value::Bool(true))]))]),
            ),
            (
                "nested",
                Value::Table(t(&[
                    ("empty", Value::Table(Table::new())),
                    ("weird key!", Value::Int(1)),
                ])),
            ),
        ]);
        let text = to_string(&table);
        let reparsed = parse(&text).unwrap_or_else(|e| panic!("reparse failed: {e}\n{text}"));
        assert_eq!(reparsed, table, "canonical text:\n{text}");
        // Serializing the reparse is a fixed point.
        assert_eq!(to_string(&reparsed), text);
    }

    #[test]
    fn reordered_declarations_parse_identically() {
        let a = parse("x = 1\ny = 2\n[s]\nk = 3\n").unwrap();
        let b = parse("[s]\nk = 3\n").unwrap();
        // Re-open the root? Not allowed mid-file in our subset; instead
        // compare key-reordered flat docs.
        let c = parse("y = 2\nx = 1\n[s]\nk = 3\n").unwrap();
        assert_eq!(a, c);
        assert_ne!(a, b);
    }
}
