//! The scenario document schema: typed extraction from parsed TOML with
//! path-tagged validation errors.
//!
//! A scenario file has one `[scenario]` header (name, seed, horizon) and
//! any number of `[stage.<name>]` tables, each with a `kind`, an optional
//! `needs` list, and kind-specific keys. The schema layer checks document
//! *shape* — every key spelled here is either consumed or rejected with
//! its full path (`stage.load.qop_mix`), so a typo fails the parse instead
//! of silently running a default experiment. Value semantics (ranges,
//! cross-stage consistency) are checked at application time in `exec`.

use crate::dag::DagError;
use crate::toml::{self, ParseError, Table, Value};
use std::collections::BTreeMap;
use std::fmt;

/// Any failure between TOML text and an executed scenario.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// Malformed TOML.
    Parse(ParseError),
    /// Well-formed TOML that violates the scenario schema; `path` is the
    /// dotted location of the offending key or table.
    Schema { path: String, message: String },
    /// The stage graph failed to resolve.
    Dag(DagError),
    /// The scenario file could not be read.
    Io { path: String, message: String },
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Parse(e) => write!(f, "{e}"),
            ScenarioError::Schema { path, message } => {
                write!(f, "scenario schema error at `{path}`: {message}")
            }
            ScenarioError::Dag(e) => write!(f, "scenario stage graph error: {e}"),
            ScenarioError::Io { path, message } => {
                write!(f, "cannot read scenario {path:?}: {message}")
            }
        }
    }
}

impl std::error::Error for ScenarioError {}

impl From<ParseError> for ScenarioError {
    fn from(e: ParseError) -> Self {
        ScenarioError::Parse(e)
    }
}

impl From<DagError> for ScenarioError {
    fn from(e: DagError) -> Self {
        ScenarioError::Dag(e)
    }
}

fn schema_err(path: impl Into<String>, message: impl Into<String>) -> ScenarioError {
    ScenarioError::Schema { path: path.into(), message: message.into() }
}

/// A typed window onto one table, carrying its dotted path for errors.
#[derive(Clone, Copy)]
pub struct View<'a> {
    pub table: &'a Table,
    pub path: &'a str,
}

impl<'a> View<'a> {
    pub fn new(table: &'a Table, path: &'a str) -> Self {
        View { table, path }
    }

    fn key_path(&self, key: &str) -> String {
        if self.path.is_empty() {
            key.to_string()
        } else {
            format!("{}.{key}", self.path)
        }
    }

    fn wrong_type(&self, key: &str, want: &str, got: &Value) -> ScenarioError {
        schema_err(self.key_path(key), format!("expected {want}, found {}", got.type_name()))
    }

    pub fn has(&self, key: &str) -> bool {
        self.table.contains_key(key)
    }

    /// Rejects any key outside `allowed` — the DSL's typo guard.
    pub fn deny_unknown(&self, allowed: &[&str]) -> Result<(), ScenarioError> {
        for key in self.table.keys() {
            if !allowed.contains(&key.as_str()) {
                return Err(schema_err(
                    self.key_path(key),
                    format!("unknown key (expected one of: {})", allowed.join(", ")),
                ));
            }
        }
        Ok(())
    }

    pub fn opt_str(&self, key: &str) -> Result<Option<&'a str>, ScenarioError> {
        match self.table.get(key) {
            None => Ok(None),
            Some(Value::Str(s)) => Ok(Some(s)),
            Some(v) => Err(self.wrong_type(key, "a string", v)),
        }
    }

    pub fn req_str(&self, key: &str) -> Result<&'a str, ScenarioError> {
        self.opt_str(key)?.ok_or_else(|| schema_err(self.key_path(key), "missing required key"))
    }

    pub fn opt_bool(&self, key: &str) -> Result<Option<bool>, ScenarioError> {
        match self.table.get(key) {
            None => Ok(None),
            Some(Value::Bool(b)) => Ok(Some(*b)),
            Some(v) => Err(self.wrong_type(key, "a boolean", v)),
        }
    }

    /// Integer-valued key; floats are rejected (no silent truncation).
    pub fn opt_u64(&self, key: &str) -> Result<Option<u64>, ScenarioError> {
        match self.table.get(key) {
            None => Ok(None),
            Some(Value::Int(i)) if *i >= 0 => Ok(Some(*i as u64)),
            Some(Value::Int(i)) => {
                Err(schema_err(self.key_path(key), format!("must be non-negative, found {i}")))
            }
            Some(v) => Err(self.wrong_type(key, "a non-negative integer", v)),
        }
    }

    pub fn opt_usize(&self, key: &str) -> Result<Option<usize>, ScenarioError> {
        Ok(self.opt_u64(key)?.map(|v| v as usize))
    }

    /// Numeric key: integers coerce to floats (so `horizon_s = 45` works).
    pub fn opt_f64(&self, key: &str) -> Result<Option<f64>, ScenarioError> {
        match self.table.get(key) {
            None => Ok(None),
            Some(Value::Float(f)) => Ok(Some(*f)),
            Some(Value::Int(i)) => Ok(Some(*i as f64)),
            Some(v) => Err(self.wrong_type(key, "a number", v)),
        }
    }

    pub fn req_f64(&self, key: &str) -> Result<f64, ScenarioError> {
        self.opt_f64(key)?.ok_or_else(|| schema_err(self.key_path(key), "missing required key"))
    }

    /// A positive number of seconds.
    pub fn opt_secs(&self, key: &str) -> Result<Option<f64>, ScenarioError> {
        match self.opt_f64(key)? {
            None => Ok(None),
            Some(s) if s > 0.0 && s.is_finite() => Ok(Some(s)),
            Some(s) => {
                Err(schema_err(self.key_path(key), format!("must be positive seconds, found {s}")))
            }
        }
    }

    pub fn opt_str_array(&self, key: &str) -> Result<Option<Vec<&'a str>>, ScenarioError> {
        match self.table.get(key) {
            None => Ok(None),
            Some(Value::Array(items)) => items
                .iter()
                .map(|v| match v {
                    Value::Str(s) => Ok(s.as_str()),
                    other => Err(self.wrong_type(key, "an array of strings", other)),
                })
                .collect::<Result<Vec<_>, _>>()
                .map(Some),
            Some(v) => Err(self.wrong_type(key, "an array of strings", v)),
        }
    }

    pub fn opt_f64_array(&self, key: &str) -> Result<Option<Vec<f64>>, ScenarioError> {
        match self.table.get(key) {
            None => Ok(None),
            Some(Value::Array(items)) => items
                .iter()
                .map(|v| match v {
                    Value::Float(f) => Ok(*f),
                    Value::Int(i) => Ok(*i as f64),
                    other => Err(self.wrong_type(key, "an array of numbers", other)),
                })
                .collect::<Result<Vec<_>, _>>()
                .map(Some),
            Some(v) => Err(self.wrong_type(key, "an array of numbers", v)),
        }
    }

    /// An array of tables (inline or `[[...]]`), each returned as a view
    /// path like `stage.crash.windows[1]`.
    pub fn opt_table_array(
        &self,
        key: &str,
    ) -> Result<Option<Vec<(&'a Table, String)>>, ScenarioError> {
        match self.table.get(key) {
            None => Ok(None),
            Some(Value::Array(items)) => items
                .iter()
                .enumerate()
                .map(|(i, v)| match v {
                    Value::Table(t) => Ok((t, format!("{}[{i}]", self.key_path(key)))),
                    other => Err(self.wrong_type(key, "an array of tables", other)),
                })
                .collect::<Result<Vec<_>, _>>()
                .map(Some),
            Some(v) => Err(self.wrong_type(key, "an array of tables", v)),
        }
    }

    pub fn opt_table(&self, key: &str) -> Result<Option<(&'a Table, String)>, ScenarioError> {
        match self.table.get(key) {
            None => Ok(None),
            Some(Value::Table(t)) => Ok(Some((t, self.key_path(key)))),
            Some(v) => Err(self.wrong_type(key, "a table", v)),
        }
    }
}

/// What a stage contributes to the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageKind {
    /// Deployment shape: servers, catalog, placement, capacities.
    Topology,
    /// Traffic and driver knobs: horizon, arrivals, bursts, QoP mix,
    /// admission front end, plan cache, domain sharding.
    Workload,
    /// An outage schedule (`sim::fault`).
    Faults,
    /// A link-capacity process (`sim::linkdyn`).
    Links,
    /// The congestion-adaptation loop and brownout policy.
    Adaptation,
    /// Executes systems × the composed configuration on the
    /// scenario-parallel runner.
    Run,
    /// A metric sink over finished run stages.
    Sink,
}

impl StageKind {
    pub fn parse(s: &str, path: &str) -> Result<Self, ScenarioError> {
        Ok(match s {
            "topology" => StageKind::Topology,
            "workload" => StageKind::Workload,
            "faults" => StageKind::Faults,
            "links" => StageKind::Links,
            "adaptation" => StageKind::Adaptation,
            "run" => StageKind::Run,
            "sink" => StageKind::Sink,
            other => {
                return Err(schema_err(
                    path,
                    format!(
                        "unknown stage kind {other:?} (expected topology, workload, faults, \
                         links, adaptation, run, or sink)"
                    ),
                ))
            }
        })
    }

    pub fn label(self) -> &'static str {
        match self {
            StageKind::Topology => "topology",
            StageKind::Workload => "workload",
            StageKind::Faults => "faults",
            StageKind::Links => "links",
            StageKind::Adaptation => "adaptation",
            StageKind::Run => "run",
            StageKind::Sink => "sink",
        }
    }

    /// The keys this kind's body may carry (besides `kind` / `needs`).
    fn allowed_keys(self) -> &'static [&'static str] {
        match self {
            StageKind::Topology => &[
                "kind",
                "needs",
                "servers",
                "videos",
                "seed",
                "link_capacity_bps",
                "disk_bps",
                "memory_bytes",
                "placement",
                "copies",
                "min_video_s",
                "max_video_s",
                "min_replicas",
                "max_replicas",
            ],
            StageKind::Workload | StageKind::Run => &[
                "kind",
                "needs",
                "systems", // run only; workload application ignores it
                "horizon_s",
                "sample_step_s",
                "seed",
                "arrival_period_s",
                "burst",
                "video_skew",
                "qop_mix",
                "local_plans_only",
                "plan_cache",
                "domain_workers",
                "admission",
            ],
            StageKind::Faults => &["kind", "needs", "windows", "model", "seed"],
            StageKind::Links => &["kind", "needs", "setpoints", "model", "seed"],
            StageKind::Adaptation => &[
                "kind",
                "needs",
                "high_ratio",
                "low_ratio",
                "dwell_s",
                "upgrade_period_s",
                "max_downshifts_per_event",
                "brownout_ratio",
            ],
            StageKind::Sink => &["kind", "needs", "metrics"],
        }
    }
}

/// One declared stage.
#[derive(Debug, Clone, PartialEq)]
pub struct StageSpec {
    pub kind: StageKind,
    pub needs: Vec<String>,
    /// The stage body (including `kind`/`needs`, which application skips).
    pub body: Table,
}

/// A parsed, shape-validated scenario document.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    pub name: String,
    pub seed: u64,
    /// Run length in seconds (stages may override per-run).
    pub horizon_s: f64,
    pub stages: BTreeMap<String, StageSpec>,
}

impl std::str::FromStr for ScenarioSpec {
    type Err = ScenarioError;

    /// Parses and shape-checks a scenario document.
    fn from_str(text: &str) -> Result<Self, ScenarioError> {
        let root = toml::parse(text)?;
        let root_view = View::new(&root, "");
        root_view.deny_unknown(&["scenario", "stage"])?;
        let (scenario, spath) = root_view
            .opt_table("scenario")?
            .ok_or_else(|| schema_err("scenario", "missing required [scenario] table"))?;
        let sv = View::new(scenario, &spath);
        sv.deny_unknown(&["name", "seed", "horizon_s"])?;
        let name = sv.req_str("name")?.to_string();
        let seed = sv.opt_u64("seed")?.unwrap_or(7);
        let horizon_s = sv
            .opt_secs("horizon_s")?
            .ok_or_else(|| schema_err("scenario.horizon_s", "missing required key"))?;

        let mut stages = BTreeMap::new();
        if let Some((stage_tables, stpath)) = root_view.opt_table("stage")? {
            for (stage_name, v) in stage_tables {
                let path = format!("{stpath}.{stage_name}");
                let Value::Table(body) = v else {
                    return Err(schema_err(&path, "a stage must be a table"));
                };
                let bv = View::new(body, &path);
                let kind = StageKind::parse(bv.req_str("kind")?, &format!("{path}.kind"))?;
                bv.deny_unknown(kind.allowed_keys())?;
                if kind != StageKind::Run && bv.has("systems") {
                    return Err(schema_err(
                        format!("{path}.systems"),
                        "only run stages take a systems list",
                    ));
                }
                let needs = bv
                    .opt_str_array("needs")?
                    .map(|v| v.into_iter().map(String::from).collect())
                    .unwrap_or_default();
                stages.insert(stage_name.clone(), StageSpec { kind, needs, body: body.clone() });
            }
        }
        if !stages.values().any(|s| s.kind == StageKind::Run) {
            return Err(schema_err("stage", "a scenario needs at least one run stage"));
        }
        Ok(ScenarioSpec { name, seed, horizon_s, stages })
    }
}

impl ScenarioSpec {
    /// Reads and parses a scenario file.
    pub fn from_path(path: &std::path::Path) -> Result<Self, ScenarioError> {
        let text = std::fs::read_to_string(path).map_err(|e| ScenarioError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        })?;
        text.parse()
    }

    /// The stage graph as name → needs, for the resolver.
    pub fn graph(&self) -> BTreeMap<String, Vec<String>> {
        self.stages.iter().map(|(n, s)| (n.clone(), s.needs.clone())).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::str::FromStr;

    const MINIMAL: &str = "\
[scenario]
name = \"t\"
horizon_s = 30

[stage.bench]
kind = \"run\"
systems = [\"vdbms\"]
";

    #[test]
    fn minimal_scenario_parses() {
        let spec = ScenarioSpec::from_str(MINIMAL).unwrap();
        assert_eq!(spec.name, "t");
        assert_eq!(spec.seed, 7, "seed defaults");
        assert_eq!(spec.horizon_s, 30.0);
        assert_eq!(spec.stages["bench"].kind, StageKind::Run);
    }

    #[test]
    fn unknown_keys_fail_with_their_path() {
        let doc = MINIMAL.replace("systems = [\"vdbms\"]", "systems = [\"vdbms\"]\nbogus = 1");
        let err = ScenarioSpec::from_str(&doc).unwrap_err();
        match err {
            ScenarioError::Schema { path, .. } => assert_eq!(path, "stage.bench.bogus"),
            other => panic!("expected schema error, got {other}"),
        }
    }

    #[test]
    fn unknown_stage_kind_is_rejected() {
        let doc = MINIMAL.replace("\"run\"", "\"telemetry\"");
        let err = ScenarioSpec::from_str(&doc).unwrap_err();
        assert!(err.to_string().contains("unknown stage kind"), "{err}");
    }

    #[test]
    fn systems_only_on_run_stages() {
        let doc = format!("{MINIMAL}\n[stage.load]\nkind = \"workload\"\nsystems = [\"vdbms\"]\n");
        let err = ScenarioSpec::from_str(&doc).unwrap_err();
        assert!(err.to_string().contains("only run stages"), "{err}");
    }

    #[test]
    fn scenario_without_run_stage_is_rejected() {
        let doc = "\
[scenario]
name = \"t\"
horizon_s = 30

[stage.topo]
kind = \"topology\"
servers = 3
";
        let err = ScenarioSpec::from_str(doc).unwrap_err();
        assert!(err.to_string().contains("at least one run stage"), "{err}");
    }

    #[test]
    fn type_errors_name_expected_and_found() {
        let doc = MINIMAL.replace("horizon_s = 30", "horizon_s = \"long\"");
        let err = ScenarioSpec::from_str(&doc).unwrap_err();
        assert!(err.to_string().contains("expected a number, found string"), "{err}");
        let doc = MINIMAL.replace("horizon_s = 30", "horizon_s = -5");
        let err = ScenarioSpec::from_str(&doc).unwrap_err();
        assert!(err.to_string().contains("positive seconds"), "{err}");
    }
}
