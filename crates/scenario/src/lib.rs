//! # quasaq-scenario — declarative TOML experiment pipelines
//!
//! Every regime the reproduction can measure — flash crowds, fault plans,
//! stochastic links, brownouts — is driven by Rust config structs, so a
//! new experiment historically cost a code change. This crate turns an
//! experiment into a TOML file: a `[scenario]` header plus `[stage.*]`
//! tables forming a DAG of composable fragments (topology, workload,
//! faults, links, adaptation) consumed by run stages and summarized by
//! metric sinks.
//!
//! * [`toml`] — an in-tree parser/serializer for the TOML subset the DSL
//!   uses (no registry access in this workspace, same policy as the
//!   proptest/criterion shims). Tables are key-order-normalized.
//! * [`dag`] — dependency resolution: cycle detection, unknown-stage
//!   errors, and a topological order that is a pure function of the
//!   stage set (name-ordered tie-break).
//! * [`schema`] — typed extraction with path-tagged errors
//!   (`stage.load.qop_mix: expected a number, found string`); unknown
//!   keys are rejected, so typos cannot silently run a default.
//! * [`exec`] — stage adapters onto [`quasaq_workload::ThroughputConfig`]
//!   and deterministic execution on the scenario-parallel runner, serial
//!   or sharded, rendering a byte-stable report.
//! * [`fingerprint`] — FNV-1a 64 digests over full results; what the
//!   golden gallery under `scenarios/` pins in CI.

pub mod dag;
pub mod exec;
pub mod fingerprint;
pub mod schema;
pub mod toml;

pub use dag::{closure_in_order, resolve_order, DagError};
pub use exec::{run_file, run_str, ExecMode, RunOutcome, ScenarioReport, SinkOutcome};
pub use fingerprint::{hash_result, Fnv64};
pub use schema::{ScenarioError, ScenarioSpec, StageKind, StageSpec, View};
