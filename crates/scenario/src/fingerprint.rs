//! Result fingerprinting for the golden gallery.
//!
//! A gallery golden pins each run's *full* measured surface — every
//! counter, every sampled series point, every queue/fault/adaptation
//! metric — into one 64-bit FNV-1a digest. Floats are hashed by their
//! IEEE-754 bit pattern, so the fingerprint changes iff any measurement
//! changes in any bit: exactly the sensitivity the serial-vs-sharded
//! determinism gate needs. `AccessStats` (which video landed on which
//! server) is deliberately excluded: it is derived bookkeeping for the
//! migration extension, fully determined by the admission decisions the
//! digest already covers.

use quasaq_sim::{OnlineStats, RateCounter, Series};
use quasaq_workload::ThroughputResult;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a 64. Small, dependency-free, and stable across
/// platforms — unlike `DefaultHasher`, whose algorithm is unspecified.
#[derive(Debug, Clone)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64(FNV_OFFSET)
    }
}

impl Fnv64 {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    fn write_opt_f64(&mut self, v: Option<f64>) {
        match v {
            // Tag present/absent so None is distinct from Some(0.0).
            Some(x) => {
                self.write(&[1]);
                self.write_f64(x);
            }
            None => self.write(&[0]),
        }
    }

    fn write_series(&mut self, s: &Series) {
        self.write_u64(s.points().len() as u64);
        for &(t, v) in s.points() {
            self.write_f64(t.as_secs_f64());
            self.write_f64(v);
        }
    }

    fn write_stats(&mut self, s: &OnlineStats) {
        self.write_u64(s.count());
        self.write_f64(s.mean());
        self.write_f64(s.std_dev());
        self.write_opt_f64(s.min());
        self.write_opt_f64(s.max());
    }

    fn write_rate(&mut self, r: &RateCounter) {
        self.write_f64(r.bucket().as_secs_f64());
        self.write_u64(r.counts().len() as u64);
        for &c in r.counts() {
            self.write_u64(c);
        }
    }

    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// Digests one run result. Field order is fixed; extending
/// `ThroughputResult` with new metrics means regenerating goldens (which
/// is the point — the gallery flags measurement-surface changes).
pub fn hash_result(r: &ThroughputResult) -> u64 {
    let mut h = Fnv64::new();
    h.write(r.label.as_bytes());
    h.write(&[0xff]); // label terminator, so "ab"+"c" != "a"+"bc"
    h.write_u64(r.queries);
    h.write_u64(r.admitted);
    h.write_u64(r.rejected);
    h.write_u64(r.completed);
    h.write_series(&r.outstanding);
    h.write_rate(&r.completions_per_min);
    h.write_series(&r.rejects);
    h.write_opt_f64(r.mean_utility);
    match &r.queue {
        None => h.write(&[0]),
        Some(q) => {
            h.write(&[1]);
            h.write_stats(&q.wait);
            h.write_u64(q.retries);
            h.write_u64(q.degraded);
            h.write_u64(q.overflow);
            h.write_u64(q.hopeless);
            h.write_u64(q.abandoned_waiting);
            h.write_u64(q.abandoned_streaming);
            h.write_u64(q.pending_at_horizon);
            h.write_u64(q.peak_waiting);
            h.write_series(&q.abandonment);
        }
    }
    match &r.faults {
        None => h.write(&[0]),
        Some(f) => {
            h.write(&[1]);
            h.write_u64(f.interrupted);
            h.write_u64(f.failed_over);
            h.write_u64(f.failover_degraded);
            h.write_u64(f.requeued);
            h.write_u64(f.recovered);
            h.write_u64(f.dropped);
            h.write_stats(&f.recovery);
            h.write_f64(f.qos_violation_secs);
        }
    }
    match &r.degradation {
        None => h.write(&[0]),
        Some(d) => {
            h.write(&[1]);
            h.write_u64(d.congestion_events);
            h.write_f64(d.congested_secs);
            h.write_u64(d.downshifts);
            h.write_u64(d.upshifts);
            h.write_u64(d.oscillations);
            h.write_f64(d.violation_secs_avoided);
            h.write_u64(d.brownout_degraded);
            h.write_u64(d.brownout_rejected);
        }
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        let mut h = Fnv64::new();
        assert_eq!(h.finish(), 0xcbf2_9ce4_8422_2325, "empty input is the offset basis");
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
        let mut h = Fnv64::new();
        h.write(b"foobar");
        assert_eq!(h.finish(), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn float_hashing_is_bit_exact() {
        let mut a = Fnv64::new();
        a.write_f64(0.1 + 0.2);
        let mut b = Fnv64::new();
        b.write_f64(0.3);
        assert_ne!(a.finish(), b.finish(), "0.1+0.2 differs from 0.3 in the last bit");
        let mut z1 = Fnv64::new();
        z1.write_f64(0.0);
        let mut z2 = Fnv64::new();
        z2.write_f64(-0.0);
        assert_ne!(z1.finish(), z2.finish(), "signed zeros hash differently");
    }

    #[test]
    fn option_tagging_separates_none_from_zero() {
        let mut none = Fnv64::new();
        none.write_opt_f64(None);
        let mut zero = Fnv64::new();
        zero.write_opt_f64(Some(0.0));
        assert_ne!(none.finish(), zero.finish());
    }
}
