//! Stage-graph resolution: dependency closure, cycle detection, and a
//! deterministic topological order.
//!
//! A scenario's stages name their inputs with `needs = [...]`. The
//! resolver turns that edge list into an execution order with two
//! properties the gallery's golden files rely on:
//!
//! * **Determinism under cosmetic edits.** Ties between independent
//!   stages break by stage *name* (Kahn's algorithm with an ordered ready
//!   set), and stage tables are key-order-normalized `BTreeMap`s, so
//!   reordering declarations in the TOML source cannot change the order —
//!   pinned by the proptests.
//! * **Typed failure.** A dependency cycle or an unknown stage name is a
//!   [`DagError`] naming the offending stages, not a hang or a panic.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Why a stage graph failed to resolve.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DagError {
    /// A `needs` entry names no declared stage.
    UnknownStage {
        /// The stage whose `needs` list is broken.
        from: String,
        /// The name that resolved to nothing.
        missing: String,
    },
    /// The `needs` edges close a cycle; `members` lists every stage on it
    /// (in name order).
    Cycle { members: Vec<String> },
}

impl fmt::Display for DagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DagError::UnknownStage { from, missing } => {
                write!(f, "stage {from:?} needs undeclared stage {missing:?}")
            }
            DagError::Cycle { members } => {
                write!(f, "dependency cycle between stages {}", members.join(" <-> "))
            }
        }
    }
}

impl std::error::Error for DagError {}

/// Resolves `stages` (name → needs) into a topological execution order.
///
/// The order is a pure function of the *set* of (name, needs) pairs:
/// among stages whose dependencies are all satisfied, the
/// lexicographically smallest name runs first.
pub fn resolve_order(stages: &BTreeMap<String, Vec<String>>) -> Result<Vec<String>, DagError> {
    // Validate edges and build in-degrees + reverse adjacency.
    let mut indegree: BTreeMap<&str, usize> = stages.keys().map(|k| (k.as_str(), 0)).collect();
    let mut dependents: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (name, needs) in stages {
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        for dep in needs {
            if !stages.contains_key(dep) {
                return Err(DagError::UnknownStage { from: name.clone(), missing: dep.clone() });
            }
            // Duplicate needs entries count once.
            if seen.insert(dep.as_str()) {
                *indegree.get_mut(name.as_str()).expect("declared") += 1;
                dependents.entry(dep.as_str()).or_default().push(name.as_str());
            }
        }
    }
    let mut ready: BTreeSet<&str> =
        indegree.iter().filter(|&(_, &d)| d == 0).map(|(&n, _)| n).collect();
    let mut order = Vec::with_capacity(stages.len());
    while let Some(&next) = ready.iter().next() {
        ready.remove(next);
        order.push(next.to_string());
        for &dep in dependents.get(next).map(Vec::as_slice).unwrap_or(&[]) {
            let d = indegree.get_mut(dep).expect("declared");
            *d -= 1;
            if *d == 0 {
                ready.insert(dep);
            }
        }
    }
    if order.len() < stages.len() {
        let members: Vec<String> =
            indegree.iter().filter(|&(_, &d)| d > 0).map(|(&n, _)| n.to_string()).collect();
        return Err(DagError::Cycle { members });
    }
    Ok(order)
}

/// The transitive dependency closure of `roots`, returned in the global
/// topological order `order` (which must come from [`resolve_order`] over
/// the same graph).
pub fn closure_in_order(
    stages: &BTreeMap<String, Vec<String>>,
    order: &[String],
    roots: &[String],
) -> Vec<String> {
    let mut wanted: BTreeSet<&str> = BTreeSet::new();
    let mut frontier: Vec<&str> = roots.iter().map(String::as_str).collect();
    while let Some(name) = frontier.pop() {
        if !wanted.insert(name) {
            continue;
        }
        if let Some(needs) = stages.get(name) {
            frontier.extend(needs.iter().map(String::as_str));
        }
    }
    order.iter().filter(|n| wanted.contains(n.as_str())).cloned().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(edges: &[(&str, &[&str])]) -> BTreeMap<String, Vec<String>> {
        edges
            .iter()
            .map(|(n, deps)| (n.to_string(), deps.iter().map(|d| d.to_string()).collect()))
            .collect()
    }

    #[test]
    fn orders_respect_dependencies_and_break_ties_by_name() {
        let g = graph(&[
            ("run", &["load", "crash"]),
            ("crash", &["topo"]),
            ("load", &["topo"]),
            ("topo", &[]),
        ]);
        let order = resolve_order(&g).unwrap();
        assert_eq!(order, vec!["topo", "crash", "load", "run"]);
    }

    #[test]
    fn unknown_dependency_is_a_typed_error() {
        let g = graph(&[("run", &["ghost"])]);
        assert_eq!(
            resolve_order(&g),
            Err(DagError::UnknownStage { from: "run".into(), missing: "ghost".into() })
        );
    }

    #[test]
    fn cycles_are_rejected_with_members() {
        let g = graph(&[("a", &["c"]), ("b", &["a"]), ("c", &["b"]), ("solo", &[])]);
        match resolve_order(&g) {
            Err(DagError::Cycle { members }) => {
                assert_eq!(members, vec!["a", "b", "c"]);
            }
            other => panic!("expected cycle, got {other:?}"),
        }
        let self_loop = graph(&[("x", &["x"])]);
        assert!(matches!(resolve_order(&self_loop), Err(DagError::Cycle { .. })));
    }

    #[test]
    fn duplicate_needs_entries_count_once() {
        let g = graph(&[("b", &["a", "a", "a"]), ("a", &[])]);
        assert_eq!(resolve_order(&g).unwrap(), vec!["a", "b"]);
    }

    #[test]
    fn closure_restricts_the_global_order() {
        let g = graph(&[
            ("sink", &["run2"]),
            ("run1", &["load"]),
            ("run2", &["load", "links"]),
            ("links", &["topo"]),
            ("load", &["topo"]),
            ("topo", &[]),
        ]);
        let order = resolve_order(&g).unwrap();
        let c = closure_in_order(&g, &order, &["run2".to_string()]);
        assert_eq!(c, vec!["topo", "links", "load", "run2"]);
        // run1's closure excludes links entirely.
        let c1 = closure_in_order(&g, &order, &["run1".to_string()]);
        assert_eq!(c1, vec!["topo", "load", "run1"]);
    }
}
