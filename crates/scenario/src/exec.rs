//! Stage adapters and the scenario executor.
//!
//! A run stage's configuration is composed from its transitive dependency
//! closure in the global topological order, in three passes over a
//! Fig 6-shaped base:
//!
//! 1. **Topology** fragments (servers, catalog, placement, capacities) —
//!    these change which testbed is built.
//! 2. **Workload** fragments, then the run stage's own body — driver
//!    knobs, horizon, arrivals, admission. The run's body wins ties.
//! 3. **Faults / Links / Adaptation** fragments — these *sample* plans,
//!    so they must see the final server count and horizon; applying them
//!    last makes `mtbf_s = 20` mean the same thing no matter where the
//!    stage sits in the file.
//!
//! Run stages may only depend on fragment stages, and sinks only on run
//! stages — a run depending on another run would silently leak the other
//! run's fragments into its closure, so the executor rejects it.
//!
//! Execution itself delegates to the repo's determinism spine:
//! [`ExecMode::Serial`] steps every system in a plain loop with domain
//! parallelism off; [`ExecMode::Sharded`] fans systems across the
//! scenario-parallel runner with `n` domain lanes each. The rendered
//! report contains no timing, host, or shard information, so the two
//! modes must produce byte-identical reports — the gallery's CI gate.

use crate::dag::{closure_in_order, resolve_order};
use crate::fingerprint::{hash_result, Fnv64};
use crate::schema::{ScenarioError, ScenarioSpec, StageKind, View};
use quasaq_sim::{
    FaultKind, FaultModel, FaultPlan, FaultSpec, LinkModel, LinkPlan, LinkSpec, ServerId,
    SimDuration, SimTime,
};
use quasaq_workload::{
    run_throughput, run_throughput_scenarios, AdmissionConfig, CostKind, QopMix, SystemKind,
    ThroughputConfig, ThroughputResult,
};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// How run stages are stepped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Respect each scenario's own `domain_workers`; systems fan out on
    /// the scenario-parallel runner. The `--scenario` bench default.
    Scripted,
    /// One system at a time on the calling thread, domain parallelism
    /// off. The golden reference.
    Serial,
    /// Systems on the scenario-parallel runner, each run stepping its
    /// server domains on this many lanes. Must match [`ExecMode::Serial`]
    /// byte-for-byte.
    Sharded(usize),
}

/// One executed run stage.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Stage name.
    pub stage: String,
    /// The composed horizon (for windowed sink metrics).
    pub horizon: SimTime,
    /// One result per entry in the stage's `systems` list, in order.
    pub results: Vec<ThroughputResult>,
}

/// One executed sink stage: pre-rendered metric lines.
#[derive(Debug, Clone)]
pub struct SinkOutcome {
    /// Stage name.
    pub stage: String,
    /// `"<run>/<label> <metric>=<value>"` lines, in need × result ×
    /// metric order.
    pub lines: Vec<String>,
}

/// Everything a scenario produced, plus the canonical rendering the
/// gallery pins.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    pub name: String,
    pub seed: u64,
    pub runs: Vec<RunOutcome>,
    pub sinks: Vec<SinkOutcome>,
}

impl ScenarioReport {
    /// The canonical text form: stage order, labels, per-result
    /// fingerprints, counters, and sink lines — and nothing
    /// time-of-day-, host-, or shard-dependent, so serial and sharded
    /// executions of the same scenario render identically.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "scenario {} seed={}", self.name, self.seed);
        for run in &self.runs {
            let _ = writeln!(out, "run {}", run.stage);
            for r in &run.results {
                let _ = writeln!(
                    out,
                    "  {} fp={:016x} queries={} admitted={} rejected={} completed={}",
                    r.label,
                    hash_result(r),
                    r.queries,
                    r.admitted,
                    r.rejected,
                    r.completed
                );
            }
        }
        for sink in &self.sinks {
            let _ = writeln!(out, "sink {}", sink.stage);
            for line in &sink.lines {
                let _ = writeln!(out, "  {line}");
            }
        }
        out
    }

    /// Digest of the canonical rendering — what CI compares across modes.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv64::new();
        h.write(self.render().as_bytes());
        h.finish()
    }
}

fn schema_err(path: impl Into<String>, message: impl Into<String>) -> ScenarioError {
    ScenarioError::Schema { path: path.into(), message: message.into() }
}

fn parse_system(s: &str, path: &str) -> Result<SystemKind, ScenarioError> {
    Ok(match s {
        "vdbms" => SystemKind::Vdbms,
        "qosapi" => SystemKind::VdbmsQosApi,
        "quasaq:lrb" => SystemKind::Quasaq(CostKind::Lrb),
        "quasaq:random" => SystemKind::Quasaq(CostKind::Random),
        "quasaq:minbitrate" => SystemKind::Quasaq(CostKind::MinBitrate),
        "quasaq:weightedsum" => SystemKind::Quasaq(CostKind::WeightedSum),
        "quasaq:utility" => SystemKind::Quasaq(CostKind::Utility),
        other => {
            return Err(schema_err(
                path,
                format!(
                    "unknown system {other:?} (expected vdbms, qosapi, or quasaq:<lrb|random|\
                     minbitrate|weightedsum|utility>)"
                ),
            ))
        }
    })
}

fn server_ids(count: u32) -> impl Iterator<Item = ServerId> {
    (0..count).map(ServerId)
}

fn server_in_range(v: View<'_>, key: &str, servers: u32) -> Result<ServerId, ScenarioError> {
    let id = v
        .opt_u64(key)?
        .ok_or_else(|| schema_err(format!("{}.{key}", v.path), "missing required key"))?;
    if id >= servers as u64 {
        return Err(schema_err(
            format!("{}.{key}", v.path),
            format!("server {id} out of range (topology has {servers} servers)"),
        ));
    }
    Ok(ServerId(id as u32))
}

fn apply_topology(v: View<'_>, cfg: &mut ThroughputConfig) -> Result<(), ScenarioError> {
    if let Some(servers) = v.opt_u64("servers")? {
        if servers == 0 {
            return Err(schema_err(format!("{}.servers", v.path), "needs at least one server"));
        }
        cfg.testbed.servers = servers as u32;
    }
    if let Some(videos) = v.opt_usize("videos")? {
        cfg.testbed.library.num_videos = videos;
    }
    if let Some(seed) = v.opt_u64("seed")? {
        cfg.testbed.seed = seed;
    }
    if let Some(bps) = v.opt_u64("link_capacity_bps")? {
        cfg.testbed.link_capacity_bps = bps;
    }
    if let Some(bps) = v.opt_f64("disk_bps")? {
        cfg.testbed.disk_bps = bps;
    }
    if let Some(bytes) = v.opt_f64("memory_bytes")? {
        cfg.testbed.memory_bytes = bytes;
    }
    if let Some(s) = v.opt_secs("min_video_s")? {
        cfg.testbed.library.min_duration = SimDuration::from_secs_f64(s);
    }
    if let Some(s) = v.opt_secs("max_video_s")? {
        cfg.testbed.library.max_duration = SimDuration::from_secs_f64(s);
    }
    if let Some(n) = v.opt_usize("min_replicas")? {
        cfg.testbed.library.min_replicas = n;
    }
    if let Some(n) = v.opt_usize("max_replicas")? {
        cfg.testbed.library.max_replicas = n;
    }
    if cfg.testbed.library.min_duration > cfg.testbed.library.max_duration {
        return Err(schema_err(v.path, "min_video_s must not exceed max_video_s"));
    }
    if let Some(p) = v.opt_str("placement")? {
        cfg.testbed.placement = match p {
            "full" => quasaq_store::Placement::Full,
            "round_robin" => quasaq_store::Placement::RoundRobin,
            "spread" => {
                let copies = v.opt_u64("copies")?.ok_or_else(|| {
                    schema_err(format!("{}.copies", v.path), "spread placement needs copies")
                })?;
                quasaq_store::Placement::Spread { copies: copies as u32 }
            }
            other => {
                return Err(schema_err(
                    format!("{}.placement", v.path),
                    format!("unknown placement {other:?} (expected full, round_robin, spread)"),
                ))
            }
        };
    } else if v.has("copies") {
        return Err(schema_err(
            format!("{}.copies", v.path),
            "copies only makes sense with placement = \"spread\"",
        ));
    }
    Ok(())
}

fn apply_workload(v: View<'_>, cfg: &mut ThroughputConfig) -> Result<(), ScenarioError> {
    if let Some(h) = v.opt_secs("horizon_s")? {
        cfg.horizon = SimTime::from_secs_f64(h);
    }
    if let Some(s) = v.opt_secs("sample_step_s")? {
        cfg.sample_step = SimDuration::from_secs_f64(s);
    }
    if let Some(seed) = v.opt_u64("seed")? {
        cfg.seed = seed;
    }
    if let Some(p) = v.opt_secs("arrival_period_s")? {
        cfg.arrival_period = Some(SimDuration::from_secs_f64(p));
    }
    if let Some(b) = v.opt_usize("burst")? {
        if b == 0 {
            return Err(schema_err(format!("{}.burst", v.path), "burst must be at least 1"));
        }
        cfg.arrival_burst = b;
    }
    if let Some(skew) = v.opt_f64("video_skew")? {
        if !(0.0..=10.0).contains(&skew) {
            return Err(schema_err(
                format!("{}.video_skew", v.path),
                format!("Zipf skew must be in [0, 10], found {skew}"),
            ));
        }
        cfg.video_skew = skew;
    }
    if let Some(mix) = v.opt_str("qop_mix")? {
        cfg.qop_mix = match mix {
            "uniform" => QopMix::Uniform,
            "paper_skewed" => QopMix::PaperSkewed,
            other => {
                return Err(schema_err(
                    format!("{}.qop_mix", v.path),
                    format!("unknown qop_mix {other:?} (expected uniform, paper_skewed)"),
                ))
            }
        };
    }
    if let Some(b) = v.opt_bool("local_plans_only")? {
        cfg.local_plans_only = b;
    }
    if let Some(b) = v.opt_bool("plan_cache")? {
        cfg.plan_cache = b;
    }
    if let Some(w) = v.opt_usize("domain_workers")? {
        cfg.domain_workers = w;
    }
    if let Some((table, path)) = v.opt_table("admission")? {
        let av = View::new(table, &path);
        av.deny_unknown(&[
            "queue_capacity",
            "base_backoff_s",
            "backoff_factor",
            "max_backoff_s",
            "patience_s",
        ])?;
        let mut adm = AdmissionConfig::default();
        if let Some(c) = av.opt_usize("queue_capacity")? {
            adm.queue_capacity = c;
        }
        if let Some(s) = av.opt_secs("base_backoff_s")? {
            adm.base_backoff = SimDuration::from_secs_f64(s);
        }
        if let Some(f) = av.opt_f64("backoff_factor")? {
            adm.backoff_factor = f;
        }
        if let Some(s) = av.opt_secs("max_backoff_s")? {
            adm.max_backoff = SimDuration::from_secs_f64(s);
        }
        if let Some(s) = av.opt_secs("patience_s")? {
            adm.patience = SimDuration::from_secs_f64(s);
        }
        cfg.admission = Some(adm);
    }
    Ok(())
}

fn parse_fault_kind(v: View<'_>, servers_hint: &str) -> Result<FaultKind, ScenarioError> {
    let kind = v.opt_str("kind")?.unwrap_or("crash");
    let factor = v.opt_f64("factor")?;
    let need_factor = |f: Option<f64>| {
        f.ok_or_else(|| {
            schema_err(format!("{}.factor", v.path), format!("{servers_hint} needs a factor"))
        })
        .and_then(|f| {
            if f > 0.0 && f <= 1.0 {
                Ok(f)
            } else {
                Err(schema_err(
                    format!("{}.factor", v.path),
                    format!("factor must be in (0, 1], found {f}"),
                ))
            }
        })
    };
    Ok(match kind {
        "crash" => {
            if factor.is_some() {
                return Err(schema_err(
                    format!("{}.factor", v.path),
                    "a crash has no factor (the server is gone)",
                ));
            }
            FaultKind::ServerCrash
        }
        "link" => FaultKind::LinkDegradation { factor: need_factor(factor)? },
        "disk" => FaultKind::DiskSlowdown { factor: need_factor(factor)? },
        other => {
            return Err(schema_err(
                format!("{}.kind", v.path),
                format!("unknown fault kind {other:?} (expected crash, link, disk)"),
            ))
        }
    })
}

fn apply_faults(v: View<'_>, cfg: &mut ThroughputConfig) -> Result<(), ScenarioError> {
    let mut plan = cfg.faults.take().unwrap_or_else(FaultPlan::none);
    if let Some(windows) = v.opt_table_array("windows")? {
        for (table, path) in windows {
            let wv = View::new(table, &path);
            wv.deny_unknown(&["server", "at_s", "duration_s", "kind", "factor"])?;
            let server = server_in_range(wv, "server", cfg.testbed.servers)?;
            let at = wv
                .opt_secs("at_s")?
                .ok_or_else(|| schema_err(format!("{path}.at_s"), "missing required key"))?;
            let duration = wv
                .opt_secs("duration_s")?
                .ok_or_else(|| schema_err(format!("{path}.duration_s"), "missing required key"))?;
            let kind = parse_fault_kind(wv, "a link/disk window")?;
            plan.faults.push(FaultSpec {
                server,
                at: SimTime::from_secs_f64(at),
                duration: SimDuration::from_secs_f64(duration),
                kind,
            });
        }
    }
    if let Some((table, path)) = v.opt_table("model")? {
        let mv = View::new(table, &path);
        mv.deny_unknown(&["mtbf_s", "mttr_s", "kind", "factor"])?;
        let mtbf = mv
            .opt_secs("mtbf_s")?
            .ok_or_else(|| schema_err(format!("{path}.mtbf_s"), "missing required key"))?;
        let mttr = mv
            .opt_secs("mttr_s")?
            .ok_or_else(|| schema_err(format!("{path}.mttr_s"), "missing required key"))?;
        let kind = parse_fault_kind(mv, "a link/disk model")?;
        let seed = v.opt_u64("seed")?.unwrap_or(cfg.seed);
        let sampled = FaultPlan::sample(
            seed,
            server_ids(cfg.testbed.servers),
            cfg.horizon,
            FaultModel {
                mtbf: SimDuration::from_secs_f64(mtbf),
                mttr: SimDuration::from_secs_f64(mttr),
                kind,
            },
        );
        plan.faults.extend(sampled.faults);
    }
    if plan.is_empty() {
        return Err(schema_err(v.path, "a faults stage needs windows, a model, or both"));
    }
    cfg.faults = Some(plan);
    Ok(())
}

fn apply_links(v: View<'_>, cfg: &mut ThroughputConfig) -> Result<(), ScenarioError> {
    let mut plan = cfg.links.take().unwrap_or_else(LinkPlan::none);
    if let Some(points) = v.opt_table_array("setpoints")? {
        for (table, path) in points {
            let pv = View::new(table, &path);
            pv.deny_unknown(&["server", "at_s", "factor"])?;
            let server = server_in_range(pv, "server", cfg.testbed.servers)?;
            let at = pv
                .opt_secs("at_s")?
                .ok_or_else(|| schema_err(format!("{path}.at_s"), "missing required key"))?;
            let factor = pv.req_f64("factor")?;
            if !(factor > 0.0 && factor <= 1.0) {
                return Err(schema_err(
                    format!("{path}.factor"),
                    format!("factor must be in (0, 1], found {factor}"),
                ));
            }
            plan.changes.push(LinkSpec { server, at: SimTime::from_secs_f64(at), factor });
        }
    }
    if let Some((table, path)) = v.opt_table("model")? {
        let mv = View::new(table, &path);
        let kind = mv.req_str("kind")?;
        let model = match kind {
            "markov" => {
                mv.deny_unknown(&["kind", "factors", "dwell_s"])?;
                let factors = mv
                    .opt_f64_array("factors")?
                    .ok_or_else(|| schema_err(format!("{path}.factors"), "missing required key"))?;
                let dwell = mv
                    .opt_f64_array("dwell_s")?
                    .ok_or_else(|| schema_err(format!("{path}.dwell_s"), "missing required key"))?;
                if factors.len() != 3 || dwell.len() != 3 {
                    return Err(schema_err(
                        path,
                        "markov links need exactly 3 factors and 3 dwell_s entries",
                    ));
                }
                LinkModel::Markov {
                    factors: [factors[0], factors[1], factors[2]],
                    dwell: [
                        SimDuration::from_secs_f64(dwell[0]),
                        SimDuration::from_secs_f64(dwell[1]),
                        SimDuration::from_secs_f64(dwell[2]),
                    ],
                }
            }
            "fading" => {
                mv.deny_unknown(&["kind", "mean", "spread", "coherence_s"])?;
                LinkModel::Fading {
                    mean: mv.req_f64("mean")?,
                    spread: mv.req_f64("spread")?,
                    coherence: SimDuration::from_secs_f64(mv.opt_secs("coherence_s")?.ok_or_else(
                        || schema_err(format!("{path}.coherence_s"), "missing required key"),
                    )?),
                }
            }
            "diurnal" => {
                mv.deny_unknown(&["kind", "trough", "period_s", "step_s"])?;
                LinkModel::Diurnal {
                    trough: mv.req_f64("trough")?,
                    period: SimDuration::from_secs_f64(mv.opt_secs("period_s")?.ok_or_else(
                        || schema_err(format!("{path}.period_s"), "missing required key"),
                    )?),
                    step: SimDuration::from_secs_f64(mv.opt_secs("step_s")?.ok_or_else(|| {
                        schema_err(format!("{path}.step_s"), "missing required key")
                    })?),
                }
            }
            other => {
                return Err(schema_err(
                    format!("{path}.kind"),
                    format!("unknown link model {other:?} (expected markov, fading, diurnal)"),
                ))
            }
        };
        let seed = v.opt_u64("seed")?.unwrap_or(cfg.seed);
        let sampled = LinkPlan::sample(seed, server_ids(cfg.testbed.servers), cfg.horizon, model);
        plan.changes.extend(sampled.changes);
    }
    if plan.changes.is_empty() {
        return Err(schema_err(v.path, "a links stage needs setpoints, a model, or both"));
    }
    cfg.links = Some(plan);
    Ok(())
}

fn apply_adaptation(v: View<'_>, cfg: &mut ThroughputConfig) -> Result<(), ScenarioError> {
    let mut a = cfg.adaptation.take().unwrap_or_default();
    if let Some(r) = v.opt_f64("high_ratio")? {
        a.congestion.high_ratio = r;
    }
    if let Some(r) = v.opt_f64("low_ratio")? {
        a.congestion.low_ratio = r;
    }
    if let Some(s) = v.opt_secs("dwell_s")? {
        a.congestion.dwell = SimDuration::from_secs_f64(s);
    }
    if a.congestion.low_ratio >= a.congestion.high_ratio {
        return Err(schema_err(
            v.path,
            format!(
                "low_ratio ({}) must be below high_ratio ({})",
                a.congestion.low_ratio, a.congestion.high_ratio
            ),
        ));
    }
    if let Some(s) = v.opt_secs("upgrade_period_s")? {
        a.upgrade_period = SimDuration::from_secs_f64(s);
    }
    if let Some(n) = v.opt_usize("max_downshifts_per_event")? {
        a.max_downshifts_per_event = n;
    }
    if let Some(r) = v.opt_f64("brownout_ratio")? {
        if !(0.0..=1.0).contains(&r) {
            return Err(schema_err(
                format!("{}.brownout_ratio", v.path),
                format!("must be in [0, 1], found {r}"),
            ));
        }
        a.brownout_ratio = r;
    }
    cfg.adaptation = Some(a);
    Ok(())
}

/// The Fig 6-shaped base every run composes over.
fn base_config(spec: &ScenarioSpec) -> ThroughputConfig {
    let mut cfg = ThroughputConfig::fig6();
    cfg.seed = spec.seed;
    cfg.horizon = SimTime::from_secs_f64(spec.horizon_s);
    cfg
}

/// Composes the effective configuration for one run stage.
fn compose_run_config(
    spec: &ScenarioSpec,
    graph: &BTreeMap<String, Vec<String>>,
    order: &[String],
    run_name: &str,
) -> Result<ThroughputConfig, ScenarioError> {
    let mut cfg = base_config(spec);
    let closure = closure_in_order(graph, order, &[run_name.to_string()]);
    for pass in [
        &[StageKind::Topology][..],
        &[StageKind::Workload],
        &[StageKind::Faults, StageKind::Links, StageKind::Adaptation],
    ] {
        for name in &closure {
            let stage = &spec.stages[name.as_str()];
            if !pass.contains(&stage.kind) {
                continue;
            }
            let path = format!("stage.{name}");
            let v = View::new(&stage.body, &path);
            match stage.kind {
                StageKind::Topology => apply_topology(v, &mut cfg)?,
                StageKind::Workload => apply_workload(v, &mut cfg)?,
                StageKind::Faults => apply_faults(v, &mut cfg)?,
                StageKind::Links => apply_links(v, &mut cfg)?,
                StageKind::Adaptation => apply_adaptation(v, &mut cfg)?,
                StageKind::Run | StageKind::Sink => unreachable!("filtered by pass"),
            }
        }
        // The run's own body overrides its workload fragments, but is
        // applied before fault/link sampling so a run-local horizon still
        // bounds the sampled plans.
        if pass == [StageKind::Workload] {
            let path = format!("stage.{run_name}");
            apply_workload(View::new(&spec.stages[run_name].body, &path), &mut cfg)?;
        }
    }
    Ok(cfg)
}

/// Renders one sink metric for one result. Floats print via `{:?}`
/// (shortest exact representation), keeping sink lines bit-faithful.
fn sink_metric(
    metric: &str,
    run: &RunOutcome,
    r: &ThroughputResult,
    path: &str,
) -> Result<String, ScenarioError> {
    Ok(match metric {
        "stable_outstanding" => format!("{:?}", r.stable_outstanding(run.horizon)),
        "completions_total" => format!("{}", r.completions_per_min.total()),
        "admitted_ratio" => {
            let ratio = if r.queries == 0 { 0.0 } else { r.admitted as f64 / r.queries as f64 };
            format!("{ratio:?}")
        }
        "mean_utility" => match r.mean_utility {
            Some(u) => format!("{u:?}"),
            None => "none".to_string(),
        },
        "queue_abandoned" => match &r.queue {
            Some(q) => format!("{}", q.abandoned()),
            None => "none".to_string(),
        },
        "queue_wait_mean" => match &r.queue {
            Some(q) => format!("{:?}", q.wait.mean()),
            None => "none".to_string(),
        },
        "queue_wait_p95" => match r.queue_wait_p95() {
            Some(p) => format!("{p:?}"),
            None => "none".to_string(),
        },
        "queue_wait_p99" => match r.queue_wait_p99() {
            Some(p) => format!("{p:?}"),
            None => "none".to_string(),
        },
        "fault_dropped" => match &r.faults {
            Some(f) => format!("{}", f.dropped),
            None => "none".to_string(),
        },
        "fault_failed_over" => match &r.faults {
            Some(f) => format!("{}", f.failed_over),
            None => "none".to_string(),
        },
        "congestion_events" => match &r.degradation {
            Some(d) => format!("{}", d.congestion_events),
            None => "none".to_string(),
        },
        "congested_secs" => match &r.degradation {
            Some(d) => format!("{:?}", d.congested_secs),
            None => "none".to_string(),
        },
        "downshifts" => match &r.degradation {
            Some(d) => format!("{}", d.downshifts),
            None => "none".to_string(),
        },
        "oscillations" => match &r.degradation {
            Some(d) => format!("{}", d.oscillations),
            None => "none".to_string(),
        },
        "brownout_rejected" => match &r.degradation {
            Some(d) => format!("{}", d.brownout_rejected),
            None => "none".to_string(),
        },
        "violation_secs_avoided" => match &r.degradation {
            Some(d) => format!("{:?}", d.violation_secs_avoided),
            None => "none".to_string(),
        },
        other => {
            return Err(schema_err(
                path,
                format!(
                    "unknown sink metric {other:?} (expected stable_outstanding, \
                     completions_total, admitted_ratio, mean_utility, queue_abandoned, \
                     queue_wait_mean, queue_wait_p95, queue_wait_p99, fault_dropped, \
                     fault_failed_over, congestion_events, congested_secs, downshifts, \
                     oscillations, brownout_rejected, violation_secs_avoided)"
                ),
            ))
        }
    })
}

/// Executes a scenario: resolves the stage graph, composes and runs every
/// run stage in topological order, then evaluates sinks.
pub fn execute(spec: &ScenarioSpec, mode: ExecMode) -> Result<ScenarioReport, ScenarioError> {
    let graph = spec.graph();
    let order = resolve_order(&graph)?;

    // Edge-kind validation: runs consume fragments, sinks consume runs.
    for (name, stage) in &spec.stages {
        for dep in &stage.needs {
            let dep_kind = spec.stages[dep.as_str()].kind;
            let ok = match stage.kind {
                StageKind::Run => !matches!(dep_kind, StageKind::Run | StageKind::Sink),
                StageKind::Sink => dep_kind == StageKind::Run,
                // Fragments composing other fragments is fine (e.g. a
                // faults stage anchored on a topology stage for reading
                // clarity), as long as the graph stays acyclic.
                _ => !matches!(dep_kind, StageKind::Run | StageKind::Sink),
            };
            if !ok {
                return Err(schema_err(
                    format!("stage.{name}.needs"),
                    format!(
                        "a {} stage cannot depend on {} stage {dep:?}",
                        stage.kind.label(),
                        dep_kind.label()
                    ),
                ));
            }
        }
    }

    let mut runs: Vec<RunOutcome> = Vec::new();
    let mut sinks: Vec<SinkOutcome> = Vec::new();
    for name in &order {
        let stage = &spec.stages[name.as_str()];
        match stage.kind {
            StageKind::Run => {
                let path = format!("stage.{name}");
                let v = View::new(&stage.body, &path);
                let systems = v
                    .opt_str_array("systems")?
                    .ok_or_else(|| schema_err(format!("{path}.systems"), "missing required key"))?;
                if systems.is_empty() {
                    return Err(schema_err(format!("{path}.systems"), "needs at least one system"));
                }
                let mut cfg = compose_run_config(spec, &graph, &order, name)?;
                match mode {
                    ExecMode::Scripted => {}
                    ExecMode::Serial => cfg.domain_workers = 0,
                    ExecMode::Sharded(n) => cfg.domain_workers = n,
                }
                let kinds = systems
                    .iter()
                    .map(|s| parse_system(s, &format!("{path}.systems")))
                    .collect::<Result<Vec<_>, _>>()?;
                let horizon = cfg.horizon;
                let results = match mode {
                    ExecMode::Serial => kinds.iter().map(|k| run_throughput(*k, &cfg)).collect(),
                    ExecMode::Scripted | ExecMode::Sharded(_) => {
                        let jobs: Vec<(SystemKind, ThroughputConfig)> =
                            kinds.iter().map(|k| (*k, cfg.clone())).collect();
                        run_throughput_scenarios(&jobs)
                    }
                };
                runs.push(RunOutcome { stage: name.clone(), horizon, results });
            }
            StageKind::Sink => {
                let path = format!("stage.{name}");
                let v = View::new(&stage.body, &path);
                let metrics = v
                    .opt_str_array("metrics")?
                    .ok_or_else(|| schema_err(format!("{path}.metrics"), "missing required key"))?;
                if stage.needs.is_empty() {
                    return Err(schema_err(
                        format!("{path}.needs"),
                        "a sink needs at least one run stage",
                    ));
                }
                let mut lines = Vec::new();
                for dep in &stage.needs {
                    let run = runs
                        .iter()
                        .find(|r| &r.stage == dep)
                        .expect("runs execute before dependent sinks");
                    for r in &run.results {
                        for metric in &metrics {
                            let value = sink_metric(metric, run, r, &format!("{path}.metrics"))?;
                            lines.push(format!("{dep}/{} {metric}={value}", r.label));
                        }
                    }
                }
                sinks.push(SinkOutcome { stage: name.clone(), lines });
            }
            _ => {} // fragments are applied lazily by the runs above
        }
    }
    Ok(ScenarioReport { name: spec.name.clone(), seed: spec.seed, runs, sinks })
}

/// Parses and executes a scenario document.
pub fn run_str(text: &str, mode: ExecMode) -> Result<ScenarioReport, ScenarioError> {
    execute(&text.parse::<ScenarioSpec>()?, mode)
}

/// Reads, parses, and executes a scenario file.
pub fn run_file(path: &std::path::Path, mode: ExecMode) -> Result<ScenarioReport, ScenarioError> {
    execute(&ScenarioSpec::from_path(path)?, mode)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SMOKE: &str = "\
[scenario]
name = \"smoke\"
seed = 11
horizon_s = 20

[stage.topo]
kind = \"topology\"
servers = 3
videos = 12

[stage.load]
kind = \"workload\"
needs = [\"topo\"]
burst = 2

[stage.bench]
kind = \"run\"
needs = [\"load\"]
systems = [\"vdbms\", \"quasaq:lrb\"]

[stage.summary]
kind = \"sink\"
needs = [\"bench\"]
metrics = [\"stable_outstanding\", \"admitted_ratio\", \"mean_utility\"]
";

    #[test]
    fn smoke_scenario_runs_and_reports() {
        let report = run_str(SMOKE, ExecMode::Serial).unwrap();
        assert_eq!(report.runs.len(), 1);
        assert_eq!(report.runs[0].results.len(), 2);
        assert_eq!(report.runs[0].results[0].label, "VDBMS");
        assert!(report.runs[0].results[0].queries > 0);
        let text = report.render();
        assert!(text.starts_with("scenario smoke seed=11\n"), "{text}");
        assert!(text.contains("run bench\n"), "{text}");
        assert!(text.contains("sink summary\n"), "{text}");
        assert!(text.contains("bench/VDBMS stable_outstanding="), "{text}");
        // The VDBMS row reports no utility; QuaSAQ reports one.
        assert!(text.contains("bench/VDBMS mean_utility=none"), "{text}");
        assert!(!text.contains("bench/VDBMS+QuaSAQ(LRB) mean_utility=none"), "{text}");
    }

    #[test]
    fn serial_and_sharded_render_identically() {
        let serial = run_str(SMOKE, ExecMode::Serial).unwrap().render();
        let sharded = run_str(SMOKE, ExecMode::Sharded(2)).unwrap().render();
        assert_eq!(serial, sharded, "scenario reports must be mode-independent");
    }

    #[test]
    fn run_on_run_dependencies_are_rejected() {
        let doc = format!(
            "{SMOKE}\n[stage.second]\nkind = \"run\"\nneeds = [\"bench\"]\nsystems = [\"vdbms\"]\n"
        );
        let err = run_str(&doc, ExecMode::Serial).unwrap_err();
        assert!(err.to_string().contains("cannot depend on run stage"), "{err}");
    }

    #[test]
    fn sinks_only_consume_runs() {
        let doc = SMOKE.replace("needs = [\"bench\"]\nmetrics", "needs = [\"load\"]\nmetrics");
        let err = run_str(&doc, ExecMode::Serial).unwrap_err();
        assert!(err.to_string().contains("cannot depend on workload stage"), "{err}");
    }

    #[test]
    fn unknown_system_and_metric_are_schema_errors() {
        let doc = SMOKE.replace("\"quasaq:lrb\"", "\"quasaq:psychic\"");
        let err = run_str(&doc, ExecMode::Serial).unwrap_err();
        assert!(err.to_string().contains("unknown system"), "{err}");
        let doc = SMOKE.replace("\"admitted_ratio\"", "\"vibes\"");
        let err = run_str(&doc, ExecMode::Serial).unwrap_err();
        assert!(err.to_string().contains("unknown sink metric"), "{err}");
    }

    #[test]
    fn fault_window_server_out_of_range_is_caught() {
        let doc = format!(
            "{SMOKE}\n[stage.crash]\nkind = \"faults\"\n\
             windows = [{{ server = 9, at_s = 5, duration_s = 5 }}]\n"
        );
        // Attach it to the run so it actually composes.
        let doc =
            doc.replace("needs = [\"load\"]\nsystems", "needs = [\"load\", \"crash\"]\nsystems");
        let err = run_str(&doc, ExecMode::Serial).unwrap_err();
        assert!(err.to_string().contains("out of range"), "{err}");
    }

    #[test]
    fn faults_and_links_sample_against_the_composed_horizon() {
        let doc = format!(
            "{}\n[stage.weather]\nkind = \"links\"\n[stage.weather.model]\nkind = \"fading\"\n\
             mean = 0.8\nspread = 0.1\ncoherence_s = 4\n",
            SMOKE
                .replace("needs = [\"load\"]\nsystems", "needs = [\"load\", \"weather\"]\nsystems")
        );
        let report = run_str(&doc, ExecMode::Serial).unwrap();
        // Link dynamics mark results with fault metrics (QoS violation
        // exposure tracking); presence proves the plan reached the driver.
        assert!(report.runs[0].results[0].faults.is_some());
    }
}
