//! Property tests for the scenario DSL: the TOML serializer is a parse
//! fixed point on arbitrary documents, and the DAG resolver rejects every
//! cycle while producing an order that is a pure function of the graph
//! structure (declaration order in the source never matters).

use std::collections::BTreeMap;
use std::str::FromStr;

use proptest::prelude::*;
use proptest::TestRng;
use quasaq_scenario::dag::{closure_in_order, resolve_order, DagError};
use quasaq_scenario::schema::ScenarioSpec;
use quasaq_scenario::toml::{self, Table, Value};

// ---------------------------------------------------------------------------
// Random document generation
// ---------------------------------------------------------------------------

/// Keys cover bare identifiers and every class the serializer must quote:
/// spaces, dots, unicode, and the empty string.
fn gen_key(rng: &mut TestRng, salt: u64) -> String {
    match rng.below(6) {
        0 => format!("key_{salt}"),
        1 => format!("K-{salt}"),
        2 => format!("spaced key {salt}"),
        3 => format!("dotted.{salt}"),
        4 => format!("úñî©оде-{salt}"),
        _ => format!("{salt}"),
    }
}

fn gen_string(rng: &mut TestRng) -> String {
    let pieces = [
        "plain",
        "with \"quotes\"",
        "back\\slash",
        "tab\there",
        "line\nbreak",
        "carriage\rreturn",
        "null\u{0}byte",
        "émoji 🎬",
        "bell\u{7}",
        "",
    ];
    let mut s = String::new();
    for _ in 0..rng.below(3) + 1 {
        s.push_str(pieces[rng.below(pieces.len() as u64) as usize]);
    }
    s
}

fn gen_scalar(rng: &mut TestRng) -> Value {
    match rng.below(5) {
        0 => Value::Int(rng.next_u64() as i64),
        1 => Value::Int(-(rng.below(1 << 40) as i64)),
        2 => {
            // Finite floats only; `{:?}` round-trips these exactly.
            let f = (rng.unit_f64() - 0.5) * 10f64.powi(rng.below(40) as i32 - 20);
            Value::Float(f)
        }
        3 => Value::Bool(rng.below(2) == 0),
        _ => Value::Str(gen_string(rng)),
    }
}

fn gen_value(rng: &mut TestRng, depth: u32) -> Value {
    if depth == 0 {
        return gen_scalar(rng);
    }
    match rng.below(4) {
        0 => {
            let items = (0..rng.below(4)).map(|_| gen_value(rng, depth - 1)).collect();
            Value::Array(items)
        }
        1 => Value::Table(gen_table(rng, depth - 1)),
        _ => gen_scalar(rng),
    }
}

fn gen_table(rng: &mut TestRng, depth: u32) -> Table {
    let mut t = Table::new();
    for salt in 0..rng.below(5) {
        t.insert(gen_key(rng, salt), gen_value(rng, depth));
    }
    t
}

// ---------------------------------------------------------------------------
// Random graph generation
// ---------------------------------------------------------------------------

/// An acyclic graph over `n` stages: edges only point from later-created
/// stages back to earlier ones, so a topological order always exists.
fn gen_dag(rng: &mut TestRng, n: usize) -> BTreeMap<String, Vec<String>> {
    let names: Vec<String> = (0..n).map(|i| format!("s{i:02}")).collect();
    let mut stages = BTreeMap::new();
    for (i, name) in names.iter().enumerate() {
        let mut needs = Vec::new();
        if i > 0 {
            for _ in 0..rng.below(3) {
                needs.push(names[rng.below(i as u64) as usize].clone());
            }
        }
        stages.insert(name.clone(), needs);
    }
    stages
}

fn index_of(order: &[String], name: &str) -> usize {
    order.iter().position(|n| n == name).expect("stage present in order")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `to_string` is a fixed point of `parse`: serializing an arbitrary
    /// table and parsing it back yields the identical table, and a second
    /// serialize pass reproduces the identical text.
    #[test]
    fn toml_serialize_parse_round_trips(seed in 0u64..10_000) {
        let mut rng = TestRng::new(seed);
        let doc = gen_table(&mut rng, 3);
        let text = toml::to_string(&doc);
        let reparsed = toml::parse(&text)
            .unwrap_or_else(|e| panic!("serialized doc failed to parse: {e}\n---\n{text}"));
        prop_assert_eq!(&reparsed, &doc);
        prop_assert_eq!(toml::to_string(&reparsed), text);
    }

    /// Acyclic graphs always resolve, the order is a permutation of the
    /// stages, and every dependency precedes its dependent.
    #[test]
    fn dag_topo_order_respects_dependencies(seed in 0u64..10_000, n in 1usize..12) {
        let mut rng = TestRng::new(seed);
        let stages = gen_dag(&mut rng, n);
        let order = resolve_order(&stages).expect("acyclic graph resolves");
        prop_assert_eq!(order.len(), stages.len());
        for (name, needs) in &stages {
            for dep in needs {
                prop_assert!(
                    index_of(&order, dep) < index_of(&order, name),
                    "dependency {} must precede {}",
                    dep,
                    name
                );
            }
        }
        // The closure of any single stage is also dependency-ordered and
        // contains the stage itself last or later than all its needs.
        let root = order[rng.below(order.len() as u64) as usize].clone();
        let closure = closure_in_order(&stages, &order, std::slice::from_ref(&root));
        prop_assert!(closure.contains(&root));
        for name in &closure {
            for dep in &stages[name] {
                prop_assert!(closure.contains(dep), "closure must be transitively closed");
            }
        }
    }

    /// Closing any chain of `needs` edges into a loop is a typed
    /// `DagError::Cycle` whose members include the whole chain.
    #[test]
    fn dag_cycles_are_rejected(seed in 0u64..10_000, n in 2usize..10) {
        let mut rng = TestRng::new(seed);
        let mut stages = gen_dag(&mut rng, n);
        // Pick a random chain of 2..=n distinct stages and wire it into a
        // ring on top of the existing acyclic edges.
        let len = 2 + rng.below((n - 1) as u64) as usize;
        let chain: Vec<String> = (0..len).map(|i| format!("s{i:02}")).collect();
        for (i, name) in chain.iter().enumerate() {
            let next = chain[(i + 1) % len].clone();
            stages.get_mut(name).expect("chain stage declared").push(next);
        }
        match resolve_order(&stages) {
            Err(DagError::Cycle { members }) => {
                for name in &chain {
                    prop_assert!(
                        members.contains(name),
                        "cycle member {} missing from {:?}",
                        name,
                        members
                    );
                }
            }
            other => prop_assert!(false, "expected cycle error, got {:?}", other),
        }
    }

    /// Parsing the same scenario with stage declarations (and the keys
    /// inside each stage) in a different source order yields the identical
    /// spec and the identical execution order.
    #[test]
    fn scenario_order_is_stable_under_declaration_reordering(seed in 0u64..10_000, n in 1usize..7) {
        let mut rng = TestRng::new(seed);
        let dag = gen_dag(&mut rng, n);

        // Render each stage as a TOML block; the run stage rides along so
        // the document passes schema validation.
        let mut blocks: Vec<String> = dag
            .iter()
            .map(|(name, needs)| {
                let needs_list = needs
                    .iter()
                    .map(|d| format!("{d:?}"))
                    .collect::<Vec<_>>()
                    .join(", ");
                let keys = [
                    "kind = \"workload\"".to_string(),
                    format!("needs = [{needs_list}]"),
                    format!("seed = {}", rng.below(100)),
                ];
                let mut lines: Vec<usize> = (0..keys.len()).collect();
                // Deterministic shuffle of the key lines.
                for i in (1..lines.len()).rev() {
                    lines.swap(i, rng.below(i as u64 + 1) as usize);
                }
                let body =
                    lines.iter().map(|&i| keys[i].clone()).collect::<Vec<_>>().join("\n");
                format!("[stage.{name}]\n{body}\n")
            })
            .collect();
        blocks.push("[stage.zrun]\nkind = \"run\"\nsystems = [\"vdbms\"]\n".to_string());

        let header = "[scenario]\nname = \"reorder\"\nhorizon_s = 10\n";
        let forward = format!("{header}{}", blocks.join("\n"));
        // Deterministic shuffle of whole stage blocks.
        for i in (1..blocks.len()).rev() {
            blocks.swap(i, rng.below(i as u64 + 1) as usize);
        }
        let shuffled = format!("{header}{}", blocks.join("\n"));

        let a = ScenarioSpec::from_str(&forward).expect("forward doc parses");
        let b = ScenarioSpec::from_str(&shuffled).expect("shuffled doc parses");
        prop_assert_eq!(&a, &b);
        let order_a = resolve_order(&a.graph()).expect("acyclic");
        let order_b = resolve_order(&b.graph()).expect("acyclic");
        prop_assert_eq!(order_a, order_b);
    }
}
