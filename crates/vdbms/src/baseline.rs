//! Baseline delivery policies: plain VDBMS and VDBMS + QoS API.
//!
//! The paper's throughput comparison (Fig 6) runs three systems:
//!
//! * **VDBMS** — no QoS control at all: every request is admitted, the
//!   original (highest-quality) object is streamed best-effort.
//! * **VDBMS + QoS API** — "a VDBMS enhanced with QoS APIs … The
//!   streaming sessions in this system are of the same (high) quality as
//!   those in QuaSAQ": admission control and reservation exist, but there
//!   is no QoS-specific replication or cost-based planning, so the
//!   full-quality replica is always served.
//! * **VDBMS + QuaSAQ** — the full system (in `quasaq-core`).
//!
//! This module implements the first two as replica-selection policies;
//! execution is done by the `quasaq-stream` engines.

use quasaq_media::VideoId;
use quasaq_sim::{Rng, ServerId};
use quasaq_store::{MetadataEngine, ObjectRecord};

/// Which baseline stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaselineKind {
    /// Plain VDBMS: no admission control, best-effort delivery.
    Plain,
    /// VDBMS with the QoS API: reservation-based delivery of the
    /// full-quality object.
    WithQosApi,
}

/// A baseline's delivery decision for one request.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineChoice {
    /// The replica to stream.
    pub record: ObjectRecord,
    /// The serving node.
    pub server: ServerId,
    /// Whether resources must be reserved (admission-controlled).
    pub reserve: bool,
}

/// Replica selection for the baseline systems.
#[derive(Debug, Clone, Copy)]
pub struct BaselinePlanner {
    kind: BaselineKind,
}

impl BaselinePlanner {
    /// Creates a planner for the given baseline.
    pub fn new(kind: BaselineKind) -> Self {
        BaselinePlanner { kind }
    }

    /// The baseline's kind.
    pub fn kind(&self) -> BaselineKind {
        self.kind
    }

    /// Chooses what to stream for `video`: always the highest-quality
    /// replica (neither baseline understands QoS-specific replication),
    /// on a uniformly random server holding it (neither has a cost
    /// model).
    pub fn select(
        &self,
        engine: &MetadataEngine,
        video: VideoId,
        rng: &mut Rng,
    ) -> Option<BaselineChoice> {
        self.select_avoiding(engine, video, rng, &std::collections::BTreeSet::new())
    }

    /// Like [`select`](Self::select), but never picks a server in
    /// `exclude` (crashed sites). With an empty exclusion set this is
    /// `select` exactly, including its RNG consumption — one `index` draw
    /// over the same candidate list — so fault-free runs stay
    /// bit-identical.
    pub fn select_avoiding(
        &self,
        engine: &MetadataEngine,
        video: VideoId,
        rng: &mut Rng,
        exclude: &std::collections::BTreeSet<ServerId>,
    ) -> Option<BaselineChoice> {
        let live: Vec<&ObjectRecord> = engine
            .replicas(video)
            .into_iter()
            .filter(|r| !exclude.contains(&r.object.server))
            .collect();
        let best_rate = live.iter().map(|r| r.object.rate_bps).max()?;
        let candidates: Vec<&ObjectRecord> =
            live.into_iter().filter(|r| r.object.rate_bps == best_rate).collect();
        let pick = candidates[rng.index(candidates.len())];
        Some(BaselineChoice {
            record: pick.clone(),
            server: pick.object.server,
            reserve: self.kind == BaselineKind::WithQosApi,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quasaq_media::{Library, LibraryConfig};
    use quasaq_store::{ObjectStore, Placement, QosSampler, ReplicationPlanner};
    use std::collections::BTreeMap;

    fn engine() -> MetadataEngine {
        let lib = Library::generate(42, &LibraryConfig::default());
        let mut stores = BTreeMap::new();
        for s in ServerId::first_n(3) {
            stores.insert(s, ObjectStore::new(s, 1 << 40));
        }
        let mut engine = MetadataEngine::new(ServerId::first_n(3), 16);
        ReplicationPlanner::new(QosSampler::default(), Placement::Full)
            .replicate(&lib, &mut stores, &mut engine)
            .unwrap();
        engine
    }

    #[test]
    fn both_baselines_pick_the_full_tier() {
        let e = engine();
        let mut rng = Rng::new(1);
        for kind in [BaselineKind::Plain, BaselineKind::WithQosApi] {
            let choice = BaselinePlanner::new(kind).select(&e, VideoId(0), &mut rng).unwrap();
            assert_eq!(choice.record.object.tier, "full");
            assert_eq!(choice.reserve, kind == BaselineKind::WithQosApi);
        }
    }

    #[test]
    fn server_choice_spreads_under_full_replication() {
        let e = engine();
        let mut rng = Rng::new(2);
        let planner = BaselinePlanner::new(BaselineKind::Plain);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..50 {
            let c = planner.select(&e, VideoId(1), &mut rng).unwrap();
            seen.insert(c.server);
        }
        assert_eq!(seen.len(), 3, "all servers should be used: {seen:?}");
    }

    #[test]
    fn unknown_video_yields_none() {
        let e = engine();
        let mut rng = Rng::new(3);
        assert!(BaselinePlanner::new(BaselineKind::Plain)
            .select(&e, VideoId(99), &mut rng)
            .is_none());
    }

    #[test]
    fn select_avoiding_skips_crashed_servers() {
        let e = engine();
        let planner = BaselinePlanner::new(BaselineKind::Plain);
        let down: std::collections::BTreeSet<ServerId> = [ServerId(0)].into();
        let mut rng = Rng::new(4);
        for _ in 0..50 {
            let c = planner.select_avoiding(&e, VideoId(1), &mut rng, &down).unwrap();
            assert_ne!(c.server, ServerId(0));
        }
        // Every replica down: nothing to stream.
        let all: std::collections::BTreeSet<ServerId> = ServerId::first_n(3).collect();
        assert!(planner.select_avoiding(&e, VideoId(1), &mut rng, &all).is_none());
        // Empty exclusion is `select` exactly, draw for draw.
        let mut a = Rng::new(5);
        let mut b = Rng::new(5);
        for _ in 0..20 {
            let lhs = planner.select(&e, VideoId(1), &mut a).unwrap();
            let rhs = planner
                .select_avoiding(&e, VideoId(1), &mut b, &std::collections::BTreeSet::new())
                .unwrap();
            assert_eq!(lhs, rhs);
        }
    }
}
