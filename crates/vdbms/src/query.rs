//! Query AST: content predicates plus optional QoS enhancement.
//!
//! "To incorporate QoS control into the database, user-level QoS
//! parameters are translated into application QoS and become an augmented
//! component of the query." A [`Query`] carries the conventional content
//! component (resolved by VDBMS into logical OIDs) and the optional
//! [`QosRange`] the QuaSAQ layer plans against.

use quasaq_media::{QosRange, VideoId};

/// The content component of a query.
#[derive(Debug, Clone, PartialEq)]
pub enum ContentPredicate {
    /// Every video.
    All,
    /// Exact logical OID.
    ById(VideoId),
    /// Match any of the keywords.
    KeywordAny(Vec<String>),
    /// Match all of the keywords.
    KeywordAll(Vec<String>),
    /// Feature-vector similarity to an existing video, with a minimum
    /// cosine score in `[-1, 1]`.
    SimilarTo {
        /// Reference video.
        video: VideoId,
        /// Minimum similarity score.
        min_score: f64,
    },
}

/// A parsed query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Content component (what to find).
    pub predicate: ContentPredicate,
    /// Quality component (how to deliver), if QoS-enhanced.
    pub qos: Option<QosRange>,
    /// Maximum number of results.
    pub limit: Option<usize>,
}

impl Query {
    /// A content-only query.
    pub fn content(predicate: ContentPredicate) -> Self {
        Query { predicate, qos: None, limit: None }
    }

    /// Attaches a QoS range, making this a QoS-aware query.
    pub fn with_qos(mut self, qos: QosRange) -> Self {
        self.qos = Some(qos);
        self
    }

    /// Caps the result count.
    pub fn with_limit(mut self, limit: usize) -> Self {
        self.limit = Some(limit);
        self
    }

    /// True when the query carries QoS requirements.
    pub fn is_qos_aware(&self) -> bool {
        self.qos.is_some()
    }
}

/// A query bound to one playable video — the unit the admission-queue
/// front end works with. Content resolution is already done; only
/// admission (and possibly a wait in the queue) remains.
#[derive(Debug, Clone, PartialEq)]
pub struct QueuedQuery {
    /// The resolved logical video.
    pub video: VideoId,
    /// The QoS range to admit against. Content-only queries carry the
    /// unconstrained range: any delivery quality may serve them.
    pub qos: QosRange,
}

impl Query {
    /// Binds this query to one resolved content hit, producing the
    /// admission queue's request unit.
    pub fn into_queued(&self, video: VideoId) -> QueuedQuery {
        QueuedQuery { video, qos: self.qos.clone().unwrap_or_else(QosRange::any) }
    }
}

/// One content-search result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchHit {
    /// Matching logical video.
    pub video: VideoId,
    /// Relevance score (higher is better).
    pub score: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn into_queued_binds_video_and_range() {
        let q = Query::content(ContentPredicate::ById(VideoId(3)))
            .with_qos(QosRange::any())
            .into_queued(VideoId(3));
        assert_eq!(q.video, VideoId(3));
        assert_eq!(q.qos, QosRange::any());
        // Content-only queries queue with the unconstrained range.
        let plain = Query::content(ContentPredicate::All).into_queued(VideoId(7));
        assert_eq!(plain.qos, QosRange::any());
        assert_eq!(plain.video, VideoId(7));
    }

    #[test]
    fn builder_chain() {
        let q = Query::content(ContentPredicate::KeywordAny(vec!["surgery".into()]))
            .with_qos(QosRange::any())
            .with_limit(5);
        assert!(q.is_qos_aware());
        assert_eq!(q.limit, Some(5));
        let plain = Query::content(ContentPredicate::All);
        assert!(!plain.is_qos_aware());
    }
}
