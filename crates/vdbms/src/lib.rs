//! # quasaq-vdbms — the VDBMS baseline substrate
//!
//! A miniature of the PREDATOR-based VDBMS the paper builds on: the
//! conventional half of query processing (parse → content search →
//! logical OIDs) plus the two baseline delivery stacks the evaluation
//! compares against.
//!
//! * [`query`] — the query AST: content predicates plus the optional
//!   QoS range that makes a query "QoS-aware".
//! * [`sql`] — a small SQL-ish parser with a `WITH QOS (...)` clause.
//! * [`search`] — keyword and feature-similarity search over the
//!   metadata engine's content metadata.
//! * [`baseline`] — replica selection for plain VDBMS (admit everything,
//!   stream the original best-effort) and VDBMS+QoS-API (reserve, but no
//!   QoS-aware planning).

pub mod baseline;
pub mod query;
pub mod search;
pub mod sql;

pub use baseline::{BaselineChoice, BaselineKind, BaselinePlanner};
pub use query::{ContentPredicate, Query, QueuedQuery, SearchHit};
pub use search::{cosine, resolve_one, search};
pub use sql::{parse, ParseError};
