//! Content-based search: the conventional half of query processing.
//!
//! "In our QuaSAQ-enhanced database, queries on videos are processed in
//! two steps: 1. searching and identification of video objects done by
//! the original VDBMS; 2. QoS-constrained delivery of the video by
//! QuaSAQ." This module is step 1: it evaluates a query's content
//! predicate against the metadata engine's content metadata (keywords and
//! feature vectors) and returns ranked logical OIDs.

use crate::query::{ContentPredicate, Query, SearchHit};
use quasaq_media::{VideoId, VideoMeta, FEATURE_DIMS};
use quasaq_store::MetadataEngine;

/// Cosine similarity of two unit-ish feature vectors.
pub fn cosine(a: &[f32; FEATURE_DIMS], b: &[f32; FEATURE_DIMS]) -> f64 {
    let dot: f32 = a.iter().zip(b.iter()).map(|(x, y)| x * y).sum();
    let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
    let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        (dot / (na * nb)) as f64
    }
}

fn keyword_score(meta: &VideoMeta, keywords: &[String], require_all: bool) -> Option<f64> {
    let mut matched = 0usize;
    for kw in keywords {
        if meta.keywords.iter().any(|k| k.eq_ignore_ascii_case(kw))
            || meta.title.to_ascii_lowercase().contains(&kw.to_ascii_lowercase())
        {
            matched += 1;
        }
    }
    if matched == 0 || (require_all && matched < keywords.len()) {
        return None;
    }
    Some(matched as f64 / keywords.len() as f64)
}

/// Executes the content component of `query` against the engine's
/// metadata, returning hits in descending score order (ties by OID).
pub fn search(engine: &MetadataEngine, query: &Query) -> Vec<SearchHit> {
    let mut hits: Vec<SearchHit> = Vec::new();
    match &query.predicate {
        ContentPredicate::All => {
            hits.extend(engine.videos().map(|m| SearchHit { video: m.id, score: 1.0 }));
        }
        ContentPredicate::ById(id) => {
            if engine.video(*id).is_some() {
                hits.push(SearchHit { video: *id, score: 1.0 });
            }
        }
        ContentPredicate::KeywordAny(kws) => {
            for m in engine.videos() {
                if let Some(score) = keyword_score(m, kws, false) {
                    hits.push(SearchHit { video: m.id, score });
                }
            }
        }
        ContentPredicate::KeywordAll(kws) => {
            for m in engine.videos() {
                if let Some(score) = keyword_score(m, kws, true) {
                    hits.push(SearchHit { video: m.id, score });
                }
            }
        }
        ContentPredicate::SimilarTo { video, min_score } => {
            if let Some(reference) = engine.video(*video) {
                let ref_features = reference.features;
                for m in engine.videos() {
                    if m.id == *video {
                        continue;
                    }
                    let score = cosine(&ref_features, &m.features);
                    if score >= *min_score {
                        hits.push(SearchHit { video: m.id, score });
                    }
                }
            }
        }
    }
    hits.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.video.cmp(&b.video)));
    if let Some(limit) = query.limit {
        hits.truncate(limit);
    }
    hits
}

/// Resolves a query to the single best-matching logical OID, if any — the
/// common path for delivery experiments.
pub fn resolve_one(engine: &MetadataEngine, query: &Query) -> Option<VideoId> {
    search(engine, query).first().map(|h| h.video)
}

#[cfg(test)]
mod tests {
    use super::*;
    use quasaq_media::{Library, LibraryConfig};
    use quasaq_sim::ServerId;

    fn engine() -> MetadataEngine {
        let lib = Library::generate(42, &LibraryConfig::default());
        let mut e = MetadataEngine::new(ServerId::first_n(3), 8);
        for entry in lib.entries() {
            e.insert_video(entry.meta.clone());
        }
        e
    }

    #[test]
    fn all_returns_everything() {
        let e = engine();
        let hits = search(&e, &Query::content(ContentPredicate::All));
        assert_eq!(hits.len(), 15);
    }

    #[test]
    fn by_id_exact() {
        let e = engine();
        let hits = search(&e, &Query::content(ContentPredicate::ById(VideoId(3))));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].video, VideoId(3));
        let none = search(&e, &Query::content(ContentPredicate::ById(VideoId(99))));
        assert!(none.is_empty());
    }

    #[test]
    fn keyword_any_matches_known_keyword() {
        let e = engine();
        // Use an actual keyword from the generated catalog.
        let kw = e.videos().next().unwrap().keywords[0].clone();
        let hits = search(&e, &Query::content(ContentPredicate::KeywordAny(vec![kw.clone()])));
        assert!(!hits.is_empty());
        for h in &hits {
            let m = e.video(h.video).unwrap();
            assert!(
                m.keywords.iter().any(|k| k.eq_ignore_ascii_case(&kw)) || m.title.contains(&kw)
            );
        }
    }

    #[test]
    fn keyword_all_is_stricter() {
        let e = engine();
        let m0 = e.videos().next().unwrap();
        let kws: Vec<String> = m0.keywords.iter().take(2).cloned().collect();
        let any = search(&e, &Query::content(ContentPredicate::KeywordAny(kws.clone())));
        let all = search(&e, &Query::content(ContentPredicate::KeywordAll(kws)));
        assert!(all.len() <= any.len());
        assert!(all.iter().any(|h| h.video == m0.id));
    }

    #[test]
    fn limit_truncates_ranked() {
        let e = engine();
        let hits = search(&e, &Query::content(ContentPredicate::All).with_limit(4));
        assert_eq!(hits.len(), 4);
        // Scores descending.
        for w in hits.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn similarity_excludes_reference_and_thresholds() {
        let e = engine();
        let hits = search(
            &e,
            &Query::content(ContentPredicate::SimilarTo { video: VideoId(0), min_score: -1.0 }),
        );
        assert_eq!(hits.len(), 14);
        assert!(hits.iter().all(|h| h.video != VideoId(0)));
        let strict = search(
            &e,
            &Query::content(ContentPredicate::SimilarTo { video: VideoId(0), min_score: 0.9 }),
        );
        assert!(strict.len() <= hits.len());
        for h in &strict {
            assert!(h.score >= 0.9);
        }
    }

    #[test]
    fn cosine_properties() {
        let a = [1.0f32, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        let b = [0.0f32, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        assert!((cosine(&a, &a) - 1.0).abs() < 1e-6);
        assert!(cosine(&a, &b).abs() < 1e-6);
        let zero = [0.0f32; 8];
        assert_eq!(cosine(&a, &zero), 0.0);
    }

    #[test]
    fn resolve_one_picks_top_hit() {
        let e = engine();
        assert_eq!(
            resolve_one(&e, &Query::content(ContentPredicate::ById(VideoId(5)))),
            Some(VideoId(5))
        );
        assert_eq!(
            resolve_one(
                &e,
                &Query::content(ContentPredicate::KeywordAny(vec!["nonexistent-kw".into()]))
            ),
            None
        );
    }
}
