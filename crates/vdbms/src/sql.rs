//! A small SQL-ish surface for QoS-enhanced video queries.
//!
//! VDBMS extends PREDATOR's SQL with video operations; QuaSAQ further
//! augments queries with QoS requirements. The grammar here covers the
//! reproduction's needs:
//!
//! ```text
//! SELECT * FROM videos
//!   [WHERE <predicate>]
//!   [WITH QOS (<clause> [, <clause>]*)]
//!   [LIMIT <n>]
//!
//! predicate := TRUE
//!            | id = <n>
//!            | contains('kw') [AND contains('kw')]*
//!            | contains('kw') [OR contains('kw')]*
//!            | similar_to(<n>, <score>)
//!
//! clause := resolution >= <w>x<h> | resolution <= <w>x<h>
//!         | color >= <bits>
//!         | framerate >= <fps> | framerate <= <fps>
//!         | format = mpeg1 | format = mpeg2
//! ```
//!
//! Example:
//! `SELECT * FROM videos WHERE contains('surgery') WITH QOS (resolution >= 320x240, resolution <= 352x288, framerate >= 20) LIMIT 3`

use crate::query::{ContentPredicate, Query};
use quasaq_media::{ColorDepth, FrameRate, QosRange, Resolution, VideoFormat, VideoId};
use std::fmt;

/// A parse failure with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error: {}", self.message)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(message: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError { message: message.into() })
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Num(f64),
    Str(String),
    Star,
    LParen,
    RParen,
    Comma,
    Eq,
    Ge,
    Le,
}

fn lex(input: &str) -> Result<Vec<Tok>, ParseError> {
    let mut toks = Vec::new();
    let mut chars = input.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            c if c.is_whitespace() => {
                chars.next();
            }
            '*' => {
                chars.next();
                toks.push(Tok::Star);
            }
            '(' => {
                chars.next();
                toks.push(Tok::LParen);
            }
            ')' => {
                chars.next();
                toks.push(Tok::RParen);
            }
            ',' => {
                chars.next();
                toks.push(Tok::Comma);
            }
            '=' => {
                chars.next();
                toks.push(Tok::Eq);
            }
            '>' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    toks.push(Tok::Ge);
                } else {
                    return err("expected '>='");
                }
            }
            '<' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    toks.push(Tok::Le);
                } else {
                    return err("expected '<='");
                }
            }
            '\'' => {
                chars.next();
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some('\'') => break,
                        Some(ch) => s.push(ch),
                        None => return err("unterminated string literal"),
                    }
                }
                toks.push(Tok::Str(s));
            }
            c if c.is_ascii_digit() => {
                let mut s = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_digit() || d == '.' {
                        s.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                match s.parse::<f64>() {
                    Ok(n) => toks.push(Tok::Num(n)),
                    Err(_) => return err(format!("bad number '{s}'")),
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut s = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_alphanumeric() || d == '_' {
                        s.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                toks.push(Tok::Ident(s.to_ascii_lowercase()));
            }
            other => return err(format!("unexpected character '{other}'")),
        }
    }
    Ok(toks)
}

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect_ident(&mut self, word: &str) -> Result<(), ParseError> {
        match self.next() {
            Some(Tok::Ident(s)) if s == word => Ok(()),
            other => err(format!("expected '{word}', found {other:?}")),
        }
    }

    fn expect(&mut self, tok: Tok) -> Result<(), ParseError> {
        match self.next() {
            Some(t) if t == tok => Ok(()),
            other => err(format!("expected {tok:?}, found {other:?}")),
        }
    }

    fn number(&mut self) -> Result<f64, ParseError> {
        match self.next() {
            Some(Tok::Num(n)) => Ok(n),
            other => err(format!("expected number, found {other:?}")),
        }
    }

    fn parse_query(&mut self) -> Result<Query, ParseError> {
        self.expect_ident("select")?;
        self.expect(Tok::Star)?;
        self.expect_ident("from")?;
        self.expect_ident("videos")?;
        let mut predicate = ContentPredicate::All;
        let mut qos = None;
        let mut limit = None;
        while let Some(tok) = self.peek() {
            match tok {
                Tok::Ident(w) if w == "where" => {
                    self.next();
                    predicate = self.parse_predicate()?;
                }
                Tok::Ident(w) if w == "with" => {
                    self.next();
                    self.expect_ident("qos")?;
                    qos = Some(self.parse_qos()?);
                }
                Tok::Ident(w) if w == "limit" => {
                    self.next();
                    let n = self.number()?;
                    if n < 1.0 || n.fract() != 0.0 {
                        return err("LIMIT must be a positive integer");
                    }
                    limit = Some(n as usize);
                }
                other => return err(format!("unexpected token {other:?}")),
            }
        }
        Ok(Query { predicate, qos, limit })
    }

    fn parse_predicate(&mut self) -> Result<ContentPredicate, ParseError> {
        match self.next() {
            Some(Tok::Ident(w)) if w == "true" => Ok(ContentPredicate::All),
            Some(Tok::Ident(w)) if w == "id" => {
                self.expect(Tok::Eq)?;
                let n = self.number()?;
                Ok(ContentPredicate::ById(VideoId(n as u32)))
            }
            Some(Tok::Ident(w)) if w == "similar_to" => {
                self.expect(Tok::LParen)?;
                let id = self.number()?;
                self.expect(Tok::Comma)?;
                let score = self.number()?;
                self.expect(Tok::RParen)?;
                if !(-1.0..=1.0).contains(&score) {
                    return err("similarity score must be in [-1, 1]");
                }
                Ok(ContentPredicate::SimilarTo { video: VideoId(id as u32), min_score: score })
            }
            Some(Tok::Ident(w)) if w == "contains" => {
                let first = self.parse_contains_arg()?;
                let mut keywords = vec![first];
                let mut connective: Option<&str> = None;
                loop {
                    match self.peek() {
                        Some(Tok::Ident(w)) if w == "and" || w == "or" => {
                            let this = if w == "and" { "and" } else { "or" };
                            if let Some(prev) = connective {
                                if prev != this {
                                    return err("cannot mix AND and OR in one predicate");
                                }
                            }
                            connective = Some(this);
                            self.next();
                            self.expect_ident("contains")?;
                            keywords.push(self.parse_contains_arg()?);
                        }
                        _ => break,
                    }
                }
                match connective {
                    Some("and") => Ok(ContentPredicate::KeywordAll(keywords)),
                    _ => Ok(ContentPredicate::KeywordAny(keywords)),
                }
            }
            other => err(format!("unsupported predicate starting at {other:?}")),
        }
    }

    fn parse_contains_arg(&mut self) -> Result<String, ParseError> {
        self.expect(Tok::LParen)?;
        let kw = match self.next() {
            Some(Tok::Str(s)) => s,
            other => return err(format!("contains() expects a string, found {other:?}")),
        };
        self.expect(Tok::RParen)?;
        Ok(kw.to_ascii_lowercase())
    }

    fn parse_qos(&mut self) -> Result<QosRange, ParseError> {
        self.expect(Tok::LParen)?;
        let mut range = QosRange::any();
        loop {
            let field = match self.next() {
                Some(Tok::Ident(s)) => s,
                other => return err(format!("expected QoS field, found {other:?}")),
            };
            match field.as_str() {
                "resolution" => {
                    let op = self.next();
                    let res = self.parse_resolution()?;
                    match op {
                        Some(Tok::Ge) => range.min_resolution = res,
                        Some(Tok::Le) => range.max_resolution = res,
                        other => {
                            return err(format!("resolution expects >= or <=, found {other:?}"))
                        }
                    }
                }
                "color" => {
                    self.expect(Tok::Ge)?;
                    let bits = self.number()?;
                    if !(1.0..=48.0).contains(&bits) {
                        return err("color depth out of range");
                    }
                    range.min_color = ColorDepth::from_bits(bits as u8);
                }
                "framerate" => {
                    let op = self.next();
                    let fps = self.number()?;
                    if fps <= 0.0 {
                        return err("framerate must be positive");
                    }
                    match op {
                        Some(Tok::Ge) => range.min_frame_rate = FrameRate::from_fps(fps),
                        Some(Tok::Le) => range.max_frame_rate = FrameRate::from_fps(fps),
                        other => {
                            return err(format!("framerate expects >= or <=, found {other:?}"))
                        }
                    }
                }
                "format" => {
                    self.expect(Tok::Eq)?;
                    let fmt = match self.next() {
                        Some(Tok::Ident(s)) if s == "mpeg1" => VideoFormat::Mpeg1,
                        Some(Tok::Ident(s)) if s == "mpeg2" => VideoFormat::Mpeg2,
                        other => return err(format!("unknown format {other:?}")),
                    };
                    match &mut range.formats {
                        Some(list) => list.push(fmt),
                        None => range.formats = Some(vec![fmt]),
                    }
                }
                other => return err(format!("unknown QoS field '{other}'")),
            }
            match self.next() {
                Some(Tok::Comma) => continue,
                Some(Tok::RParen) => break,
                other => return err(format!("expected ',' or ')', found {other:?}")),
            }
        }
        if !range.is_valid() {
            return err("inconsistent QoS range (min exceeds max)");
        }
        Ok(range)
    }

    fn parse_resolution(&mut self) -> Result<Resolution, ParseError> {
        // 320x240 lexes as Num(320), Ident("x240").
        let w = self.number()?;
        match self.next() {
            Some(Tok::Ident(s)) if s.starts_with('x') => match s[1..].parse::<u32>() {
                Ok(h) if h > 0 && w >= 1.0 => Ok(Resolution::new(w as u32, h)),
                _ => err("bad resolution"),
            },
            other => err(format!("expected WxH resolution, found {other:?}")),
        }
    }
}

/// Parses one query.
pub fn parse(input: &str) -> Result<Query, ParseError> {
    let toks = lex(input)?;
    let mut p = Parser { toks, pos: 0 };
    let q = p.parse_query()?;
    if p.peek().is_some() {
        return err("trailing tokens after query");
    }
    Ok(q)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_query() {
        let q = parse("SELECT * FROM videos").unwrap();
        assert_eq!(q.predicate, ContentPredicate::All);
        assert!(q.qos.is_none());
        assert!(q.limit.is_none());
    }

    #[test]
    fn keyword_query_with_limit() {
        let q = parse("SELECT * FROM videos WHERE contains('surgery') LIMIT 3").unwrap();
        assert_eq!(q.predicate, ContentPredicate::KeywordAny(vec!["surgery".into()]));
        assert_eq!(q.limit, Some(3));
    }

    #[test]
    fn and_or_keywords() {
        let q = parse("SELECT * FROM videos WHERE contains('a') AND contains('b')").unwrap();
        assert_eq!(q.predicate, ContentPredicate::KeywordAll(vec!["a".into(), "b".into()]));
        let q = parse("SELECT * FROM videos WHERE contains('a') OR contains('b')").unwrap();
        assert_eq!(q.predicate, ContentPredicate::KeywordAny(vec!["a".into(), "b".into()]));
        assert!(parse(
            "SELECT * FROM videos WHERE contains('a') AND contains('b') OR contains('c')"
        )
        .is_err());
    }

    #[test]
    fn similarity_predicate() {
        let q = parse("SELECT * FROM videos WHERE similar_to(3, 0.8)").unwrap();
        assert_eq!(q.predicate, ContentPredicate::SimilarTo { video: VideoId(3), min_score: 0.8 });
        assert!(parse("SELECT * FROM videos WHERE similar_to(3, 1.5)").is_err());
    }

    #[test]
    fn id_predicate() {
        let q = parse("SELECT * FROM videos WHERE id = 7").unwrap();
        assert_eq!(q.predicate, ContentPredicate::ById(VideoId(7)));
    }

    #[test]
    fn qos_clause_full() {
        let q = parse(
            "SELECT * FROM videos WHERE contains('sunset') \
             WITH QOS (resolution >= 320x240, resolution <= 352x288, \
             color >= 12, framerate >= 20, framerate <= 30, format = mpeg1)",
        )
        .unwrap();
        let qos = q.qos.unwrap();
        assert_eq!(qos.min_resolution, Resolution::new(320, 240));
        assert_eq!(qos.max_resolution, Resolution::new(352, 288));
        assert_eq!(qos.min_color.bits(), 12);
        assert!((qos.min_frame_rate.fps() - 20.0).abs() < 1e-9);
        assert!((qos.max_frame_rate.fps() - 30.0).abs() < 1e-9);
        assert_eq!(qos.formats, Some(vec![VideoFormat::Mpeg1]));
    }

    #[test]
    fn invalid_qos_range_rejected() {
        let e =
            parse("SELECT * FROM videos WITH QOS (resolution >= 720x480, resolution <= 320x240)")
                .unwrap_err();
        assert!(e.message.contains("inconsistent"));
    }

    #[test]
    fn case_insensitive_keywords() {
        let q = parse("select * from videos where CONTAINS('Sunset')").unwrap();
        assert_eq!(q.predicate, ContentPredicate::KeywordAny(vec!["sunset".into()]));
    }

    #[test]
    fn error_cases() {
        assert!(parse("SELECT * FROM tables").is_err());
        assert!(parse("SELECT * FROM videos WHERE").is_err());
        assert!(parse("SELECT * FROM videos LIMIT 0").is_err());
        assert!(parse("SELECT * FROM videos LIMIT 2.5").is_err());
        assert!(parse("SELECT * FROM videos WITH QOS (color >= 99)").is_err());
        assert!(parse("SELECT * FROM videos trailing").is_err());
        assert!(parse("SELECT * FROM videos WHERE contains(unquoted)").is_err());
        assert!(parse("SELECT * FROM videos WITH QOS (framerate >= 0)").is_err());
    }

    #[test]
    fn unterminated_string() {
        assert!(parse("SELECT * FROM videos WHERE contains('oops").is_err());
    }
}
