//! Length-prefixed binary codec for the command/effect vocabulary.
//!
//! Pure bytes in / bytes out: this module never touches a socket. Each
//! frame is a little-endian `u32` payload length followed by the payload;
//! the first payload byte is a variant tag. `quasaq-shell` moves the
//! frames over TCP, and because the codec round-trips the exact
//! [`Command`]/[`Effect`] values, a decision made over the wire is the
//! same decision the in-process drivers see.
//!
//! Decoding is total: malformed input yields a typed [`WireError`], never
//! a panic, since these paths are reachable from an untrusted peer.

use crate::command::{
    Admission, AdmitOrigin, Degraded, Effect, QopClass, RejectReason, Renegotiation, ServiceError,
    StatsSnapshot,
};
use crate::plane::SessionId;
use quasaq_core::Rejection;
use quasaq_media::{ColorDepth, FrameRate, QosRange, Resolution, VideoFormat, VideoId};
use quasaq_sim::{ServerId, SimDuration, SimTime};
use quasaq_vdbms::QueuedQuery;
use std::fmt;

/// Upper bound on a single frame's payload, generous for this vocabulary.
/// A peer announcing more is malformed (or hostile), not buffered.
pub const MAX_FRAME: u32 = 1 << 20;

/// What a remote client can ask the serving shell to do — the wire subset
/// of the command vocabulary. Congestion/fault commands stay shell-side
/// (they come from the shell's own data plane, not from clients).
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Admit a query now. The service class rides along for brownout
    /// shedding; whether the cluster *is* browned out stays the shell's
    /// call (it watches the data plane, the client does not).
    Admit {
        /// The bound query to admit.
        query: QueuedQuery,
        /// The request's service class.
        class: QopClass,
        /// The client's logical clock for this command.
        now: SimTime,
    },
    /// Drain retries due at or before `now`.
    Tick {
        /// The client's logical clock for this command.
        now: SimTime,
    },
    /// Release a previously admitted session.
    Teardown {
        /// The session to release.
        session: SessionId,
        /// True when the client gave up mid-stream.
        abandoned: bool,
        /// The client's logical clock for this command.
        now: SimTime,
    },
    /// Ask for a mid-stream downshift of one session with the given
    /// remaining backlog.
    Renegotiate {
        /// The session to downshift.
        session: SessionId,
        /// Bytes still unsent.
        backlog: f64,
        /// The client's logical clock for this command.
        now: SimTime,
    },
    /// Snapshot the plane's counters.
    Stats {
        /// The client's logical clock for this command.
        now: SimTime,
    },
    /// Flush the retry queue and report the stranded.
    Finish,
}

/// A decoding failure. Every variant is a protocol error on the peer's
/// side; the connection should be dropped, not retried.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The payload ended before the announced structure did.
    Truncated,
    /// A tag or field value outside the protocol.
    Malformed(&'static str),
    /// A frame header announced a payload larger than [`MAX_FRAME`].
    Oversize(u32),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "frame payload truncated"),
            WireError::Malformed(what) => write!(f, "malformed frame: {what}"),
            WireError::Oversize(n) => write!(f, "frame of {n} bytes exceeds {MAX_FRAME}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Accumulates raw bytes from a stream and yields complete frame
/// payloads. The shell feeds it whatever `read` returned; partial frames
/// stay buffered until the rest arrives.
#[derive(Debug, Default)]
pub struct FrameBuffer {
    buf: Vec<u8>,
}

impl FrameBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        FrameBuffer::default()
    }

    /// Appends raw stream bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Pops the next complete payload, `Ok(None)` until one is whole.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, WireError> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]);
        if len > MAX_FRAME {
            return Err(WireError::Oversize(len));
        }
        let total = 4 + len as usize;
        if self.buf.len() < total {
            return Ok(None);
        }
        let payload = self.buf[4..total].to_vec();
        self.buf.drain(..total);
        Ok(Some(payload))
    }
}

/// Wraps `payload` in a length prefix, appending the frame to `out`.
pub fn frame(payload: &[u8], out: &mut Vec<u8>) {
    debug_assert!(payload.len() <= MAX_FRAME as usize);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Encodes a request as one complete frame appended to `out`.
pub fn encode_request(req: &Request, out: &mut Vec<u8>) {
    let mut p = Vec::new();
    match req {
        Request::Admit { query, class, now } => {
            p.push(0);
            put_query(query, &mut p);
            p.push(match class {
                QopClass::Economy => 0,
                QopClass::Standard => 1,
                QopClass::Premium => 2,
            });
            put_u64(now.as_micros(), &mut p);
        }
        Request::Tick { now } => {
            p.push(1);
            put_u64(now.as_micros(), &mut p);
        }
        Request::Teardown { session, abandoned, now } => {
            p.push(2);
            put_u64(session.0, &mut p);
            p.push(u8::from(*abandoned));
            put_u64(now.as_micros(), &mut p);
        }
        Request::Renegotiate { session, backlog, now } => {
            p.push(3);
            put_u64(session.0, &mut p);
            put_f64(*backlog, &mut p);
            put_u64(now.as_micros(), &mut p);
        }
        Request::Stats { now } => {
            p.push(4);
            put_u64(now.as_micros(), &mut p);
        }
        Request::Finish => p.push(5),
    }
    frame(&p, out);
}

/// Decodes one request payload (the frame body, prefix already stripped).
pub fn decode_request(payload: &[u8]) -> Result<Request, WireError> {
    let mut c = Cursor::new(payload);
    let req = match c.u8()? {
        0 => {
            let query = take_query(&mut c)?;
            let class = match c.u8()? {
                0 => QopClass::Economy,
                1 => QopClass::Standard,
                2 => QopClass::Premium,
                _ => return Err(WireError::Malformed("service class")),
            };
            Request::Admit { query, class, now: SimTime::from_micros(c.u64()?) }
        }
        1 => Request::Tick { now: SimTime::from_micros(c.u64()?) },
        2 => Request::Teardown {
            session: SessionId(c.u64()?),
            abandoned: match c.u8()? {
                0 => false,
                1 => true,
                _ => return Err(WireError::Malformed("abandoned flag")),
            },
            now: SimTime::from_micros(c.u64()?),
        },
        3 => Request::Renegotiate {
            session: SessionId(c.u64()?),
            backlog: c.f64()?,
            now: SimTime::from_micros(c.u64()?),
        },
        4 => Request::Stats { now: SimTime::from_micros(c.u64()?) },
        5 => Request::Finish,
        _ => return Err(WireError::Malformed("request tag")),
    };
    c.finish()?;
    Ok(req)
}

/// Encodes one command's effect list as one complete frame appended to
/// `out`.
pub fn encode_effects(effects: &[Effect], out: &mut Vec<u8>) {
    let mut p = Vec::new();
    put_u32(effects.len() as u32, &mut p);
    for e in effects {
        put_effect(e, &mut p);
    }
    frame(&p, out);
}

/// Decodes one effect-list payload.
pub fn decode_effects(payload: &[u8]) -> Result<Vec<Effect>, WireError> {
    let mut c = Cursor::new(payload);
    let n = c.u32()?;
    if n as usize > payload.len() {
        // Each effect is at least one byte; a count beyond the payload
        // length cannot be honest.
        return Err(WireError::Malformed("effect count"));
    }
    let mut effects = Vec::with_capacity(n as usize);
    for _ in 0..n {
        effects.push(take_effect(&mut c)?);
    }
    c.finish()?;
    Ok(effects)
}

fn put_effect(e: &Effect, p: &mut Vec<u8>) {
    match e {
        Effect::Admitted(a) => {
            p.push(0);
            put_u64(a.session.0, p);
            put_u32(a.video.0, p);
            put_u32(a.server.0, p);
            put_u64(a.bytes, p);
            put_u64(a.rate_bps, p);
            put_u64(a.nominal.as_micros(), p);
            match a.utility {
                None => p.push(0),
                Some(u) => {
                    p.push(1);
                    put_f64(u, p);
                }
            }
            put_origin(a.origin, p);
            put_degraded(a.degraded, p);
        }
        Effect::Rejected { origin, reason } => {
            p.push(1);
            put_origin(*origin, p);
            p.push(match reason {
                RejectReason::Plan(Rejection::NoFeasiblePlan) => 0,
                RejectReason::Plan(Rejection::AdmissionFailed) => 1,
                RejectReason::BrownoutShed => 2,
                RejectReason::BrownoutInfeasible => 3,
                RejectReason::UnknownVideo => 4,
            });
        }
        Effect::Queued => p.push(2),
        Effect::Requeued => p.push(3),
        Effect::Dropped => p.push(4),
        Effect::Renegotiated(r) => {
            p.push(5);
            put_u64(r.session.0, p);
            put_u32(r.video.0, p);
            put_u32(r.server.0, p);
            put_u64(r.bytes, p);
            put_u64(r.rate_bps, p);
            put_u64(r.nominal.as_micros(), p);
            put_f64(r.bytes_saved, p);
            p.push(u8::from(r.downshift));
            p.push(u8::from(r.hunting));
        }
        Effect::TornDown { session } => {
            p.push(6);
            put_u64(session.0, p);
        }
        Effect::Finished { pending, displaced_pending } => {
            p.push(7);
            put_u64(*pending, p);
            put_u64(*displaced_pending, p);
        }
        Effect::Stats(s) => {
            p.push(8);
            put_u64(s.now.as_micros(), p);
            put_u64(s.admitted, p);
            put_u64(s.rejected, p);
            put_u64(s.live_sessions, p);
            put_u64(s.waiting, p);
            put_u64(s.renegotiations, p);
            put_f64(s.wait_mean_secs, p);
            put_f64(s.wait_p95_secs, p);
        }
        Effect::Error(err) => {
            p.push(9);
            match err {
                ServiceError::UnknownSession(sid) => {
                    p.push(0);
                    put_u64(sid.0, p);
                }
                ServiceError::NoAdmissionQueue => p.push(1),
                ServiceError::NoSessionContext(sid) => {
                    p.push(2);
                    put_u64(sid.0, p);
                }
            }
        }
    }
}

fn take_effect(c: &mut Cursor<'_>) -> Result<Effect, WireError> {
    Ok(match c.u8()? {
        0 => Effect::Admitted(Admission {
            session: SessionId(c.u64()?),
            video: VideoId(c.u32()?),
            server: ServerId(c.u32()?),
            bytes: c.u64()?,
            rate_bps: c.u64()?,
            nominal: SimDuration::from_micros(c.u64()?),
            utility: match c.u8()? {
                0 => None,
                1 => Some(c.f64()?),
                _ => return Err(WireError::Malformed("utility flag")),
            },
            origin: take_origin(c)?,
            degraded: take_degraded(c)?,
        }),
        1 => Effect::Rejected {
            origin: take_origin(c)?,
            reason: match c.u8()? {
                0 => RejectReason::Plan(Rejection::NoFeasiblePlan),
                1 => RejectReason::Plan(Rejection::AdmissionFailed),
                2 => RejectReason::BrownoutShed,
                3 => RejectReason::BrownoutInfeasible,
                4 => RejectReason::UnknownVideo,
                _ => return Err(WireError::Malformed("reject reason")),
            },
        },
        2 => Effect::Queued,
        3 => Effect::Requeued,
        4 => Effect::Dropped,
        5 => Effect::Renegotiated(Renegotiation {
            session: SessionId(c.u64()?),
            video: VideoId(c.u32()?),
            server: ServerId(c.u32()?),
            bytes: c.u64()?,
            rate_bps: c.u64()?,
            nominal: SimDuration::from_micros(c.u64()?),
            bytes_saved: c.f64()?,
            downshift: c.u8()? != 0,
            hunting: c.u8()? != 0,
        }),
        6 => Effect::TornDown { session: SessionId(c.u64()?) },
        7 => Effect::Finished { pending: c.u64()?, displaced_pending: c.u64()? },
        8 => Effect::Stats(StatsSnapshot {
            now: SimTime::from_micros(c.u64()?),
            admitted: c.u64()?,
            rejected: c.u64()?,
            live_sessions: c.u64()?,
            waiting: c.u64()?,
            renegotiations: c.u64()?,
            wait_mean_secs: c.f64()?,
            wait_p95_secs: c.f64()?,
        }),
        9 => Effect::Error(match c.u8()? {
            0 => ServiceError::UnknownSession(SessionId(c.u64()?)),
            1 => ServiceError::NoAdmissionQueue,
            2 => ServiceError::NoSessionContext(SessionId(c.u64()?)),
            _ => return Err(WireError::Malformed("error tag")),
        }),
        _ => return Err(WireError::Malformed("effect tag")),
    })
}

fn put_origin(o: AdmitOrigin, p: &mut Vec<u8>) {
    match o {
        AdmitOrigin::Arrival => p.push(0),
        AdmitOrigin::Retry { arrival } => {
            p.push(1);
            put_u64(arrival.as_micros(), p);
        }
        AdmitOrigin::Recovery { interrupted_at } => {
            p.push(2);
            put_u64(interrupted_at.as_micros(), p);
        }
        AdmitOrigin::Failover => p.push(3),
    }
}

fn take_origin(c: &mut Cursor<'_>) -> Result<AdmitOrigin, WireError> {
    Ok(match c.u8()? {
        0 => AdmitOrigin::Arrival,
        1 => AdmitOrigin::Retry { arrival: SimTime::from_micros(c.u64()?) },
        2 => AdmitOrigin::Recovery { interrupted_at: SimTime::from_micros(c.u64()?) },
        3 => AdmitOrigin::Failover,
        _ => return Err(WireError::Malformed("origin tag")),
    })
}

fn put_degraded(d: Degraded, p: &mut Vec<u8>) {
    match d {
        Degraded::No => p.push(0),
        Degraded::Brownout => p.push(1),
        Degraded::Failover { steps } => {
            p.push(2);
            put_u32(steps, p);
        }
    }
}

fn take_degraded(c: &mut Cursor<'_>) -> Result<Degraded, WireError> {
    Ok(match c.u8()? {
        0 => Degraded::No,
        1 => Degraded::Brownout,
        2 => Degraded::Failover { steps: c.u32()? },
        _ => return Err(WireError::Malformed("degraded tag")),
    })
}

fn put_query(q: &QueuedQuery, p: &mut Vec<u8>) {
    put_u32(q.video.0, p);
    put_u32(q.qos.min_resolution.width, p);
    put_u32(q.qos.min_resolution.height, p);
    put_u32(q.qos.max_resolution.width, p);
    put_u32(q.qos.max_resolution.height, p);
    p.push(q.qos.min_color.bits());
    put_u32(q.qos.min_frame_rate.millifps(), p);
    put_u32(q.qos.max_frame_rate.millifps(), p);
    match &q.qos.formats {
        None => p.push(0xff),
        Some(fs) => {
            debug_assert!(fs.len() < 0xff);
            p.push(fs.len() as u8);
            for f in fs {
                p.push(match f {
                    VideoFormat::Mpeg1 => 0,
                    VideoFormat::Mpeg2 => 1,
                });
            }
        }
    }
}

fn take_query(c: &mut Cursor<'_>) -> Result<QueuedQuery, WireError> {
    let video = VideoId(c.u32()?);
    let min_resolution = take_resolution(c)?;
    let max_resolution = take_resolution(c)?;
    let bits = c.u8()?;
    if !(1..=48).contains(&bits) {
        return Err(WireError::Malformed("color depth"));
    }
    let min_color = ColorDepth::from_bits(bits);
    let min_frame_rate = FrameRate::from_millifps(c.u32()?);
    let max_frame_rate = FrameRate::from_millifps(c.u32()?);
    let formats = match c.u8()? {
        0xff => None,
        n => {
            let mut fs = Vec::with_capacity(n as usize);
            for _ in 0..n {
                fs.push(match c.u8()? {
                    0 => VideoFormat::Mpeg1,
                    1 => VideoFormat::Mpeg2,
                    _ => return Err(WireError::Malformed("video format")),
                });
            }
            Some(fs)
        }
    };
    Ok(QueuedQuery {
        video,
        qos: QosRange {
            min_resolution,
            max_resolution,
            min_color,
            min_frame_rate,
            max_frame_rate,
            formats,
        },
    })
}

fn take_resolution(c: &mut Cursor<'_>) -> Result<Resolution, WireError> {
    let width = c.u32()?;
    let height = c.u32()?;
    if width == 0 || height == 0 {
        return Err(WireError::Malformed("resolution"));
    }
    Ok(Resolution { width, height })
}

fn put_u32(v: u32, p: &mut Vec<u8>) {
    p.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(v: u64, p: &mut Vec<u8>) {
    p.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(v: f64, p: &mut Vec<u8>) {
    p.extend_from_slice(&v.to_le_bytes());
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        if end > self.buf.len() {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        let s = self.take(4)?;
        Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        let s = self.take(8)?;
        Ok(u64::from_le_bytes([s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7]]))
    }

    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn finish(&mut self) -> Result<(), WireError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::Malformed("trailing bytes"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_query() -> QueuedQuery {
        QueuedQuery {
            video: VideoId(7),
            qos: QosRange {
                min_resolution: Resolution::new(320, 240),
                max_resolution: Resolution::new(640, 480),
                min_color: ColorDepth::BITS_12,
                min_frame_rate: FrameRate::LOW,
                max_frame_rate: FrameRate::NTSC_FILM,
                formats: Some(vec![VideoFormat::Mpeg1]),
            },
        }
    }

    fn roundtrip_request(req: Request) {
        let mut bytes = Vec::new();
        encode_request(&req, &mut bytes);
        let mut fb = FrameBuffer::new();
        fb.extend(&bytes);
        let payload = fb.next_frame().unwrap().expect("whole frame");
        assert_eq!(decode_request(&payload).unwrap(), req);
        assert!(fb.next_frame().unwrap().is_none());
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_request(Request::Admit {
            query: sample_query(),
            class: QopClass::Standard,
            now: SimTime::from_micros(1_500_000),
        });
        roundtrip_request(Request::Tick { now: SimTime::from_micros(42) });
        roundtrip_request(Request::Teardown {
            session: SessionId(3),
            abandoned: true,
            now: SimTime::from_micros(9),
        });
        roundtrip_request(Request::Renegotiate {
            session: SessionId(5),
            backlog: 1.25e6,
            now: SimTime::from_micros(77),
        });
        roundtrip_request(Request::Stats { now: SimTime::from_micros(1) });
        roundtrip_request(Request::Finish);
    }

    #[test]
    fn effects_roundtrip() {
        let effects = vec![
            Effect::Admitted(Admission {
                session: SessionId(0),
                video: VideoId(7),
                server: ServerId(2),
                bytes: 1 << 30,
                rate_bps: 1_500_000,
                nominal: SimDuration::from_micros(5_726_623),
                utility: Some(0.875),
                origin: AdmitOrigin::Retry { arrival: SimTime::from_micros(10) },
                degraded: Degraded::Failover { steps: 2 },
            }),
            Effect::Rejected {
                origin: AdmitOrigin::Arrival,
                reason: RejectReason::Plan(Rejection::AdmissionFailed),
            },
            Effect::Queued,
            Effect::Requeued,
            Effect::Dropped,
            Effect::Renegotiated(Renegotiation {
                session: SessionId(4),
                video: VideoId(1),
                server: ServerId(0),
                bytes: 123,
                rate_bps: 456,
                nominal: SimDuration::from_micros(789),
                bytes_saved: -10.5,
                downshift: false,
                hunting: true,
            }),
            Effect::TornDown { session: SessionId(9) },
            Effect::Finished { pending: 3, displaced_pending: 1 },
            Effect::Stats(StatsSnapshot {
                now: SimTime::from_micros(100),
                admitted: 5,
                rejected: 2,
                live_sessions: 3,
                waiting: 1,
                renegotiations: 4,
                wait_mean_secs: 0.25,
                wait_p95_secs: 1.5,
            }),
            Effect::Error(ServiceError::NoSessionContext(SessionId(11))),
        ];
        let mut bytes = Vec::new();
        encode_effects(&effects, &mut bytes);
        let mut fb = FrameBuffer::new();
        fb.extend(&bytes);
        let payload = fb.next_frame().unwrap().expect("whole frame");
        let back = decode_effects(&payload).unwrap();
        assert_eq!(back.len(), effects.len());
        // Effect is not PartialEq (it holds f64-bearing structs that are);
        // compare via Debug, which prints every field.
        assert_eq!(format!("{back:?}"), format!("{effects:?}"));
    }

    #[test]
    fn partial_frames_wait_for_the_rest() {
        let mut bytes = Vec::new();
        encode_request(&Request::Finish, &mut bytes);
        let mut fb = FrameBuffer::new();
        for b in &bytes[..bytes.len() - 1] {
            fb.extend(std::slice::from_ref(b));
            assert!(fb.next_frame().unwrap().is_none());
        }
        fb.extend(&bytes[bytes.len() - 1..]);
        assert!(fb.next_frame().unwrap().is_some());
    }

    #[test]
    fn malformed_input_is_an_error_not_a_panic() {
        assert_eq!(decode_request(&[0xee]), Err(WireError::Malformed("request tag")));
        assert_eq!(decode_request(&[0]), Err(WireError::Truncated));
        assert!(decode_effects(&[1, 0, 0, 0]).is_err());
        let mut fb = FrameBuffer::new();
        fb.extend(&u32::MAX.to_le_bytes());
        assert_eq!(fb.next_frame(), Err(WireError::Oversize(u32::MAX)));
        // Trailing garbage after a valid request is rejected.
        let mut bytes = Vec::new();
        encode_request(&Request::Finish, &mut bytes);
        let mut payload = bytes[4..].to_vec();
        payload.push(0);
        assert_eq!(decode_request(&payload), Err(WireError::Malformed("trailing bytes")));
    }
}
