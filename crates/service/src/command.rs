//! The typed command/effect vocabulary of the control plane.
//!
//! Every driver — the in-process throughput loop, the scenario executor,
//! the TCP shell — talks to [`crate::ControlPlane`] through these two
//! enums. Commands carry explicit [`SimTime`]s (the plane owns no clock),
//! effects carry everything a caller needs to mirror the decision into
//! its own data plane: which server to stream from, how many bytes at
//! what rate, and how the decision should be accounted.

use crate::plane::SessionId;
use quasaq_core::{PlanRequest, QopRequest, QopResolution, Rejection};
use quasaq_media::VideoId;
use quasaq_sim::{ServerId, SimDuration, SimTime};
use quasaq_vdbms::QueuedQuery;

/// Coarse service class of a request, derived from its requested
/// resolution. Brownout admission sheds load class by class: Economy
/// requests are rejected outright, Standard requests are degraded a
/// ladder step before admission, Premium requests degrade too but are the
/// last to be turned away.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum QopClass {
    /// Preview-resolution requests: the cheapest to serve and the first
    /// shed under brownout.
    Economy,
    /// VCD/TV-grade requests.
    Standard,
    /// DVD-grade requests.
    Premium,
}

/// Classifies a request for brownout shedding.
pub fn qop_class(qop: &QopRequest) -> QopClass {
    match qop.resolution {
        QopResolution::Preview => QopClass::Economy,
        QopResolution::VcdLike | QopResolution::TvLike => QopClass::Standard,
        QopResolution::DvdLike => QopClass::Premium,
    }
}

/// One session the congestion handlers may renegotiate: the caller's
/// data plane reports how many bytes the session still owes.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// The control-plane session.
    pub session: SessionId,
    /// Bytes still unsent at this instant (the data plane's backlog).
    pub backlog: f64,
}

/// What a caller can ask the control plane to do. Every variant that can
/// consult the retry queue or the RNG carries `now`; the plane never
/// reads a clock.
#[derive(Debug, Clone)]
pub enum Command {
    /// A fresh arrival. `brownout` is the caller's congestion verdict for
    /// this instant (frozen per instant so every query in a burst sees
    /// the same policy); `class` drives the shedding ladder while it
    /// holds.
    Admit { query: QueuedQuery, class: QopClass, brownout: bool, now: SimTime },
    /// Drain every queued retry due at or before `now`.
    Tick { now: SimTime },
    /// A session left the data plane: release its reservation and drop
    /// its context. `abandoned` marks a mid-stream patience abandonment
    /// (recorded against the queue) rather than a completion.
    Teardown { session: SessionId, abandoned: bool, now: SimTime },
    /// A live session was cut by a server crash with `remaining` bytes
    /// unsent: walk the QoP ladder down across the survivors, requeue, or
    /// drop.
    Displace { session: SessionId, remaining: f64, now: SimTime },
    /// A server crossed into congestion: renegotiate up to the policy cap
    /// of the given sessions one QoP ladder step down.
    CongestionOnset { server: ServerId, candidates: Vec<Candidate>, now: SimTime },
    /// A server cleared: renegotiate at most one previously degraded
    /// session back toward its original request, rate-bounded per server.
    CongestionCleared { server: ServerId, candidates: Vec<Candidate>, now: SimTime },
    /// A server crashed: bar it from admission and bulk-release its
    /// reservations.
    ServerDown { server: ServerId },
    /// A crashed server came back.
    ServerUp { server: ServerId },
    /// A link set-point re-rated a server's network capacity; the
    /// admission view follows it.
    SetNetCapacity { server: ServerId, bps: f64 },
    /// Warm the plan cache for a same-instant arrival batch. Consumes no
    /// RNG and reserves nothing; a no-op unless a caching Quality Manager
    /// is behind the plane.
    Prefetch { requests: Vec<PlanRequest> },
    /// End of run: flush the retry queue, reporting who never got served.
    Finish,
    /// Snapshot the plane's counters.
    Stats { now: SimTime },
}

/// Why the plane turned a request away.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The planner/manager refused and the queue (if any) would not hold
    /// the query any longer: the underlying refusal plus the terminal
    /// queue disposition.
    Plan(Rejection),
    /// Shed outright by service class while browned out.
    BrownoutShed,
    /// Browned out and even the degraded form was infeasible (a
    /// browned-out system does not queue).
    BrownoutInfeasible,
    /// The requested video is not in the catalog (reachable only through
    /// the wire front end; generated traffic never asks for one).
    UnknownVideo,
}

impl RejectReason {
    /// True when brownout shedding (not feasibility) turned the request
    /// away.
    pub fn is_brownout(self) -> bool {
        matches!(self, RejectReason::BrownoutShed | RejectReason::BrownoutInfeasible)
    }
}

/// Where an admission (or terminal rejection) came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitOrigin {
    /// A fresh arrival, admitted (or rejected) on the spot.
    Arrival,
    /// A queued query re-admitted (or finally dropped) on a retry tick.
    Retry {
        /// When the client first asked (the wait statistic's anchor).
        arrival: SimTime,
    },
    /// A crash-displaced session re-serviced from the retry queue —
    /// admitted once already, so it counts as a recovery, not a second
    /// admission.
    Recovery {
        /// The crash instant.
        interrupted_at: SimTime,
    },
    /// A crash-displaced session immediately re-placed on a survivor.
    Failover,
}

/// How far below its request an admission landed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Degraded {
    /// Admitted at the requested quality.
    No,
    /// Admitted one ladder step down under brownout.
    Brownout,
    /// Admitted after a failover walked the ladder down `steps` times
    /// (0 = a survivor took the original quality).
    Failover {
        /// Ladder steps consumed before a survivor admitted.
        steps: u32,
    },
}

/// One admitted session: everything the data plane needs to start the
/// stream and the accounting needs to classify it.
#[derive(Debug, Clone)]
pub struct Admission {
    /// The control-plane session handle (quote it back in `Teardown`,
    /// `Displace`, and congestion candidates).
    pub session: SessionId,
    /// The video being served.
    pub video: VideoId,
    /// The server the plan placed it on.
    pub server: ServerId,
    /// Bytes to stream (scaled down on a mid-stream failover).
    pub bytes: u64,
    /// Pacing rate.
    pub rate_bps: u64,
    /// Unstretched duration (bytes / rate).
    pub nominal: SimDuration,
    /// Perceptual utility of the admitted plan (QuaSAQ systems only).
    pub utility: Option<f64>,
    /// Which path admitted it.
    pub origin: AdmitOrigin,
    /// Whether (and why) it landed below the requested quality.
    pub degraded: Degraded,
}

/// One successful mid-stream renegotiation. The session keeps its
/// control-plane id; the caller replaces its data-plane stream with
/// `bytes` at `rate_bps` on `server`.
#[derive(Debug, Clone)]
pub struct Renegotiation {
    /// The renegotiated session.
    pub session: SessionId,
    /// Its video (for access accounting).
    pub video: VideoId,
    /// The new plan's server.
    pub server: ServerId,
    /// Remaining bytes at the new quality.
    pub bytes: u64,
    /// The new pacing rate.
    pub rate_bps: u64,
    /// Unstretched duration of the remainder.
    pub nominal: SimDuration,
    /// Bytes the re-rate took off the wire (negative for an upshift).
    pub bytes_saved: f64,
    /// True for a congestion downshift, false for a recovery upshift.
    pub downshift: bool,
    /// Downshift inside the victim's `upgrade_period` after an upshift —
    /// the loop hunting instead of settling.
    pub hunting: bool,
}

/// Counters the plane keeps for its own decisions (what a remote client
/// can observe without owning the driver's metrics).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StatsSnapshot {
    /// The `now` the caller asked at.
    pub now: SimTime,
    /// Fresh admissions (arrivals + retries; failovers and recoveries
    /// were admitted once already and stay out).
    pub admitted: u64,
    /// Terminal rejections of fresh queries.
    pub rejected: u64,
    /// Sessions currently live.
    pub live_sessions: u64,
    /// Queries waiting in the retry queue.
    pub waiting: u64,
    /// Successful mid-stream renegotiations.
    pub renegotiations: u64,
    /// Mean admission wait so far, seconds.
    pub wait_mean_secs: f64,
    /// p95 admission wait so far, seconds (0 when nothing was admitted).
    pub wait_p95_secs: f64,
}

/// A command that could not be applied. These replace what used to be
/// `unwrap`/`expect` panics on paths now reachable from the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceError {
    /// No live session under that id.
    UnknownSession(SessionId),
    /// `Teardown { abandoned: true }` without an admission queue to
    /// account it against.
    NoAdmissionQueue,
    /// The session exists but carries no context (the plane was built
    /// with `track_ctx: false`), so it cannot be displaced or
    /// renegotiated.
    NoSessionContext(SessionId),
}

/// What the plane did in response to a command.
#[derive(Debug, Clone)]
pub enum Effect {
    /// A session was admitted; mirror it into the data plane.
    Admitted(Admission),
    /// A fresh query left the system unserved.
    Rejected {
        /// Which path rejected it.
        origin: AdmitOrigin,
        /// Why.
        reason: RejectReason,
    },
    /// A fresh arrival failed admission and is parked for a backed-off
    /// retry (not a terminal outcome; retries surface from `Tick`).
    Queued,
    /// A displaced session re-entered the retry queue after failover
    /// found no feasible replica.
    Requeued,
    /// A displaced session is lost for good: no survivor and no queue
    /// slot. Stays out of the admission accounting — it was admitted
    /// once already.
    Dropped,
    /// A session was renegotiated mid-stream; replace its data-plane
    /// stream.
    Renegotiated(Renegotiation),
    /// A session was released (reservation freed, context dropped).
    TornDown {
        /// The session that ended.
        session: SessionId,
    },
    /// End-of-run queue flush: `pending` fresh queries never served
    /// (fold into the rejected total) and `displaced_pending` displaced
    /// sessions lost (fold into the fault accounting).
    Finished {
        /// Fresh queries still waiting at the horizon.
        pending: u64,
        /// Displaced sessions still waiting at the horizon.
        displaced_pending: u64,
    },
    /// The plane's own counters.
    Stats(StatsSnapshot),
    /// The command could not be applied.
    Error(ServiceError),
}
