//! # quasaq-service — the sans-IO QoS control plane
//!
//! The QoS *decisions* of the reproduction — admission (with the retry
//! queue and brownout ladder), plan enumeration and caching, crash
//! failover, and mid-stream renegotiation — extracted from the experiment
//! drivers into one pure state machine:
//!
//! * [`plane`] — [`ControlPlane`]: the state machine. Explicit
//!   [`quasaq_sim::SimTime`] in every command, no threads, no clocks, no
//!   I/O; a test enforces the crate's dependency tree stays that way.
//! * [`command`] — the typed vocabulary: [`Command`] in, [`Effect`] out.
//! * [`admission`] — the bounded deterministic retry queue (moved here
//!   from `quasaq-workload`, which re-exports it).
//! * [`wire`] — a length-prefixed binary codec for the command/effect
//!   vocabulary, pure bytes in/bytes out; `quasaq-shell` puts it on a
//!   socket.
//!
//! Every driver — the in-process throughput loop, the scenario executor,
//! the TCP runtime shell — issues the same commands against the same
//! core, so a decision made over a socket is bit-identical to one made
//! in-process for the same command sequence.

pub mod admission;
pub mod command;
pub mod plane;
pub mod wire;

pub use admission::{
    brownout_action, AdmissionConfig, AdmissionQueue, BrownoutAction, Disposition, QueueMetrics,
    Waiting,
};
pub use command::{
    qop_class, Admission, AdmitOrigin, Candidate, Command, Degraded, Effect, QopClass,
    RejectReason, Renegotiation, ServiceError, StatsSnapshot,
};
pub use plane::{AdaptPolicy, ControlPlane, PlaneConfig, SessionId, SystemCore};
