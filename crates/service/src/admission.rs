//! The queued admission front end: backpressure for rejected queries.
//!
//! The paper's architecture (§3) places an admission step between query
//! parsing and streaming, with the User Profile's degraded alternatives
//! offered as a "second chance" when admission fails. The synchronous
//! drivers model a client that issues one request and walks away on
//! rejection; real clients *wait*. This module adds that behaviour as a
//! bounded, deterministic queue in simulated time:
//!
//! * a rejected query waits and retries with exponential backoff,
//! * each retry walks one step down the profile's degradation ladder
//!   (lower floors reach more replicas, so a waiting client converges on
//!   something admittable),
//! * a client abandons once its patience is exhausted — both while
//!   queued and mid-stream, when a best-effort session overruns its
//!   nominal duration by more than the patience window.
//!
//! Every decision is keyed on `(SimTime, sequence)` in a `BTreeMap`, so
//! queue behaviour is a pure function of the run's inputs and results
//! stay bit-identical under the scenario-parallel runner.

use quasaq_core::{Rejection, UserProfile};
use quasaq_sim::{OnlineStats, Series, SimDuration, SimTime};
use quasaq_vdbms::QueuedQuery;
use std::collections::BTreeMap;

/// Front-end parameters.
#[derive(Debug, Clone)]
pub struct AdmissionConfig {
    /// Maximum queries waiting at once; arrivals beyond this are dropped
    /// (load shedding).
    pub queue_capacity: usize,
    /// Delay before the first retry.
    pub base_backoff: SimDuration,
    /// Multiplier applied to the delay on each further retry.
    pub backoff_factor: f64,
    /// Ceiling on the retry delay.
    pub max_backoff: SimDuration,
    /// How long a client is willing to wait past its arrival — in the
    /// queue, and past a session's nominal duration mid-stream.
    pub patience: SimDuration,
    /// Profile whose weights order the degradation ladder walked on
    /// retries.
    pub profile: UserProfile,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            queue_capacity: 256,
            base_backoff: SimDuration::from_secs(2),
            backoff_factor: 2.0,
            max_backoff: SimDuration::from_secs(32),
            patience: SimDuration::from_secs(60),
            profile: UserProfile::new("queued"),
        }
    }
}

/// What the queue recorded over one run. `PartialEq` compares floats
/// bit-for-bit (via [`OnlineStats`] / [`Series`] equality) for the
/// serial-vs-parallel determinism checks.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueueMetrics {
    /// Wait between arrival and admission, in seconds, over every
    /// admitted query (0 for queries admitted on arrival).
    pub wait: OnlineStats,
    /// Re-admission attempts beyond each query's first.
    pub retries: u64,
    /// Retries that stepped down the degradation ladder.
    pub degraded: u64,
    /// Arrivals dropped because the queue was full.
    pub overflow: u64,
    /// Queries dropped as statically infeasible with the ladder exhausted.
    pub hopeless: u64,
    /// Clients that gave up while waiting in the queue.
    pub abandoned_waiting: u64,
    /// Admitted sessions cancelled mid-stream after overrunning their
    /// nominal duration by more than the patience window.
    pub abandoned_streaming: u64,
    /// Queries still queued when the run ended.
    pub pending_at_horizon: u64,
    /// Largest queue depth observed.
    pub peak_waiting: u64,
    /// Cumulative abandonments (waiting + streaming) over time.
    pub abandonment: Series,
}

impl QueueMetrics {
    /// Total abandonments, waiting and mid-stream.
    pub fn abandoned(&self) -> u64 {
        self.abandoned_waiting + self.abandoned_streaming
    }
}

/// One query waiting for readmission.
#[derive(Debug, Clone)]
pub struct Waiting {
    /// The request, with its (possibly already degraded) QoS range.
    pub query: QueuedQuery,
    /// When the client first asked.
    pub arrival: SimTime,
    /// Admission attempts consumed so far (>= 1 once queued).
    pub attempts: u32,
    /// Set when this entry is a session displaced by a server crash
    /// (the crash instant), re-entering the queue because failover found
    /// no feasible replica. Displaced entries reuse the queue's backoff,
    /// ladder, patience, and capacity machinery but stay out of its
    /// admission accounting: they were already admitted once, so counting
    /// them again would break `admitted + rejected == queries`.
    pub interrupted: Option<SimTime>,
}

/// Terminal-or-not outcome of handing a failed attempt to the queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// Scheduled for a retry; not a terminal outcome.
    Queued,
    /// Dropped: the queue was full.
    Overflow,
    /// Dropped: statically infeasible with no ladder step left.
    Hopeless,
    /// Dropped: the next retry would land past the client's patience.
    Abandoned,
}

impl Disposition {
    /// True when the query left the system without being admitted.
    pub fn is_rejection(self) -> bool {
        self != Disposition::Queued
    }
}

/// What brownout admission does with an arrival of a given service
/// class while the system is shedding load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BrownoutAction {
    /// Admit the request one degradation-ladder step below what it asked
    /// for; reject it only if even the degraded form is infeasible.
    DegradeThenReject,
    /// Turn the request away immediately — its class is below the
    /// brownout floor.
    Reject,
}

/// The brownout shedding policy: Economy-class requests are refused
/// outright (they contribute the least utility per byte and their users
/// have the least invested), while Standard and Premium requests are
/// offered a degraded session before being turned away.
pub fn brownout_action(class: crate::command::QopClass) -> BrownoutAction {
    match class {
        crate::command::QopClass::Economy => BrownoutAction::Reject,
        crate::command::QopClass::Standard | crate::command::QopClass::Premium => {
            BrownoutAction::DegradeThenReject
        }
    }
}

/// The bounded retry queue. All state lives in a `BTreeMap` keyed by
/// `(ready_at, seq)`: iteration order — and therefore every retry and
/// abandonment decision — is deterministic.
pub struct AdmissionQueue {
    cfg: AdmissionConfig,
    waiting: BTreeMap<(SimTime, u64), Waiting>,
    seq: u64,
    metrics: QueueMetrics,
    abandoned_total: u64,
}

impl AdmissionQueue {
    /// Creates an empty queue.
    pub fn new(cfg: AdmissionConfig) -> Self {
        assert!(cfg.queue_capacity > 0, "queue capacity must be positive");
        assert!(cfg.backoff_factor >= 1.0, "backoff must not shrink");
        AdmissionQueue {
            cfg,
            waiting: BTreeMap::new(),
            seq: 0,
            metrics: QueueMetrics::default(),
            abandoned_total: 0,
        }
    }

    /// The configuration this queue runs under.
    pub fn config(&self) -> &AdmissionConfig {
        &self.cfg
    }

    /// Queries currently waiting.
    pub fn len(&self) -> usize {
        self.waiting.len()
    }

    /// True when nothing is waiting.
    pub fn is_empty(&self) -> bool {
        self.waiting.is_empty()
    }

    /// Metrics collected so far.
    pub fn metrics(&self) -> &QueueMetrics {
        &self.metrics
    }

    /// Earliest instant a waiting query becomes due.
    pub fn next_ready(&self) -> Option<SimTime> {
        self.waiting.keys().next().map(|&(t, _)| t)
    }

    /// Pops the next query due at or before `now`, counting it as a retry
    /// attempt.
    pub fn pop_due(&mut self, now: SimTime) -> Option<Waiting> {
        let &key = self.waiting.keys().next().filter(|&&(t, _)| t <= now)?;
        let w = self.waiting.remove(&key).expect("key just observed");
        if w.interrupted.is_none() {
            self.metrics.retries += 1;
        }
        Some(w)
    }

    /// Hands a failed admission attempt to the queue. Walks one ladder
    /// step when the profile still has one, then either schedules a
    /// backed-off retry or drops the query (full queue, hopeless request,
    /// or patience exhausted). The caller folds any rejection disposition
    /// into its rejected count.
    pub fn admit_failure(&mut self, now: SimTime, mut w: Waiting, why: &Rejection) -> Disposition {
        // Displaced sessions ride the machinery without touching the
        // admission accounting; the fault metrics track their fate.
        let fresh = w.interrupted.is_none();
        // Walk the second-chance ladder: lower floors reach more replicas
        // (and cheaper plans), so every retry asks for something easier.
        // Dimensions with lower profile weight are relaxed first.
        match self.cfg.profile.degrade_options(&w.query.qos).into_iter().next() {
            Some(next) => {
                w.query.qos = next;
                if fresh {
                    self.metrics.degraded += 1;
                }
            }
            None if !why.is_transient() => {
                // Bottom of the ladder and still no feasible plan: waiting
                // cannot conjure a replica.
                if fresh {
                    self.metrics.hopeless += 1;
                }
                return Disposition::Hopeless;
            }
            None => {} // Bottom of the ladder, but overload clears: retry.
        }
        // k-th failure backs off base * factor^(k-1), capped.
        let exponent = w.attempts.saturating_sub(1).min(32);
        w.attempts += 1;
        let delay = self
            .cfg
            .base_backoff
            .mul_f64(self.cfg.backoff_factor.powi(exponent as i32))
            .min(self.cfg.max_backoff)
            .max(SimDuration::from_micros(1));
        let ready = now + delay;
        if ready > w.arrival + self.cfg.patience {
            if fresh {
                self.metrics.abandoned_waiting += 1;
                self.abandoned_total += 1;
                self.metrics.abandonment.push(now, self.abandoned_total as f64);
            }
            return Disposition::Abandoned;
        }
        if self.waiting.len() >= self.cfg.queue_capacity {
            if fresh {
                self.metrics.overflow += 1;
            }
            return Disposition::Overflow;
        }
        let seq = self.seq;
        self.seq += 1;
        self.waiting.insert((ready, seq), w);
        self.metrics.peak_waiting = self.metrics.peak_waiting.max(self.waiting.len() as u64);
        Disposition::Queued
    }

    /// Records an admission (direct or via retry): the wait statistic
    /// covers every admitted query, so its count equals the run's admitted
    /// total.
    pub fn record_admitted(&mut self, now: SimTime, arrival: SimTime) {
        self.metrics.wait.push((now - arrival).as_secs_f64());
    }

    /// Records a mid-stream abandonment (session cancelled after
    /// overrunning nominal duration + patience).
    pub fn record_stream_abandoned(&mut self, at: SimTime) {
        self.metrics.abandoned_streaming += 1;
        self.abandoned_total += 1;
        self.metrics.abandonment.push(at, self.abandoned_total as f64);
    }

    /// Ends the run. Every fresh query still waiting becomes a rejection;
    /// displaced sessions still waiting were admitted once and are lost
    /// instead. Returns `(fresh, displaced)` pending counts — the caller
    /// folds the first into its rejected total and the second into the
    /// fault metrics' dropped total.
    pub fn finish(&mut self) -> (u64, u64) {
        let displaced = self.waiting.values().filter(|w| w.interrupted.is_some()).count() as u64;
        let fresh = self.waiting.len() as u64 - displaced;
        self.metrics.pending_at_horizon = fresh;
        self.waiting.clear();
        (fresh, displaced)
    }

    /// Consumes the queue, yielding its metrics.
    pub fn into_metrics(mut self) -> QueueMetrics {
        std::mem::take(&mut self.metrics)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quasaq_core::{QopRequest, UserProfile};
    use quasaq_media::VideoId;

    fn waiting(at: SimTime) -> Waiting {
        let profile = UserProfile::new("u");
        Waiting {
            query: QueuedQuery {
                video: VideoId(0),
                qos: profile.translate(&QopRequest::diagnostic()),
            },
            arrival: at,
            attempts: 1,
            interrupted: None,
        }
    }

    fn displaced(at: SimTime) -> Waiting {
        Waiting { interrupted: Some(at), ..waiting(at) }
    }

    #[test]
    fn backoff_grows_and_caps() {
        let cfg = AdmissionConfig {
            base_backoff: SimDuration::from_secs(2),
            backoff_factor: 2.0,
            max_backoff: SimDuration::from_secs(5),
            patience: SimDuration::from_secs(1_000),
            ..AdmissionConfig::default()
        };
        let mut q = AdmissionQueue::new(cfg);
        let t0 = SimTime::from_secs(10);
        let mut w = waiting(t0);
        // First failure: retry after base (2 s).
        assert_eq!(q.admit_failure(t0, w, &Rejection::AdmissionFailed), Disposition::Queued);
        assert_eq!(q.next_ready(), Some(t0 + SimDuration::from_secs(2)));
        assert!(q.pop_due(t0).is_none(), "not due yet");
        let due = t0 + SimDuration::from_secs(2);
        w = q.pop_due(due).expect("due now");
        assert_eq!(w.attempts, 2);
        // Second failure: 2 * 2 = 4 s.
        assert_eq!(q.admit_failure(due, w, &Rejection::AdmissionFailed), Disposition::Queued);
        assert_eq!(q.next_ready(), Some(due + SimDuration::from_secs(4)));
        let due2 = due + SimDuration::from_secs(4);
        w = q.pop_due(due2).expect("due again");
        // Third failure: 8 s capped at 5 s.
        assert_eq!(q.admit_failure(due2, w, &Rejection::AdmissionFailed), Disposition::Queued);
        assert_eq!(q.next_ready(), Some(due2 + SimDuration::from_secs(5)));
        assert_eq!(q.metrics().retries, 2);
    }

    #[test]
    fn retries_walk_the_ladder() {
        let mut q = AdmissionQueue::new(AdmissionConfig::default());
        let t = SimTime::from_secs(1);
        let original = waiting(t);
        let floor = original.query.qos.min_resolution;
        assert_eq!(q.admit_failure(t, original, &Rejection::AdmissionFailed), Disposition::Queued);
        let w = q.pop_due(t + SimDuration::from_secs(60)).expect("due");
        assert!(w.query.qos.min_resolution < floor, "one ladder step taken");
        assert_eq!(q.metrics().degraded, 1);
    }

    #[test]
    fn hopeless_requests_drop_at_ladder_bottom() {
        let mut q = AdmissionQueue::new(AdmissionConfig::default());
        let t = SimTime::ZERO;
        let mut w = waiting(t);
        // Grind the range to the global floor so no degrade step remains.
        while let Some(r) = q.cfg.profile.degrade_options(&w.query.qos).into_iter().next() {
            w.query.qos = r;
        }
        // Static infeasibility at the bottom: dropped as hopeless.
        assert_eq!(
            q.admit_failure(t, w.clone(), &Rejection::NoFeasiblePlan),
            Disposition::Hopeless
        );
        // Transient overload at the bottom: still worth waiting.
        assert_eq!(q.admit_failure(t, w, &Rejection::AdmissionFailed), Disposition::Queued);
        assert_eq!(q.metrics().hopeless, 1);
    }

    #[test]
    fn patience_bounds_waiting() {
        let cfg = AdmissionConfig {
            base_backoff: SimDuration::from_secs(10),
            backoff_factor: 1.0,
            max_backoff: SimDuration::from_secs(10),
            patience: SimDuration::from_secs(25),
            ..AdmissionConfig::default()
        };
        let mut q = AdmissionQueue::new(cfg);
        let t0 = SimTime::ZERO;
        let mut w = waiting(t0);
        // Retries at 10 s and 20 s fit inside 25 s of patience...
        for now in [t0, SimTime::from_secs(10)] {
            assert_eq!(q.admit_failure(now, w, &Rejection::AdmissionFailed), Disposition::Queued);
            w = q.pop_due(now + SimDuration::from_secs(10)).expect("due");
        }
        // ...but the next would land at 30 s: the client walks away.
        let now = SimTime::from_secs(20);
        assert_eq!(q.admit_failure(now, w, &Rejection::AdmissionFailed), Disposition::Abandoned);
        assert_eq!(q.metrics().abandoned_waiting, 1);
        assert_eq!(q.metrics().abandonment.len(), 1);
        assert!(q.is_empty());
    }

    #[test]
    fn capacity_sheds_load() {
        let cfg = AdmissionConfig { queue_capacity: 2, ..AdmissionConfig::default() };
        let mut q = AdmissionQueue::new(cfg);
        let t = SimTime::ZERO;
        assert_eq!(
            q.admit_failure(t, waiting(t), &Rejection::AdmissionFailed),
            Disposition::Queued
        );
        assert_eq!(
            q.admit_failure(t, waiting(t), &Rejection::AdmissionFailed),
            Disposition::Queued
        );
        assert_eq!(
            q.admit_failure(t, waiting(t), &Rejection::AdmissionFailed),
            Disposition::Overflow
        );
        assert_eq!(q.metrics().overflow, 1);
        assert_eq!(q.metrics().peak_waiting, 2);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn finish_counts_pending() {
        let mut q = AdmissionQueue::new(AdmissionConfig::default());
        let t = SimTime::ZERO;
        q.admit_failure(t, waiting(t), &Rejection::AdmissionFailed);
        q.record_admitted(SimTime::from_secs(3), t);
        q.record_stream_abandoned(SimTime::from_secs(4));
        assert_eq!(q.finish(), (1, 0));
        let m = q.into_metrics();
        assert_eq!(m.pending_at_horizon, 1);
        assert_eq!(m.wait.count(), 1);
        assert_eq!(m.abandoned(), 1);
        assert!((m.wait.mean() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn displaced_entries_back_off_and_degrade_without_queue_accounting() {
        let cfg = AdmissionConfig {
            base_backoff: SimDuration::from_secs(2),
            backoff_factor: 2.0,
            max_backoff: SimDuration::from_secs(32),
            patience: SimDuration::from_secs(1_000),
            ..AdmissionConfig::default()
        };
        let mut q = AdmissionQueue::new(cfg);
        let crash = SimTime::from_secs(100);
        let floor = displaced(crash).query.qos.min_resolution;
        // Same backoff schedule as a fresh entry: 2 s, then 4 s.
        assert_eq!(
            q.admit_failure(crash, displaced(crash), &Rejection::AdmissionFailed),
            Disposition::Queued
        );
        assert_eq!(q.next_ready(), Some(crash + SimDuration::from_secs(2)));
        let due = crash + SimDuration::from_secs(2);
        let w = q.pop_due(due).expect("due now");
        assert_eq!(w.attempts, 2);
        assert_eq!(w.interrupted, Some(crash), "displacement marker survives the round trip");
        assert!(w.query.qos.min_resolution < floor, "ladder step still taken");
        assert_eq!(q.admit_failure(due, w, &Rejection::AdmissionFailed), Disposition::Queued);
        assert_eq!(q.next_ready(), Some(due + SimDuration::from_secs(4)));
        // ...but none of it shows up in the admission accounting.
        let m = q.metrics();
        assert_eq!(m.retries, 0);
        assert_eq!(m.degraded, 0);
    }

    #[test]
    fn displaced_drops_stay_out_of_rejection_metrics() {
        // Patience exhaustion: the disposition is terminal but the
        // abandonment counters (which decompose the rejected total) stay
        // untouched — the session was admitted once already.
        let cfg = AdmissionConfig {
            base_backoff: SimDuration::from_secs(10),
            backoff_factor: 1.0,
            max_backoff: SimDuration::from_secs(10),
            patience: SimDuration::from_secs(5),
            ..AdmissionConfig::default()
        };
        let mut q = AdmissionQueue::new(cfg);
        let crash = SimTime::ZERO;
        assert_eq!(
            q.admit_failure(crash, displaced(crash), &Rejection::AdmissionFailed),
            Disposition::Abandoned
        );
        assert_eq!(q.metrics().abandoned_waiting, 0);
        assert_eq!(q.metrics().abandonment.len(), 0);
        // Overflow: same story.
        let cfg = AdmissionConfig { queue_capacity: 1, ..AdmissionConfig::default() };
        let mut q = AdmissionQueue::new(cfg);
        q.admit_failure(crash, waiting(crash), &Rejection::AdmissionFailed);
        assert_eq!(
            q.admit_failure(crash, displaced(crash), &Rejection::AdmissionFailed),
            Disposition::Overflow
        );
        assert_eq!(q.metrics().overflow, 0);
        // Hopeless at the ladder bottom: counted for fresh, not displaced.
        let mut q = AdmissionQueue::new(AdmissionConfig::default());
        let mut w = displaced(crash);
        while let Some(r) = q.cfg.profile.degrade_options(&w.query.qos).into_iter().next() {
            w.query.qos = r;
        }
        assert_eq!(q.admit_failure(crash, w, &Rejection::NoFeasiblePlan), Disposition::Hopeless);
        assert_eq!(q.metrics().hopeless, 0);
    }

    #[test]
    fn finish_separates_displaced_pending_from_fresh() {
        let mut q = AdmissionQueue::new(AdmissionConfig::default());
        let t = SimTime::ZERO;
        q.admit_failure(t, waiting(t), &Rejection::AdmissionFailed);
        q.admit_failure(t, displaced(t), &Rejection::AdmissionFailed);
        q.admit_failure(t, displaced(t), &Rejection::AdmissionFailed);
        assert_eq!(q.finish(), (1, 2));
        assert_eq!(q.into_metrics().pending_at_horizon, 1);
    }

    #[test]
    fn brownout_sheds_by_class() {
        use crate::command::QopClass;
        assert_eq!(brownout_action(QopClass::Economy), BrownoutAction::Reject);
        assert_eq!(brownout_action(QopClass::Standard), BrownoutAction::DegradeThenReject);
        assert_eq!(brownout_action(QopClass::Premium), BrownoutAction::DegradeThenReject);
    }

    #[test]
    fn due_order_is_fifo_within_equal_ready_times() {
        let cfg = AdmissionConfig {
            base_backoff: SimDuration::from_secs(1),
            backoff_factor: 1.0,
            max_backoff: SimDuration::from_secs(1),
            ..AdmissionConfig::default()
        };
        let mut q = AdmissionQueue::new(cfg);
        let t = SimTime::ZERO;
        let mut a = waiting(t);
        a.query.video = VideoId(1);
        let mut b = waiting(t);
        b.query.video = VideoId(2);
        q.admit_failure(t, a, &Rejection::AdmissionFailed);
        q.admit_failure(t, b, &Rejection::AdmissionFailed);
        let due = SimTime::from_secs(1);
        assert_eq!(q.pop_due(due).unwrap().query.video, VideoId(1));
        assert_eq!(q.pop_due(due).unwrap().query.video, VideoId(2));
    }
}
