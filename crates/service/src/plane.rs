//! The sans-IO control plane: one state machine, every driver.
//!
//! [`ControlPlane`] owns everything the QoS control path needs to decide
//! — the system under test (planner / QoS API / Quality Manager), the
//! retry queue, the degradation ladder, the tie-breaking RNG, the
//! crashed-server set, and per-session context — and nothing it does not:
//! no threads, no clocks, no sockets, no data plane. Time arrives inside
//! each [`Command`]; decisions leave as [`Effect`]s the caller mirrors
//! into whatever carries the bytes (the fluid simulation in-process, real
//! streams behind the TCP shell).
//!
//! The decision logic here is the former `workload::throughput` admission
//! / failover / renegotiation code moved verbatim: the same calls in the
//! same order against the same RNG stream, so a driver issuing the same
//! command sequence gets bit-identical decisions to the pre-refactor
//! in-process loop (held to it by `workload`'s differential proptests
//! against the frozen oracle).

use crate::admission::{brownout_action, AdmissionConfig, AdmissionQueue, BrownoutAction, Waiting};
use crate::command::{
    Admission, AdmitOrigin, Candidate, Command, Degraded, Effect, QopClass, RejectReason,
    Renegotiation, ServiceError, StatsSnapshot,
};
use quasaq_core::{
    AdmittedPlan, PlanExecutor, PlanRequest, QopSecurity, QosWeights, QualityManager, Rejection,
    UserProfile, UtilityGain,
};
use quasaq_media::QosRange;
use quasaq_qosapi::{CompositeQosApi, ReservationId, ResourceKey, ResourceKind, ResourceVector};
use quasaq_sim::{Rng, ServerId, SimDuration, SimTime};
use quasaq_store::MetadataEngine;
use quasaq_vdbms::{BaselinePlanner, QueuedQuery};
use std::collections::{BTreeSet, HashMap};

/// Handle to a live control-plane session. Ids are allocated densely
/// from 0 and never reused within one plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SessionId(pub u64);

/// The system under test behind the command interface: which layer says
/// yes or no, and with what machinery.
// One instance per plane; the size gap (QualityManager carries a plan
// cache) doesn't justify a Box deref on the per-query admission path.
#[allow(clippy::large_enum_variant)]
pub enum SystemCore {
    /// Plain VDBMS: admit everything a replica exists for.
    Plain {
        /// Replica selection without any QoS machinery.
        planner: BaselinePlanner,
    },
    /// VDBMS with the QoS API: reserve the full-quality stream, reject on
    /// saturation.
    QosApi {
        /// Full-quality replica selection.
        planner: BaselinePlanner,
        /// The reservation layer.
        api: CompositeQosApi,
        /// Over-reservation headroom applied to the CPU share.
        headroom: f64,
    },
    /// Full QuaSAQ: QoP-aware plan enumeration, ranking, reservation.
    Quasaq {
        /// The Quality Manager (plan generation + admission).
        manager: QualityManager,
        /// Maps admitted plans onto stream parameters.
        executor: PlanExecutor,
    },
}

/// Adaptation policy knobs the plane needs for its renegotiation
/// decisions. (Congestion *detection* stays with the data plane, which
/// is what watches demand; the plane only decides what to do about an
/// edge the caller reports.)
#[derive(Debug, Clone, Copy)]
pub struct AdaptPolicy {
    /// Minimum spacing between upshifts on one server; a downshift inside
    /// this window after an upshift is flagged as hunting.
    pub upgrade_period: SimDuration,
    /// Cap on sessions renegotiated per congestion-onset event.
    pub max_downshifts_per_event: usize,
}

/// How to build a [`ControlPlane`].
pub struct PlaneConfig {
    /// Seed for the decision RNG (tie-breaking, replica shuffles, cost
    /// sampling). Callers pass their already-derived decision seed — the
    /// in-process driver hands over `cfg.seed ^ 0x9e37_79b9`, exactly the
    /// stream the pre-refactor loop consumed.
    pub seed: u64,
    /// The queued admission front end; `None` rejects on first refusal.
    pub admission: Option<AdmissionConfig>,
    /// Renegotiation policy; `None` ignores congestion commands.
    pub adaptation: Option<AdaptPolicy>,
    /// Keep per-session request context so sessions can be displaced and
    /// renegotiated (costs memory; the in-process driver enables it only
    /// under fault injection or adaptation).
    pub track_ctx: bool,
}

/// What the plane must remember about a live session to fail it over
/// after a crash or renegotiate it under congestion.
struct SessionCtx {
    query: QueuedQuery,
    total_bytes: u64,
    /// The admitted plan (QuaSAQ systems only): what a mid-stream
    /// renegotiation swaps out. Baselines have no plan machinery, so
    /// their sessions never re-rate.
    plan: Option<AdmittedPlan>,
    /// The QoS the client originally asked for — the upshift ceiling.
    orig_qos: QosRange,
    /// Last upshift instant (oscillation detection).
    upshifted_at: Option<SimTime>,
}

impl SessionCtx {
    fn new(query: QueuedQuery, total_bytes: u64, plan: Option<AdmittedPlan>) -> Self {
        let orig_qos = query.qos.clone();
        SessionCtx { query, total_bytes, plan, orig_qos, upshifted_at: None }
    }
}

struct SessionRecord {
    reservation: Option<ReservationId>,
    ctx: Option<SessionCtx>,
}

/// What an admission decided, before it is bound to a session record.
struct Placement {
    server: ServerId,
    bytes: u64,
    rate_bps: u64,
    utility: Option<f64>,
    nominal: SimDuration,
    reservation: Option<ReservationId>,
    plan: Option<AdmittedPlan>,
}

#[derive(Default)]
struct Counters {
    admitted: u64,
    rejected: u64,
    renegotiations: u64,
    live: u64,
}

/// The control plane. See the module docs; construct with
/// [`ControlPlane::new`], drive with [`ControlPlane::handle`].
pub struct ControlPlane {
    core: SystemCore,
    rng: Rng,
    queue: Option<AdmissionQueue>,
    /// Ladder for brownout degradation and crash failover (the admission
    /// profile when the front end is on, a default profile otherwise).
    profile: UserProfile,
    adapt: Option<AdaptPolicy>,
    track_ctx: bool,
    down: BTreeSet<ServerId>,
    last_upshift: HashMap<ServerId, SimTime>,
    sessions: Vec<Option<SessionRecord>>,
    counters: Counters,
}

impl ControlPlane {
    /// Builds a plane around a system core.
    pub fn new(core: SystemCore, cfg: PlaneConfig) -> Self {
        let profile = cfg
            .admission
            .as_ref()
            .map(|a| a.profile.clone())
            .unwrap_or_else(|| UserProfile::new("failover"));
        ControlPlane {
            core,
            rng: Rng::new(cfg.seed),
            queue: cfg.admission.map(AdmissionQueue::new),
            profile,
            adapt: cfg.adaptation,
            track_ctx: cfg.track_ctx,
            down: BTreeSet::new(),
            last_upshift: HashMap::new(),
            sessions: Vec::new(),
            counters: Counters::default(),
        }
    }

    /// Earliest instant a queued retry becomes due (drivers fold this
    /// into their event horizon).
    pub fn next_ready(&self) -> Option<SimTime> {
        self.queue.as_ref().and_then(|q| q.next_ready())
    }

    /// True when a caching Quality Manager sits behind the plane, i.e. a
    /// `Prefetch` command would do useful work.
    pub fn wants_prefetch(&self) -> bool {
        match &self.core {
            SystemCore::Quasaq { manager, .. } => manager.plan_caching(),
            _ => false,
        }
    }

    /// Applies one command, appending effects to `out` (reuse one scratch
    /// vector on hot paths). [`ControlPlane::handle`] is the allocating
    /// convenience wrapper.
    pub fn handle_into(&mut self, engine: &MetadataEngine, cmd: Command, out: &mut Vec<Effect>) {
        match cmd {
            Command::Admit { query, class, brownout, now } => {
                self.handle_admit(engine, query, class, brownout, now, out)
            }
            Command::Tick { now } => self.handle_tick(engine, now, out),
            Command::Teardown { session, abandoned, now } => {
                self.handle_teardown(session, abandoned, now, out)
            }
            Command::Displace { session, remaining, now } => {
                self.handle_displace(engine, session, remaining, now, out)
            }
            Command::CongestionOnset { server: _, candidates, now } => {
                self.handle_onset(engine, candidates, now, out)
            }
            Command::CongestionCleared { server, candidates, now } => {
                self.handle_cleared(engine, server, candidates, now, out)
            }
            Command::ServerDown { server } => {
                self.down.insert(server);
                match &mut self.core {
                    SystemCore::QosApi { api, .. } => {
                        api.fail_server(server);
                    }
                    SystemCore::Quasaq { manager, .. } => {
                        manager.handle_server_failure(server);
                    }
                    SystemCore::Plain { .. } => {}
                }
            }
            Command::ServerUp { server } => {
                self.down.remove(&server);
                match &mut self.core {
                    SystemCore::QosApi { api, .. } => {
                        api.restore_server(server);
                    }
                    SystemCore::Quasaq { manager, .. } => {
                        manager.handle_server_restart(server);
                    }
                    SystemCore::Plain { .. } => {}
                }
            }
            Command::SetNetCapacity { server, bps } => {
                let key = ResourceKey::new(server, ResourceKind::NetBandwidth);
                match &mut self.core {
                    SystemCore::QosApi { api, .. } => {
                        api.set_capacity(key, bps);
                    }
                    SystemCore::Quasaq { manager, .. } => {
                        manager.set_capacity(key, bps);
                    }
                    SystemCore::Plain { .. } => {}
                }
            }
            Command::Prefetch { requests } => {
                if let SystemCore::Quasaq { manager, .. } = &mut self.core {
                    if manager.plan_caching() {
                        manager.prefetch_plans(engine, &requests);
                    }
                }
            }
            Command::Finish => {
                let (pending, displaced_pending) =
                    self.queue.as_mut().map(AdmissionQueue::finish).unwrap_or((0, 0));
                self.counters.rejected += pending;
                out.push(Effect::Finished { pending, displaced_pending });
            }
            Command::Stats { now } => {
                let (waiting, wait_mean, wait_p95) = match &self.queue {
                    Some(q) => {
                        let w = &q.metrics().wait;
                        (q.len() as u64, w.mean(), w.quantile(0.95).unwrap_or(0.0))
                    }
                    None => (0, 0.0, 0.0),
                };
                out.push(Effect::Stats(StatsSnapshot {
                    now,
                    admitted: self.counters.admitted,
                    rejected: self.counters.rejected,
                    live_sessions: self.counters.live,
                    waiting,
                    renegotiations: self.counters.renegotiations,
                    wait_mean_secs: wait_mean,
                    wait_p95_secs: wait_p95,
                }));
            }
        }
    }

    /// Applies one command, returning the effects.
    pub fn handle(&mut self, engine: &MetadataEngine, cmd: Command) -> Vec<Effect> {
        let mut out = Vec::new();
        self.handle_into(engine, cmd, &mut out);
        out
    }

    /// Consumes the plane, yielding the system core and the queue's
    /// metrics (drivers fold both into their run result).
    pub fn into_parts(self) -> (SystemCore, Option<crate::admission::QueueMetrics>) {
        (self.core, self.queue.map(AdmissionQueue::into_metrics))
    }

    fn handle_admit(
        &mut self,
        engine: &MetadataEngine,
        query: QueuedQuery,
        class: QopClass,
        brownout: bool,
        now: SimTime,
        out: &mut Vec<Effect>,
    ) {
        // Typed guard for the wire front end; generated traffic never
        // trips it, and `engine.video` consumes no RNG, so in-process
        // decisions are untouched.
        if engine.video(query.video).is_none() {
            self.counters.rejected += 1;
            out.push(Effect::Rejected {
                origin: AdmitOrigin::Arrival,
                reason: RejectReason::UnknownVideo,
            });
            return;
        }
        let mut request = query;
        let mut via_brownout = false;
        if brownout {
            match brownout_action(class) {
                BrownoutAction::Reject => {
                    self.counters.rejected += 1;
                    out.push(Effect::Rejected {
                        origin: AdmitOrigin::Arrival,
                        reason: RejectReason::BrownoutShed,
                    });
                    return;
                }
                BrownoutAction::DegradeThenReject => {
                    if let Some(next) =
                        self.profile.degrade_options(&request.qos).into_iter().next()
                    {
                        request.qos = next;
                    }
                    via_brownout = true;
                }
            }
        }
        match self.admit_once(engine, &request, now, None) {
            Ok(placement) => {
                if let Some(q) = self.queue.as_mut() {
                    q.record_admitted(now, now);
                }
                let degraded = if via_brownout { Degraded::Brownout } else { Degraded::No };
                self.counters.admitted += 1;
                let adm = self.register(request, placement, AdmitOrigin::Arrival, degraded);
                out.push(Effect::Admitted(adm));
            }
            Err(why) => {
                if via_brownout {
                    // Degrade-then-reject: even the degraded form was
                    // infeasible, and a browned-out system does not queue.
                    self.counters.rejected += 1;
                    out.push(Effect::Rejected {
                        origin: AdmitOrigin::Arrival,
                        reason: RejectReason::BrownoutInfeasible,
                    });
                    return;
                }
                match self.queue.as_mut() {
                    Some(q) => {
                        let w = Waiting {
                            query: request,
                            arrival: now,
                            attempts: 1,
                            interrupted: None,
                        };
                        if q.admit_failure(now, w, &why).is_rejection() {
                            self.counters.rejected += 1;
                            out.push(Effect::Rejected {
                                origin: AdmitOrigin::Arrival,
                                reason: RejectReason::Plan(why),
                            });
                        } else {
                            out.push(Effect::Queued);
                        }
                    }
                    None => {
                        self.counters.rejected += 1;
                        out.push(Effect::Rejected {
                            origin: AdmitOrigin::Arrival,
                            reason: RejectReason::Plan(why),
                        });
                    }
                }
            }
        }
    }

    fn handle_tick(&mut self, engine: &MetadataEngine, now: SimTime, out: &mut Vec<Effect>) {
        while let Some(w) = self.queue.as_mut().and_then(|q| q.pop_due(now)) {
            match self.admit_once(engine, &w.query, now, None) {
                Ok(placement) => {
                    let origin = match w.interrupted {
                        // A displaced session re-serviced from the queue
                        // was admitted once already: it recovers, it does
                        // not admit a second time.
                        Some(it) => AdmitOrigin::Recovery { interrupted_at: it },
                        None => {
                            self.counters.admitted += 1;
                            if let Some(q) = self.queue.as_mut() {
                                q.record_admitted(now, w.arrival);
                            }
                            AdmitOrigin::Retry { arrival: w.arrival }
                        }
                    };
                    let adm = self.register(w.query, placement, origin, Degraded::No);
                    out.push(Effect::Admitted(adm));
                }
                Err(why) => {
                    let displaced = w.interrupted.is_some();
                    let arrival = w.arrival;
                    let Some(q) = self.queue.as_mut() else { break };
                    if q.admit_failure(now, w, &why).is_rejection() {
                        if displaced {
                            out.push(Effect::Dropped);
                        } else {
                            self.counters.rejected += 1;
                            out.push(Effect::Rejected {
                                origin: AdmitOrigin::Retry { arrival },
                                reason: RejectReason::Plan(why),
                            });
                        }
                    }
                }
            }
        }
    }

    fn handle_teardown(
        &mut self,
        session: SessionId,
        abandoned: bool,
        now: SimTime,
        out: &mut Vec<Effect>,
    ) {
        let Some(rec) = self.take_record(session) else {
            out.push(Effect::Error(ServiceError::UnknownSession(session)));
            return;
        };
        if let Some(res) = rec.reservation {
            self.release(res);
        }
        if abandoned {
            match self.queue.as_mut() {
                Some(q) => q.record_stream_abandoned(now),
                // Was an `expect`: abandonment implies the front end, but
                // a wire client can claim anything.
                None => out.push(Effect::Error(ServiceError::NoAdmissionQueue)),
            }
        }
        self.counters.live = self.counters.live.saturating_sub(1);
        out.push(Effect::TornDown { session });
    }

    fn handle_displace(
        &mut self,
        engine: &MetadataEngine,
        session: SessionId,
        remaining: f64,
        now: SimTime,
        out: &mut Vec<Effect>,
    ) {
        // The site failure already bulk-released the dead server's
        // reservations; dropping the record's id without releasing is the
        // correct (idempotent) move.
        let Some(rec) = self.take_record(session) else {
            out.push(Effect::Error(ServiceError::UnknownSession(session)));
            return;
        };
        self.counters.live = self.counters.live.saturating_sub(1);
        let Some(ctx) = rec.ctx else {
            // Was an `expect("fault runs track context")`.
            out.push(Effect::Error(ServiceError::NoSessionContext(session)));
            return;
        };
        let frac = (remaining / ctx.total_bytes.max(1) as f64).clamp(0.0, 1.0);
        // Walk the QoP ladder down until a survivor admits the remaining
        // bytes.
        let mut request = ctx.query;
        let mut steps = 0u32;
        let mut last_err = Rejection::AdmissionFailed;
        let placed = loop {
            match self.admit_once(engine, &request, now, Some(frac)) {
                Ok(placement) => break Some(placement),
                Err(why) => {
                    last_err = why;
                    match self.profile.degrade_options(&request.qos).into_iter().next() {
                        Some(next) => {
                            request.qos = next;
                            steps += 1;
                        }
                        None => break None,
                    }
                }
            }
        };
        match placed {
            Some(placement) => {
                let adm = self.register(
                    request,
                    placement,
                    AdmitOrigin::Failover,
                    Degraded::Failover { steps },
                );
                out.push(Effect::Admitted(adm));
            }
            None => match self.queue.as_mut() {
                Some(q) => {
                    let w = Waiting {
                        query: request,
                        arrival: now,
                        attempts: 1,
                        interrupted: Some(now),
                    };
                    if q.admit_failure(now, w, &last_err).is_rejection() {
                        out.push(Effect::Dropped);
                    } else {
                        out.push(Effect::Requeued);
                    }
                }
                None => out.push(Effect::Dropped),
            },
        }
    }

    /// Onsets renegotiate up to the policy cap of the candidates one QoP
    /// ladder step down, in the order given.
    fn handle_onset(
        &mut self,
        engine: &MetadataEngine,
        candidates: Vec<Candidate>,
        now: SimTime,
        out: &mut Vec<Effect>,
    ) {
        let Some(policy) = self.adapt else { return };
        let mut shed = 0usize;
        for c in candidates {
            if shed >= policy.max_downshifts_per_event {
                break;
            }
            // Only QuaSAQ sessions carry a renegotiable plan, and the
            // floor of the ladder stays put.
            let Some((next, hunting)) = ({
                self.sessions
                    .get(c.session.0 as usize)
                    .and_then(Option::as_ref)
                    .and_then(|rec| rec.ctx.as_ref())
                    .filter(|ctx| ctx.plan.is_some())
                    .and_then(|ctx| {
                        self.profile.degrade_options(&ctx.query.qos).into_iter().next().map(
                            |next| {
                                let hunting = ctx
                                    .upshifted_at
                                    .is_some_and(|ts| now < ts + policy.upgrade_period);
                                (next, hunting)
                            },
                        )
                    })
            }) else {
                continue;
            };
            if let Some(r) = self.renegotiate_inner(engine, c.session, next, c.backlog) {
                shed += 1;
                out.push(Effect::Renegotiated(Renegotiation { downshift: true, hunting, ..r }));
            }
        }
    }

    /// Cleared edges renegotiate at most one previously degraded
    /// candidate back toward its original request, rate-bounded per
    /// server by `upgrade_period`.
    fn handle_cleared(
        &mut self,
        engine: &MetadataEngine,
        server: ServerId,
        candidates: Vec<Candidate>,
        now: SimTime,
        out: &mut Vec<Effect>,
    ) {
        let Some(policy) = self.adapt else { return };
        let allowed =
            self.last_upshift.get(&server).is_none_or(|&ts| now >= ts + policy.upgrade_period);
        if !allowed {
            return;
        }
        for c in candidates {
            let Some(target) = self
                .sessions
                .get(c.session.0 as usize)
                .and_then(Option::as_ref)
                .and_then(|rec| rec.ctx.as_ref())
                .filter(|ctx| ctx.plan.is_some() && ctx.query.qos != ctx.orig_qos)
                .map(|ctx| ctx.orig_qos.clone())
            else {
                continue;
            };
            if let Some(r) = self.renegotiate_inner(engine, c.session, target, c.backlog) {
                self.last_upshift.insert(server, now);
                if let Some(ctx) = self
                    .sessions
                    .get_mut(c.session.0 as usize)
                    .and_then(Option::as_mut)
                    .and_then(|rec| rec.ctx.as_mut())
                {
                    ctx.upshifted_at = Some(now);
                }
                out.push(Effect::Renegotiated(Renegotiation {
                    downshift: false,
                    hunting: false,
                    ..r
                }));
                // One upgrade per Cleared edge: recovery is deliberately
                // slower than degradation.
                break;
            }
        }
    }

    /// Renegotiates one live QuaSAQ session to `new_qos`: swaps the
    /// reservation through [`QualityManager::renegotiate`] (which keeps
    /// the old one on failure) and re-rates the remaining fraction of the
    /// stream at the new plan's bitrate. Returns `None` — with the
    /// session untouched — when the manager finds no feasible plan.
    fn renegotiate_inner(
        &mut self,
        engine: &MetadataEngine,
        session: SessionId,
        new_qos: QosRange,
        backlog: f64,
    ) -> Option<Renegotiation> {
        let SystemCore::Quasaq { manager, executor } = &mut self.core else { return None };
        let rec = self.sessions.get_mut(session.0 as usize)?.as_mut()?;
        let ctx = rec.ctx.as_mut()?;
        let plan = ctx.plan.as_ref()?;
        let request = PlanRequest {
            video: ctx.query.video,
            qos: new_qos.clone(),
            security: QopSecurity::Open,
        };
        let swapped = manager.renegotiate(engine, plan, &request, &mut self.rng).ok()?;
        // Was an `expect("known video")`: unreachable for a live session,
        // but a typed bail keeps the wire path panic-free.
        let meta = engine.video(ctx.query.video)?;
        let (full_bytes, rate) = executor.fluid_params(&swapped.plan, meta);
        let frac = (backlog / ctx.total_bytes.max(1) as f64).clamp(0.0, 1.0);
        let bytes = resume_bytes(full_bytes, Some(frac));
        let server = swapped.plan.target_server;
        let video = ctx.query.video;
        // The old reservation id was consumed by the renegotiation swap —
        // overwrite it without releasing.
        rec.reservation = Some(swapped.reservation);
        ctx.query.qos = new_qos;
        ctx.total_bytes = bytes;
        ctx.plan = Some(swapped);
        self.counters.renegotiations += 1;
        Some(Renegotiation {
            session,
            video,
            server,
            bytes,
            rate_bps: rate,
            nominal: nominal_duration(bytes, rate),
            bytes_saved: backlog - bytes as f64,
            downshift: true,
            hunting: false,
        })
    }

    /// Binds a successful placement to a fresh session record.
    fn register(
        &mut self,
        query: QueuedQuery,
        placement: Placement,
        origin: AdmitOrigin,
        degraded: Degraded,
    ) -> Admission {
        let id = SessionId(self.sessions.len() as u64);
        let video = query.video;
        let ctx = self.track_ctx.then(|| SessionCtx::new(query, placement.bytes, placement.plan));
        self.sessions.push(Some(SessionRecord { reservation: placement.reservation, ctx }));
        self.counters.live += 1;
        Admission {
            session: id,
            video,
            server: placement.server,
            bytes: placement.bytes,
            rate_bps: placement.rate_bps,
            nominal: placement.nominal,
            utility: placement.utility,
            origin,
            degraded,
        }
    }

    fn take_record(&mut self, session: SessionId) -> Option<SessionRecord> {
        self.sessions.get_mut(session.0 as usize).and_then(Option::take)
    }

    fn release(&mut self, res: ReservationId) {
        match &mut self.core {
            SystemCore::QosApi { api, .. } => api.release(res),
            SystemCore::Quasaq { manager, .. } => manager.release_reservation(res),
            SystemCore::Plain { .. } => {}
        }
    }

    /// One admission attempt against the system core — the former
    /// driver-side `admit()`, minus the data-plane `add_session` (the
    /// caller starts the stream from the returned placement; under the
    /// fair-share policy that step cannot fail).
    fn admit_once(
        &mut self,
        engine: &MetadataEngine,
        q: &QueuedQuery,
        _now: SimTime,
        resume: Option<f64>,
    ) -> Result<Placement, Rejection> {
        match &mut self.core {
            SystemCore::Plain { planner } => {
                // The plain baseline has no reservation layer to notice a
                // dead server, so the crash filter is explicit. With
                // `down` empty this is the legacy `select`, RNG draw for
                // RNG draw.
                let choice = planner
                    .select_avoiding(engine, q.video, &mut self.rng, &self.down)
                    .ok_or(Rejection::NoFeasiblePlan)?;
                let bytes = resume_bytes(choice.record.object.bytes, resume);
                let rate = choice.record.object.rate_bps;
                Ok(Placement {
                    server: choice.server,
                    bytes,
                    rate_bps: rate,
                    utility: None,
                    nominal: nominal_duration(bytes, rate),
                    reservation: None,
                    plan: None,
                })
            }
            SystemCore::QosApi { planner, api, headroom } => {
                let choice = planner
                    .select(engine, q.video, &mut self.rng)
                    .ok_or(Rejection::NoFeasiblePlan)?;
                // The baseline has no cost model, but admission may try
                // each server holding the (full-quality) replica in
                // random order.
                let mut servers: Vec<ServerId> = engine
                    .replicas(q.video)
                    .iter()
                    .filter(|r| r.object.rate_bps == choice.record.object.rate_bps)
                    .map(|r| r.object.server)
                    .collect();
                servers.dedup();
                self.rng.shuffle(&mut servers);
                let profile = choice.record.profile;
                for server in servers {
                    let demand = ResourceVector::new()
                        .with(
                            ResourceKey::new(server, ResourceKind::Cpu),
                            (profile.cpu_share * *headroom).min(1.0),
                        )
                        .with(ResourceKey::new(server, ResourceKind::NetBandwidth), profile.net_bps)
                        .with(
                            ResourceKey::new(server, ResourceKind::DiskBandwidth),
                            profile.disk_bps,
                        )
                        .with(ResourceKey::new(server, ResourceKind::Memory), profile.memory_bytes);
                    if let Ok(res) = api.reserve(&demand) {
                        let bytes = resume_bytes(choice.record.object.bytes, resume);
                        let rate = choice.record.object.rate_bps;
                        return Ok(Placement {
                            server,
                            bytes,
                            rate_bps: rate,
                            utility: None,
                            nominal: nominal_duration(bytes, rate),
                            reservation: Some(res),
                            plan: None,
                        });
                    }
                }
                Err(Rejection::AdmissionFailed)
            }
            SystemCore::Quasaq { manager, executor } => {
                let request =
                    PlanRequest { video: q.video, qos: q.qos.clone(), security: QopSecurity::Open };
                let admitted = manager.process(engine, &request, &mut self.rng)?;
                // Was an `expect("known video")`; `handle_admit`'s guard
                // makes this unreachable from every command path.
                let meta = engine.video(q.video).ok_or(Rejection::NoFeasiblePlan)?;
                let (bytes, rate) = executor.fluid_params(&admitted.plan, meta);
                let bytes = resume_bytes(bytes, resume);
                let server = admitted.plan.target_server;
                let utility =
                    UtilityGain { weights: QosWeights::default() }.utility(&admitted.plan);
                Ok(Placement {
                    server,
                    bytes,
                    rate_bps: rate,
                    utility: Some(utility),
                    nominal: nominal_duration(bytes, rate),
                    reservation: Some(admitted.reservation),
                    plan: Some(admitted),
                })
            }
        }
    }
}

/// Scales a replica's size by the fraction still owed after a failover.
fn resume_bytes(bytes: u64, resume: Option<f64>) -> u64 {
    match resume {
        Some(frac) => ((bytes as f64 * frac).ceil() as u64).max(1),
        None => bytes,
    }
}

fn nominal_duration(bytes: u64, rate_bps: u64) -> SimDuration {
    SimDuration::from_secs_f64(bytes as f64 / rate_bps.max(1) as f64)
}
