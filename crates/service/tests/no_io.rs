//! The sans-IO guard: `quasaq-service` must stay a pure state machine.
//!
//! The whole point of the control-plane split is that the same
//! `Command`/`Effect` core serves the in-process experiment driver, the
//! TCP shell, and the differential tests — which only works if the crate
//! never reaches for a clock, a thread, a socket, or the filesystem.
//! Time arrives exclusively as explicit `SimTime` fields on commands.
//! This test enforces that mechanically, on the dependency list and on
//! the source itself, so a future convenience import fails CI instead of
//! quietly coupling the core to a runtime.

use std::fs;
use std::path::Path;

/// Crates that carry I/O, threads, or wall clocks. None may appear in
/// `[dependencies]`.
const FORBIDDEN_DEPS: &[&str] = &["quasaq-shell", "quasaq-workload", "quasaq-scenario"];

/// Runtime facilities the sans-IO core must never touch. `std::time` is
/// on the list because simulated time (`SimTime`) is the only clock the
/// plane may observe.
const FORBIDDEN_TOKENS: &[&str] = &[
    "std::net",
    "std::thread",
    "std::time",
    "std::fs",
    "std::io",
    "std::process",
    "Instant::now",
    "SystemTime",
    "TcpListener",
    "TcpStream",
];

#[test]
fn dependency_list_is_sans_io() {
    let manifest = fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/Cargo.toml"))
        .expect("read Cargo.toml");
    let mut in_deps = false;
    for line in manifest.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_deps = line == "[dependencies]";
            continue;
        }
        if !in_deps {
            continue;
        }
        for dep in FORBIDDEN_DEPS {
            assert!(!line.starts_with(dep), "sans-IO violation: quasaq-service depends on {dep}");
        }
    }
}

#[test]
fn source_never_touches_io_threads_or_clocks() {
    let src = Path::new(env!("CARGO_MANIFEST_DIR")).join("src");
    let mut checked = 0;
    let mut stack = vec![src];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir).expect("read src dir") {
            let path = entry.expect("dir entry").path();
            if path.is_dir() {
                stack.push(path);
                continue;
            }
            if path.extension().and_then(|e| e.to_str()) != Some("rs") {
                continue;
            }
            let text = fs::read_to_string(&path).expect("read source file");
            for token in FORBIDDEN_TOKENS {
                assert!(
                    !text.contains(token),
                    "sans-IO violation: {} mentions {token}",
                    path.display()
                );
            }
            checked += 1;
        }
    }
    assert!(checked >= 4, "expected to scan the service sources, found {checked}");
}
