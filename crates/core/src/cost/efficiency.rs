//! The configurable optimizer: cost efficiency `E = G / C(r)`.
//!
//! "We then evaluate plans by their cost efficiency … where C is the cost
//! function, r the resource vector of the plan being evaluated, and G the
//! gain of servicing the query following the plan of interest. An optimal
//! plan is the one with the highest cost efficiency. The generation of
//! the G value of a plan depends on the optimization goal used. For
//! instance, a utility function can be used when our goal is to maximize
//! the satisfiability of user perception of media streams."
//!
//! The paper defers the full configurable optimizer to future work; this
//! module implements it as an extension: any [`Gain`] over delivered
//! quality composes with the LRB cost into a ranking model.

use super::{CostModel, LrbModel};
use crate::plan::Plan;
use crate::qop::QosWeights;
use quasaq_media::Resolution;
use quasaq_qosapi::CompositeQosApi;
use quasaq_sim::Rng;

/// A gain function over a plan's delivered quality.
pub trait Gain: Send {
    /// Gain name for reports.
    fn name(&self) -> &'static str;
    /// The gain of servicing a query with this plan (> 0).
    fn gain(&self, plan: &Plan) -> f64;
}

/// Throughput goal: every serviced query is worth the same, so the model
/// degenerates to pure cost minimization (the paper's LRB behaviour).
#[derive(Debug, Clone, Copy, Default)]
pub struct ThroughputGain;

impl Gain for ThroughputGain {
    fn name(&self) -> &'static str {
        "throughput"
    }

    fn gain(&self, _plan: &Plan) -> f64 {
        1.0
    }
}

/// Perceptual-utility goal: richer delivered quality is worth more, with
/// per-user dimension weights (the [`QosWeights`] of the User Profile).
#[derive(Debug, Clone, Copy)]
pub struct UtilityGain {
    /// Per-dimension importance.
    pub weights: QosWeights,
}

impl UtilityGain {
    /// Utility of a delivered quality in `(0, 1]`: a weighted geometric
    /// mean of each dimension normalized to its full-quality reference.
    pub fn utility(&self, plan: &Plan) -> f64 {
        let q = &plan.delivered;
        let res = (q.resolution.pixels() as f64 / Resolution::FULL.pixels() as f64).min(1.0);
        let fps = (q.frame_rate.fps() / 30.0).min(1.0);
        let color = (q.color.bits() as f64 / 24.0).min(1.0);
        let w = self.weights;
        let total_w = (w.resolution + w.frame_rate + w.color).max(1e-9);
        (res.max(1e-6).powf(w.resolution)
            * fps.max(1e-6).powf(w.frame_rate)
            * color.max(1e-6).powf(w.color))
        .powf(1.0 / total_w)
    }
}

impl Gain for UtilityGain {
    fn name(&self) -> &'static str {
        "utility"
    }

    fn gain(&self, plan: &Plan) -> f64 {
        self.utility(plan)
    }
}

/// Ranks plans by descending `E = G / C(r)` with `C` the LRB cost under
/// the live resource state.
pub struct EfficiencyModel<G: Gain> {
    gain: G,
}

impl<G: Gain> EfficiencyModel<G> {
    /// Creates a model with the given gain function.
    pub fn new(gain: G) -> Self {
        EfficiencyModel { gain }
    }

    /// The efficiency of one plan.
    pub fn efficiency(&self, plan: &Plan, api: &CompositeQosApi) -> f64 {
        let cost = LrbModel.cost(plan, api).max(1e-9);
        self.gain.gain(plan) / cost
    }
}

impl<G: Gain> CostModel for EfficiencyModel<G> {
    fn name(&self) -> &'static str {
        "efficiency"
    }

    fn rank(&self, plans: &[Plan], api: &CompositeQosApi, _rng: &mut Rng) -> Vec<usize> {
        let scores: Vec<f64> = plans.iter().map(|p| self.efficiency(p, api)).collect();
        let mut idx: Vec<usize> = (0..plans.len()).collect();
        // Descending: highest efficiency wins.
        idx.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]).then(a.cmp(&b)));
        idx
    }

    fn rank_subset(
        &self,
        plans: &[Plan],
        subset: &[usize],
        api: &CompositeQosApi,
        _rng: &mut Rng,
    ) -> Vec<usize> {
        let scores: Vec<f64> = subset.iter().map(|&i| self.efficiency(&plans[i], api)).collect();
        let mut idx: Vec<usize> = (0..subset.len()).collect();
        // Descending, ties by subset position — matching the compacted list.
        idx.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]).then(a.cmp(&b)));
        idx.into_iter().map(|j| subset[j]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::plan_on;
    use super::*;
    use quasaq_media::{ColorDepth, FrameRate, QualitySpec, Resolution, VideoFormat};
    use quasaq_sim::ServerId;

    fn cluster() -> CompositeQosApi {
        CompositeQosApi::homogeneous_cluster(ServerId::first_n(3), 3_200_000.0, 20e6, 512e6)
    }

    #[test]
    fn throughput_gain_matches_lrb_order() {
        let api = cluster();
        let plans = vec![plan_on(0, 193_000), plan_on(1, 48_000), plan_on(2, 7_000)];
        let mut rng = Rng::new(1);
        let lrb = LrbModel.rank(&plans, &api, &mut rng);
        let eff = EfficiencyModel::new(ThroughputGain).rank(&plans, &api, &mut rng);
        assert_eq!(lrb, eff);
    }

    #[test]
    fn utility_prefers_richer_quality_at_equal_cost() {
        let api = cluster();
        let mut rich = plan_on(0, 48_000);
        rich.delivered = QualitySpec::new(
            Resolution::FULL,
            ColorDepth::TRUE_COLOR,
            FrameRate::NTSC_FILM,
            VideoFormat::Mpeg1,
        );
        let mut poor = plan_on(1, 48_000);
        poor.delivered = QualitySpec::new(
            Resolution::QCIF,
            ColorDepth::PALETTE,
            FrameRate::LOW,
            VideoFormat::Mpeg1,
        );
        let plans = vec![poor, rich];
        let order = EfficiencyModel::new(UtilityGain { weights: QosWeights::default() }).rank(
            &plans,
            &api,
            &mut Rng::new(1),
        );
        assert_eq!(order[0], 1);
    }

    #[test]
    fn utility_bounds() {
        let g = UtilityGain { weights: QosWeights::default() };
        let mut full = plan_on(0, 300_000);
        full.delivered = QualitySpec::new(
            Resolution::FULL,
            ColorDepth::TRUE_COLOR,
            FrameRate::NTSC,
            VideoFormat::Mpeg2,
        );
        let u = g.utility(&full);
        assert!((0.9..=1.0).contains(&u), "utility {u}");
        let mut tiny = plan_on(0, 7_000);
        tiny.delivered = QualitySpec::new(
            Resolution::QCIF,
            ColorDepth::PALETTE,
            FrameRate::LOW,
            VideoFormat::Mpeg1,
        );
        assert!(g.utility(&tiny) < u);
    }

    #[test]
    fn weights_tilt_the_utility() {
        let mut high_fps = plan_on(0, 48_000);
        high_fps.delivered = QualitySpec::new(
            Resolution::QCIF,
            ColorDepth::TRUE_COLOR,
            FrameRate::NTSC,
            VideoFormat::Mpeg1,
        );
        let mut high_res = plan_on(0, 48_000);
        high_res.delivered = QualitySpec::new(
            Resolution::FULL,
            ColorDepth::TRUE_COLOR,
            FrameRate::LOW,
            VideoFormat::Mpeg1,
        );
        let motion_lover =
            UtilityGain { weights: QosWeights { resolution: 0.1, frame_rate: 5.0, color: 0.1 } };
        let pixel_lover =
            UtilityGain { weights: QosWeights { resolution: 5.0, frame_rate: 0.1, color: 0.1 } };
        assert!(motion_lover.utility(&high_fps) > motion_lover.utility(&high_res));
        assert!(pixel_lover.utility(&high_res) > pixel_lover.utility(&high_fps));
    }
}
