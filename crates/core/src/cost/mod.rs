//! Runtime cost evaluation of QoS-aware plans.
//!
//! "Unlike the static cost estimates in traditional D-DBMS, it is
//! critical that the costs under current system status … be factored into
//! the choice of an acceptable plan." A [`CostModel`] orders candidate
//! plans best-first given the live resource state; the Runtime Cost
//! Evaluator then walks that order and "the first plan in this order that
//! satisfies the QoS requirements is used to service the query."
//!
//! Models provided:
//! * [`LrbModel`] — the paper's Lowest Resource Bucket model (Eq. 1).
//! * [`RandomModel`] — the paper's baseline: "a simple randomized
//!   algorithm … randomly selects one execution plan from the search
//!   space."
//! * [`MinBitrateModel`] — a static greedy baseline (cheapest delivered
//!   bandwidth first), for ablations.
//! * [`WeightedSumModel`] — sum of bucket fills instead of the max, for
//!   ablations.
//! * [`EfficiencyModel`] — the configurable-optimizer extension: ranks by
//!   cost efficiency `E = G / C(r)` with a pluggable gain function.

mod efficiency;
mod lrb;
mod minbitrate;
mod random;
mod weighted;

pub use efficiency::{EfficiencyModel, Gain, ThroughputGain, UtilityGain};
pub use lrb::LrbModel;
pub use minbitrate::MinBitrateModel;
pub use random::RandomModel;
pub use weighted::WeightedSumModel;

use crate::plan::Plan;
use quasaq_qosapi::CompositeQosApi;
use quasaq_sim::Rng;

/// Orders candidate plans for execution.
pub trait CostModel: Send {
    /// Model name for reports.
    fn name(&self) -> &'static str;

    /// Returns plan indices, most preferred first, evaluated against the
    /// current resource state in `api`.
    fn rank(&self, plans: &[Plan], api: &CompositeQosApi, rng: &mut Rng) -> Vec<usize>;
}

/// Ranks indices ascending by a score (stable on ties), a helper shared
/// by the score-based models.
pub(crate) fn rank_by_score(scores: &[f64]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| scores[a].total_cmp(&scores[b]).then(a.cmp(&b)));
    idx
}

#[cfg(test)]
pub(crate) mod testutil {
    use crate::plan::Plan;
    use quasaq_media::{
        CipherAlgo, ColorDepth, DeliveryCostModel, DropStrategy, FrameRate, GopPattern,
        QualitySpec, Resolution, VideoFormat, VideoId,
    };
    use quasaq_sim::ServerId;
    use quasaq_store::{ObjectRecord, PhysicalObject, PhysicalOid, QosProfile};

    /// A simple local plan on `server` delivering at `rate_bps`.
    pub fn plan_on(server: u32, rate_bps: u64) -> Plan {
        let spec = QualitySpec::new(
            Resolution::CIF,
            ColorDepth::TRUE_COLOR,
            FrameRate::NTSC_FILM,
            VideoFormat::Mpeg1,
        );
        let record = ObjectRecord {
            object: PhysicalObject {
                oid: PhysicalOid(server as u64 * 1000 + rate_bps % 1000),
                video: VideoId(0),
                tier: "dsl",
                spec,
                rate_bps,
                bytes: 1_000_000,
                server: ServerId(server),
                trace_seed: 1,
            },
            profile: QosProfile::ZERO,
        };
        let gop = GopPattern::mpeg1_n15();
        let cost = DeliveryCostModel::default();
        let (resources, delivered_bps) = Plan::compute_resources(
            &record,
            ServerId(server),
            &gop,
            None,
            DropStrategy::None,
            CipherAlgo::None,
            &cost,
        );
        Plan {
            object: record,
            target_server: ServerId(server),
            drop: DropStrategy::None,
            transcode: None,
            cipher: CipherAlgo::None,
            delivered: spec,
            delivered_bps,
            resources,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_by_score_is_stable_ascending() {
        let order = rank_by_score(&[3.0, 1.0, 2.0, 1.0]);
        assert_eq!(order, vec![1, 3, 2, 0]);
    }
}
