//! Runtime cost evaluation of QoS-aware plans.
//!
//! "Unlike the static cost estimates in traditional D-DBMS, it is
//! critical that the costs under current system status … be factored into
//! the choice of an acceptable plan." A [`CostModel`] orders candidate
//! plans best-first given the live resource state; the Runtime Cost
//! Evaluator then walks that order and "the first plan in this order that
//! satisfies the QoS requirements is used to service the query."
//!
//! Models provided:
//! * [`LrbModel`] — the paper's Lowest Resource Bucket model (Eq. 1).
//! * [`RandomModel`] — the paper's baseline: "a simple randomized
//!   algorithm … randomly selects one execution plan from the search
//!   space."
//! * [`MinBitrateModel`] — a static greedy baseline (cheapest delivered
//!   bandwidth first), for ablations.
//! * [`WeightedSumModel`] — sum of bucket fills instead of the max, for
//!   ablations.
//! * [`EfficiencyModel`] — the configurable-optimizer extension: ranks by
//!   cost efficiency `E = G / C(r)` with a pluggable gain function.

mod efficiency;
mod lrb;
mod minbitrate;
mod random;
mod weighted;

pub use efficiency::{EfficiencyModel, Gain, ThroughputGain, UtilityGain};
pub use lrb::LrbModel;
pub use minbitrate::MinBitrateModel;
pub use random::RandomModel;
pub use weighted::WeightedSumModel;

use crate::plan::Plan;
use quasaq_qosapi::CompositeQosApi;
use quasaq_sim::Rng;

/// Orders candidate plans for execution.
pub trait CostModel: Send {
    /// Model name for reports.
    fn name(&self) -> &'static str;

    /// Returns plan indices, most preferred first, evaluated against the
    /// current resource state in `api`.
    fn rank(&self, plans: &[Plan], api: &CompositeQosApi, rng: &mut Rng) -> Vec<usize>;

    /// Ranks only the plans named by `subset` (indices into `plans`, in
    /// subset order), returning those same indices most-preferred first.
    ///
    /// Contract — this is what makes cached admission bit-identical to
    /// uncached: the result, and every RNG draw made along the way, must
    /// equal `rank` run on the compacted list `subset.map(|i| plans[i])`
    /// with each returned position mapped back through `subset`. Positional
    /// tie-breaks therefore break ties by *subset position*, exactly as the
    /// compacted list would. The default implementation does literally
    /// that (clone + delegate); models override it to skip the clone.
    fn rank_subset(
        &self,
        plans: &[Plan],
        subset: &[usize],
        api: &CompositeQosApi,
        rng: &mut Rng,
    ) -> Vec<usize> {
        let compact: Vec<Plan> = subset.iter().map(|&i| plans[i].clone()).collect();
        self.rank(&compact, api, rng).into_iter().map(|j| subset[j]).collect()
    }
}

/// Ranks indices ascending by a score (stable on ties), a helper shared
/// by the score-based models.
pub(crate) fn rank_by_score(scores: &[f64]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| scores[a].total_cmp(&scores[b]).then(a.cmp(&b)));
    idx
}

/// Subset flavor of [`rank_by_score`]: `scores[j]` scores plan
/// `subset[j]`; ties break by subset position, matching what ranking the
/// compacted plan list would produce.
pub(crate) fn rank_subset_by_score(subset: &[usize], scores: &[f64]) -> Vec<usize> {
    debug_assert_eq!(subset.len(), scores.len());
    rank_by_score(scores).into_iter().map(|j| subset[j]).collect()
}

#[cfg(test)]
pub(crate) mod testutil {
    use crate::plan::Plan;
    use quasaq_media::{
        CipherAlgo, ColorDepth, DeliveryCostModel, DropStrategy, FrameRate, GopPattern,
        QualitySpec, Resolution, VideoFormat, VideoId,
    };
    use quasaq_sim::ServerId;
    use quasaq_store::{ObjectRecord, PhysicalObject, PhysicalOid, QosProfile};

    /// A simple local plan on `server` delivering at `rate_bps`.
    pub fn plan_on(server: u32, rate_bps: u64) -> Plan {
        let spec = QualitySpec::new(
            Resolution::CIF,
            ColorDepth::TRUE_COLOR,
            FrameRate::NTSC_FILM,
            VideoFormat::Mpeg1,
        );
        let record = ObjectRecord {
            object: PhysicalObject {
                oid: PhysicalOid(server as u64 * 1000 + rate_bps % 1000),
                video: VideoId(0),
                tier: "dsl",
                spec,
                rate_bps,
                bytes: 1_000_000,
                server: ServerId(server),
                trace_seed: 1,
            },
            profile: QosProfile::ZERO,
        };
        let gop = GopPattern::mpeg1_n15();
        let cost = DeliveryCostModel::default();
        let (resources, delivered_bps) = Plan::compute_resources(
            &record,
            ServerId(server),
            &gop,
            None,
            DropStrategy::None,
            CipherAlgo::None,
            &cost,
        );
        Plan {
            object: record,
            target_server: ServerId(server),
            drop: DropStrategy::None,
            transcode: None,
            cipher: CipherAlgo::None,
            delivered: spec,
            delivered_bps,
            resources,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_by_score_is_stable_ascending() {
        let order = rank_by_score(&[3.0, 1.0, 2.0, 1.0]);
        assert_eq!(order, vec![1, 3, 2, 0]);
    }

    #[test]
    fn rank_subset_matches_compacted_rank_for_every_model() {
        use super::testutil::plan_on;
        use crate::qop::QosWeights;
        use quasaq_qosapi::{ResourceKey, ResourceKind, ResourceVector};
        use quasaq_sim::{Rng, ServerId};

        let mut api =
            CompositeQosApi::homogeneous_cluster(ServerId::first_n(3), 3_200_000.0, 20e6, 512e6);
        // Uneven load so state-aware models have real preferences.
        api.reserve(
            &ResourceVector::new()
                .with(ResourceKey::new(ServerId(1), ResourceKind::NetBandwidth), 2_000_000.0),
        )
        .unwrap();
        let plans: Vec<Plan> =
            (0..9).map(|i| plan_on(i % 3, 7_000 + 40_000 * (i as u64 % 4))).collect();
        let models: Vec<Box<dyn CostModel>> = vec![
            Box::new(LrbModel),
            Box::new(RandomModel),
            Box::new(MinBitrateModel),
            Box::new(WeightedSumModel::default()),
            Box::new(EfficiencyModel::new(ThroughputGain)),
            Box::new(EfficiencyModel::new(UtilityGain { weights: QosWeights::default() })),
        ];
        for subset in [vec![0, 2, 4, 5, 8], vec![3], vec![], (0..plans.len()).collect()] {
            let compact: Vec<Plan> = subset.iter().map(|&i| plans[i].clone()).collect();
            for model in &models {
                // Identical seeds: the subset path must draw the same
                // stream as ranking the compacted list.
                let mut rng_a = Rng::new(42);
                let mut rng_b = Rng::new(42);
                let via_subset = model.rank_subset(&plans, &subset, &api, &mut rng_a);
                let via_compact: Vec<usize> =
                    model.rank(&compact, &api, &mut rng_b).into_iter().map(|j| subset[j]).collect();
                assert_eq!(via_subset, via_compact, "model {}", model.name());
                assert_eq!(rng_a.below(1 << 30), rng_b.below(1 << 30), "RNG streams diverged");
            }
        }
    }
}
