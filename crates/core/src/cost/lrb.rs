//! The Lowest Resource Bucket (LRB) cost model — the paper's proposed
//! model (§3.4, Fig 3, Eq. 1).
//!
//! "We build a virtual resource bucket for each individual resource …
//! for any plan p, we first transform the items in p's resource vector
//! into standardized heights … we then fill the buckets accordingly …
//! and record the largest height among all the buckets. The query that
//! leads to the smallest such maximum bucket height wins:
//! `f(r) = max_i (U_i + r_i) / R_i`. The goal is to make the filling rate
//! of all the buckets distribute evenly … we should prevent any single
//! bucket from growing faster than the others."

use super::{rank_by_score, rank_subset_by_score, CostModel};
use crate::plan::Plan;
use quasaq_qosapi::CompositeQosApi;
use quasaq_sim::Rng;

/// The LRB model.
#[derive(Debug, Clone, Copy, Default)]
pub struct LrbModel;

impl LrbModel {
    /// The LRB cost of one plan under the current usage: Eq. (1).
    pub fn cost(&self, plan: &Plan, api: &CompositeQosApi) -> f64 {
        api.max_fill_with(&plan.resources)
    }
}

impl CostModel for LrbModel {
    fn name(&self) -> &'static str {
        "lrb"
    }

    fn rank(&self, plans: &[Plan], api: &CompositeQosApi, _rng: &mut Rng) -> Vec<usize> {
        let scores: Vec<f64> = plans.iter().map(|p| self.cost(p, api)).collect();
        rank_by_score(&scores)
    }

    fn rank_subset(
        &self,
        plans: &[Plan],
        subset: &[usize],
        api: &CompositeQosApi,
        _rng: &mut Rng,
    ) -> Vec<usize> {
        let scores: Vec<f64> = subset.iter().map(|&i| self.cost(&plans[i], api)).collect();
        rank_subset_by_score(subset, &scores)
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::plan_on;
    use super::*;
    use quasaq_qosapi::{ResourceKey, ResourceKind, ResourceVector};
    use quasaq_sim::ServerId;

    fn cluster() -> CompositeQosApi {
        CompositeQosApi::homogeneous_cluster(ServerId::first_n(3), 3_200_000.0, 20_000_000.0, 512e6)
    }

    #[test]
    fn prefers_the_emptier_server() {
        let mut api = cluster();
        // Load server 0's link to 60%.
        api.reserve(
            &ResourceVector::new()
                .with(ResourceKey::new(ServerId(0), ResourceKind::NetBandwidth), 0.6 * 3_200_000.0),
        )
        .unwrap();
        let plans = vec![plan_on(0, 48_000), plan_on(1, 48_000)];
        let order = LrbModel.rank(&plans, &api, &mut Rng::new(1));
        assert_eq!(order[0], 1, "the plan on the idle server must win");
    }

    #[test]
    fn cost_matches_eq1_by_hand() {
        let mut api = cluster();
        api.reserve(
            &ResourceVector::new().with(
                ResourceKey::new(ServerId(0), ResourceKind::NetBandwidth),
                0.42 * 3_200_000.0,
            ),
        )
        .unwrap();
        let plan = plan_on(0, 48_000);
        let f = LrbModel.cost(&plan, &api);
        // Net bucket: 0.42 + 48000/3.2e6 = 0.435; CPU and others are
        // smaller, so the max is the net bucket.
        let expected = 0.42 + 48_000.0 / 3_200_000.0;
        assert!((f - expected).abs() < 1e-6, "f {f} vs {expected}");
    }

    #[test]
    fn evens_out_bucket_fill_over_a_sequence() {
        // Greedy LRB placement should balance the three servers' links.
        let mut api = cluster();
        for _ in 0..30 {
            let plans: Vec<_> = (0..3).map(|s| plan_on(s, 193_000)).collect();
            let order = LrbModel.rank(&plans, &api, &mut Rng::new(1));
            api.reserve(&plans[order[0]].resources).unwrap();
        }
        let fills: Vec<f64> = (0..3)
            .map(|s| api.fill(ResourceKey::new(ServerId(s), ResourceKind::NetBandwidth)).unwrap())
            .collect();
        let max = fills.iter().cloned().fold(0.0, f64::max);
        let min = fills.iter().cloned().fold(1.0, f64::min);
        assert!(max - min < 0.07, "unbalanced fills {fills:?}");
    }

    #[test]
    fn smaller_demand_wins_on_equal_state() {
        let api = cluster();
        let plans = vec![plan_on(0, 193_000), plan_on(0, 48_000)];
        let order = LrbModel.rank(&plans, &api, &mut Rng::new(1));
        assert_eq!(order[0], 1);
    }
}
