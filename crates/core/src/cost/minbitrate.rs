//! Static greedy baseline: cheapest delivered bandwidth first.
//!
//! Unlike LRB this ignores the live system state entirely — it is the
//! "static cost estimate" strawman the paper argues against, included for
//! the cost-model ablation.

use super::{rank_by_score, rank_subset_by_score, CostModel};
use crate::plan::Plan;
use quasaq_qosapi::CompositeQosApi;
use quasaq_sim::Rng;

/// Ranks plans by delivered bytes/second, ascending.
#[derive(Debug, Clone, Copy, Default)]
pub struct MinBitrateModel;

impl CostModel for MinBitrateModel {
    fn name(&self) -> &'static str {
        "min-bitrate"
    }

    fn rank(&self, plans: &[Plan], _api: &CompositeQosApi, _rng: &mut Rng) -> Vec<usize> {
        let scores: Vec<f64> = plans.iter().map(|p| p.delivered_bps).collect();
        rank_by_score(&scores)
    }

    fn rank_subset(
        &self,
        plans: &[Plan],
        subset: &[usize],
        _api: &CompositeQosApi,
        _rng: &mut Rng,
    ) -> Vec<usize> {
        let scores: Vec<f64> = subset.iter().map(|&i| plans[i].delivered_bps).collect();
        rank_subset_by_score(subset, &scores)
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::plan_on;
    use super::*;
    use quasaq_sim::ServerId;

    #[test]
    fn orders_by_bandwidth() {
        let plans = vec![plan_on(0, 193_000), plan_on(1, 7_000), plan_on(2, 48_000)];
        let api =
            CompositeQosApi::homogeneous_cluster(ServerId::first_n(3), 3_200_000.0, 20e6, 512e6);
        let order = MinBitrateModel.rank(&plans, &api, &mut Rng::new(1));
        assert_eq!(order, vec![1, 2, 0]);
    }

    #[test]
    fn ignores_system_state() {
        use quasaq_qosapi::{ResourceKey, ResourceKind, ResourceVector};
        let mut api =
            CompositeQosApi::homogeneous_cluster(ServerId::first_n(3), 3_200_000.0, 20e6, 512e6);
        // Saturate server 1 — min-bitrate still picks it (its flaw).
        api.reserve(
            &ResourceVector::new()
                .with(ResourceKey::new(ServerId(1), ResourceKind::NetBandwidth), 3_000_000.0),
        )
        .unwrap();
        let plans = vec![plan_on(0, 48_000), plan_on(1, 7_000)];
        let order = MinBitrateModel.rank(&plans, &api, &mut Rng::new(1));
        assert_eq!(order[0], 1);
    }
}
