//! Weighted-sum cost model (ablation of the LRB `max`).
//!
//! Identical to LRB except the bucket fills are *summed* (optionally
//! weighted per resource kind) instead of maximized. Comparing it against
//! LRB isolates the value of the max-bucket ("prevent any single bucket
//! from growing faster than the others") formulation.

use super::{rank_by_score, rank_subset_by_score, CostModel};
use crate::plan::Plan;
use quasaq_qosapi::{CompositeQosApi, ResourceKind};
use quasaq_sim::Rng;

/// Sum-of-fills cost model.
#[derive(Debug, Clone, Copy)]
pub struct WeightedSumModel {
    /// Weight applied to CPU buckets.
    pub cpu: f64,
    /// Weight applied to network buckets.
    pub net: f64,
    /// Weight applied to disk buckets.
    pub disk: f64,
    /// Weight applied to memory buckets.
    pub memory: f64,
}

impl Default for WeightedSumModel {
    fn default() -> Self {
        WeightedSumModel { cpu: 1.0, net: 1.0, disk: 1.0, memory: 1.0 }
    }
}

impl WeightedSumModel {
    fn weight(&self, kind: ResourceKind) -> f64 {
        match kind {
            ResourceKind::Cpu => self.cpu,
            ResourceKind::NetBandwidth => self.net,
            ResourceKind::DiskBandwidth => self.disk,
            ResourceKind::Memory => self.memory,
        }
    }

    /// The weighted-sum cost of a plan.
    pub fn cost(&self, plan: &Plan, api: &CompositeQosApi) -> f64 {
        let mut sum = 0.0;
        for (key, demand) in plan.resources.iter() {
            match (api.used(key), api.capacity(key)) {
                (Some(used), Some(cap)) => {
                    sum += self.weight(key.kind) * (used + demand) / cap;
                }
                _ => return f64::INFINITY,
            }
        }
        sum
    }
}

impl CostModel for WeightedSumModel {
    fn name(&self) -> &'static str {
        "weighted-sum"
    }

    fn rank(&self, plans: &[Plan], api: &CompositeQosApi, _rng: &mut Rng) -> Vec<usize> {
        let scores: Vec<f64> = plans.iter().map(|p| self.cost(p, api)).collect();
        rank_by_score(&scores)
    }

    fn rank_subset(
        &self,
        plans: &[Plan],
        subset: &[usize],
        api: &CompositeQosApi,
        _rng: &mut Rng,
    ) -> Vec<usize> {
        let scores: Vec<f64> = subset.iter().map(|&i| self.cost(&plans[i], api)).collect();
        rank_subset_by_score(subset, &scores)
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::plan_on;
    use super::*;
    use quasaq_qosapi::{ResourceKey, ResourceVector};
    use quasaq_sim::ServerId;

    #[test]
    fn prefers_lower_total_load() {
        let mut api =
            CompositeQosApi::homogeneous_cluster(ServerId::first_n(3), 3_200_000.0, 20e6, 512e6);
        api.reserve(
            &ResourceVector::new()
                .with(ResourceKey::new(ServerId(0), ResourceKind::NetBandwidth), 2_000_000.0),
        )
        .unwrap();
        let plans = vec![plan_on(0, 48_000), plan_on(2, 48_000)];
        let order = WeightedSumModel::default().rank(&plans, &api, &mut Rng::new(1));
        assert_eq!(order[0], 1);
    }

    #[test]
    fn unknown_bucket_costs_infinity() {
        let api = CompositeQosApi::new();
        let plan = plan_on(0, 48_000);
        assert_eq!(WeightedSumModel::default().cost(&plan, &api), f64::INFINITY);
    }

    #[test]
    fn weights_change_the_ranking() {
        let api =
            CompositeQosApi::homogeneous_cluster(ServerId::first_n(3), 3_200_000.0, 20e6, 512e6);
        // Two plans with the same bandwidth: one encrypted (more CPU).
        let cheap_cpu = plan_on(0, 48_000);
        let mut heavy_cpu = plan_on(1, 48_000);
        // Manually bump the CPU demand of the second plan.
        let cpu_key = ResourceKey::new(ServerId(1), ResourceKind::Cpu);
        let base = heavy_cpu.resources.get(cpu_key);
        heavy_cpu.resources.set(cpu_key, base + 0.2);
        let plans = vec![heavy_cpu, cheap_cpu];
        // CPU-dominated weighting prefers the cheap-CPU plan.
        let cpu_heavy = WeightedSumModel { cpu: 100.0, ..WeightedSumModel::default() };
        let order = cpu_heavy.rank(&plans, &api, &mut Rng::new(1));
        assert_eq!(order[0], 1);
    }
}
