//! The randomized baseline cost model.
//!
//! "We compare the throughput of two QuaSAQ systems using different cost
//! models: one with LRB and one with a simple randomized algorithm. The
//! latter randomly selects one execution plan from the search space. The
//! randomized approach is a frequently-used query optimization strategy
//! with fair performance."

use super::CostModel;
use crate::plan::Plan;
use quasaq_qosapi::CompositeQosApi;
use quasaq_sim::Rng;

/// Uniform-random plan choice.
#[derive(Debug, Clone, Copy, Default)]
pub struct RandomModel;

impl CostModel for RandomModel {
    fn name(&self) -> &'static str {
        "random"
    }

    fn rank(&self, plans: &[Plan], _api: &CompositeQosApi, rng: &mut Rng) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..plans.len()).collect();
        rng.shuffle(&mut idx);
        idx
    }

    fn rank_subset(
        &self,
        _plans: &[Plan],
        subset: &[usize],
        _api: &CompositeQosApi,
        rng: &mut Rng,
    ) -> Vec<usize> {
        // Shuffling subset *positions* draws exactly what shuffling the
        // compacted list would — same length, same RNG stream.
        let mut idx: Vec<usize> = (0..subset.len()).collect();
        rng.shuffle(&mut idx);
        idx.into_iter().map(|j| subset[j]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::plan_on;
    use super::*;
    use quasaq_sim::ServerId;

    #[test]
    fn returns_a_permutation() {
        let plans: Vec<Plan> = (0..8).map(|i| plan_on(i % 3, 40_000 + i as u64)).collect();
        let api =
            CompositeQosApi::homogeneous_cluster(ServerId::first_n(3), 3_200_000.0, 20e6, 512e6);
        let mut rng = Rng::new(5);
        let order = RandomModel.rank(&plans, &api, &mut rng);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn different_draws_differ() {
        let plans: Vec<Plan> = (0..10).map(|i| plan_on(i % 3, 40_000)).collect();
        let api =
            CompositeQosApi::homogeneous_cluster(ServerId::first_n(3), 3_200_000.0, 20e6, 512e6);
        let mut rng = Rng::new(6);
        let a = RandomModel.rank(&plans, &api, &mut rng);
        let b = RandomModel.rank(&plans, &api, &mut rng);
        assert_ne!(a, b);
    }
}
