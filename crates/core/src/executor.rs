//! The Plan Executor: turning an admitted plan into a running session.
//!
//! "The Plan Executor is in charge of actually running the chosen plan.
//! It basically performs actual presentation, synchronization as well as
//! runtime maintenance of underlying QoS parameters." Here that means
//! compiling an [`AdmittedPlan`] into the streaming substrate's session
//! configuration: materialize the replica's frame trace, apply the plan's
//! transforms, and size the CPU/link reservations from the plan's
//! resource vector.

use crate::manager::AdmittedPlan;
use crate::plan::Plan;
use quasaq_media::{DeliveryCostModel, FrameTrace, TraceParams, VideoMeta};
use quasaq_qosapi::{ResourceKey, ResourceKind};
use quasaq_sim::SimDuration;
use quasaq_stream::{CpuPolicy, DispatchConfig, FrameSchedule, SessionConfig, Transforms};

/// Compiles plans into streaming sessions.
#[derive(Debug, Clone, Copy, Default)]
pub struct PlanExecutor {
    /// Delivery cost model (must match the planner's).
    pub cost: DeliveryCostModel,
    /// Frame dispatch behaviour.
    pub dispatch: DispatchConfig,
}

impl PlanExecutor {
    /// Materializes the stored replica's frame trace for `plan`.
    pub fn trace(&self, plan: &Plan, meta: &VideoMeta) -> FrameTrace {
        let obj = &plan.object.object;
        let params = TraceParams::with_bitrate(
            obj.spec.frame_rate,
            meta.duration,
            meta.gop.clone(),
            obj.rate_bps as f64,
        );
        FrameTrace::generate(obj.trace_seed, &params)
    }

    /// The plan's transform pipeline.
    pub fn transforms(&self, plan: &Plan) -> Transforms {
        Transforms { transcode: plan.transcode, drop: plan.drop, cipher: plan.cipher }
    }

    /// Resolves the plan's delivery schedule.
    pub fn schedule(&self, plan: &Plan, meta: &VideoMeta) -> FrameSchedule {
        let trace = self.trace(plan, meta);
        FrameSchedule::build(&trace, &self.transforms(plan), &self.cost, &self.dispatch)
    }

    /// Builds the frame-level session configuration for an admitted plan,
    /// with CPU and link reservations sized from the plan's resource
    /// vector.
    pub fn session_config(&self, admitted: &AdmittedPlan, meta: &VideoMeta) -> SessionConfig {
        let plan = &admitted.plan;
        let schedule = self.schedule(plan, meta);
        let cpu_share = plan.resources.get(ResourceKey::new(plan.target_server, ResourceKind::Cpu));
        // Budget pools over one GOP so decode-order bursts (an anchor plus
        // its B frames arriving together) are not throttled mid-burst.
        let period = (plan.delivered.frame_rate.frame_interval()
            * schedule.gop_len().max(1) as u64)
            .max(SimDuration::from_millis(1));
        let net =
            plan.resources.get(ResourceKey::new(plan.target_server, ResourceKind::NetBandwidth));
        SessionConfig {
            server: plan.target_server,
            schedule,
            cpu: CpuPolicy::Reserved { share: cpu_share.min(1.0), period },
            // Modest headroom over the mean rate so VBR peaks drain.
            link_rate_bps: Some((net * 1.25).ceil() as u64),
        }
    }

    /// Fluid-session parameters (total bytes, pacing rate) for
    /// throughput-scale experiments.
    pub fn fluid_params(&self, plan: &Plan, meta: &VideoMeta) -> (u64, u64) {
        let bytes = (plan.delivered_bps * meta.duration.as_secs_f64()).round() as u64;
        (bytes.max(1), (plan.delivered_bps.ceil() as u64).max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::LrbModel;
    use crate::generator::{GeneratorConfig, PlanGenerator, PlanRequest};
    use crate::manager::QualityManager;
    use crate::qop::{QopRequest, QopSecurity, UserProfile};
    use quasaq_media::{Library, LibraryConfig, VideoId};
    use quasaq_qosapi::CompositeQosApi;
    use quasaq_sim::{Rng, ServerId, SimTime};
    use quasaq_store::{MetadataEngine, ObjectStore, Placement, QosSampler, ReplicationPlanner};
    use quasaq_stream::{NodeConfig, StreamEngine};
    use std::collections::BTreeMap;

    fn setup() -> (MetadataEngine, QualityManager, Library) {
        let lib = Library::generate(42, &LibraryConfig::default());
        let mut stores = BTreeMap::new();
        for s in ServerId::first_n(3) {
            stores.insert(s, ObjectStore::new(s, 1 << 40));
        }
        let mut engine = MetadataEngine::new(ServerId::first_n(3), 16);
        ReplicationPlanner::new(QosSampler::default(), Placement::Full)
            .replicate(&lib, &mut stores, &mut engine)
            .unwrap();
        let manager = QualityManager::new(
            CompositeQosApi::homogeneous_cluster(
                ServerId::first_n(3),
                3_200_000.0,
                20_000_000.0,
                512e6,
            ),
            PlanGenerator::new(GeneratorConfig::default()),
            Box::new(LrbModel),
        );
        (engine, manager, lib)
    }

    #[test]
    fn end_to_end_admit_execute_stream() {
        let (engine, mut manager, lib) = setup();
        let profile = UserProfile::new("u");
        let mut rng = Rng::new(1);
        // Pick a short video so the test streams it fully.
        let short = lib.entries().iter().min_by_key(|e| e.meta.duration).unwrap().meta.clone();
        let req = PlanRequest {
            video: short.id,
            qos: profile.translate(&QopRequest::organizational()),
            security: QopSecurity::Open,
        };
        let admitted = manager.process(&engine, &req, &mut rng).unwrap();
        let executor = PlanExecutor::default();
        let cfg = executor.session_config(&admitted, &short);
        let mut stream =
            StreamEngine::new(ServerId::first_n(3).map(|s| (s, NodeConfig::qos(3_200_000))));
        let sid = stream.add_session(SimTime::ZERO, cfg).unwrap();
        assert!(stream.run_to_completion(SimTime::from_secs(3600)));
        let report = stream.report(sid);
        assert!(report.is_complete());
        // The delivered stream is timely: mean inter-frame delay near the
        // delivered frame interval.
        let mean = report.frame_delay_stats().mean();
        let ideal = 1000.0 / admitted.plan.delivered.frame_rate.fps();
        assert!((mean - ideal).abs() / ideal < 0.1, "mean {mean} vs ideal {ideal}");
        manager.release(&admitted);
    }

    #[test]
    fn schedule_respects_plan_transforms() {
        let (engine, mut manager, lib) = setup();
        let profile = UserProfile::new("u");
        let mut rng = Rng::new(2);
        let meta = lib.entries()[0].meta.clone();
        let mut req = PlanRequest {
            video: VideoId(0),
            qos: profile.translate(&QopRequest::organizational()),
            security: QopSecurity::Standard,
        };
        req.qos.min_frame_rate = quasaq_media::FrameRate::from_fps(5.0);
        let admitted = manager.process(&engine, &req, &mut rng).unwrap();
        let executor = PlanExecutor::default();
        let schedule = executor.schedule(&admitted.plan, &meta);
        assert!(!schedule.is_empty());
        // Encryption was required, so the plan's cipher is set and the
        // schedule's CPU share includes it.
        assert!(admitted.plan.cipher.is_encrypting());
        let (bytes, rate) = executor.fluid_params(&admitted.plan, &meta);
        assert!(bytes > 0);
        assert!(rate > 0);
        manager.release(&admitted);
    }
}
