//! Quality of Presentation: the user-level QoS vocabulary.
//!
//! "From a user's perspective, QoS translates into the more qualitative
//! notion of Quality of Presentation (QoP). The user is not expected to
//! understand low level quality parameters such as frame rates or packet
//! loss rate. Instead, the user specifies high-level qualitative
//! parameters," which the User Profile translates into application-QoS
//! ranges ("a user input of 'VCD-like spatial resolution' can be
//! interpreted as a resolution range of 320x240 – 352x288 pixels"). The
//! profile also carries "a per-user weighting of the quality parameters"
//! that orders renegotiation alternatives when the preferred quality is
//! rejected.

use quasaq_media::{CipherAlgo, ColorDepth, FrameRate, QosRange, Resolution};

/// Qualitative spatial resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum QopResolution {
    /// Thumbnail/preview class (QCIF).
    Preview,
    /// "VCD-like": 320x240 – 352x288.
    VcdLike,
    /// TV class: 352x288 – 640x480.
    TvLike,
    /// "DVD-quality": 640x480 – 720x480.
    DvdLike,
}

/// Qualitative temporal resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum QopMotion {
    /// Slideshow-tolerant (≥ 10 fps).
    Economy,
    /// Standard motion (≥ 20 fps).
    Standard,
    /// Full smooth motion (≥ 23.9 fps).
    Smooth,
}

/// Qualitative color quality.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum QopColor {
    /// Reduced palettes acceptable (≥ 8 bit).
    Basic,
    /// Rich color (≥ 16 bit).
    Rich,
    /// True color (≥ 24 bit).
    True,
}

/// Qualitative security requirement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum QopSecurity {
    /// No encryption needed.
    Open,
    /// Any encryption.
    Standard,
    /// Strong (AES-class) encryption.
    Confidential,
}

impl QopSecurity {
    /// Minimum cipher strength acceptable.
    pub fn min_strength(self) -> f64 {
        match self {
            QopSecurity::Open => 0.0,
            QopSecurity::Standard => 0.5,
            QopSecurity::Confidential => 1.0,
        }
    }

    /// True when `algo` satisfies the requirement.
    pub fn accepts(self, algo: CipherAlgo) -> bool {
        algo.strength() >= self.min_strength() - 1e-12
    }
}

/// A complete QoP request — what the QoP Browser collects from the user.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QopRequest {
    /// Spatial quality.
    pub resolution: QopResolution,
    /// Temporal quality.
    pub motion: QopMotion,
    /// Color quality.
    pub color: QopColor,
    /// Security level.
    pub security: QopSecurity,
}

impl QopRequest {
    /// The physician's profile from the paper's motivating example:
    /// "jitter-free playback of very high frame rate and resolution video
    /// … is critical".
    pub fn diagnostic() -> Self {
        QopRequest {
            resolution: QopResolution::DvdLike,
            motion: QopMotion::Smooth,
            color: QopColor::True,
            security: QopSecurity::Confidential,
        }
    }

    /// The nurse's profile: "accessing the same data for organization
    /// purposes may not require the same high quality".
    pub fn organizational() -> Self {
        QopRequest {
            resolution: QopResolution::VcdLike,
            motion: QopMotion::Economy,
            color: QopColor::Basic,
            security: QopSecurity::Standard,
        }
    }

    /// Parses the QoP Browser's textual form: a comma-separated list of
    /// `key=value` pairs with qualitative values, e.g.
    /// `"resolution=dvd, motion=smooth, color=true, security=confidential"`.
    /// Omitted keys default to the organizational profile's values.
    pub fn parse(input: &str) -> Result<QopRequest, String> {
        let mut qop = QopRequest::organizational();
        for pair in input.split(',') {
            let pair = pair.trim();
            if pair.is_empty() {
                continue;
            }
            let (key, value) = pair
                .split_once('=')
                .ok_or_else(|| format!("expected key=value, found '{pair}'"))?;
            let key = key.trim().to_ascii_lowercase();
            let value = value.trim().to_ascii_lowercase();
            match key.as_str() {
                "resolution" => {
                    qop.resolution = match value.as_str() {
                        "preview" => QopResolution::Preview,
                        "vcd" => QopResolution::VcdLike,
                        "tv" => QopResolution::TvLike,
                        "dvd" => QopResolution::DvdLike,
                        other => return Err(format!("unknown resolution '{other}'")),
                    }
                }
                "motion" => {
                    qop.motion = match value.as_str() {
                        "economy" => QopMotion::Economy,
                        "standard" => QopMotion::Standard,
                        "smooth" => QopMotion::Smooth,
                        other => return Err(format!("unknown motion '{other}'")),
                    }
                }
                "color" => {
                    qop.color = match value.as_str() {
                        "basic" => QopColor::Basic,
                        "rich" => QopColor::Rich,
                        "true" => QopColor::True,
                        other => return Err(format!("unknown color '{other}'")),
                    }
                }
                "security" => {
                    qop.security = match value.as_str() {
                        "open" => QopSecurity::Open,
                        "standard" => QopSecurity::Standard,
                        "confidential" => QopSecurity::Confidential,
                        other => return Err(format!("unknown security '{other}'")),
                    }
                }
                other => return Err(format!("unknown QoP key '{other}'")),
            }
        }
        Ok(qop)
    }
}

/// Per-user weighting of quality dimensions, ordering renegotiation:
/// "when renegotiation has to be performed, one user may prefer reduction
/// in the temporal resolution while another user may prefer a reduction
/// in the spatial resolution."
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QosWeights {
    /// Importance of spatial resolution.
    pub resolution: f64,
    /// Importance of temporal resolution.
    pub frame_rate: f64,
    /// Importance of color depth.
    pub color: f64,
}

impl Default for QosWeights {
    fn default() -> Self {
        QosWeights { resolution: 1.0, frame_rate: 1.0, color: 1.0 }
    }
}

/// A user profile: QoP→QoS mappings plus renegotiation weights.
#[derive(Debug, Clone, PartialEq)]
pub struct UserProfile {
    /// Display name.
    pub name: String,
    /// Renegotiation weights.
    pub weights: QosWeights,
}

impl UserProfile {
    /// A profile with default weights.
    pub fn new(name: impl Into<String>) -> Self {
        UserProfile { name: name.into(), weights: QosWeights::default() }
    }

    /// A profile with explicit weights.
    pub fn with_weights(name: impl Into<String>, weights: QosWeights) -> Self {
        UserProfile { name: name.into(), weights }
    }

    /// Translates a QoP request into an application-QoS range — the
    /// QoP→QoS mapping step of the QoP Browser.
    pub fn translate(&self, qop: &QopRequest) -> QosRange {
        let (min_res, max_res) = match qop.resolution {
            QopResolution::Preview => (Resolution::new(160, 120), Resolution::QVGA),
            QopResolution::VcdLike => (Resolution::QVGA, Resolution::CIF),
            QopResolution::TvLike => (Resolution::CIF, Resolution::VGA),
            QopResolution::DvdLike => (Resolution::VGA, Resolution::FULL),
        };
        let (min_fps, max_fps) = match qop.motion {
            QopMotion::Economy => (10.0, 30.0),
            QopMotion::Standard => (20.0, 30.0),
            QopMotion::Smooth => (23.9, 30.0),
        };
        let min_color = match qop.color {
            QopColor::Basic => ColorDepth::PALETTE,
            QopColor::Rich => ColorDepth::HIGH_COLOR,
            QopColor::True => ColorDepth::TRUE_COLOR,
        };
        QosRange {
            min_resolution: min_res,
            max_resolution: max_res,
            min_color,
            min_frame_rate: FrameRate::from_fps(min_fps),
            max_frame_rate: FrameRate::from_fps(max_fps),
            formats: None,
        }
    }

    /// Degraded alternatives for the "second chance" path: "a number of
    /// admittable alternative plans will be presented as a 'second
    /// chance' for the query to be serviced." Each alternative relaxes
    /// one quality dimension's floor; dimensions with *lower* weight are
    /// relaxed first.
    pub fn degrade_options(&self, range: &QosRange) -> Vec<QosRange> {
        // (weight, builder) per dimension; sort ascending by weight.
        let mut dims: Vec<(f64, u8)> = vec![
            (self.weights.resolution, 0),
            (self.weights.frame_rate, 1),
            (self.weights.color, 2),
        ];
        dims.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut out = Vec::new();
        for (_, dim) in dims {
            let mut r = range.clone();
            match dim {
                0 => {
                    let m = r.min_resolution;
                    if m.width > 160 || m.height > 120 {
                        r.min_resolution =
                            Resolution::new((m.width / 2).max(160), (m.height / 2).max(120));
                    } else {
                        continue;
                    }
                }
                1 => {
                    let fps = r.min_frame_rate.fps();
                    if fps > 8.0 {
                        r.min_frame_rate = FrameRate::from_fps((fps / 2.0).max(8.0));
                    } else {
                        continue;
                    }
                }
                _ => {
                    let bits = r.min_color.bits();
                    if bits > 8 {
                        r.min_color = ColorDepth::from_bits((bits / 2).max(8));
                    } else {
                        continue;
                    }
                }
            }
            if r.is_valid() {
                out.push(r);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vcd_mapping_matches_paper() {
        let profile = UserProfile::new("u");
        let qop = QopRequest {
            resolution: QopResolution::VcdLike,
            motion: QopMotion::Standard,
            color: QopColor::True,
            security: QopSecurity::Open,
        };
        let range = profile.translate(&qop);
        // "a resolution range of 320x240 – 352x288 pixels".
        assert_eq!(range.min_resolution, Resolution::QVGA);
        assert_eq!(range.max_resolution, Resolution::CIF);
        assert!(range.is_valid());
    }

    #[test]
    fn diagnostic_stricter_than_organizational() {
        let profile = UserProfile::new("md");
        let hi = profile.translate(&QopRequest::diagnostic());
        let lo = profile.translate(&QopRequest::organizational());
        assert!(hi.min_resolution.covers(lo.min_resolution));
        assert!(hi.min_frame_rate > lo.min_frame_rate);
        assert!(hi.min_color > lo.min_color);
    }

    #[test]
    fn security_levels() {
        assert!(QopSecurity::Open.accepts(CipherAlgo::None));
        assert!(!QopSecurity::Standard.accepts(CipherAlgo::None));
        assert!(QopSecurity::Standard.accepts(CipherAlgo::Stream));
        assert!(!QopSecurity::Confidential.accepts(CipherAlgo::Block));
        assert!(QopSecurity::Confidential.accepts(CipherAlgo::Aes));
    }

    #[test]
    fn degrade_follows_weights() {
        let range = UserProfile::new("u").translate(&QopRequest::diagnostic());
        // This user cares about resolution most, frame rate least.
        let profile = UserProfile::with_weights(
            "u",
            QosWeights { resolution: 3.0, frame_rate: 0.5, color: 1.0 },
        );
        let options = profile.degrade_options(&range);
        assert_eq!(options.len(), 3);
        // First option relaxes frame rate (lowest weight), leaving
        // resolution untouched.
        assert!(options[0].min_frame_rate < range.min_frame_rate);
        assert_eq!(options[0].min_resolution, range.min_resolution);
        // Last option relaxes resolution (highest weight).
        assert!(options[2].min_resolution < range.min_resolution);
    }

    #[test]
    fn degrade_bottoms_out() {
        let profile = UserProfile::new("u");
        let mut range = profile.translate(&QopRequest::organizational());
        // Grind everything to the floor.
        for _ in 0..10 {
            let opts = profile.degrade_options(&range);
            match opts.into_iter().last() {
                Some(r) => range = r,
                None => break,
            }
        }
        // Eventually no further degradation is possible on some dimension.
        let final_opts = profile.degrade_options(&range);
        assert!(final_opts.len() < 3);
    }

    #[test]
    fn parse_full_and_partial() {
        let qop =
            QopRequest::parse("resolution=dvd, motion=smooth, color=true, security=confidential")
                .unwrap();
        assert_eq!(qop, QopRequest::diagnostic());
        // Partial input keeps organizational defaults.
        let qop = QopRequest::parse("motion=smooth").unwrap();
        assert_eq!(qop.motion, QopMotion::Smooth);
        assert_eq!(qop.resolution, QopResolution::VcdLike);
        // Empty input is the organizational profile.
        assert_eq!(QopRequest::parse("").unwrap(), QopRequest::organizational());
        // Case and spacing are forgiven.
        let qop = QopRequest::parse("  RESOLUTION = TV ,color=rich ").unwrap();
        assert_eq!(qop.resolution, QopResolution::TvLike);
        assert_eq!(qop.color, QopColor::Rich);
    }

    #[test]
    fn parse_rejects_unknown_tokens() {
        assert!(QopRequest::parse("resolution=8k").is_err());
        assert!(QopRequest::parse("sharpness=high").is_err());
        assert!(QopRequest::parse("resolution").is_err());
        assert!(QopRequest::parse("motion=wobbly").is_err());
        assert!(QopRequest::parse("color=greyscale").is_err());
        assert!(QopRequest::parse("security=nuclear").is_err());
    }

    #[test]
    fn all_translations_are_valid_ranges() {
        let profile = UserProfile::new("u");
        for res in [
            QopResolution::Preview,
            QopResolution::VcdLike,
            QopResolution::TvLike,
            QopResolution::DvdLike,
        ] {
            for motion in [QopMotion::Economy, QopMotion::Standard, QopMotion::Smooth] {
                for color in [QopColor::Basic, QopColor::Rich, QopColor::True] {
                    let range = profile.translate(&QopRequest {
                        resolution: res,
                        motion,
                        color,
                        security: QopSecurity::Open,
                    });
                    assert!(range.is_valid(), "{res:?}/{motion:?}/{color:?}");
                }
            }
        }
    }
}
