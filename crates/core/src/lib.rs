//! # quasaq-core — the QoS-Aware Query Processor (QuaSAQ)
//!
//! The paper's primary contribution: a query-processing layer that takes
//! the logical OIDs produced by conventional content search and plans,
//! admits, and executes *QoS-constrained delivery*.
//!
//! The pipeline (paper §3/§4):
//!
//! 1. **QoP Browser** ([`qop`]) — qualitative user inputs are translated
//!    through the [`UserProfile`] into application-QoS ranges, with
//!    per-user weights ordering renegotiation alternatives.
//! 2. **Plan Generator** ([`generator`]) — enumerates the ordered
//!    disjoint activity sets of Fig 2 (replica × site × frame-drop ×
//!    transcode × encryption) under static QoS rules and
//!    performance-pitfall pruning; every plan carries its resource vector
//!    ([`plan`]).
//! 3. **Runtime Cost Evaluator** ([`cost`]) — ranks plans against live
//!    resource state; the paper's Lowest Resource Bucket model
//!    ([`cost::LrbModel`], Eq. 1) plus baselines and the configurable
//!    efficiency optimizer `E = G/C(r)`.
//! 4. **Quality Manager** ([`manager`]) — admission through the
//!    Composite QoS API, first-admittable-plan selection, second-chance
//!    degradation, renegotiation, and release.
//! 5. **Plan Executor** ([`executor`]) — compiles admitted plans into
//!    streaming sessions on the simulated testbed.

pub mod cost;
pub mod executor;
pub mod generator;
pub mod manager;
pub mod plan;
pub mod plancache;
pub mod qop;

pub use cost::{
    CostModel, EfficiencyModel, Gain, LrbModel, MinBitrateModel, RandomModel, ThroughputGain,
    UtilityGain, WeightedSumModel,
};
pub use executor::PlanExecutor;
pub use generator::{satisfies_ordered_disjoint_sets, GeneratorConfig, PlanGenerator, PlanRequest};
pub use manager::{AdmittedPlan, PlanningStats, QualityManager, Rejection, SecondChance};
pub use plan::Plan;
pub use plancache::{PlanCache, PlanCacheKey, PlanCacheStats};
pub use qop::{
    QopColor, QopMotion, QopRequest, QopResolution, QopSecurity, QosWeights, UserProfile,
};
