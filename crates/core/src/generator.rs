//! The Plan Generator: enumerating and pruning the QoS-aware plan space.
//!
//! For one resolved logical object, the generator expands the ordered
//! disjoint activity sets of Fig 2 — object replica (A1) × target site
//! (A2) × frame-dropping strategy (A3) × transcoding target (A4) ×
//! encryption (A5) — and applies the paper's two pruning layers:
//!
//! * **Static QoS rules** — "we cannot retrieve a video with resolution
//!   lower than that required by the user. Similarly, it makes no sense
//!   to transcode from low resolution to high resolution": replicas must
//!   dominate the range floor, transcodes only go down, and frame
//!   dropping may not push the delivered frame rate below the floor.
//! * **Performance pitfalls** — plans that are pure waste are dropped
//!   instantly (e.g. encrypting when no security was requested; the
//!   encrypt-after-drop ordering is structural in the executor).
//!
//! With the activity order fixed the space is `O(d^n)`; the generator
//! also exposes the unpruned combinatorial bound so the pruning ablation
//! can report how much the rules save.

use crate::plan::Plan;
use crate::qop::QopSecurity;
use quasaq_media::{
    CipherAlgo, DeliveryCostModel, DropStrategy, FrameRate, QosRange, Transcode, VideoFormat,
    VideoId,
};
use quasaq_qosapi::CompositeQosApi;
use quasaq_sim::ServerId;
use quasaq_store::MetadataEngine;

/// What the Quality Manager plans for: a resolved logical object plus the
/// query's QoS component.
#[derive(Debug, Clone)]
pub struct PlanRequest {
    /// The logical object identified by the content query.
    pub video: VideoId,
    /// Acceptable application QoS.
    pub qos: QosRange,
    /// Security requirement (chooses the A5 set).
    pub security: QopSecurity,
}

/// Generator policy switches (ablation knobs).
#[derive(Debug, Clone, Copy)]
pub struct GeneratorConfig {
    /// Enumerate cross-server plans (retrieve at one site, serve from
    /// another).
    pub allow_remote: bool,
    /// Enumerate online-transcode plans.
    pub allow_transcode: bool,
    /// Enumerate frame-dropping plans.
    pub allow_drop: bool,
    /// Apply the static pruning rules. Disabling this (for the ablation)
    /// keeps QoS-*violating* plans out — they would be incorrect — but
    /// stops dropping merely *wasteful* ones.
    pub prune_wasteful: bool,
    /// Delivery cost model used for resource vectors.
    pub cost: DeliveryCostModel,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            allow_remote: true,
            allow_transcode: true,
            allow_drop: true,
            prune_wasteful: true,
            cost: DeliveryCostModel::default(),
        }
    }
}

/// The Plan Generator.
#[derive(Debug, Clone)]
pub struct PlanGenerator {
    cfg: GeneratorConfig,
}

impl PlanGenerator {
    /// Creates a generator.
    pub fn new(cfg: GeneratorConfig) -> Self {
        PlanGenerator { cfg }
    }

    /// The configuration.
    pub fn config(&self) -> &GeneratorConfig {
        &self.cfg
    }

    /// Enumerates all valid plans for `request`, in deterministic order.
    pub fn generate(&self, engine: &MetadataEngine, request: &PlanRequest) -> Vec<Plan> {
        let mut plans = Vec::new();
        self.generate_into(engine, request, &mut plans);
        plans
    }

    /// Enumerates all valid plans for `request` into `out` (cleared first).
    ///
    /// The buffer-reuse entry point for per-query hot paths: a caller that
    /// plans many queries hands the same `Vec` back in each time and pays
    /// for plan-space allocation only until the high-water mark is reached.
    pub fn generate_into(
        &self,
        engine: &MetadataEngine,
        request: &PlanRequest,
        out: &mut Vec<Plan>,
    ) {
        out.clear();
        let Some(meta) = engine.video(request.video) else { return };
        let gop = &meta.gop;
        let servers: Vec<ServerId> = engine.sites().collect();

        // A5: encryption — depends only on the request, so build it once
        // for all replicas.
        let ciphers: Vec<CipherAlgo> = CipherAlgo::ALL
            .into_iter()
            .filter(|c| request.security.accepts(*c))
            .filter(|c| {
                // Performance pitfall: encrypting an open stream is pure
                // waste.
                !self.cfg.prune_wasteful
                    || request.security != QopSecurity::Open
                    || !c.is_encrypting()
            })
            .collect();

        // A4 scratch buffer, reused across replicas; likewise the
        // per-cipher CPU shares hoisted out of the target-site fan-out.
        let mut deliveries: Vec<Option<Transcode>> = Vec::new();
        let mut cpu_shares: Vec<f64> = Vec::new();

        for record in engine.replicas(request.video) {
            let spec = record.object.spec;
            let stored_rate = record.object.rate_bps as f64;
            let stored_fps = spec.frame_rate.fps();
            // Static QoS rule: quality only degrades, so the replica must
            // dominate the range floor.
            if !request.qos.reachable_from(&spec) {
                continue;
            }

            // A4: transcoding targets — deliver as-is when in range, or
            // transcode down to the cheapest in-range quality.
            deliveries.clear();
            if request.qos.accepts(&spec) {
                deliveries.push(None);
            }
            if self.cfg.allow_transcode {
                // Prefer the MPEG-1 streaming format when acceptable.
                let fmt = if request.qos.accepts_format(VideoFormat::Mpeg1) {
                    VideoFormat::Mpeg1
                } else {
                    spec.format
                };
                if let Some(target) = request.qos.cheapest_target(&spec, fmt) {
                    if target != spec {
                        if let Ok(t) = Transcode::plan(spec, target) {
                            deliveries.push(Some(t));
                        }
                    }
                }
            }

            // A2: target sites.
            let local = [record.object.server];
            let targets: &[ServerId] = if self.cfg.allow_remote { &servers } else { &local };

            // A3: frame dropping.
            let drops: &[DropStrategy] =
                if self.cfg.allow_drop { &DropStrategy::ALL } else { &[DropStrategy::None] };

            for transcode in &deliveries {
                let base = match transcode {
                    Some(t) => *t.target(),
                    None => spec,
                };
                for &drop in drops {
                    // Static QoS rule: dropping must keep the delivered
                    // frame rate within range.
                    let effective_fps = drop.effective_fps(base.frame_rate.fps(), gop);
                    if FrameRate::from_fps(effective_fps.max(0.001)) < request.qos.min_frame_rate {
                        continue;
                    }
                    // The delivered rate, buffer need, and per-cipher CPU
                    // shares are properties of the activity chain alone —
                    // compute them once here instead of once per target
                    // site (the A2 fan-out multiplies by the cluster size).
                    let (delivered_bps, _fps) = self.cfg.cost.delivered_rate(
                        stored_rate,
                        stored_fps,
                        gop,
                        transcode.as_ref(),
                        drop,
                    );
                    let buffer_bytes = self.cfg.cost.buffer_bytes(delivered_bps);
                    cpu_shares.clear();
                    for &cipher in &ciphers {
                        cpu_shares.push(
                            self.cfg.cost.session_cpu_share(
                                stored_rate,
                                stored_fps,
                                gop,
                                transcode.as_ref(),
                                drop,
                                cipher,
                            ) * self.cfg.cost.reservation_headroom,
                        );
                    }
                    let mut delivered = base;
                    delivered.frame_rate = FrameRate::from_fps(effective_fps);
                    for &target_server in targets {
                        for (&cipher, &cpu_share) in ciphers.iter().zip(&cpu_shares) {
                            let resources = Plan::assemble_resources(
                                record,
                                target_server,
                                delivered_bps,
                                cpu_share,
                                buffer_bytes,
                            );
                            out.push(Plan {
                                object: record.clone(),
                                target_server,
                                drop,
                                transcode: *transcode,
                                cipher,
                                delivered,
                                delivered_bps,
                                resources,
                            });
                        }
                    }
                }
            }
        }
    }

    /// Instantly drops plans whose resource demand exceeds some bucket's
    /// *total* capacity — "some of the plans can be immediately dropped
    /// by the Plan Generator if their costs are intolerably high". In
    /// place, so the plan buffer's allocation stays alive for reuse
    /// across queries. The cut depends only on bucket *capacities* (never
    /// current usage), which is what lets plan caches snapshot its result
    /// per structural [state epoch](CompositeQosApi::state_epoch).
    pub fn retain_feasible(&self, plans: &mut Vec<Plan>, api: &CompositeQosApi) {
        plans.retain(|p| Self::is_feasible(p, api));
    }

    /// The single-plan predicate behind [`retain_feasible`](Self::retain_feasible).
    pub fn is_feasible(plan: &Plan, api: &CompositeQosApi) -> bool {
        plan.resources
            .iter()
            .all(|(key, demand)| api.capacity(key).is_some_and(|c| demand <= c + 1e-9))
    }

    /// The unpruned combinatorial bound `O(d^n)` for a request: replicas ×
    /// sites × drop strategies × transcode options × ciphers. Used by the
    /// pruning ablation.
    pub fn combinatorial_bound(&self, engine: &MetadataEngine, video: VideoId) -> usize {
        let replicas = engine.replicas(video).len();
        let sites = engine.sites().count();
        replicas * sites * DropStrategy::ALL.len() * 2 * CipherAlgo::ALL.len()
    }
}

/// Checks the formal plan-space conditions of §3.4: each plan draws at
/// most one element from each activity set, all components come from the
/// defined sets, and the activity order is fixed (retrieval first —
/// structural in [`Plan`]). Used by tests and the paper-fidelity checks.
pub fn satisfies_ordered_disjoint_sets(plan: &Plan) -> bool {
    // A1 (exactly one object), A2 (exactly one target) are single fields.
    // A3/A4/A5 each contribute at most one element by construction; the
    // check validates the elements belong to their sets.
    let a3_ok = DropStrategy::ALL.contains(&plan.drop);
    let a5_ok = CipherAlgo::ALL.contains(&plan.cipher);
    let a4_ok = match &plan.transcode {
        Some(t) => t.source() == &plan.object.object.spec,
        None => true,
    };
    a3_ok && a4_ok && a5_ok
}

#[cfg(test)]
mod tests {
    use super::*;
    use quasaq_media::{ColorDepth, Library, LibraryConfig, Resolution};
    use quasaq_store::{ObjectStore, Placement, QosSampler, ReplicationPlanner};
    use std::collections::BTreeMap;

    fn engine() -> MetadataEngine {
        let lib = Library::generate(42, &LibraryConfig::default());
        let mut stores = BTreeMap::new();
        for s in ServerId::first_n(3) {
            stores.insert(s, ObjectStore::new(s, 1 << 40));
        }
        let mut engine = MetadataEngine::new(ServerId::first_n(3), 16);
        ReplicationPlanner::new(QosSampler::default(), Placement::Full)
            .replicate(&lib, &mut stores, &mut engine)
            .unwrap();
        engine
    }

    fn vcd_request(video: u32) -> PlanRequest {
        PlanRequest {
            video: VideoId(video),
            qos: QosRange {
                min_resolution: Resolution::QVGA,
                max_resolution: Resolution::CIF,
                min_color: ColorDepth::BITS_12,
                min_frame_rate: FrameRate::from_fps(20.0),
                max_frame_rate: FrameRate::NTSC,
                formats: None,
            },
            security: QopSecurity::Open,
        }
    }

    #[test]
    fn generates_plans_for_satisfiable_request() {
        let e = engine();
        let g = PlanGenerator::new(GeneratorConfig::default());
        let plans = g.generate(&e, &vcd_request(0));
        assert!(!plans.is_empty());
        for p in &plans {
            assert!(satisfies_ordered_disjoint_sets(p));
            // Every plan's source replica can reach the requested range.
            assert!(vcd_request(0).qos.reachable_from(&p.object.object.spec));
        }
    }

    #[test]
    fn no_plans_for_unknown_video() {
        let e = engine();
        let g = PlanGenerator::new(GeneratorConfig::default());
        assert!(g.generate(&e, &vcd_request(99)).is_empty());
    }

    #[test]
    fn static_rule_excludes_upscaling_replicas() {
        let e = engine();
        let g = PlanGenerator::new(GeneratorConfig::default());
        let plans = g.generate(&e, &vcd_request(0));
        // The modem tier (176x144) cannot satisfy a VCD floor; no plan
        // may use it.
        assert!(plans.iter().all(|p| p.object.object.tier != "modem"));
    }

    #[test]
    fn dsl_replica_is_delivered_directly() {
        let e = engine();
        let g = PlanGenerator::new(GeneratorConfig::default());
        let plans = g.generate(&e, &vcd_request(0));
        // The DSL tier (352x288) is inside the VCD range: direct plans
        // exist with no transcode.
        assert!(plans.iter().any(|p| p.object.object.tier == "dsl" && p.transcode.is_none()));
        // Full-tier replicas exceed the ceiling, so they appear only with
        // a transcode.
        assert!(plans
            .iter()
            .filter(|p| p.object.object.tier == "full")
            .all(|p| p.transcode.is_some()));
    }

    #[test]
    fn open_security_prunes_encryption() {
        let e = engine();
        let g = PlanGenerator::new(GeneratorConfig::default());
        let plans = g.generate(&e, &vcd_request(0));
        assert!(plans.iter().all(|p| !p.cipher.is_encrypting()));
        // Without wasteful-pruning, encrypted plans reappear.
        let g2 = PlanGenerator::new(GeneratorConfig {
            prune_wasteful: false,
            ..GeneratorConfig::default()
        });
        let plans2 = g2.generate(&e, &vcd_request(0));
        assert!(plans2.iter().any(|p| p.cipher.is_encrypting()));
        assert!(plans2.len() > plans.len());
    }

    #[test]
    fn confidential_requires_strong_cipher() {
        let e = engine();
        let g = PlanGenerator::new(GeneratorConfig::default());
        let mut req = vcd_request(0);
        req.security = QopSecurity::Confidential;
        let plans = g.generate(&e, &req);
        assert!(!plans.is_empty());
        assert!(plans.iter().all(|p| p.cipher == CipherAlgo::Aes));
    }

    #[test]
    fn drop_respects_frame_rate_floor() {
        let e = engine();
        let g = PlanGenerator::new(GeneratorConfig::default());
        // Floor of 20 fps: AllB (keeps 1/3 of 23.97 = 8 fps) must be
        // excluded; None stays.
        let plans = g.generate(&e, &vcd_request(0));
        assert!(plans.iter().any(|p| p.drop == DropStrategy::None));
        assert!(plans.iter().all(|p| p.drop != DropStrategy::AllB));
        // With a relaxed floor, AllB plans appear.
        let mut relaxed = vcd_request(0);
        relaxed.qos.min_frame_rate = FrameRate::from_fps(5.0);
        let plans = g.generate(&e, &relaxed);
        assert!(plans.iter().any(|p| p.drop == DropStrategy::AllB));
    }

    #[test]
    fn remote_toggle_controls_cross_site_plans() {
        let e = engine();
        let local_only = PlanGenerator::new(GeneratorConfig {
            allow_remote: false,
            ..GeneratorConfig::default()
        });
        let plans = local_only.generate(&e, &vcd_request(0));
        assert!(plans.iter().all(|p| p.is_local()));
        let with_remote = PlanGenerator::new(GeneratorConfig::default());
        let plans = with_remote.generate(&e, &vcd_request(0));
        assert!(plans.iter().any(|p| !p.is_local()));
    }

    #[test]
    fn pruning_shrinks_the_space() {
        let e = engine();
        let g = PlanGenerator::new(GeneratorConfig::default());
        let generated = g.generate(&e, &vcd_request(0)).len();
        let bound = g.combinatorial_bound(&e, VideoId(0));
        assert!(generated < bound, "generated {generated} >= bound {bound}");
    }

    #[test]
    fn infeasible_plans_are_dropped() {
        let e = engine();
        let g = PlanGenerator::new(GeneratorConfig::default());
        let plans = g.generate(&e, &vcd_request(0));
        let n = plans.len();
        // A cluster with tiny links: every plan's delivery rate exceeds
        // capacity.
        let tiny = CompositeQosApi::homogeneous_cluster(ServerId::first_n(3), 10.0, 10.0, 10.0);
        let mut dropped = plans.clone();
        g.retain_feasible(&mut dropped, &tiny);
        assert!(dropped.is_empty());
        // A sane cluster keeps them all.
        let sane = CompositeQosApi::homogeneous_cluster(
            ServerId::first_n(3),
            3_200_000.0,
            20_000_000.0,
            512e6,
        );
        let mut kept = plans;
        g.retain_feasible(&mut kept, &sane);
        assert_eq!(kept.len(), n);
    }

    #[test]
    fn deterministic_enumeration_order() {
        let e = engine();
        let g = PlanGenerator::new(GeneratorConfig::default());
        let a = g.generate(&e, &vcd_request(3));
        let b = g.generate(&e, &vcd_request(3));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.object.object.oid, y.object.object.oid);
            assert_eq!(x.target_server, y.target_server);
            assert_eq!(x.drop, y.drop);
            assert_eq!(x.cipher, y.cipher);
        }
    }
}
