//! QoS-aware query execution plans.
//!
//! "The final execution of QoS-aware query plans can be viewed as a
//! series of server activities that may include retrieval, decoding,
//! transcoding between different formats and/or qualities, and
//! encryption. Therefore, the search space of alternative QoS-aware plans
//! consists of all possible combinations of media repositories, target
//! objects, and server activities" (Fig 2's disjoint sets A1–A5). A
//! [`Plan`] is one such ordered combination with its resource vector
//! precomputed for cost evaluation.

use quasaq_media::{
    CipherAlgo, DeliveryCostModel, DropStrategy, GopPattern, QualitySpec, Transcode,
};
use quasaq_qosapi::{ResourceKey, ResourceKind, ResourceVector};
use quasaq_sim::ServerId;
use quasaq_store::ObjectRecord;
use std::fmt;

/// One fully specified delivery plan.
#[derive(Debug, Clone)]
pub struct Plan {
    /// A1: the physical replica to retrieve.
    pub object: ObjectRecord,
    /// A2: the serving (target) site; differs from the replica's site for
    /// cross-server plans ("the sender of the video data is not
    /// necessarily the site at which the query was received").
    pub target_server: ServerId,
    /// A3: runtime frame-dropping strategy.
    pub drop: DropStrategy,
    /// A4: optional online transcode.
    pub transcode: Option<Transcode>,
    /// A5: encryption algorithm.
    pub cipher: CipherAlgo,
    /// The application QoS actually delivered to the client.
    pub delivered: QualitySpec,
    /// Mean delivered bandwidth in bytes/second.
    pub delivered_bps: f64,
    /// The plan's resource demand (the Plan Generator "computes its
    /// resource requirements (in the form of a resource vector)").
    pub resources: ResourceVector,
}

impl Plan {
    /// The replica's home site.
    pub fn source_server(&self) -> ServerId {
        self.object.object.server
    }

    /// True when the plan streams straight from the replica's site.
    pub fn is_local(&self) -> bool {
        self.source_server() == self.target_server
    }

    /// Number of non-trivial server activities (for search-space
    /// accounting and display).
    pub fn activity_count(&self) -> usize {
        let mut n = 2; // retrieval + site choice are always present
        if self.drop != DropStrategy::None {
            n += 1;
        }
        if self.transcode.as_ref().is_some_and(|t| !t.is_identity()) {
            n += 1;
        }
        if self.cipher.is_encrypting() {
            n += 1;
        }
        n
    }

    /// Computes the plan's resource vector under `cost`, including the
    /// reservation headroom on CPU. Cross-server plans additionally charge
    /// the source site's disk and network for the inter-server transfer.
    pub fn compute_resources(
        object: &ObjectRecord,
        target_server: ServerId,
        gop: &GopPattern,
        transcode: Option<&Transcode>,
        drop: DropStrategy,
        cipher: CipherAlgo,
        cost: &DeliveryCostModel,
    ) -> (ResourceVector, f64) {
        let stored_rate = object.object.rate_bps as f64;
        let stored_fps = object.object.spec.frame_rate.fps();
        let (delivered_bps, _fps) =
            cost.delivered_rate(stored_rate, stored_fps, gop, transcode, drop);
        let cpu_share =
            cost.session_cpu_share(stored_rate, stored_fps, gop, transcode, drop, cipher)
                * cost.reservation_headroom;
        let v = Plan::assemble_resources(
            object,
            target_server,
            delivered_bps,
            cpu_share,
            cost.buffer_bytes(delivered_bps),
        );
        (v, delivered_bps)
    }

    /// Assembles the demand vector from target-independent figures. The
    /// delivered rate, CPU share, and buffer size depend only on the
    /// replica and the activity choices, so callers enumerating target
    /// sites (the plan generator fans each delivery out across every
    /// server) compute them once and re-run only this cheap assembly per
    /// site.
    pub fn assemble_resources(
        object: &ObjectRecord,
        target_server: ServerId,
        delivered_bps: f64,
        cpu_share: f64,
        buffer_bytes: f64,
    ) -> ResourceVector {
        let stored_rate = object.object.rate_bps as f64;
        let mut v = ResourceVector::with_capacity(5);
        let source = object.object.server;
        // The source site reads the replica from disk.
        v.add(ResourceKey::new(source, ResourceKind::DiskBandwidth), stored_rate);
        if source != target_server {
            // Inter-server transfer consumes the source's outbound link at
            // the stored rate; the target receives and re-serves.
            v.add(ResourceKey::new(source, ResourceKind::NetBandwidth), stored_rate);
        }
        // The target site runs the pipeline and streams to the client.
        v.add(ResourceKey::new(target_server, ResourceKind::Cpu), cpu_share.min(1.0));
        v.add(ResourceKey::new(target_server, ResourceKind::NetBandwidth), delivered_bps);
        v.add(ResourceKey::new(target_server, ResourceKind::Memory), buffer_bytes);
        v
    }
}

impl fmt::Display for Plan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "retrieve {}@{} ({})",
            self.object.object.oid,
            self.source_server(),
            self.object.object.tier
        )?;
        if !self.is_local() {
            write!(f, " -> transfer to {}", self.target_server)?;
        }
        if let Some(t) = &self.transcode {
            if !t.is_identity() {
                write!(f, " -> transcode to {}", t.target())?;
            }
        }
        if self.drop != DropStrategy::None {
            write!(f, " -> drop {}", self.drop)?;
        }
        if self.cipher.is_encrypting() {
            write!(f, " -> encrypt {}", self.cipher)?;
        }
        write!(f, " => {} @ {:.0} B/s", self.delivered, self.delivered_bps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quasaq_media::{ColorDepth, FrameRate, Resolution, VideoFormat, VideoId};
    use quasaq_store::{PhysicalObject, PhysicalOid, QosProfile};

    fn record(server: u32) -> ObjectRecord {
        ObjectRecord {
            object: PhysicalObject {
                oid: PhysicalOid(1),
                video: VideoId(0),
                tier: "t1",
                spec: QualitySpec::new(
                    Resolution::VGA,
                    ColorDepth::TRUE_COLOR,
                    FrameRate::NTSC_FILM,
                    VideoFormat::Mpeg1,
                ),
                rate_bps: 193_000,
                bytes: 10_000_000,
                server: ServerId(server),
                trace_seed: 7,
            },
            profile: QosProfile::ZERO,
        }
    }

    fn cost() -> DeliveryCostModel {
        DeliveryCostModel::default()
    }

    #[test]
    fn local_plan_charges_only_its_site() {
        let rec = record(0);
        let gop = GopPattern::mpeg1_n15();
        let (v, bps) = Plan::compute_resources(
            &rec,
            ServerId(0),
            &gop,
            None,
            DropStrategy::None,
            CipherAlgo::None,
            &cost(),
        );
        assert!((bps - 193_000.0).abs() < 1.0);
        assert!(v.get(ResourceKey::new(ServerId(0), ResourceKind::Cpu)) > 0.0);
        assert!(v.get(ResourceKey::new(ServerId(0), ResourceKind::NetBandwidth)) > 0.0);
        // No foreign buckets.
        assert!(v.iter().all(|(k, _)| k.server == ServerId(0)));
    }

    #[test]
    fn remote_plan_charges_transfer() {
        let rec = record(1);
        let gop = GopPattern::mpeg1_n15();
        let (v, _) = Plan::compute_resources(
            &rec,
            ServerId(0),
            &gop,
            None,
            DropStrategy::None,
            CipherAlgo::None,
            &cost(),
        );
        // Source pays disk + transfer net; target pays cpu + delivery net.
        assert!(v.get(ResourceKey::new(ServerId(1), ResourceKind::DiskBandwidth)) > 0.0);
        assert!(v.get(ResourceKey::new(ServerId(1), ResourceKind::NetBandwidth)) > 0.0);
        assert!(v.get(ResourceKey::new(ServerId(0), ResourceKind::NetBandwidth)) > 0.0);
        assert!(v.get(ResourceKey::new(ServerId(0), ResourceKind::Cpu)) > 0.0);
    }

    #[test]
    fn dropping_reduces_delivered_bandwidth() {
        let rec = record(0);
        let gop = GopPattern::mpeg1_n15();
        let (_, full) = Plan::compute_resources(
            &rec,
            ServerId(0),
            &gop,
            None,
            DropStrategy::None,
            CipherAlgo::None,
            &cost(),
        );
        let (_, dropped) = Plan::compute_resources(
            &rec,
            ServerId(0),
            &gop,
            None,
            DropStrategy::AllB,
            CipherAlgo::None,
            &cost(),
        );
        assert!(dropped < full);
    }

    #[test]
    fn encryption_raises_cpu_demand() {
        let rec = record(0);
        let gop = GopPattern::mpeg1_n15();
        let key = ResourceKey::new(ServerId(0), ResourceKind::Cpu);
        let (plain, _) = Plan::compute_resources(
            &rec,
            ServerId(0),
            &gop,
            None,
            DropStrategy::None,
            CipherAlgo::None,
            &cost(),
        );
        let (enc, _) = Plan::compute_resources(
            &rec,
            ServerId(0),
            &gop,
            None,
            DropStrategy::None,
            CipherAlgo::Block,
            &cost(),
        );
        assert!(enc.get(key) > plain.get(key));
    }

    #[test]
    fn plan_display_and_activities() {
        let rec = record(1);
        let gop = GopPattern::mpeg1_n15();
        let (v, bps) = Plan::compute_resources(
            &rec,
            ServerId(0),
            &gop,
            None,
            DropStrategy::AllB,
            CipherAlgo::Aes,
            &cost(),
        );
        let plan = Plan {
            object: rec,
            target_server: ServerId(0),
            drop: DropStrategy::AllB,
            transcode: None,
            cipher: CipherAlgo::Aes,
            delivered: record(1).object.spec,
            delivered_bps: bps,
            resources: v,
        };
        assert!(!plan.is_local());
        assert_eq!(plan.activity_count(), 4);
        let s = plan.to_string();
        assert!(s.contains("transfer"));
        assert!(s.contains("drop"));
        assert!(s.contains("encrypt"));
    }
}
