//! The Quality Manager — "the focal point of the entire system".
//!
//! For each QoS-aware query (after VDBMS resolves the content component
//! to a logical OID) the manager: generates candidate plans, lets the
//! Runtime Cost Evaluator sort them "in ascending cost order", and walks
//! that order through admission control — "the first plan in this order
//! that satisfies the QoS requirements is used to service the query" —
//! reserving its resource vector through the Composite QoS API. When
//! nothing is admittable, degraded alternatives from the User Profile are
//! offered as the "second chance"; during playback, reservations can be
//! renegotiated.

use crate::cost::CostModel;
use crate::generator::{PlanGenerator, PlanRequest};
use crate::plan::Plan;
use crate::qop::UserProfile;
use quasaq_qosapi::{CompositeQosApi, ReservationId};
use quasaq_sim::Rng;
use quasaq_store::MetadataEngine;

/// A plan that passed admission and holds its reservation.
#[derive(Debug, Clone)]
pub struct AdmittedPlan {
    /// The chosen plan.
    pub plan: Plan,
    /// The composite reservation backing it.
    pub reservation: ReservationId,
}

/// Why a query could not be serviced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Rejection {
    /// The plan space is empty: no replica can satisfy the QoS range at
    /// all (static infeasibility).
    NoFeasiblePlan,
    /// Plans exist but none passed admission under the current load.
    AdmissionFailed,
}

impl Rejection {
    /// Whether waiting and retrying could help: admission failures are
    /// load-dependent and clear when sessions finish, while an empty plan
    /// space is static — no amount of queueing produces a replica.
    pub fn is_transient(&self) -> bool {
        matches!(self, Rejection::AdmissionFailed)
    }
}

impl std::fmt::Display for Rejection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rejection::NoFeasiblePlan => write!(f, "no plan can satisfy the requested QoS"),
            Rejection::AdmissionFailed => {
                write!(f, "all candidate plans were rejected by admission control")
            }
        }
    }
}

impl std::error::Error for Rejection {}

/// Statistics of one planning pass (for the overhead analysis of §5.2).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PlanningStats {
    /// Plans generated after static pruning.
    pub generated: usize,
    /// Plans surviving the instant feasibility drop.
    pub feasible: usize,
    /// Admission attempts before success (0 when rejected).
    pub attempts: usize,
}

/// Outcome of the second-chance path.
#[derive(Debug)]
pub enum SecondChance {
    /// Admitted at the originally requested quality.
    AsRequested(AdmittedPlan),
    /// Admitted at a degraded quality (the index into the profile's
    /// degrade options is recorded).
    Degraded {
        /// The admitted plan.
        admitted: AdmittedPlan,
        /// Which degradation step was accepted (0 = first alternative).
        option: usize,
    },
    /// Nothing admittable even after degradation.
    Rejected(Rejection),
}

/// The Quality Manager.
pub struct QualityManager {
    api: CompositeQosApi,
    generator: PlanGenerator,
    cost_model: Box<dyn CostModel>,
    last_stats: PlanningStats,
    /// Recycled plan buffer: `process` is called once per query in the
    /// throughput sims, and regrowing the plan space from a cold `Vec`
    /// every time showed up in profiles. Holds no state between calls
    /// beyond its allocation.
    plan_buf: Vec<Plan>,
}

impl QualityManager {
    /// Creates a manager over the given resource state, generator and
    /// cost model.
    pub fn new(
        api: CompositeQosApi,
        generator: PlanGenerator,
        cost_model: Box<dyn CostModel>,
    ) -> Self {
        QualityManager {
            api,
            generator,
            cost_model,
            last_stats: PlanningStats::default(),
            plan_buf: Vec::new(),
        }
    }

    /// Read access to the resource state (for monitoring and the LRB
    /// picture).
    pub fn api(&self) -> &CompositeQosApi {
        &self.api
    }

    /// The cost model's name.
    pub fn cost_model_name(&self) -> &'static str {
        self.cost_model.name()
    }

    /// Statistics of the most recent planning pass.
    pub fn last_stats(&self) -> PlanningStats {
        self.last_stats
    }

    /// Generates, ranks, and admits a plan for `request`.
    pub fn process(
        &mut self,
        engine: &MetadataEngine,
        request: &PlanRequest,
        rng: &mut Rng,
    ) -> Result<AdmittedPlan, Rejection> {
        // Reuse the plan buffer across queries (field-disjoint borrows keep
        // the generator, buffer, and API usable together).
        self.generator.generate_into(engine, request, &mut self.plan_buf);
        self.last_stats.generated = self.plan_buf.len();
        if self.plan_buf.is_empty() {
            self.last_stats.feasible = 0;
            self.last_stats.attempts = 0;
            return Err(Rejection::NoFeasiblePlan);
        }
        self.generator.retain_feasible(&mut self.plan_buf, &self.api);
        self.last_stats.feasible = self.plan_buf.len();
        if self.plan_buf.is_empty() {
            self.last_stats.attempts = 0;
            return Err(Rejection::NoFeasiblePlan);
        }
        let order = self.cost_model.rank(&self.plan_buf, &self.api, rng);
        for (attempt, &i) in order.iter().enumerate() {
            if let Ok(reservation) = self.api.reserve(&self.plan_buf[i].resources) {
                self.last_stats.attempts = attempt + 1;
                return Ok(AdmittedPlan { plan: self.plan_buf[i].clone(), reservation });
            }
        }
        self.last_stats.attempts = order.len();
        Err(Rejection::AdmissionFailed)
    }

    /// The full user-facing path: try the requested quality, then walk the
    /// profile's degraded alternatives ("a number of admittable
    /// alternative plans will be presented as a 'second chance'").
    pub fn process_with_second_chance(
        &mut self,
        engine: &MetadataEngine,
        request: &PlanRequest,
        profile: &UserProfile,
        rng: &mut Rng,
    ) -> SecondChance {
        match self.process(engine, request, rng) {
            Ok(admitted) => SecondChance::AsRequested(admitted),
            Err(first_err) => {
                // The reported reason must reflect the *whole* walk: if any
                // attempt — original or degraded — had feasible plans that
                // admission turned away, the rejection is transient
                // overload, not static infeasibility. Reporting the
                // original request's error here made retry policies treat
                // recoverable congestion as hopeless.
                let mut any_admission_failure = first_err == Rejection::AdmissionFailed;
                for (i, alt) in profile.degrade_options(&request.qos).into_iter().enumerate() {
                    let alt_request =
                        PlanRequest { video: request.video, qos: alt, security: request.security };
                    match self.process(engine, &alt_request, rng) {
                        Ok(admitted) => return SecondChance::Degraded { admitted, option: i },
                        Err(err) => any_admission_failure |= err == Rejection::AdmissionFailed,
                    }
                }
                SecondChance::Rejected(if any_admission_failure {
                    Rejection::AdmissionFailed
                } else {
                    Rejection::NoFeasiblePlan
                })
            }
        }
    }

    /// Releases an admitted plan's resources (session completion).
    pub fn release(&mut self, admitted: &AdmittedPlan) {
        self.api.release(admitted.reservation);
    }

    /// Releases by reservation id (for drivers that only track ids).
    pub fn release_reservation(&mut self, reservation: ReservationId) {
        self.api.release(reservation);
    }

    /// Handles the loss of a server: its resource buckets disappear and
    /// every reservation touching it is cancelled. The caller should also
    /// drop the server from the metadata engine
    /// ([`MetadataEngine::fail_site`]) and then re-`process` the affected
    /// sessions — the User Profile's statistics exist "enabling better
    /// renegotiation decisions in case of resource failure".
    pub fn handle_server_failure(&mut self, server: quasaq_sim::ServerId) -> Vec<ReservationId> {
        self.api.fail_server(server)
    }

    /// Handles a failed server coming back: its buckets re-register empty
    /// at their pre-failure capacities, so subsequent `process` calls plan
    /// against it again. Returns `false` when the server was not down.
    pub fn handle_server_restart(&mut self, server: quasaq_sim::ServerId) -> bool {
        self.api.restore_server(server)
    }

    /// Renegotiates a running session to a new QoS range (user action
    /// during playback). On success the old reservation is replaced; on
    /// failure it is kept untouched.
    pub fn renegotiate(
        &mut self,
        engine: &MetadataEngine,
        admitted: &AdmittedPlan,
        new_request: &PlanRequest,
        rng: &mut Rng,
    ) -> Result<AdmittedPlan, Rejection> {
        // Same recycled buffer as `process` — renegotiation is on the
        // playback path and should not regrow the plan space cold.
        self.generator.generate_into(engine, new_request, &mut self.plan_buf);
        if self.plan_buf.is_empty() {
            return Err(Rejection::NoFeasiblePlan);
        }
        self.generator.retain_feasible(&mut self.plan_buf, &self.api);
        if self.plan_buf.is_empty() {
            return Err(Rejection::NoFeasiblePlan);
        }
        let order = self.cost_model.rank(&self.plan_buf, &self.api, rng);
        for &i in &order {
            if let Ok(new_id) =
                self.api.renegotiate(admitted.reservation, &self.plan_buf[i].resources)
            {
                return Ok(AdmittedPlan { plan: self.plan_buf[i].clone(), reservation: new_id });
            }
        }
        Err(Rejection::AdmissionFailed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{LrbModel, RandomModel};
    use crate::generator::GeneratorConfig;
    use crate::qop::{QopRequest, QopSecurity};
    use quasaq_media::{Library, LibraryConfig, VideoId};
    use quasaq_qosapi::{ResourceKey, ResourceKind};
    use quasaq_sim::ServerId;
    use quasaq_store::{ObjectStore, Placement, QosSampler, ReplicationPlanner};
    use std::collections::BTreeMap;

    fn engine() -> MetadataEngine {
        let lib = Library::generate(42, &LibraryConfig::default());
        let mut stores = BTreeMap::new();
        for s in ServerId::first_n(3) {
            stores.insert(s, ObjectStore::new(s, 1 << 40));
        }
        let mut engine = MetadataEngine::new(ServerId::first_n(3), 16);
        ReplicationPlanner::new(QosSampler::default(), Placement::Full)
            .replicate(&lib, &mut stores, &mut engine)
            .unwrap();
        engine
    }

    fn manager() -> QualityManager {
        QualityManager::new(
            CompositeQosApi::homogeneous_cluster(
                ServerId::first_n(3),
                3_200_000.0,
                20_000_000.0,
                512e6,
            ),
            PlanGenerator::new(GeneratorConfig::default()),
            Box::new(LrbModel),
        )
    }

    fn request(video: u32) -> PlanRequest {
        let profile = UserProfile::new("u");
        PlanRequest {
            video: VideoId(video),
            qos: profile.translate(&QopRequest::organizational()),
            security: QopSecurity::Open,
        }
    }

    #[test]
    fn processes_and_reserves() {
        let e = engine();
        let mut m = manager();
        let mut rng = Rng::new(1);
        let admitted = m.process(&e, &request(0), &mut rng).unwrap();
        assert!(m.api().reservation_count() == 1);
        let stats = m.last_stats();
        assert!(stats.generated > 0);
        assert_eq!(stats.attempts, 1);
        // The delivered quality satisfies the request.
        assert!(
            request(0).qos.accepts(&admitted.plan.delivered)
                || admitted.plan.delivered.frame_rate <= request(0).qos.max_frame_rate
        );
        m.release(&admitted);
        assert_eq!(m.api().reservation_count(), 0);
    }

    #[test]
    fn lrb_spreads_sessions_across_servers() {
        let e = engine();
        let mut m = manager();
        let mut rng = Rng::new(2);
        let mut admitted = Vec::new();
        for i in 0..9 {
            admitted.push(m.process(&e, &request(i % 15), &mut rng).unwrap());
        }
        let mut by_server = BTreeMap::new();
        for a in &admitted {
            *by_server.entry(a.plan.target_server).or_insert(0) += 1;
        }
        assert_eq!(by_server.len(), 3, "sessions should spread: {by_server:?}");
    }

    #[test]
    fn saturation_leads_to_admission_failure() {
        let e = engine();
        let mut m = manager();
        let mut rng = Rng::new(3);
        let mut count = 0;
        loop {
            match m.process(&e, &request(count as u32 % 15), &mut rng) {
                Ok(_) => count += 1,
                Err(rej) => {
                    assert_eq!(rej, Rejection::AdmissionFailed);
                    break;
                }
            }
            assert!(count < 10_000, "admission never saturated");
        }
        assert!(count > 10, "only {count} sessions admitted");
    }

    #[test]
    fn second_chance_degrades_when_full() {
        let e = engine();
        // A tiny cluster that can serve DSL-class but not the requested
        // floor's bandwidth after a few sessions.
        let mut m = QualityManager::new(
            CompositeQosApi::homogeneous_cluster(
                ServerId::first_n(3),
                120_000.0,
                20_000_000.0,
                512e6,
            ),
            PlanGenerator::new(GeneratorConfig::default()),
            Box::new(LrbModel),
        );
        let profile = UserProfile::new("u");
        let mut rng = Rng::new(4);
        // High-quality request: t1 tier (193 kB/s) exceeds every link, so
        // direct admission of the floor fails but a degraded option (lower
        // resolution floor -> dsl tier at 48 kB/s) fits.
        let req = PlanRequest {
            video: VideoId(0),
            qos: profile.translate(&QopRequest::diagnostic()),
            security: QopSecurity::Open,
        };
        match m.process_with_second_chance(&e, &req, &profile, &mut rng) {
            SecondChance::Degraded { admitted, .. } => {
                assert!(admitted.plan.delivered_bps <= 120_000.0);
            }
            other => panic!("expected degraded outcome, got {other:?}"),
        }
    }

    #[test]
    fn second_chance_reports_transient_overload() {
        let e = engine();
        // Same tiny cluster as the degradation test, but saturated first.
        let mut m = QualityManager::new(
            CompositeQosApi::homogeneous_cluster(
                ServerId::first_n(3),
                120_000.0,
                20_000_000.0,
                512e6,
            ),
            PlanGenerator::new(GeneratorConfig::default()),
            Box::new(LrbModel),
        );
        let profile = UserProfile::new("u");
        let mut rng = Rng::new(9);
        let mut guard = 0u32;
        loop {
            let req = PlanRequest {
                video: VideoId(guard % 15),
                qos: profile.translate(&QopRequest::organizational()),
                security: QopSecurity::Open,
            };
            let outcome = m.process_with_second_chance(&e, &req, &profile, &mut rng);
            if matches!(outcome, SecondChance::Rejected(_)) {
                break;
            }
            guard += 1;
            assert!(guard < 10_000, "cluster never saturated");
        }
        // Diagnostic floor (VGA+) exceeds every link's capacity, so the
        // original attempt is statically infeasible — but its degraded
        // alternatives have capacity-feasible plans that only fail
        // admission on the saturated cluster. The walk must surface that
        // as transient overload, not NoFeasiblePlan.
        let req = PlanRequest {
            video: VideoId(0),
            qos: profile.translate(&QopRequest::diagnostic()),
            security: QopSecurity::Open,
        };
        match m.process_with_second_chance(&e, &req, &profile, &mut rng) {
            SecondChance::Rejected(rej) => {
                assert_eq!(rej, Rejection::AdmissionFailed);
                assert!(rej.is_transient());
            }
            other => panic!("expected rejection, got {other:?}"),
        }
    }

    #[test]
    fn second_chance_keeps_hopeless_requests_hopeless() {
        let e = engine();
        let mut m = manager();
        let profile = UserProfile::new("u");
        let mut rng = Rng::new(10);
        // A floor far above any stored replica: one degradation step
        // (halving) still lands above FULL, so every alternative stays
        // statically infeasible and the reason must remain NoFeasiblePlan.
        let mut req = request(0);
        req.qos.min_resolution = quasaq_media::Resolution::new(4000, 3000);
        req.qos.max_resolution = quasaq_media::Resolution::new(8000, 6000);
        match m.process_with_second_chance(&e, &req, &profile, &mut rng) {
            SecondChance::Rejected(rej) => {
                assert_eq!(rej, Rejection::NoFeasiblePlan);
                assert!(!rej.is_transient());
            }
            other => panic!("expected rejection, got {other:?}"),
        }
    }

    #[test]
    fn renegotiation_swaps_reservation() {
        let e = engine();
        let mut m = manager();
        let mut rng = Rng::new(5);
        let profile = UserProfile::new("u");
        let admitted = m.process(&e, &request(0), &mut rng).unwrap();
        let before = m.api().reservation_count();
        // Renegotiate up to diagnostic quality mid-playback.
        let up = PlanRequest {
            video: VideoId(0),
            qos: profile.translate(&QopRequest::diagnostic()),
            security: QopSecurity::Open,
        };
        let renewed = m.renegotiate(&e, &admitted, &up, &mut rng).unwrap();
        assert_eq!(m.api().reservation_count(), before);
        assert!(renewed.plan.delivered_bps >= admitted.plan.delivered_bps);
        m.release(&renewed);
        assert_eq!(m.api().reservation_count(), 0);
    }

    #[test]
    fn infeasible_qos_is_distinguished_from_overload() {
        let e = engine();
        let mut m = manager();
        let mut rng = Rng::new(6);
        // Ask for an impossible floor (above any stored replica).
        let mut req = request(0);
        req.qos.min_resolution = quasaq_media::Resolution::new(4000, 3000);
        req.qos.max_resolution = quasaq_media::Resolution::new(8000, 6000);
        assert_eq!(m.process(&e, &req, &mut rng).unwrap_err(), Rejection::NoFeasiblePlan);
    }

    #[test]
    fn server_failure_triggers_replanning_on_survivors() {
        let mut e = engine();
        let mut m = manager();
        let mut rng = Rng::new(8);
        // Admit a handful of sessions across the cluster.
        let mut sessions = Vec::new();
        for i in 0..6 {
            sessions.push(m.process(&e, &request(i), &mut rng).unwrap());
        }
        let failed = ServerId(0);
        let cancelled = m.handle_server_failure(failed);
        e.fail_site(failed);
        // Every cancelled session can be re-planned, and the new plans
        // avoid the dead server entirely (full replication).
        for old in &sessions {
            if !cancelled.contains(&old.reservation) {
                continue;
            }
            let video = old.plan.object.object.video;
            let req = request(video.0);
            let renewed = m.process(&e, &req, &mut rng).expect("survivors have capacity");
            assert_ne!(renewed.plan.target_server, failed);
            assert_ne!(renewed.plan.source_server(), failed);
        }
        // No bucket on the failed server remains managed.
        assert!(m.api().buckets().all(|k| k.server != failed));
    }

    #[test]
    fn random_model_admits_too() {
        let e = engine();
        let mut m = QualityManager::new(
            CompositeQosApi::homogeneous_cluster(
                ServerId::first_n(3),
                3_200_000.0,
                20_000_000.0,
                512e6,
            ),
            PlanGenerator::new(GeneratorConfig::default()),
            Box::new(RandomModel),
        );
        let mut rng = Rng::new(7);
        assert_eq!(m.cost_model_name(), "random");
        let admitted = m.process(&e, &request(1), &mut rng).unwrap();
        let key = ResourceKey::new(admitted.plan.target_server, ResourceKind::NetBandwidth);
        assert!(m.api().used(key).unwrap() > 0.0);
    }
}
