//! The Quality Manager — "the focal point of the entire system".
//!
//! For each QoS-aware query (after VDBMS resolves the content component
//! to a logical OID) the manager: generates candidate plans, lets the
//! Runtime Cost Evaluator sort them "in ascending cost order", and walks
//! that order through admission control — "the first plan in this order
//! that satisfies the QoS requirements is used to service the query" —
//! reserving its resource vector through the Composite QoS API. When
//! nothing is admittable, degraded alternatives from the User Profile are
//! offered as the "second chance"; during playback, reservations can be
//! renegotiated.

use crate::cost::CostModel;
use crate::generator::{PlanGenerator, PlanRequest};
use crate::plan::Plan;
use crate::plancache::{PlanCache, PlanCacheKey, PlanCacheStats};
use crate::qop::UserProfile;
use quasaq_qosapi::{CompositeQosApi, ReservationId};
use quasaq_sim::Rng;
use quasaq_store::MetadataEngine;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// A plan that passed admission and holds its reservation.
#[derive(Debug, Clone)]
pub struct AdmittedPlan {
    /// The chosen plan.
    pub plan: Plan,
    /// The composite reservation backing it.
    pub reservation: ReservationId,
}

/// Why a query could not be serviced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rejection {
    /// The plan space is empty: no replica can satisfy the QoS range at
    /// all (static infeasibility).
    NoFeasiblePlan,
    /// Plans exist but none passed admission under the current load.
    AdmissionFailed,
}

impl Rejection {
    /// Whether waiting and retrying could help: admission failures are
    /// load-dependent and clear when sessions finish, while an empty plan
    /// space is static — no amount of queueing produces a replica.
    pub fn is_transient(&self) -> bool {
        matches!(self, Rejection::AdmissionFailed)
    }
}

impl std::fmt::Display for Rejection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rejection::NoFeasiblePlan => write!(f, "no plan can satisfy the requested QoS"),
            Rejection::AdmissionFailed => {
                write!(f, "all candidate plans were rejected by admission control")
            }
        }
    }
}

impl std::error::Error for Rejection {}

/// Statistics of one planning pass (for the overhead analysis of §5.2).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PlanningStats {
    /// Plans generated after static pruning.
    pub generated: usize,
    /// Plans surviving the instant feasibility drop.
    pub feasible: usize,
    /// Admission attempts before success (0 when rejected).
    pub attempts: usize,
}

/// Outcome of the second-chance path.
#[derive(Debug)]
pub enum SecondChance {
    /// Admitted at the originally requested quality.
    AsRequested(AdmittedPlan),
    /// Admitted at a degraded quality (the index into the profile's
    /// degrade options is recorded).
    Degraded {
        /// The admitted plan.
        admitted: AdmittedPlan,
        /// Which degradation step was accepted (0 = first alternative).
        option: usize,
    },
    /// Nothing admittable even after degradation.
    Rejected(Rejection),
}

/// The Quality Manager.
pub struct QualityManager {
    api: CompositeQosApi,
    generator: PlanGenerator,
    cost_model: Box<dyn CostModel>,
    last_stats: PlanningStats,
    /// Recycled plan buffer: `process` is called once per query in the
    /// throughput sims, and regrowing the plan space from a cold `Vec`
    /// every time showed up in profiles. Holds no state between calls
    /// beyond its allocation.
    plan_buf: Vec<Plan>,
    /// Memoized enumeration results (`None` = caching off, the default).
    /// Cached and uncached admission are bit-identical — the cache holds
    /// only the pure enumeration output plus a feasibility snapshot, and
    /// ranking/reservation always run live.
    plan_cache: Option<PlanCache>,
    /// Manager-side cache epoch: part of every [`PlanCacheKey`], bumped by
    /// renegotiation and [`invalidate_plan_cache`](Self::invalidate_plan_cache).
    cache_epoch: u64,
}

impl QualityManager {
    /// Creates a manager over the given resource state, generator and
    /// cost model.
    pub fn new(
        api: CompositeQosApi,
        generator: PlanGenerator,
        cost_model: Box<dyn CostModel>,
    ) -> Self {
        QualityManager {
            api,
            generator,
            cost_model,
            last_stats: PlanningStats::default(),
            plan_buf: Vec::new(),
            plan_cache: None,
            cache_epoch: 0,
        }
    }

    /// Turns plan-enumeration memoization on (with default bounds) or
    /// off. Toggling clears any cached state, so a manager with caching
    /// enabled mid-run behaves exactly like a fresh one.
    pub fn set_plan_caching(&mut self, enabled: bool) {
        self.plan_cache = enabled.then(PlanCache::new);
    }

    /// Whether plan caching is enabled.
    pub fn plan_caching(&self) -> bool {
        self.plan_cache.is_some()
    }

    /// Cache behaviour counters (`None` when caching is off).
    pub fn plan_cache_stats(&self) -> Option<PlanCacheStats> {
        self.plan_cache.as_ref().map(PlanCache::stats)
    }

    /// Explicit invalidation hook: drops every cached entry and bumps the
    /// manager-side epoch so in-flight keys stop matching. Call after
    /// mutating planning inputs behind the manager's back (e.g. editing
    /// the metadata engine without a server failure/restore hook).
    pub fn invalidate_plan_cache(&mut self) {
        self.cache_epoch += 1;
        if let Some(cache) = &mut self.plan_cache {
            cache.invalidate_all();
        }
    }

    fn cache_key(&self, request: &PlanRequest) -> PlanCacheKey {
        PlanCacheKey {
            video: request.video,
            qos: request.qos.clone(),
            security: request.security,
            api_epoch: self.api.state_epoch(),
            mgr_epoch: self.cache_epoch,
        }
    }

    /// Read access to the resource state (for monitoring and the LRB
    /// picture).
    pub fn api(&self) -> &CompositeQosApi {
        &self.api
    }

    /// The cost model's name.
    pub fn cost_model_name(&self) -> &'static str {
        self.cost_model.name()
    }

    /// Statistics of the most recent planning pass.
    pub fn last_stats(&self) -> PlanningStats {
        self.last_stats
    }

    /// Generates, ranks, and admits a plan for `request`.
    pub fn process(
        &mut self,
        engine: &MetadataEngine,
        request: &PlanRequest,
        rng: &mut Rng,
    ) -> Result<AdmittedPlan, Rejection> {
        if self.plan_cache.is_some() {
            return self.process_cached(engine, request, rng);
        }
        self.process_uncached(engine, request, rng)
    }

    /// The plain (uncached) admission pipeline. Also serves as the
    /// doorkeeper's bypass lane when caching is on: a first-touch miss
    /// runs here so one-hit-wonder keys cost exactly what caching-off
    /// costs — no entry allocation, no eviction pressure.
    fn process_uncached(
        &mut self,
        engine: &MetadataEngine,
        request: &PlanRequest,
        rng: &mut Rng,
    ) -> Result<AdmittedPlan, Rejection> {
        // Reuse the plan buffer across queries (field-disjoint borrows keep
        // the generator, buffer, and API usable together).
        self.generator.generate_into(engine, request, &mut self.plan_buf);
        self.last_stats.generated = self.plan_buf.len();
        if self.plan_buf.is_empty() {
            self.last_stats.feasible = 0;
            self.last_stats.attempts = 0;
            return Err(Rejection::NoFeasiblePlan);
        }
        self.generator.retain_feasible(&mut self.plan_buf, &self.api);
        self.last_stats.feasible = self.plan_buf.len();
        if self.plan_buf.is_empty() {
            self.last_stats.attempts = 0;
            return Err(Rejection::NoFeasiblePlan);
        }
        let order = self.cost_model.rank(&self.plan_buf, &self.api, rng);
        for (attempt, &i) in order.iter().enumerate() {
            if let Ok(reservation) = self.api.reserve(&self.plan_buf[i].resources) {
                self.last_stats.attempts = attempt + 1;
                return Ok(AdmittedPlan { plan: self.plan_buf[i].clone(), reservation });
            }
        }
        self.last_stats.attempts = order.len();
        Err(Rejection::AdmissionFailed)
    }

    /// The cached admission path. Memoizes only the *pure* enumeration
    /// (plus a capacity-feasibility snapshot); feasibility, ranking, and
    /// reservation run live every time, so the decision — plan, order,
    /// RNG draws, stats — is bit-identical to the uncached
    /// [`process`](Self::process).
    fn process_cached(
        &mut self,
        engine: &MetadataEngine,
        request: &PlanRequest,
        rng: &mut Rng,
    ) -> Result<AdmittedPlan, Rejection> {
        let key = self.cache_key(request);
        let cached = self.plan_cache.as_mut().expect("caching on").lookup(&key);
        let (plans, live) = match cached {
            Some((plans, snapshot, fingerprint)) => {
                // Cheap revalidation: O(buckets), not O(plans). Every
                // supported capacity mutation bumps the epoch in the key,
                // so a matching fingerprint proves the snapshot equals
                // what `retain_feasible` would compute right now.
                if fingerprint == self.api.capacity_fingerprint() {
                    (plans, snapshot)
                } else {
                    // A capacity change slipped past the epoch hooks
                    // (e.g. an un-hooked engine edit). Never trust the
                    // entry — drop it and re-enumerate.
                    self.plan_cache.as_mut().expect("caching on").note_revalidation_failure(&key);
                    self.enumerate_and_insert(engine, request, key)
                }
            }
            None => {
                // Doorkeeper: only a key's second miss earns a slot. The
                // Zipf tail is full of keys seen exactly once — storing
                // them just evicts warm entries and pays an
                // allocate-then-free cycle of ~10³ plans for nothing.
                // First touches take the plain pipeline instead (same
                // decisions, cost identical to caching-off).
                if !self.plan_cache.as_mut().expect("caching on").should_store(&key) {
                    return self.process_uncached(engine, request, rng);
                }
                self.enumerate_and_insert(engine, request, key)
            }
        };
        self.last_stats.generated = plans.len();
        if plans.is_empty() {
            self.last_stats.feasible = 0;
            self.last_stats.attempts = 0;
            return Err(Rejection::NoFeasiblePlan);
        }
        self.last_stats.feasible = live.len();
        if live.is_empty() {
            self.last_stats.attempts = 0;
            return Err(Rejection::NoFeasiblePlan);
        }
        let order = self.cost_model.rank_subset(&plans, &live, &self.api, rng);
        for (attempt, &i) in order.iter().enumerate() {
            if let Ok(reservation) = self.api.reserve(&plans[i].resources) {
                self.last_stats.attempts = attempt + 1;
                return Ok(AdmittedPlan { plan: plans[i].clone(), reservation });
            }
        }
        self.last_stats.attempts = order.len();
        Err(Rejection::AdmissionFailed)
    }

    /// Indices of `plans` passing the capacity-feasibility cut right now —
    /// the subset [`PlanGenerator::retain_feasible`] would keep, by index.
    fn live_feasible(plans: &[Plan], api: &CompositeQosApi) -> Vec<usize> {
        plans
            .iter()
            .enumerate()
            .filter(|(_, p)| PlanGenerator::is_feasible(p, api))
            .map(|(i, _)| i)
            .collect()
    }

    /// Full enumeration for `request`, stored under `key` with its live
    /// feasibility snapshot. Pure: consumes no RNG, touches no
    /// reservations.
    fn enumerate_and_insert(
        &mut self,
        engine: &MetadataEngine,
        request: &PlanRequest,
        key: PlanCacheKey,
    ) -> (Arc<Vec<Plan>>, Arc<Vec<usize>>) {
        // Pre-size from the previous enumeration: plan counts are nearly
        // constant across requests on one testbed, and growth reallocs of
        // a few hundred `Plan`s showed up in the miss-path profile.
        let mut out = Vec::with_capacity(self.last_stats.generated.max(32));
        self.generator.generate_into(engine, request, &mut out);
        let plans = Arc::new(out);
        let live = Arc::new(Self::live_feasible(&plans, &self.api));
        self.plan_cache.as_mut().expect("caching on").insert(
            key,
            Arc::clone(&plans),
            Arc::clone(&live),
            self.api.capacity_fingerprint(),
        );
        (plans, live)
    }

    /// The bulk-admit enumeration pass: warms the plan cache for a batch
    /// of arrivals (the flash-crowd case). Requests are sorted by video —
    /// metadata-engine locality — and deduplicated by cache key; each
    /// absent key that repeats within the batch is enumerated exactly
    /// once (batch singletons defer to the per-request doorkeeper).
    /// Consumes no RNG and makes no reservations, so `prefetch_plans`
    /// followed by sequential
    /// [`process`](Self::process) calls in arrival order is bit-identical
    /// to processing the batch cold. No-op when caching is off.
    pub fn prefetch_plans(&mut self, engine: &MetadataEngine, requests: &[PlanRequest]) {
        if self.plan_cache.is_none() {
            return;
        }
        let mut order: Vec<usize> = (0..requests.len()).collect();
        order.sort_by_key(|&i| requests[i].video);
        // Batch multiplicity decides storage: a key appearing twice in
        // the batch pays for its entry within the batch itself. Batch
        // singletons are left to the per-request doorkeeper (see
        // `process_cached`), so a flash crowd of one-hit wonders cannot
        // flush the warm set.
        let mut count: HashMap<PlanCacheKey, u32> = HashMap::new();
        for req in requests {
            *count.entry(self.cache_key(req)).or_insert(0) += 1;
        }
        let mut done: HashSet<PlanCacheKey> = HashSet::new();
        for i in order {
            let key = self.cache_key(&requests[i]);
            if count[&key] < 2
                || self.plan_cache.as_ref().expect("caching on").contains(&key)
                || !done.insert(key.clone())
            {
                continue;
            }
            let _ = self.enumerate_and_insert(engine, &requests[i], key);
        }
    }

    /// The full user-facing path: try the requested quality, then walk the
    /// profile's degraded alternatives ("a number of admittable
    /// alternative plans will be presented as a 'second chance'").
    pub fn process_with_second_chance(
        &mut self,
        engine: &MetadataEngine,
        request: &PlanRequest,
        profile: &UserProfile,
        rng: &mut Rng,
    ) -> SecondChance {
        match self.process(engine, request, rng) {
            Ok(admitted) => SecondChance::AsRequested(admitted),
            Err(first_err) => {
                // The reported reason must reflect the *whole* walk: if any
                // attempt — original or degraded — had feasible plans that
                // admission turned away, the rejection is transient
                // overload, not static infeasibility. Reporting the
                // original request's error here made retry policies treat
                // recoverable congestion as hopeless.
                let mut any_admission_failure = first_err == Rejection::AdmissionFailed;
                for (i, alt) in profile.degrade_options(&request.qos).into_iter().enumerate() {
                    let alt_request =
                        PlanRequest { video: request.video, qos: alt, security: request.security };
                    match self.process(engine, &alt_request, rng) {
                        Ok(admitted) => return SecondChance::Degraded { admitted, option: i },
                        Err(err) => any_admission_failure |= err == Rejection::AdmissionFailed,
                    }
                }
                SecondChance::Rejected(if any_admission_failure {
                    Rejection::AdmissionFailed
                } else {
                    Rejection::NoFeasiblePlan
                })
            }
        }
    }

    /// Releases an admitted plan's resources (session completion).
    pub fn release(&mut self, admitted: &AdmittedPlan) {
        self.api.release(admitted.reservation);
    }

    /// Releases by reservation id (for drivers that only track ids).
    pub fn release_reservation(&mut self, reservation: ReservationId) {
        self.api.release(reservation);
    }

    /// Handles the loss of a server: its resource buckets disappear and
    /// every reservation touching it is cancelled. The caller should also
    /// drop the server from the metadata engine
    /// ([`MetadataEngine::fail_site`]) and then re-`process` the affected
    /// sessions — the User Profile's statistics exist "enabling better
    /// renegotiation decisions in case of resource failure".
    pub fn handle_server_failure(&mut self, server: quasaq_sim::ServerId) -> Vec<ReservationId> {
        let cancelled = self.api.fail_server(server);
        // Cache invalidation: the API epoch already moved, and the caller
        // is about to drop the server from the metadata engine too (which
        // the epoch cannot see) — clear everything.
        self.invalidate_plan_cache();
        cancelled
    }

    /// Handles a failed server coming back: its buckets re-register empty
    /// at their pre-failure capacities, so subsequent `process` calls plan
    /// against it again. Returns `false` when the server was not down.
    pub fn handle_server_restart(&mut self, server: quasaq_sim::ServerId) -> bool {
        let restored = self.api.restore_server(server);
        if restored {
            // Mirror of the failure hook: the engine regains the site.
            self.invalidate_plan_cache();
        }
        restored
    }

    /// Re-rates one resource bucket (link degradation / recovery faults),
    /// routing through the composite API's epoch bump and invalidating
    /// cached plans. Returns `false` for unmanaged buckets.
    pub fn set_capacity(&mut self, key: quasaq_qosapi::ResourceKey, capacity: f64) -> bool {
        let changed = self.api.set_capacity(key, capacity);
        if changed {
            self.invalidate_plan_cache();
        }
        changed
    }

    /// Renegotiates a running session to a new QoS range (user action
    /// during playback). On success the old reservation is replaced; on
    /// failure it is kept untouched.
    pub fn renegotiate(
        &mut self,
        engine: &MetadataEngine,
        admitted: &AdmittedPlan,
        new_request: &PlanRequest,
        rng: &mut Rng,
    ) -> Result<AdmittedPlan, Rejection> {
        // Same recycled buffer as `process` — renegotiation is on the
        // playback path and should not regrow the plan space cold.
        self.generator.generate_into(engine, new_request, &mut self.plan_buf);
        if self.plan_buf.is_empty() {
            return Err(Rejection::NoFeasiblePlan);
        }
        self.generator.retain_feasible(&mut self.plan_buf, &self.api);
        if self.plan_buf.is_empty() {
            return Err(Rejection::NoFeasiblePlan);
        }
        let order = self.cost_model.rank(&self.plan_buf, &self.api, rng);
        for &i in &order {
            if let Ok(new_id) =
                self.api.renegotiate(admitted.reservation, &self.plan_buf[i].resources)
            {
                let plan = self.plan_buf[i].clone();
                // Conservative invalidation on successful renegotiation
                // (the ISSUE's explicit-hook contract). Strictly the swap
                // only moves *usage*, which cached feasibility cannot see
                // — but renegotiations are rare (failover, user action)
                // and clearing keeps the staleness argument trivial.
                self.invalidate_plan_cache();
                return Ok(AdmittedPlan { plan, reservation: new_id });
            }
        }
        Err(Rejection::AdmissionFailed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{LrbModel, RandomModel};
    use crate::generator::GeneratorConfig;
    use crate::qop::{QopRequest, QopSecurity};
    use quasaq_media::{Library, LibraryConfig, VideoId};
    use quasaq_qosapi::{ResourceKey, ResourceKind};
    use quasaq_sim::ServerId;
    use quasaq_store::{ObjectStore, Placement, QosSampler, ReplicationPlanner};
    use std::collections::BTreeMap;

    fn engine() -> MetadataEngine {
        let lib = Library::generate(42, &LibraryConfig::default());
        let mut stores = BTreeMap::new();
        for s in ServerId::first_n(3) {
            stores.insert(s, ObjectStore::new(s, 1 << 40));
        }
        let mut engine = MetadataEngine::new(ServerId::first_n(3), 16);
        ReplicationPlanner::new(QosSampler::default(), Placement::Full)
            .replicate(&lib, &mut stores, &mut engine)
            .unwrap();
        engine
    }

    fn manager() -> QualityManager {
        QualityManager::new(
            CompositeQosApi::homogeneous_cluster(
                ServerId::first_n(3),
                3_200_000.0,
                20_000_000.0,
                512e6,
            ),
            PlanGenerator::new(GeneratorConfig::default()),
            Box::new(LrbModel),
        )
    }

    fn request(video: u32) -> PlanRequest {
        let profile = UserProfile::new("u");
        PlanRequest {
            video: VideoId(video),
            qos: profile.translate(&QopRequest::organizational()),
            security: QopSecurity::Open,
        }
    }

    #[test]
    fn processes_and_reserves() {
        let e = engine();
        let mut m = manager();
        let mut rng = Rng::new(1);
        let admitted = m.process(&e, &request(0), &mut rng).unwrap();
        assert!(m.api().reservation_count() == 1);
        let stats = m.last_stats();
        assert!(stats.generated > 0);
        assert_eq!(stats.attempts, 1);
        // The delivered quality satisfies the request.
        assert!(
            request(0).qos.accepts(&admitted.plan.delivered)
                || admitted.plan.delivered.frame_rate <= request(0).qos.max_frame_rate
        );
        m.release(&admitted);
        assert_eq!(m.api().reservation_count(), 0);
    }

    #[test]
    fn lrb_spreads_sessions_across_servers() {
        let e = engine();
        let mut m = manager();
        let mut rng = Rng::new(2);
        let mut admitted = Vec::new();
        for i in 0..9 {
            admitted.push(m.process(&e, &request(i % 15), &mut rng).unwrap());
        }
        let mut by_server = BTreeMap::new();
        for a in &admitted {
            *by_server.entry(a.plan.target_server).or_insert(0) += 1;
        }
        assert_eq!(by_server.len(), 3, "sessions should spread: {by_server:?}");
    }

    #[test]
    fn saturation_leads_to_admission_failure() {
        let e = engine();
        let mut m = manager();
        let mut rng = Rng::new(3);
        let mut count = 0;
        loop {
            match m.process(&e, &request(count as u32 % 15), &mut rng) {
                Ok(_) => count += 1,
                Err(rej) => {
                    assert_eq!(rej, Rejection::AdmissionFailed);
                    break;
                }
            }
            assert!(count < 10_000, "admission never saturated");
        }
        assert!(count > 10, "only {count} sessions admitted");
    }

    #[test]
    fn second_chance_degrades_when_full() {
        let e = engine();
        // A tiny cluster that can serve DSL-class but not the requested
        // floor's bandwidth after a few sessions.
        let mut m = QualityManager::new(
            CompositeQosApi::homogeneous_cluster(
                ServerId::first_n(3),
                120_000.0,
                20_000_000.0,
                512e6,
            ),
            PlanGenerator::new(GeneratorConfig::default()),
            Box::new(LrbModel),
        );
        let profile = UserProfile::new("u");
        let mut rng = Rng::new(4);
        // High-quality request: t1 tier (193 kB/s) exceeds every link, so
        // direct admission of the floor fails but a degraded option (lower
        // resolution floor -> dsl tier at 48 kB/s) fits.
        let req = PlanRequest {
            video: VideoId(0),
            qos: profile.translate(&QopRequest::diagnostic()),
            security: QopSecurity::Open,
        };
        match m.process_with_second_chance(&e, &req, &profile, &mut rng) {
            SecondChance::Degraded { admitted, .. } => {
                assert!(admitted.plan.delivered_bps <= 120_000.0);
            }
            other => panic!("expected degraded outcome, got {other:?}"),
        }
    }

    #[test]
    fn second_chance_reports_transient_overload() {
        let e = engine();
        // Same tiny cluster as the degradation test, but saturated first.
        let mut m = QualityManager::new(
            CompositeQosApi::homogeneous_cluster(
                ServerId::first_n(3),
                120_000.0,
                20_000_000.0,
                512e6,
            ),
            PlanGenerator::new(GeneratorConfig::default()),
            Box::new(LrbModel),
        );
        let profile = UserProfile::new("u");
        let mut rng = Rng::new(9);
        let mut guard = 0u32;
        loop {
            let req = PlanRequest {
                video: VideoId(guard % 15),
                qos: profile.translate(&QopRequest::organizational()),
                security: QopSecurity::Open,
            };
            let outcome = m.process_with_second_chance(&e, &req, &profile, &mut rng);
            if matches!(outcome, SecondChance::Rejected(_)) {
                break;
            }
            guard += 1;
            assert!(guard < 10_000, "cluster never saturated");
        }
        // Diagnostic floor (VGA+) exceeds every link's capacity, so the
        // original attempt is statically infeasible — but its degraded
        // alternatives have capacity-feasible plans that only fail
        // admission on the saturated cluster. The walk must surface that
        // as transient overload, not NoFeasiblePlan.
        let req = PlanRequest {
            video: VideoId(0),
            qos: profile.translate(&QopRequest::diagnostic()),
            security: QopSecurity::Open,
        };
        match m.process_with_second_chance(&e, &req, &profile, &mut rng) {
            SecondChance::Rejected(rej) => {
                assert_eq!(rej, Rejection::AdmissionFailed);
                assert!(rej.is_transient());
            }
            other => panic!("expected rejection, got {other:?}"),
        }
    }

    #[test]
    fn second_chance_keeps_hopeless_requests_hopeless() {
        let e = engine();
        let mut m = manager();
        let profile = UserProfile::new("u");
        let mut rng = Rng::new(10);
        // A floor far above any stored replica: one degradation step
        // (halving) still lands above FULL, so every alternative stays
        // statically infeasible and the reason must remain NoFeasiblePlan.
        let mut req = request(0);
        req.qos.min_resolution = quasaq_media::Resolution::new(4000, 3000);
        req.qos.max_resolution = quasaq_media::Resolution::new(8000, 6000);
        match m.process_with_second_chance(&e, &req, &profile, &mut rng) {
            SecondChance::Rejected(rej) => {
                assert_eq!(rej, Rejection::NoFeasiblePlan);
                assert!(!rej.is_transient());
            }
            other => panic!("expected rejection, got {other:?}"),
        }
    }

    #[test]
    fn renegotiation_swaps_reservation() {
        let e = engine();
        let mut m = manager();
        let mut rng = Rng::new(5);
        let profile = UserProfile::new("u");
        let admitted = m.process(&e, &request(0), &mut rng).unwrap();
        let before = m.api().reservation_count();
        // Renegotiate up to diagnostic quality mid-playback.
        let up = PlanRequest {
            video: VideoId(0),
            qos: profile.translate(&QopRequest::diagnostic()),
            security: QopSecurity::Open,
        };
        let renewed = m.renegotiate(&e, &admitted, &up, &mut rng).unwrap();
        assert_eq!(m.api().reservation_count(), before);
        assert!(renewed.plan.delivered_bps >= admitted.plan.delivered_bps);
        m.release(&renewed);
        assert_eq!(m.api().reservation_count(), 0);
    }

    #[test]
    fn infeasible_qos_is_distinguished_from_overload() {
        let e = engine();
        let mut m = manager();
        let mut rng = Rng::new(6);
        // Ask for an impossible floor (above any stored replica).
        let mut req = request(0);
        req.qos.min_resolution = quasaq_media::Resolution::new(4000, 3000);
        req.qos.max_resolution = quasaq_media::Resolution::new(8000, 6000);
        assert_eq!(m.process(&e, &req, &mut rng).unwrap_err(), Rejection::NoFeasiblePlan);
    }

    #[test]
    fn server_failure_triggers_replanning_on_survivors() {
        let mut e = engine();
        let mut m = manager();
        let mut rng = Rng::new(8);
        // Admit a handful of sessions across the cluster.
        let mut sessions = Vec::new();
        for i in 0..6 {
            sessions.push(m.process(&e, &request(i), &mut rng).unwrap());
        }
        let failed = ServerId(0);
        let cancelled = m.handle_server_failure(failed);
        e.fail_site(failed);
        // Every cancelled session can be re-planned, and the new plans
        // avoid the dead server entirely (full replication).
        for old in &sessions {
            if !cancelled.contains(&old.reservation) {
                continue;
            }
            let video = old.plan.object.object.video;
            let req = request(video.0);
            let renewed = m.process(&e, &req, &mut rng).expect("survivors have capacity");
            assert_ne!(renewed.plan.target_server, failed);
            assert_ne!(renewed.plan.source_server(), failed);
        }
        // No bucket on the failed server remains managed.
        assert!(m.api().buckets().all(|k| k.server != failed));
    }

    /// Drives a cache-on and a cache-off manager through the same
    /// admission/release/fault/renegotiation sequence and asserts every
    /// observable — outcomes, stats, RNG stream — stays bit-identical.
    fn assert_cached_matches_uncached(make_model: fn() -> Box<dyn CostModel>, seed: u64) {
        let mut e_cold = engine();
        let mut e_warm = engine();
        let api = || {
            CompositeQosApi::homogeneous_cluster(
                ServerId::first_n(3),
                3_200_000.0,
                20_000_000.0,
                512e6,
            )
        };
        let mut cold = QualityManager::new(
            api(),
            PlanGenerator::new(GeneratorConfig::default()),
            make_model(),
        );
        let mut warm = QualityManager::new(
            api(),
            PlanGenerator::new(GeneratorConfig::default()),
            make_model(),
        );
        warm.set_plan_caching(true);
        let mut rng_c = Rng::new(seed);
        let mut rng_w = Rng::new(seed);
        let profile = UserProfile::new("u");
        let mut live: Vec<(AdmittedPlan, AdmittedPlan)> = Vec::new();
        for round in 0..120u32 {
            match round {
                // Mid-sequence structural events, mirrored on both sides.
                40 => {
                    let down = ServerId(1);
                    assert_eq!(cold.handle_server_failure(down), warm.handle_server_failure(down));
                    e_cold.fail_site(down);
                    e_warm.fail_site(down);
                }
                55 => {
                    // Renegotiate the most recent surviving pair upward.
                    if let Some((a, b)) = live.pop() {
                        let up = PlanRequest {
                            video: a.plan.object.object.video,
                            qos: profile.translate(&QopRequest::diagnostic()),
                            security: QopSecurity::Open,
                        };
                        let ra = cold.renegotiate(&e_cold, &a, &up, &mut rng_c);
                        let rb = warm.renegotiate(&e_warm, &b, &up, &mut rng_w);
                        assert_eq!(format!("{ra:?}"), format!("{rb:?}"), "renegotiation diverged");
                        if let (Ok(na), Ok(nb)) = (ra, rb) {
                            live.push((na, nb));
                        } else {
                            live.push((a, b));
                        }
                    }
                }
                70 => {
                    assert_eq!(
                        cold.handle_server_restart(ServerId(1)),
                        warm.handle_server_restart(ServerId(1))
                    );
                }
                90 => {
                    let key = ResourceKey::new(ServerId(0), ResourceKind::NetBandwidth);
                    assert_eq!(
                        cold.set_capacity(key, 2_500_000.0),
                        warm.set_capacity(key, 2_500_000.0)
                    );
                }
                _ => {}
            }
            // Load rises and falls: periodically complete the oldest pair
            // (releasing a fault-cancelled reservation is a no-op on both
            // sides, so no special-casing after round 40).
            if round % 7 == 6 && !live.is_empty() {
                let (a, b) = live.remove(0);
                cold.release(&a);
                warm.release(&b);
            }
            let req = request(round % 5);
            let rc = cold.process(&e_cold, &req, &mut rng_c);
            let rw = warm.process(&e_warm, &req, &mut rng_w);
            assert_eq!(format!("{rc:?}"), format!("{rw:?}"), "round {round}: outcome diverged");
            assert_eq!(cold.last_stats(), warm.last_stats(), "round {round}: stats diverged");
            assert_eq!(
                rng_c.below(1 << 30),
                rng_w.below(1 << 30),
                "round {round}: RNG streams diverged"
            );
            if let (Ok(a), Ok(b)) = (rc, rw) {
                live.push((a, b));
            }
        }
        let stats = warm.plan_cache_stats().expect("caching on");
        assert!(stats.hits > 0, "the repetitive request mix must hit: {stats:?}");
    }

    #[test]
    fn cached_admission_is_bit_identical_to_uncached_lrb() {
        assert_cached_matches_uncached(|| Box::new(LrbModel), 11);
    }

    #[test]
    fn cached_admission_is_bit_identical_to_uncached_random() {
        // RandomModel consumes RNG during ranking, so this additionally
        // proves rank_subset draws exactly what rank would.
        assert_cached_matches_uncached(|| Box::new(RandomModel), 12);
    }

    #[test]
    fn corrupted_fingerprint_falls_back_to_full_enumeration() {
        let e = engine();
        let mut cold = manager();
        let mut warm = manager();
        warm.set_plan_caching(true);
        let mut rng_c = Rng::new(13);
        let mut rng_w = Rng::new(13);
        let req = request(3);
        // Two rounds: the doorkeeper stores only on the second miss.
        for _ in 0..2 {
            let a = cold.process(&e, &req, &mut rng_c).unwrap();
            let b = warm.process(&e, &req, &mut rng_w).unwrap();
            assert_eq!(format!("{a:?}"), format!("{b:?}"));
        }
        // Sabotage the fingerprint (simulates a capacity change that bypassed
        // every epoch hook): the next hit must detect the mismatch, drop
        // the entry, and fall back to full enumeration — still
        // bit-identical to the uncached manager.
        let key = warm.cache_key(&req);
        assert!(warm.plan_cache.as_mut().unwrap().corrupt_fingerprint(&key));
        let a2 = cold.process(&e, &req, &mut rng_c);
        let b2 = warm.process(&e, &req, &mut rng_w);
        assert_eq!(format!("{a2:?}"), format!("{b2:?}"));
        assert_eq!(cold.last_stats(), warm.last_stats());
        let stats = warm.plan_cache_stats().unwrap();
        assert_eq!(stats.revalidation_failures, 1);
        // The re-enumerated entry is trustworthy again.
        let a3 = cold.process(&e, &req, &mut rng_c);
        let b3 = warm.process(&e, &req, &mut rng_w);
        assert_eq!(format!("{a3:?}"), format!("{b3:?}"));
        assert_eq!(warm.plan_cache_stats().unwrap().revalidation_failures, 1);
    }

    #[test]
    fn fault_and_capacity_hooks_invalidate_the_cache() {
        let e = engine();
        let mut m = manager();
        m.set_plan_caching(true);
        let mut rng = Rng::new(14);
        // Each warm-up processes twice: the doorkeeper stores on the
        // second miss of a key.
        let _ = m.process(&e, &request(0), &mut rng);
        let _ = m.process(&e, &request(0), &mut rng);
        assert!(!m.plan_cache.as_ref().unwrap().is_empty());
        let epoch0 = m.cache_epoch;
        m.handle_server_failure(ServerId(2));
        assert!(m.plan_cache.as_ref().unwrap().is_empty(), "failure must clear the cache");
        assert_eq!(m.plan_cache_stats().unwrap().invalidations, 1);
        assert!(m.cache_epoch > epoch0);
        let _ = m.process(&e, &request(0), &mut rng);
        let _ = m.process(&e, &request(0), &mut rng);
        assert!(m.handle_server_restart(ServerId(2)), "restart of a down server restores");
        assert!(m.plan_cache.as_ref().unwrap().is_empty(), "restore must clear the cache");
        // Restarting a live server is a no-op and must NOT invalidate.
        let _ = m.process(&e, &request(0), &mut rng);
        let _ = m.process(&e, &request(0), &mut rng);
        assert!(!m.handle_server_restart(ServerId(2)));
        assert!(!m.plan_cache.as_ref().unwrap().is_empty());
        // Re-rating a managed bucket invalidates; an unknown bucket doesn't.
        assert!(m.set_capacity(ResourceKey::new(ServerId(0), ResourceKind::NetBandwidth), 1e6));
        assert!(m.plan_cache.as_ref().unwrap().is_empty());
        let _ = m.process(&e, &request(0), &mut rng);
        let _ = m.process(&e, &request(0), &mut rng);
        assert!(!m.set_capacity(ResourceKey::new(ServerId(9), ResourceKind::NetBandwidth), 1e6));
        assert!(!m.plan_cache.as_ref().unwrap().is_empty());
    }

    #[test]
    fn prefetch_amortizes_enumeration_without_changing_decisions() {
        let e = engine();
        let reqs: Vec<PlanRequest> = (0..10u32).map(|i| request(i % 4)).collect();
        let mut plain = manager();
        let mut bulk = manager();
        bulk.set_plan_caching(true);
        let mut rng_p = Rng::new(15);
        let mut rng_b = Rng::new(15);
        bulk.prefetch_plans(&e, &reqs);
        // Four distinct keys enumerated once each; prefetch itself touches
        // no counters, no RNG, no reservations, no stats.
        let s = bulk.plan_cache_stats().unwrap();
        assert_eq!((s.hits, s.misses), (0, 0));
        assert_eq!(bulk.plan_cache.as_ref().unwrap().len(), 4);
        assert_eq!(bulk.api().reservation_count(), 0);
        assert_eq!(bulk.last_stats(), PlanningStats::default());
        for req in &reqs {
            let rp = plain.process(&e, req, &mut rng_p);
            let rb = bulk.process(&e, req, &mut rng_b);
            assert_eq!(format!("{rp:?}"), format!("{rb:?}"));
            assert_eq!(plain.last_stats(), bulk.last_stats());
        }
        let s = bulk.plan_cache_stats().unwrap();
        assert_eq!(s.misses, 0, "prefetch should have warmed every key: {s:?}");
        assert_eq!(s.hits, reqs.len() as u64);
        // Prefetching is idempotent: already-cached keys are skipped.
        bulk.prefetch_plans(&e, &reqs);
        assert_eq!(bulk.plan_cache.as_ref().unwrap().len(), 4);
    }

    #[test]
    fn random_model_admits_too() {
        let e = engine();
        let mut m = QualityManager::new(
            CompositeQosApi::homogeneous_cluster(
                ServerId::first_n(3),
                3_200_000.0,
                20_000_000.0,
                512e6,
            ),
            PlanGenerator::new(GeneratorConfig::default()),
            Box::new(RandomModel),
        );
        let mut rng = Rng::new(7);
        assert_eq!(m.cost_model_name(), "random");
        let admitted = m.process(&e, &request(1), &mut rng).unwrap();
        let key = ResourceKey::new(admitted.plan.target_server, ResourceKind::NetBandwidth);
        assert!(m.api().used(key).unwrap() > 0.0);
    }
}
