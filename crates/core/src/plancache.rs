//! `core::plancache` — memoized plan enumeration for admission control.
//!
//! Admission re-enumerates and re-costs the full QoP plan space on every
//! request, yet the workload is heavily repetitive: a bounded video
//! catalog, a handful of QoP ladder rungs, and resource state that drifts
//! slowly relative to the query rate. The cache memoizes the *pure* part
//! of the admission pipeline — [`PlanGenerator::generate_into`], a
//! function of the metadata engine and the request only — keyed by
//! `(video, QoS range, security)` plus two coarse resource-state epochs,
//! and snapshots the capacity-level feasibility cut (plus a capacity
//! fingerprint) taken at insert time.
//!
//! What is deliberately NOT cached: cost ranking and reservation. Both
//! depend on live bucket *usage*, so the Quality Manager recomputes them
//! on every admission via [`CostModel::rank_subset`]. That split is what
//! makes cached and uncached admission decisions bit-identical — same
//! plans, same order, same RNG stream — which the differential proptests
//! enforce.
//!
//! Admission into the cache is gated by a TinyLFU-style **doorkeeper**:
//! a missed key earns a slot only on its *second* miss. Under a
//! Zipf-skewed catalog the long tail is full of keys seen exactly once;
//! storing those evicts warm entries and pays an allocate-then-free cycle
//! of ~10³ plans for zero future hits, which at the 100-server scale
//! erased the cache's entire win. One-hit wonders instead run the plain
//! uncached pipeline (so they cost exactly what caching-off costs), and
//! only keys with demonstrated re-use are stored. This is purely an
//! economics decision — cache contents affect speed, never decisions —
//! so bit-identity is untouched.
//!
//! Staleness is handled in two layers:
//! * **Epoch keying** — [`CompositeQosApi::state_epoch`] changes on every
//!   structural event (register / fail / restore / re-rate) and the
//!   manager-side epoch changes on renegotiation and explicit
//!   invalidation, so stale entries simply stop matching.
//! * **Revalidation** — on every hit the live
//!   [`CompositeQosApi::capacity_fingerprint`] is compared to the one
//!   stored with the entry. Every supported capacity mutation bumps the
//!   epoch (making the key unreachable), so within one key the
//!   fingerprint is provably constant — a mismatch means capacities
//!   changed behind the API's back (the congestion-feedback lesson:
//!   never trust a cached plan blindly), and the entry is dropped in
//!   favor of full enumeration. The check is O(buckets), not O(plans).
//!
//! [`PlanGenerator::generate_into`]: crate::generator::PlanGenerator::generate_into
//! [`CostModel::rank_subset`]: crate::cost::CostModel::rank_subset
//! [`CompositeQosApi::state_epoch`]: quasaq_qosapi::CompositeQosApi::state_epoch
//! [`CompositeQosApi::capacity_fingerprint`]: quasaq_qosapi::CompositeQosApi::capacity_fingerprint

use crate::plan::Plan;
use crate::qop::QopSecurity;
use quasaq_media::{QosRange, VideoId};
use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Default bound on cached entries (distinct request/epoch combinations).
pub const DEFAULT_MAX_ENTRIES: usize = 1024;
/// Default bound on total cached plans across all entries: at ~1200 plans
/// per request on the 100-server testbeds this caps the cache at roughly
/// 200 entries (≈75 MB at ~300 B/plan) — enough to hold the hot head of
/// a Zipf-skewed catalog, which is where hit rates pay for miss overhead.
/// Small testbeds (tens of plans per request) are entry-bound instead.
pub const DEFAULT_MAX_PLANS: usize = 250_000;
/// Doorkeeper capacity: first-miss key hashes remembered to tell second
/// touches from one-hit wonders. Cleared wholesale when full — a cheap
/// generational reset, like TinyLFU's periodic halving.
const DOORKEEPER_CAPACITY: usize = 8192;

/// A successful lookup: the enumerated plan list, the insert-time
/// feasibility snapshot (indices into the plan list), and the capacity
/// fingerprint the entry was stored under.
pub type CachedPlans = (Arc<Vec<Plan>>, Arc<Vec<usize>>, u64);

/// The memoization key: the full admission request plus the two coarse
/// resource-state bucket epochs. Reserve/release churn does not move
/// either epoch — that coarseness is the point — so repeated requests hit
/// while structural changes (failures, restores, re-ratings,
/// renegotiations) make old entries unreachable immediately.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PlanCacheKey {
    /// Requested logical video.
    pub video: VideoId,
    /// Requested application-QoS range (the QoP ladder rung).
    pub qos: QosRange,
    /// Requested security level (chooses the cipher activity set).
    pub security: QopSecurity,
    /// [`CompositeQosApi::state_epoch`] at lookup time.
    ///
    /// [`CompositeQosApi::state_epoch`]: quasaq_qosapi::CompositeQosApi::state_epoch
    pub api_epoch: u64,
    /// Manager-side epoch: bumped by renegotiation and explicit
    /// invalidation.
    pub mgr_epoch: u64,
}

/// Counters for cache behaviour (reported by benches and asserted by
/// tests).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Lookups that found a usable entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Hits whose capacity fingerprint no longer matched live state; the
    /// entry was dropped and enumeration re-ran.
    pub revalidation_failures: u64,
    /// Entries evicted to respect the size bounds.
    pub evictions: u64,
    /// Entries dropped by explicit invalidation.
    pub invalidations: u64,
    /// First-touch misses the doorkeeper declined to store (the request
    /// ran the plain uncached pipeline instead).
    pub doorkeeper_bypasses: u64,
}

struct Entry {
    /// The full (unfiltered) enumeration output for the key's request.
    plans: Arc<Vec<Plan>>,
    /// Indices into `plans` that passed the capacity-feasibility cut when
    /// the entry was stored.
    feasible: Arc<Vec<usize>>,
    /// The API's capacity fingerprint when the entry was stored — the
    /// revalidation baseline.
    fingerprint: u64,
    /// LRU recency: the cache-wide tick at last touch. Ticks are unique,
    /// so min-tick eviction is deterministic.
    tick: u64,
}

/// An LRU cache of enumerated plan lists with feasibility snapshots.
pub struct PlanCache {
    entries: HashMap<PlanCacheKey, Entry>,
    /// Doorkeeper: hashes of keys that have missed exactly once.
    seen_misses: HashSet<u64>,
    max_entries: usize,
    max_plans: usize,
    stored_plans: usize,
    tick: u64,
    stats: PlanCacheStats,
}

impl Default for PlanCache {
    fn default() -> Self {
        Self::new()
    }
}

impl PlanCache {
    /// Creates a cache with the default bounds.
    pub fn new() -> Self {
        Self::with_limits(DEFAULT_MAX_ENTRIES, DEFAULT_MAX_PLANS)
    }

    /// Creates a cache bounded by entry count and by total stored plans
    /// (whichever bites first).
    pub fn with_limits(max_entries: usize, max_plans: usize) -> Self {
        PlanCache {
            entries: HashMap::new(),
            seen_misses: HashSet::new(),
            max_entries: max_entries.max(1),
            max_plans: max_plans.max(1),
            stored_plans: 0,
            tick: 0,
            stats: PlanCacheStats::default(),
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total plans held across all entries.
    pub fn stored_plans(&self) -> usize {
        self.stored_plans
    }

    /// Behaviour counters since construction.
    pub fn stats(&self) -> PlanCacheStats {
        self.stats
    }

    /// Whether `key` is currently cached (no recency touch, no counters).
    pub fn contains(&self, key: &PlanCacheKey) -> bool {
        self.entries.contains_key(key)
    }

    /// Looks `key` up, touching its recency. Returns the enumerated plan
    /// list, the feasibility snapshot, and the capacity fingerprint taken
    /// when the entry was stored.
    pub fn lookup(&mut self, key: &PlanCacheKey) -> Option<CachedPlans> {
        self.tick += 1;
        match self.entries.get_mut(key) {
            Some(entry) => {
                entry.tick = self.tick;
                self.stats.hits += 1;
                Some((Arc::clone(&entry.plans), Arc::clone(&entry.feasible), entry.fingerprint))
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// The admission doorkeeper, consulted after a miss: returns whether
    /// the missed `key` deserves a cache slot. The first miss records the
    /// key's hash and answers `false` (caller should run the plain
    /// uncached pipeline — no allocation, no eviction pressure); a repeat
    /// miss answers `true` (demonstrated re-use — enumerate and store).
    /// Bypassing the cache never changes admission decisions, only where
    /// the enumeration cost is paid.
    pub fn should_store(&mut self, key: &PlanCacheKey) -> bool {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        let hash = h.finish();
        if self.seen_misses.contains(&hash) {
            return true;
        }
        if self.seen_misses.len() >= DOORKEEPER_CAPACITY {
            self.seen_misses.clear();
        }
        self.seen_misses.insert(hash);
        self.stats.doorkeeper_bypasses += 1;
        false
    }

    /// Stores an enumeration result and its feasibility snapshot,
    /// evicting least-recently-used entries as needed. Empty plan lists
    /// are cached too — statically infeasible requests repeat just as
    /// often as satisfiable ones.
    pub fn insert(
        &mut self,
        key: PlanCacheKey,
        plans: Arc<Vec<Plan>>,
        feasible: Arc<Vec<usize>>,
        fingerprint: u64,
    ) {
        self.tick += 1;
        if let Some(old) = self.entries.remove(&key) {
            self.stored_plans -= old.plans.len();
        }
        self.stored_plans += plans.len();
        self.entries.insert(key, Entry { plans, feasible, fingerprint, tick: self.tick });
        while self.entries.len() > self.max_entries
            || (self.stored_plans > self.max_plans && self.entries.len() > 1)
        {
            self.evict_lru();
        }
    }

    /// Drops `key` after a failed revalidation, counting it.
    pub fn note_revalidation_failure(&mut self, key: &PlanCacheKey) {
        self.stats.revalidation_failures += 1;
        if let Some(old) = self.entries.remove(key) {
            self.stored_plans -= old.plans.len();
        }
    }

    /// Drops every entry (explicit invalidation hook: server failure,
    /// restore, capacity change, renegotiation). Epoch keying already
    /// makes stale entries unreachable; this additionally frees their
    /// memory immediately.
    pub fn invalidate_all(&mut self) {
        self.stats.invalidations += self.entries.len() as u64;
        self.entries.clear();
        self.stored_plans = 0;
        // The epoch bump that accompanies invalidation re-hashes every
        // key, so remembered first-misses can never match again — drop
        // them rather than letting dead hashes age out generationally.
        self.seen_misses.clear();
    }

    fn evict_lru(&mut self) {
        // Ticks are unique, so the minimum is a deterministic victim even
        // though HashMap iteration order is not.
        let victim = self.entries.iter().min_by_key(|(_, e)| e.tick).map(|(k, _)| k.clone());
        if let Some(key) = victim {
            if let Some(old) = self.entries.remove(&key) {
                self.stored_plans -= old.plans.len();
            }
            self.stats.evictions += 1;
        }
    }

    /// Test hook: flip the stored capacity fingerprint of `key` so the
    /// next hit fails revalidation (simulates a capacity mutation that
    /// bypassed the epoch hooks). Returns whether the key was present.
    #[cfg(test)]
    pub(crate) fn corrupt_fingerprint(&mut self, key: &PlanCacheKey) -> bool {
        match self.entries.get_mut(key) {
            Some(entry) => {
                entry.fingerprint = !entry.fingerprint;
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::testutil::plan_on;

    fn key(video: u32, api_epoch: u64, mgr_epoch: u64) -> PlanCacheKey {
        PlanCacheKey {
            video: VideoId(video),
            qos: QosRange::any(),
            security: QopSecurity::Open,
            api_epoch,
            mgr_epoch,
        }
    }

    fn plans(n: usize) -> Arc<Vec<Plan>> {
        Arc::new((0..n).map(|i| plan_on(i as u32 % 3, 48_000)).collect())
    }

    #[test]
    fn hit_miss_and_recency() {
        let mut c = PlanCache::new();
        assert!(c.lookup(&key(0, 0, 0)).is_none());
        c.insert(key(0, 0, 0), plans(4), Arc::new(vec![0, 1, 2, 3]), 7);
        let (p, f, fp) = c.lookup(&key(0, 0, 0)).expect("hit");
        assert_eq!(fp, 7);
        assert_eq!(p.len(), 4);
        assert_eq!(*f, vec![0, 1, 2, 3]);
        assert_eq!(c.stats(), PlanCacheStats { hits: 1, misses: 1, ..Default::default() });
        assert_eq!(c.stored_plans(), 4);
    }

    #[test]
    fn epochs_partition_the_key_space() {
        let mut c = PlanCache::new();
        c.insert(key(0, 0, 0), plans(2), Arc::new(vec![0, 1]), 7);
        // Same request, new API epoch (e.g. a server failed): miss.
        assert!(c.lookup(&key(0, 1, 0)).is_none());
        // Same request, new manager epoch (renegotiation): miss.
        assert!(c.lookup(&key(0, 0, 1)).is_none());
        // Original epochs still hit.
        assert!(c.lookup(&key(0, 0, 0)).is_some());
    }

    #[test]
    fn entry_bound_evicts_least_recently_used() {
        let mut c = PlanCache::with_limits(2, 1_000_000);
        c.insert(key(0, 0, 0), plans(1), Arc::new(vec![0]), 7);
        c.insert(key(1, 0, 0), plans(1), Arc::new(vec![0]), 7);
        // Touch key 0 so key 1 is the LRU victim.
        assert!(c.lookup(&key(0, 0, 0)).is_some());
        c.insert(key(2, 0, 0), plans(1), Arc::new(vec![0]), 7);
        assert_eq!(c.len(), 2);
        assert!(c.contains(&key(0, 0, 0)));
        assert!(!c.contains(&key(1, 0, 0)));
        assert!(c.contains(&key(2, 0, 0)));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn plan_budget_bounds_total_memory() {
        let mut c = PlanCache::with_limits(100, 10);
        for v in 0..5 {
            c.insert(key(v, 0, 0), plans(4), Arc::new(vec![]), 7);
        }
        assert!(c.stored_plans() <= 10, "stored {} plans", c.stored_plans());
        assert!(!c.is_empty(), "budget eviction must keep the newest entry");
        assert!(c.contains(&key(4, 0, 0)));
    }

    #[test]
    fn oversized_single_entry_is_kept() {
        // One entry larger than the whole budget still caches (evicting it
        // would just re-miss forever); the bound only bites with >1 entry.
        let mut c = PlanCache::with_limits(100, 10);
        c.insert(key(0, 0, 0), plans(50), Arc::new(vec![]), 7);
        assert_eq!(c.len(), 1);
        assert_eq!(c.stored_plans(), 50);
        c.insert(key(1, 0, 0), plans(2), Arc::new(vec![]), 7);
        // The giant is older — it goes first once a second entry arrives.
        assert!(!c.contains(&key(0, 0, 0)));
        assert!(c.contains(&key(1, 0, 0)));
    }

    #[test]
    fn reinsert_replaces_and_keeps_plan_accounting() {
        let mut c = PlanCache::new();
        c.insert(key(0, 0, 0), plans(4), Arc::new(vec![0]), 7);
        c.insert(key(0, 0, 0), plans(2), Arc::new(vec![1]), 7);
        assert_eq!(c.len(), 1);
        assert_eq!(c.stored_plans(), 2);
        let (_, f, _) = c.lookup(&key(0, 0, 0)).unwrap();
        assert_eq!(*f, vec![1]);
    }

    #[test]
    fn revalidation_failure_drops_the_entry() {
        let mut c = PlanCache::new();
        c.insert(key(0, 0, 0), plans(3), Arc::new(vec![0, 1, 2]), 7);
        c.note_revalidation_failure(&key(0, 0, 0));
        assert!(c.is_empty());
        assert_eq!(c.stored_plans(), 0);
        assert_eq!(c.stats().revalidation_failures, 1);
    }

    #[test]
    fn invalidate_all_clears_and_counts() {
        let mut c = PlanCache::new();
        c.insert(key(0, 0, 0), plans(1), Arc::new(vec![]), 7);
        c.insert(key(1, 0, 0), plans(1), Arc::new(vec![]), 7);
        c.invalidate_all();
        assert!(c.is_empty());
        assert_eq!(c.stored_plans(), 0);
        assert_eq!(c.stats().invalidations, 2);
    }

    #[test]
    fn doorkeeper_admits_on_second_miss() {
        let mut c = PlanCache::new();
        // First touch: declined (one-hit wonders stay out).
        assert!(!c.should_store(&key(0, 0, 0)));
        // Second touch of the same key: admitted.
        assert!(c.should_store(&key(0, 0, 0)));
        // And it stays admitted (the hash is remembered, not consumed).
        assert!(c.should_store(&key(0, 0, 0)));
        // Distinct keys each start cold; epochs are part of the identity.
        assert!(!c.should_store(&key(1, 0, 0)));
        assert!(!c.should_store(&key(0, 1, 0)));
        assert_eq!(c.stats().doorkeeper_bypasses, 3);
        // Invalidation forgets remembered first-misses along with entries.
        c.invalidate_all();
        assert!(!c.should_store(&key(0, 0, 0)));
    }

    #[test]
    fn empty_enumerations_are_cached() {
        let mut c = PlanCache::new();
        c.insert(key(0, 0, 0), Arc::new(Vec::new()), Arc::new(Vec::new()), 7);
        let (p, f, _) = c.lookup(&key(0, 0, 0)).expect("negative entry hits");
        assert!(p.is_empty());
        assert!(f.is_empty());
    }
}
