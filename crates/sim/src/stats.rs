//! Statistics collection for experiments.
//!
//! The paper reports means and standard deviations of inter-frame and
//! inter-GOP delays (Table 2), per-frame delay traces (Fig 5), and session
//! counts over time (Figs 6 and 7). This module provides the accumulators
//! those harnesses need: a numerically stable running mean/variance
//! ([`OnlineStats`]), a raw time-series recorder ([`Series`]), a bucketed
//! event counter for "jobs per minute"-style plots ([`RateCounter`]), and a
//! step-function sampler for "outstanding sessions over time"
//! ([`LevelTracker`]).

use crate::time::{SimDuration, SimTime};

/// Smallest positive value the quantile sketch resolves; everything at or
/// below it (including exact zeros, the common case for admission waits)
/// lands in the dedicated zero bucket.
const SKETCH_FLOOR: f64 = 1e-9;
/// Geometric growth factor between sketch bucket bounds: bucket `k` spans
/// `(FLOOR * G^k, FLOOR * G^(k+1)]`, so any reported quantile is within
/// ±3.5% (√G) of a value actually observed.
const SKETCH_GROWTH: f64 = 1.07;

/// Welford's online algorithm for mean and variance, plus min/max and a
/// log-spaced bucket sketch for quantiles.
///
/// The sketch counts observations in geometric buckets (growth factor
/// [`SKETCH_GROWTH`] from [`SKETCH_FLOOR`]): integer counts, so merging
/// is exact and order-independent — quantiles from a sharded run equal
/// the serial run's bit for bit, unlike P²-style estimators whose state
/// is merge-order-dependent.
///
/// `PartialEq` compares the accumulator state field-by-field (floats
/// bit-for-bit via numeric equality), which the experiment drivers'
/// serial-vs-parallel determinism checks rely on.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    /// Observations at or below [`SKETCH_FLOOR`] (admission waits are
    /// usually exactly 0, so this fast path also skips the `ln`).
    zeros: u64,
    /// Geometric bucket counts, grown lazily to the largest index seen.
    buckets: Vec<u64>,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            zeros: 0,
            buckets: Vec::new(),
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
        if x <= SKETCH_FLOOR {
            self.zeros += 1;
        } else {
            let idx = ((x / SKETCH_FLOOR).ln() / SKETCH_GROWTH.ln()).ceil() as usize;
            if idx >= self.buckets.len() {
                self.buckets.resize(idx + 1, 0);
            }
            self.buckets[idx] += 1;
        }
    }

    /// Adds a duration observation in milliseconds (the paper's unit).
    pub fn push_millis(&mut self, d: SimDuration) {
        self.push(d.as_millis_f64());
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 when fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// The `q`-quantile (q in [0, 1]) from the bucket sketch, `None` when
    /// empty. Nearest-rank over the geometric buckets: the result is the
    /// log-midpoint of the bucket holding the ranked observation, so it
    /// is within ±√[`SKETCH_GROWTH`] (≈3.5%) of an observed value, and
    /// exact for observations at or below [`SKETCH_FLOOR`]. Deterministic
    /// and merge-order-independent (integer bucket counts).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.n == 0 {
            return None;
        }
        // Nearest rank, 1-based: the smallest rank covering fraction q.
        let rank = ((q.clamp(0.0, 1.0) * self.n as f64).ceil() as u64).max(1);
        if rank <= self.zeros {
            // The zero bucket holds values in [min, SKETCH_FLOOR]; the
            // recorded min is the only observed value we can report.
            return Some(self.min.min(SKETCH_FLOOR));
        }
        let mut cum = self.zeros;
        for (idx, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= rank {
                let mid = SKETCH_FLOOR * SKETCH_GROWTH.powf(idx as f64 - 0.5);
                return Some(mid.clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// p95 convenience wrapper around [`OnlineStats::quantile`].
    pub fn p95(&self) -> Option<f64> {
        self.quantile(0.95)
    }

    /// p99 convenience wrapper around [`OnlineStats::quantile`].
    pub fn p99(&self) -> Option<f64> {
        self.quantile(0.99)
    }

    /// Merges another accumulator into this one (parallel Welford; the
    /// quantile buckets add exactly).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = (self.n + other.n) as f64;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n;
        let m2 = self.m2 + other.m2 + delta * delta * self.n as f64 * other.n as f64 / n;
        self.n += other.n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.zeros += other.zeros;
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (a, &b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
    }
}

/// A recorded time series of `(time, value)` samples.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Series {
    points: Vec<(SimTime, f64)>,
}

impl Series {
    /// Creates an empty series.
    pub fn new() -> Self {
        Series { points: Vec::new() }
    }

    /// Appends a sample. Samples are expected in non-decreasing time order;
    /// this is asserted in debug builds.
    pub fn push(&mut self, t: SimTime, value: f64) {
        debug_assert!(
            self.points.last().is_none_or(|&(last, _)| last <= t),
            "series samples must be time-ordered"
        );
        self.points.push((t, value));
    }

    /// All samples in order.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Values only, discarding times.
    pub fn values(&self) -> impl Iterator<Item = f64> + '_ {
        self.points.iter().map(|&(_, v)| v)
    }

    /// Mean of the values in the window `[from, to)` (`None` if no samples).
    pub fn window_mean(&self, from: SimTime, to: SimTime) -> Option<f64> {
        let mut n = 0u64;
        let mut sum = 0.0;
        for &(t, v) in &self.points {
            if t >= from && t < to {
                n += 1;
                sum += v;
            }
        }
        (n > 0).then(|| sum / n as f64)
    }

    /// A percentile (0..=100) of the values, by nearest-rank on a sorted
    /// copy. `None` when empty.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        if self.points.is_empty() {
            return None;
        }
        let mut vals: Vec<f64> = self.values().collect();
        vals.sort_by(|a, b| a.total_cmp(b));
        let rank = ((p.clamp(0.0, 100.0) / 100.0) * (vals.len() - 1) as f64).round() as usize;
        Some(vals[rank])
    }

    /// Summary statistics over all values.
    pub fn stats(&self) -> OnlineStats {
        let mut s = OnlineStats::new();
        for v in self.values() {
            s.push(v);
        }
        s
    }
}

/// A fixed-bin histogram over a bounded value range, with overflow and
/// underflow counters — used for delay-distribution summaries.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `bins` equal-width bins.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(hi > lo, "histogram range must be non-empty");
        assert!(bins > 0, "histogram needs at least one bin");
        Histogram { lo, hi, bins: vec![0; bins], underflow: 0, overflow: 0 }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let n = self.bins.len();
            let idx = (((x - self.lo) / (self.hi - self.lo) * n as f64) as usize).min(n - 1);
            self.bins[idx] += 1;
        }
    }

    /// Per-bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// The value range covered by bin `i`.
    pub fn bin_range(&self, i: usize) -> (f64, f64) {
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        (self.lo + width * i as f64, self.lo + width * (i + 1) as f64)
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the range's top.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations, including out-of-range ones.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// The fraction of in-range mass at or below `x` (0 when empty).
    pub fn cdf(&self, x: f64) -> f64 {
        let total: u64 = self.total();
        if total == 0 {
            return 0.0;
        }
        let mut below = self.underflow;
        for (i, &c) in self.bins.iter().enumerate() {
            if self.bin_range(i).1 <= x {
                below += c;
            }
        }
        below as f64 / total as f64
    }
}

/// Counts events into fixed-width time buckets, e.g. completed streaming
/// jobs per minute (Fig 6b).
#[derive(Debug, Clone, PartialEq)]
pub struct RateCounter {
    bucket: SimDuration,
    counts: Vec<u64>,
}

impl RateCounter {
    /// Creates a counter with the given bucket width.
    pub fn new(bucket: SimDuration) -> Self {
        assert!(!bucket.is_zero(), "bucket width must be positive");
        RateCounter { bucket, counts: Vec::new() }
    }

    /// Records one event at time `t`.
    pub fn record(&mut self, t: SimTime) {
        let idx = (t.as_micros() / self.bucket.as_micros()) as usize;
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
    }

    /// Bucket width.
    pub fn bucket(&self) -> SimDuration {
        self.bucket
    }

    /// Events per bucket, indexed from t = 0.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total events recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Mean events per bucket over buckets `[from_idx, to_idx)`.
    pub fn window_rate(&self, from_idx: usize, to_idx: usize) -> f64 {
        let to = to_idx.min(self.counts.len());
        if from_idx >= to {
            return 0.0;
        }
        let sum: u64 = self.counts[from_idx..to].iter().sum();
        sum as f64 / (to - from_idx) as f64
    }
}

/// Tracks an integer level (e.g. number of outstanding sessions) as a step
/// function, and samples it at fixed intervals for plotting.
#[derive(Debug, Clone, Default)]
pub struct LevelTracker {
    level: i64,
    changes: Vec<(SimTime, i64)>,
}

impl LevelTracker {
    /// Creates a tracker at level 0.
    pub fn new() -> Self {
        LevelTracker::default()
    }

    /// Current level.
    pub fn level(&self) -> i64 {
        self.level
    }

    /// Applies a delta (+1 on session start, -1 on completion) at time `t`.
    pub fn adjust(&mut self, t: SimTime, delta: i64) {
        self.level += delta;
        self.changes.push((t, self.level));
    }

    /// The raw change log.
    pub fn changes(&self) -> &[(SimTime, i64)] {
        &self.changes
    }

    /// Samples the step function every `step` from t = 0 to `until`
    /// inclusive of the first sample at 0.
    pub fn sample(&self, step: SimDuration, until: SimTime) -> Series {
        assert!(!step.is_zero(), "sample step must be positive");
        let mut out = Series::new();
        let mut t = SimTime::ZERO;
        let mut idx = 0usize;
        let mut level = 0i64;
        while t <= until {
            while idx < self.changes.len() && self.changes[idx].0 <= t {
                level = self.changes[idx].1;
                idx += 1;
            }
            out.push(t, level as f64);
            t += step;
        }
        out
    }

    /// Time-weighted average level over `[0, until)`.
    pub fn time_average(&self, until: SimTime) -> f64 {
        if until == SimTime::ZERO {
            return 0.0;
        }
        let mut area = 0.0;
        let mut prev_t = SimTime::ZERO;
        let mut level = 0i64;
        for &(t, new_level) in &self.changes {
            if t >= until {
                break;
            }
            area += level as f64 * (t - prev_t).as_secs_f64();
            prev_t = t;
            level = new_level;
        }
        area += level as f64 * (until - prev_t).as_secs_f64();
        area / until.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_basic() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn online_stats_empty_and_single() {
        let mut s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        s.push(3.5);
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn online_stats_merge_matches_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = OnlineStats::new();
        for &x in &xs {
            all.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.std_dev() - all.std_dev()).abs() < 1e-9);
        // Merging an empty accumulator changes nothing.
        let snapshot = a.mean();
        a.merge(&OnlineStats::new());
        assert_eq!(a.mean(), snapshot);
    }

    #[test]
    fn quantiles_track_observed_values_within_sketch_error() {
        let mut s = OnlineStats::new();
        assert_eq!(s.quantile(0.95), None);
        for i in 1..=1000 {
            s.push(i as f64 / 100.0); // 0.01 ..= 10.00
        }
        let p50 = s.quantile(0.50).unwrap();
        let p95 = s.p95().unwrap();
        let p99 = s.p99().unwrap();
        assert!((p50 / 5.0 - 1.0).abs() < 0.05, "p50 = {p50}");
        assert!((p95 / 9.5 - 1.0).abs() < 0.05, "p95 = {p95}");
        assert!((p99 / 9.9 - 1.0).abs() < 0.05, "p99 = {p99}");
        assert!(p50 <= p95 && p95 <= p99);
        // Quantiles never leave the observed range.
        let bottom = s.quantile(0.0).unwrap();
        assert!((bottom / 0.01 - 1.0).abs() < 0.05, "bottom = {bottom}");
        let top = s.quantile(1.0).unwrap();
        assert!(p99 <= top && top <= 10.0, "top = {top}");
    }

    #[test]
    fn zero_heavy_quantiles_report_zero_bucket_exactly() {
        // Admission waits are usually exactly 0; the sketch must not
        // smear them into a log bucket.
        let mut s = OnlineStats::new();
        for _ in 0..98 {
            s.push(0.0);
        }
        s.push(4.0);
        s.push(8.0);
        assert_eq!(s.quantile(0.5), Some(0.0));
        assert_eq!(s.quantile(0.95), Some(0.0));
        let p99 = s.p99().unwrap();
        assert!((p99 / 4.0 - 1.0).abs() < 0.05, "p99 = {p99}");
    }

    #[test]
    fn quantile_merge_is_exact_and_order_independent() {
        let xs: Vec<f64> = (0..500).map(|i| ((i * 37) % 997) as f64 / 10.0).collect();
        let mut serial = OnlineStats::new();
        for &x in &xs {
            serial.push(x);
        }
        // Shard round-robin into 3, merge in a scrambled order.
        let mut shards = [OnlineStats::new(), OnlineStats::new(), OnlineStats::new()];
        for (i, &x) in xs.iter().enumerate() {
            shards[i % 3].push(x);
        }
        let [a, b, c] = shards;
        let mut merged = OnlineStats::new();
        merged.merge(&c);
        merged.merge(&a);
        merged.merge(&b);
        for q in [0.1, 0.5, 0.9, 0.95, 0.99] {
            assert_eq!(merged.quantile(q), serial.quantile(q), "q = {q}");
        }
    }

    #[test]
    fn push_millis_uses_milliseconds() {
        let mut s = OnlineStats::new();
        s.push_millis(SimDuration::from_millis(42));
        assert!((s.mean() - 42.0).abs() < 1e-12);
    }

    #[test]
    fn series_window_and_percentile() {
        let mut s = Series::new();
        for i in 0..10 {
            s.push(SimTime::from_secs(i), i as f64);
        }
        assert_eq!(s.len(), 10);
        assert_eq!(s.window_mean(SimTime::from_secs(2), SimTime::from_secs(5)), Some(3.0));
        assert_eq!(s.window_mean(SimTime::from_secs(50), SimTime::from_secs(60)), None);
        assert_eq!(s.percentile(0.0), Some(0.0));
        assert_eq!(s.percentile(100.0), Some(9.0));
        assert_eq!(s.percentile(50.0), Some(5.0));
        assert_eq!(Series::new().percentile(50.0), None);
    }

    #[test]
    fn histogram_binning_and_edges() {
        let mut h = Histogram::new(0.0, 100.0, 10);
        h.push(-1.0); // underflow
        h.push(0.0); // first bin
        h.push(9.999); // first bin
        h.push(10.0); // second bin
        h.push(99.9); // last bin
        h.push(100.0); // overflow
        h.push(1e9); // overflow
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.bins()[0], 2);
        assert_eq!(h.bins()[1], 1);
        assert_eq!(h.bins()[9], 1);
        assert_eq!(h.total(), 7);
        assert_eq!(h.bin_range(0), (0.0, 10.0));
        assert_eq!(h.bin_range(9), (90.0, 100.0));
    }

    #[test]
    fn histogram_cdf() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for x in [1.5, 2.5, 3.5, 4.5] {
            h.push(x);
        }
        assert!((h.cdf(3.0) - 0.5).abs() < 1e-12);
        assert!((h.cdf(10.0) - 1.0).abs() < 1e-12);
        assert_eq!(Histogram::new(0.0, 1.0, 4).cdf(0.5), 0.0);
    }

    #[test]
    #[should_panic(expected = "range must be non-empty")]
    fn histogram_rejects_empty_range() {
        let _ = Histogram::new(5.0, 5.0, 4);
    }

    #[test]
    fn rate_counter_buckets() {
        let mut rc = RateCounter::new(SimDuration::from_secs(60));
        rc.record(SimTime::from_secs(10));
        rc.record(SimTime::from_secs(59));
        rc.record(SimTime::from_secs(61));
        rc.record(SimTime::from_secs(179));
        assert_eq!(rc.counts(), &[2, 1, 1]);
        assert_eq!(rc.total(), 4);
        assert!((rc.window_rate(0, 3) - 4.0 / 3.0).abs() < 1e-12);
        assert_eq!(rc.window_rate(5, 9), 0.0);
    }

    #[test]
    fn level_tracker_sampling() {
        let mut lt = LevelTracker::new();
        lt.adjust(SimTime::from_secs(1), 1);
        lt.adjust(SimTime::from_secs(2), 1);
        lt.adjust(SimTime::from_secs(4), -1);
        assert_eq!(lt.level(), 1);
        let s = lt.sample(SimDuration::from_secs(1), SimTime::from_secs(5));
        let vals: Vec<f64> = s.values().collect();
        assert_eq!(vals, vec![0.0, 1.0, 2.0, 2.0, 1.0, 1.0]);
    }

    #[test]
    fn level_tracker_time_average() {
        let mut lt = LevelTracker::new();
        lt.adjust(SimTime::from_secs(0), 2);
        lt.adjust(SimTime::from_secs(5), -2);
        // Level 2 for half of a 10-second window -> average 1.0.
        assert!((lt.time_average(SimTime::from_secs(10)) - 1.0).abs() < 1e-12);
        assert_eq!(LevelTracker::new().time_average(SimTime::ZERO), 0.0);
    }
}
