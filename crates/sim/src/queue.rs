//! The discrete-event queue at the heart of the simulator.
//!
//! [`EventQueue`] is generic over the event payload so each experiment
//! driver can define its own event enum. Ordering is total and
//! deterministic: events fire in `(time, sequence-number)` order, where the
//! sequence number records insertion order. Cancellation is supported via
//! the [`EventId`] returned by [`EventQueue::schedule`]; cancelled entries
//! are dropped lazily when they reach the head of the heap.

use crate::time::{SimDuration, SimTime};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

/// Identifies a scheduled event so it can be cancelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(u64);

struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert to get earliest-first.
        other.time.cmp(&self.time).then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic priority queue of timed events.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    /// Sequence numbers scheduled but not yet fired or cancelled. Needed so
    /// `cancel` can tell a live event from one that already fired: blindly
    /// tombstoning an already-fired seq would leave it in `cancelled`
    /// forever (nothing in the heap ever matches it again).
    live: HashSet<u64>,
    /// Tombstones for cancelled-but-unreaped heap entries.
    cancelled: HashSet<u64>,
    now: SimTime,
    seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at zero.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Creates an empty queue sized for roughly `capacity` outstanding
    /// events, avoiding rehash/regrow churn in event-dense sim loops.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            live: HashSet::with_capacity(capacity),
            cancelled: HashSet::new(),
            now: SimTime::ZERO,
            seq: 0,
        }
    }

    /// Current simulated time: the firing time of the most recently popped
    /// event (zero before any event fires).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `payload` to fire at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is earlier than the current time — scheduling into the
    /// past would silently corrupt causality.
    pub fn schedule(&mut self, at: SimTime, payload: E) -> EventId {
        assert!(
            at >= self.now,
            "cannot schedule event in the past ({at} < now {now})",
            now = self.now
        );
        let id = self.seq;
        self.seq += 1;
        self.live.insert(id);
        self.heap.push(Entry { time: at, seq: id, payload });
        EventId(id)
    }

    /// Schedules `payload` to fire `after` from now.
    pub fn schedule_in(&mut self, after: SimDuration, payload: E) -> EventId {
        self.schedule(self.now + after, payload)
    }

    /// Cancels a previously scheduled event. Cancelling an already-fired or
    /// already-cancelled event is a no-op (and leaves no tombstone behind).
    pub fn cancel(&mut self, id: EventId) {
        if self.live.remove(&id.0) {
            self.cancelled.insert(id.0);
            // Reap eagerly: if the cancelled event sits at the head, drop it
            // (and any tombstoned entries it uncovers) right now instead of
            // carrying dead heap weight until the next pop.
            self.reap_head();
        }
    }

    /// Removes and returns the next event, advancing the clock to its firing
    /// time. Returns `None` when the queue is exhausted.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(entry) = self.heap.pop() {
            if self.cancelled.remove(&entry.seq) {
                continue;
            }
            self.live.remove(&entry.seq);
            debug_assert!(entry.time >= self.now, "event queue time went backwards");
            self.now = entry.time;
            return Some((entry.time, entry.payload));
        }
        None
    }

    /// The firing time of the next live event without popping it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.reap_head();
        self.heap.peek().map(|entry| entry.time)
    }

    /// Drops tombstoned entries from the head of the heap.
    fn reap_head(&mut self) {
        while let Some(entry) = self.heap.peek() {
            if self.cancelled.contains(&entry.seq) {
                let seq = entry.seq;
                self.heap.pop();
                self.cancelled.remove(&seq);
            } else {
                break;
            }
        }
    }

    /// Number of scheduled (possibly including cancelled-but-unreaped)
    /// entries.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Number of live (scheduled, neither fired nor cancelled) events. Unlike
    /// [`len`](Self::len) this never counts tombstones.
    pub fn live_len(&self) -> usize {
        self.live.len()
    }

    /// True when no live or stale entries remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), "c");
        q.schedule(SimTime::from_secs(1), "a");
        q.schedule(SimTime::from_secs(2), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
        assert_eq!(q.now(), SimTime::from_secs(3));
    }

    #[test]
    fn ties_fire_in_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..10 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), "first");
        q.pop();
        q.schedule_in(SimDuration::from_secs(2), "second");
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_secs(7));
    }

    #[test]
    fn cancellation_skips_events() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_secs(1), "a");
        q.schedule(SimTime::from_secs(2), "b");
        q.cancel(a);
        assert_eq!(q.pop().map(|(_, e)| e), Some("b"));
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_secs(1), "a");
        assert!(q.pop().is_some());
        q.cancel(a);
        q.schedule(SimTime::from_secs(2), "b");
        assert_eq!(q.pop().map(|(_, e)| e), Some("b"));
    }

    #[test]
    fn peek_time_skips_cancelled_head() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_secs(1), "a");
        q.schedule(SimTime::from_secs(2), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(2)));
    }

    #[test]
    #[should_panic(expected = "cannot schedule event in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), "x");
        q.pop();
        q.schedule(SimTime::from_secs(1), "y");
    }

    #[test]
    fn cancel_after_fire_leaves_no_tombstone() {
        // Regression: cancelling an already-fired event used to park its seq
        // in the tombstone set forever, because no heap entry could ever
        // match it again.
        let mut q = EventQueue::new();
        for _ in 0..100 {
            let id = q.schedule_in(SimDuration::from_secs(1), "ev");
            assert_eq!(q.live_len(), 1);
            q.pop();
            q.cancel(id); // fired already — must not leak
        }
        assert_eq!(q.len(), 0, "no stale entries may accumulate");
        assert_eq!(q.live_len(), 0);
        assert_eq!(q.cancelled.len(), 0, "tombstone set must stay empty");
    }

    #[test]
    fn cancelling_the_head_reaps_eagerly() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_secs(1), "a");
        let b = q.schedule(SimTime::from_secs(2), "b");
        q.schedule(SimTime::from_secs(3), "c");
        // Cancel b first (not at head — stays as a tombstone), then a: the
        // reap must drop a *and* the uncovered tombstoned b immediately.
        q.cancel(b);
        assert_eq!(q.len(), 3);
        q.cancel(a);
        assert_eq!(q.len(), 1, "head cancellation reaps through tombstones");
        assert_eq!(q.live_len(), 1);
        assert_eq!(q.cancelled.len(), 0);
        assert_eq!(q.pop().map(|(_, e)| e), Some("c"));
    }

    #[test]
    fn double_cancel_is_noop() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_secs(1), "a");
        q.schedule(SimTime::from_secs(2), "b");
        q.cancel(a);
        q.cancel(a);
        assert_eq!(q.live_len(), 1);
        assert_eq!(q.pop().map(|(_, e)| e), Some("b"));
        assert!(q.pop().is_none());
        assert_eq!(q.cancelled.len(), 0);
    }

    #[test]
    fn with_capacity_starts_empty() {
        let mut q: EventQueue<u8> = EventQueue::with_capacity(64);
        assert!(q.is_empty());
        assert_eq!(q.live_len(), 0);
        q.schedule(SimTime::from_secs(1), 7);
        assert_eq!(q.pop(), Some((SimTime::from_secs(1), 7)));
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        assert!(q.pop().is_none());
        assert_eq!(q.peek_time(), None);
    }
}
