//! The discrete-event queue at the heart of the simulator.
//!
//! [`EventQueue`] is generic over the event payload so each experiment
//! driver can define its own event enum. Ordering is total and
//! deterministic: events fire in `(time, sequence-number)` order, where the
//! sequence number records insertion order. Cancellation is supported via
//! the [`EventId`] returned by [`EventQueue::schedule`]; cancelled entries
//! are dropped lazily when they surface.
//!
//! Internally the queue is a hierarchical timing wheel (11 levels of 64
//! slots, 6 bits per level, covering the full `u64` microsecond range) with
//! a per-level occupancy bitmap, plus a small `ready` binary heap that
//! holds near-horizon entries. Scheduling hashes the event into a slot in
//! O(1); popping drains the earliest due slot into the `ready` heap, whose
//! `(time, seq)` ordering restores the exact global tie order. The heap
//! only ever holds one slot's worth of entries (plus stragglers scheduled
//! behind the wheel cursor), so its `log` factor is over a handful of
//! items, not the whole event population — the common schedule/cancel/pop
//! cycle is O(1) amortized.
//!
//! Small populations skip the wheel entirely: while fewer than
//! [`DEFAULT_HEAP_THRESHOLD`] entries are stored, `schedule` pushes
//! straight onto the `ready` heap, whose `log` factor at those sizes beats
//! the wheel's cascade bookkeeping (the wheel used to lose ~22% to the
//! plain heap on 1k-event churn). This is purely a routing choice — `pop`
//! and `peek_time` already merge the heap and the wheel by comparing the
//! ready head against the wheel's next slot deadline, so the fired order
//! is identical whichever side an entry landed on, and mid-run threshold
//! crossings need no migration.
//!
//! Wheel invariants:
//! 1. every wheel entry's time is `>= cursor` (entries scheduled behind the
//!    cursor — possible after `peek_time` cascades ahead of `now` — go
//!    straight to the `ready` heap instead);
//! 2. the cursor only advances to slot deadlines that lower-bound every
//!    remaining wheel entry, so at each level the occupied slots always sit
//!    at or after the cursor's slot, and the first occupied slot of the
//!    lowest occupied level is the global wheel minimum.
//!
//! The old `BinaryHeap`-based implementation survives as
//! [`reference::ReferenceQueue`]: it is the behavioral oracle for the
//! differential proptests and the baseline for the micro-benchmarks.

use crate::time::{SimDuration, SimTime};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

/// Identifies a scheduled event so it can be cancelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(u64);

/// Below this many stored entries, `schedule` bypasses the wheel and uses
/// the `ready` heap directly: a couple thousand entries is where the
/// heap's `log` factor starts losing to the wheel's O(1)-amortized
/// bookkeeping. Chosen above the 1k-event churn micro-bench population so
/// small sims never pay the wheel's constant factors.
pub const DEFAULT_HEAP_THRESHOLD: usize = 2048;

/// Bits per wheel level: 64 slots each.
const LEVEL_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << LEVEL_BITS;
/// Levels needed to cover all 64 bits of a microsecond timestamp.
const LEVELS: usize = 11;

struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert to get earliest-first.
        other.time.cmp(&self.time).then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic priority queue of timed events.
pub struct EventQueue<E> {
    /// `LEVELS * SLOTS` buckets, flattened; bucket `level * SLOTS + slot`.
    slots: Vec<Vec<Entry<E>>>,
    /// One occupancy bitmap per level: bit `s` set iff slot `s` is non-empty.
    occupancy: [u64; LEVELS],
    /// Wheel read position in microseconds. Always `<=` every wheel entry's
    /// time; may run ahead of `now` after a `peek_time` cascade.
    cursor: u64,
    /// Near-horizon entries in exact `(time, seq)` order: drained slots and
    /// anything scheduled behind `cursor`.
    ready: BinaryHeap<Entry<E>>,
    /// Physical entries stored (wheel + ready), including unreaped
    /// tombstones.
    stored: usize,
    /// Physical entries currently in the wheel (not `ready`): lets the
    /// pop/peek merge skip the per-level occupancy probe entirely while the
    /// queue runs in heap mode.
    in_wheel: usize,
    /// Sequence numbers scheduled but not yet fired or cancelled. Needed so
    /// `cancel` can tell a live event from one that already fired: blindly
    /// tombstoning an already-fired seq would leave it in `cancelled`
    /// forever (nothing stored ever matches it again).
    live: HashSet<u64>,
    /// Tombstones for cancelled-but-unreaped entries.
    cancelled: HashSet<u64>,
    /// Population below which `schedule` routes to the heap instead of the
    /// wheel (see [`DEFAULT_HEAP_THRESHOLD`]; 0 forces pure-wheel).
    heap_threshold: usize,
    now: SimTime,
    seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at zero.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Creates an empty queue sized for roughly `capacity` outstanding
    /// events, avoiding rehash/regrow churn in event-dense sim loops.
    pub fn with_capacity(capacity: usize) -> Self {
        let mut slots = Vec::with_capacity(LEVELS * SLOTS);
        slots.resize_with(LEVELS * SLOTS, Vec::new);
        EventQueue {
            slots,
            occupancy: [0; LEVELS],
            cursor: 0,
            ready: BinaryHeap::with_capacity(capacity.min(SLOTS)),
            stored: 0,
            in_wheel: 0,
            live: HashSet::with_capacity(capacity),
            cancelled: HashSet::new(),
            heap_threshold: DEFAULT_HEAP_THRESHOLD,
            now: SimTime::ZERO,
            seq: 0,
        }
    }

    /// Overrides the population below which scheduling bypasses the wheel.
    /// `0` forces every entry through the wheel (the differential tests use
    /// this to pin the structure under test); `usize::MAX` degenerates to a
    /// plain binary heap. Takes effect for subsequent schedules only —
    /// already-stored entries stay where they are, which is safe because
    /// pop/peek merge both sides regardless.
    pub fn set_heap_threshold(&mut self, threshold: usize) {
        self.heap_threshold = threshold;
    }

    /// Current simulated time: the firing time of the most recently popped
    /// event (zero before any event fires).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `payload` to fire at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is earlier than the current time — scheduling into the
    /// past would silently corrupt causality.
    pub fn schedule(&mut self, at: SimTime, payload: E) -> EventId {
        assert!(
            at >= self.now,
            "cannot schedule event in the past ({at} < now {now})",
            now = self.now
        );
        let id = self.seq;
        self.seq += 1;
        self.live.insert(id);
        self.stored += 1;
        let entry = Entry { time: at, seq: id, payload };
        let t = at.as_micros();
        if t < self.cursor || self.stored <= self.heap_threshold {
            // Two reasons to bypass the wheel: `peek_time` may have cascaded
            // the cursor past `now`, and entries landing in that gap must
            // skip it (invariant 1); and below the hybrid threshold the heap
            // is simply faster than wheel bookkeeping.
            self.ready.push(entry);
        } else {
            self.insert_wheel(entry);
        }
        EventId(id)
    }

    /// Schedules `payload` to fire `after` from now.
    pub fn schedule_in(&mut self, after: SimDuration, payload: E) -> EventId {
        self.schedule(self.now + after, payload)
    }

    /// Cancels a previously scheduled event. Cancelling an already-fired or
    /// already-cancelled event is a no-op (and leaves no tombstone behind).
    pub fn cancel(&mut self, id: EventId) {
        if self.live.remove(&id.0) {
            self.cancelled.insert(id.0);
        }
    }

    /// Removes and returns the next event, advancing the clock to its firing
    /// time. Returns `None` when the queue is exhausted.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        loop {
            self.pull_due_into_ready();
            let entry = self.ready.pop()?;
            self.stored -= 1;
            if self.cancelled.remove(&entry.seq) {
                continue;
            }
            self.live.remove(&entry.seq);
            debug_assert!(entry.time >= self.now, "event queue time went backwards");
            self.now = entry.time;
            return Some((entry.time, entry.payload));
        }
    }

    /// The firing time of the next live event without popping it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        loop {
            self.pull_due_into_ready();
            match self.ready.peek() {
                None => return None,
                Some(entry) if self.cancelled.contains(&entry.seq) => {
                    let entry = self.ready.pop().expect("peeked entry");
                    self.cancelled.remove(&entry.seq);
                    self.stored -= 1;
                    // The next ready entry may now trail a wheel slot; loop
                    // so the wheel gets another chance to feed `ready`.
                }
                Some(entry) => return Some(entry.time),
            }
        }
    }

    /// Number of scheduled (possibly including cancelled-but-unreaped)
    /// entries.
    pub fn len(&self) -> usize {
        self.stored
    }

    /// Number of live (scheduled, neither fired nor cancelled) events. Unlike
    /// [`len`](Self::len) this never counts tombstones.
    pub fn live_len(&self) -> usize {
        self.live.len()
    }

    /// True when no live or stale entries remain.
    pub fn is_empty(&self) -> bool {
        self.stored == 0
    }

    /// Places an entry with `time >= cursor` into its wheel bucket: the
    /// level is the highest 6-bit group in which the time differs from the
    /// cursor, the slot is the time's value in that group.
    fn insert_wheel(&mut self, entry: Entry<E>) {
        let t = entry.time.as_micros();
        debug_assert!(t >= self.cursor);
        let masked = t ^ self.cursor;
        let level = if masked == 0 {
            0
        } else {
            (63 - masked.leading_zeros()) as usize / LEVEL_BITS as usize
        };
        let slot = (t >> (level as u32 * LEVEL_BITS)) as usize & (SLOTS - 1);
        self.slots[level * SLOTS + slot].push(entry);
        self.occupancy[level] |= 1 << slot;
        self.in_wheel += 1;
    }

    /// First occupied wheel bucket `(level, slot, deadline)` in firing
    /// order, if any. Level ordering is strict (every level-`L` entry fires
    /// before every level-`L+1` entry, because they share the cursor's
    /// higher groups), so the lowest occupied level's first slot is the
    /// wheel's global minimum; its deadline is the slot's start time (the
    /// exact event time at level 0).
    fn wheel_next(&self) -> Option<(usize, usize, u64)> {
        for level in 0..LEVELS {
            let occ = self.occupancy[level];
            if occ == 0 {
                continue;
            }
            let cursor_slot = (self.cursor >> (level as u32 * LEVEL_BITS)) as usize & (SLOTS - 1);
            let ahead = occ >> cursor_slot;
            debug_assert!(ahead != 0, "occupied wheel slot behind cursor");
            let slot = cursor_slot + ahead.trailing_zeros() as usize;
            let group_shift = level as u32 * LEVEL_BITS;
            let span_shift = group_shift + LEVEL_BITS;
            let high = if span_shift >= 64 { 0 } else { (self.cursor >> span_shift) << span_shift };
            let deadline = high | ((slot as u64) << group_shift);
            return Some((level, slot, deadline));
        }
        None
    }

    /// Moves wheel entries into `ready` until the ready head is guaranteed
    /// to be the global minimum: while the wheel's next deadline does not
    /// trail the ready head, either cascade (level > 0) or drain the due
    /// slot (level 0). Ties drain too, so same-time entries meet in the
    /// heap where `(time, seq)` order decides.
    fn pull_due_into_ready(&mut self) {
        while self.in_wheel > 0 {
            let Some((level, slot, deadline)) = self.wheel_next() else {
                debug_assert!(false, "in_wheel > 0 but no occupied slot");
                break;
            };
            if let Some(head) = self.ready.peek() {
                if head.time.as_micros() < deadline {
                    break;
                }
            }
            let bucket = std::mem::take(&mut self.slots[level * SLOTS + slot]);
            self.occupancy[level] &= !(1 << slot);
            self.in_wheel -= bucket.len();
            if level == 0 {
                // All entries in a level-0 slot share one exact time.
                for entry in bucket {
                    if self.cancelled.remove(&entry.seq) {
                        self.stored -= 1;
                    } else {
                        self.ready.push(entry);
                    }
                }
            } else {
                // Advancing the cursor to the slot's start strictly lowers
                // each entry's level on re-insert (its time differs from the
                // new cursor only below this level's span).
                self.cursor = deadline;
                for entry in bucket {
                    if self.cancelled.remove(&entry.seq) {
                        self.stored -= 1;
                    } else {
                        self.insert_wheel(entry);
                    }
                }
            }
        }
    }
}

/// The pre-wheel `BinaryHeap` event queue, kept verbatim as a behavioral
/// oracle: the differential proptests drive it and [`EventQueue`] through
/// identical schedule/cancel/pop/peek traces and demand event-for-event
/// equality, and the micro-benchmarks use it as the comparison baseline.
pub mod reference {
    use super::Entry;
    use crate::time::{SimDuration, SimTime};
    use std::collections::{BinaryHeap, HashSet};

    /// Identifies a scheduled event so it can be cancelled.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
    pub struct RefEventId(u64);

    /// A deterministic priority queue of timed events (heap-based oracle).
    pub struct ReferenceQueue<E> {
        heap: BinaryHeap<Entry<E>>,
        live: HashSet<u64>,
        cancelled: HashSet<u64>,
        now: SimTime,
        seq: u64,
    }

    impl<E> Default for ReferenceQueue<E> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<E> ReferenceQueue<E> {
        /// Creates an empty queue with the clock at zero.
        pub fn new() -> Self {
            ReferenceQueue {
                heap: BinaryHeap::new(),
                live: HashSet::new(),
                cancelled: HashSet::new(),
                now: SimTime::ZERO,
                seq: 0,
            }
        }

        /// Current simulated time.
        pub fn now(&self) -> SimTime {
            self.now
        }

        /// Schedules `payload` to fire at absolute time `at`.
        pub fn schedule(&mut self, at: SimTime, payload: E) -> RefEventId {
            assert!(
                at >= self.now,
                "cannot schedule event in the past ({at} < now {now})",
                now = self.now
            );
            let id = self.seq;
            self.seq += 1;
            self.live.insert(id);
            self.heap.push(Entry { time: at, seq: id, payload });
            RefEventId(id)
        }

        /// Schedules `payload` to fire `after` from now.
        pub fn schedule_in(&mut self, after: SimDuration, payload: E) -> RefEventId {
            self.schedule(self.now + after, payload)
        }

        /// Cancels a previously scheduled event (no-op after fire/cancel).
        pub fn cancel(&mut self, id: RefEventId) {
            if self.live.remove(&id.0) {
                self.cancelled.insert(id.0);
                self.reap_head();
            }
        }

        /// Removes and returns the next event, advancing the clock.
        pub fn pop(&mut self) -> Option<(SimTime, E)> {
            while let Some(entry) = self.heap.pop() {
                if self.cancelled.remove(&entry.seq) {
                    continue;
                }
                self.live.remove(&entry.seq);
                self.now = entry.time;
                return Some((entry.time, entry.payload));
            }
            None
        }

        /// The firing time of the next live event without popping it.
        pub fn peek_time(&mut self) -> Option<SimTime> {
            self.reap_head();
            self.heap.peek().map(|entry| entry.time)
        }

        fn reap_head(&mut self) {
            while let Some(entry) = self.heap.peek() {
                if self.cancelled.contains(&entry.seq) {
                    let seq = entry.seq;
                    self.heap.pop();
                    self.cancelled.remove(&seq);
                } else {
                    break;
                }
            }
        }

        /// Number of live (scheduled, neither fired nor cancelled) events.
        pub fn live_len(&self) -> usize {
            self.live.len()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), "c");
        q.schedule(SimTime::from_secs(1), "a");
        q.schedule(SimTime::from_secs(2), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
        assert_eq!(q.now(), SimTime::from_secs(3));
    }

    #[test]
    fn ties_fire_in_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..10 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), "first");
        q.pop();
        q.schedule_in(SimDuration::from_secs(2), "second");
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_secs(7));
    }

    #[test]
    fn cancellation_skips_events() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_secs(1), "a");
        q.schedule(SimTime::from_secs(2), "b");
        q.cancel(a);
        assert_eq!(q.pop().map(|(_, e)| e), Some("b"));
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_secs(1), "a");
        assert!(q.pop().is_some());
        q.cancel(a);
        q.schedule(SimTime::from_secs(2), "b");
        assert_eq!(q.pop().map(|(_, e)| e), Some("b"));
    }

    #[test]
    fn peek_time_skips_cancelled_head() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_secs(1), "a");
        q.schedule(SimTime::from_secs(2), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(2)));
    }

    #[test]
    fn peek_then_schedule_behind_the_peek_stays_ordered() {
        // peek_time cascades the wheel cursor toward the next event; a later
        // schedule between `now` and that event must still fire first.
        let mut q = EventQueue::new();
        q.set_heap_threshold(0); // pin the wheel path

        q.schedule(SimTime::from_micros(62), "pop-me");
        q.schedule(SimTime::from_micros(130), "far");
        assert_eq!(q.pop().map(|(_, e)| e), Some("pop-me"));
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(130)));
        q.schedule(SimTime::from_micros(70), "near");
        q.schedule(SimTime::from_micros(135), "farther");
        assert_eq!(q.pop(), Some((SimTime::from_micros(70), "near")));
        assert_eq!(q.pop(), Some((SimTime::from_micros(130), "far")));
        assert_eq!(q.pop(), Some((SimTime::from_micros(135), "farther")));
        assert!(q.pop().is_none());
    }

    #[test]
    fn far_horizon_events_cascade_correctly() {
        let mut q = EventQueue::new();
        q.set_heap_threshold(0); // pin the wheel path
                                 // Spread across many wheel levels, including the top.
        let times = [1u64, 63, 64, 65, 4096, 262144, 1 << 40, u64::MAX / 2, u64::MAX - 1];
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_micros(t), i);
        }
        let mut sorted: Vec<u64> = times.to_vec();
        sorted.sort_unstable();
        let got: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(t, _)| t.as_micros())).collect();
        assert_eq!(got, sorted);
    }

    #[test]
    #[should_panic(expected = "cannot schedule event in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), "x");
        q.pop();
        q.schedule(SimTime::from_secs(1), "y");
    }

    #[test]
    fn cancel_after_fire_leaves_no_tombstone() {
        // Regression: cancelling an already-fired event used to park its seq
        // in the tombstone set forever, because no stored entry could ever
        // match it again.
        let mut q = EventQueue::new();
        for _ in 0..100 {
            let id = q.schedule_in(SimDuration::from_secs(1), "ev");
            assert_eq!(q.live_len(), 1);
            q.pop();
            q.cancel(id); // fired already — must not leak
        }
        assert_eq!(q.len(), 0, "no stale entries may accumulate");
        assert_eq!(q.live_len(), 0);
        assert_eq!(q.cancelled.len(), 0, "tombstone set must stay empty");
    }

    #[test]
    fn cancelled_entries_are_reaped_lazily() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_secs(1), "a");
        let b = q.schedule(SimTime::from_secs(2), "b");
        q.schedule(SimTime::from_secs(3), "c");
        q.cancel(b);
        q.cancel(a);
        assert_eq!(q.live_len(), 1);
        // Tombstones drop when they surface: after draining, nothing stale
        // remains anywhere.
        assert_eq!(q.pop().map(|(_, e)| e), Some("c"));
        assert!(q.pop().is_none());
        assert_eq!(q.len(), 0);
        assert_eq!(q.cancelled.len(), 0);
    }

    #[test]
    fn double_cancel_is_noop() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_secs(1), "a");
        q.schedule(SimTime::from_secs(2), "b");
        q.cancel(a);
        q.cancel(a);
        assert_eq!(q.live_len(), 1);
        assert_eq!(q.pop().map(|(_, e)| e), Some("b"));
        assert!(q.pop().is_none());
        assert_eq!(q.cancelled.len(), 0);
    }

    #[test]
    fn with_capacity_starts_empty() {
        let mut q: EventQueue<u8> = EventQueue::with_capacity(64);
        assert!(q.is_empty());
        assert_eq!(q.live_len(), 0);
        q.schedule(SimTime::from_secs(1), 7);
        assert_eq!(q.pop(), Some((SimTime::from_secs(1), 7)));
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        assert!(q.pop().is_none());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn schedule_at_now_after_pop_fires() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(100), "a");
        q.pop();
        q.schedule(SimTime::from_micros(100), "b");
        assert_eq!(q.pop(), Some((SimTime::from_micros(100), "b")));
    }

    #[test]
    fn hybrid_threshold_crossing_keeps_global_order() {
        // Grow well past the hybrid threshold (later entries take the wheel,
        // early ones sit in the heap), then drain back through it: the merge
        // must fire everything in exact (time, seq) order throughout.
        let mut q = EventQueue::new();
        q.set_heap_threshold(8);
        let mut expected: Vec<(u64, u64)> = Vec::new();
        for i in 0..40u64 {
            // Colliding times so ties straddle the heap/wheel boundary.
            let t = (i * 37) % 23 + 1;
            q.schedule(SimTime::from_micros(t), i);
            expected.push((t, i));
        }
        expected.sort_unstable();
        let got: Vec<(u64, u64)> =
            std::iter::from_fn(|| q.pop().map(|(t, e)| (t.as_micros(), e))).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn matches_reference_queue_on_interleaved_trace() {
        // A quick inline differential check; the heavyweight randomized
        // version lives in tests/proptests.rs.
        let mut wheel = EventQueue::new();
        wheel.set_heap_threshold(0); // pin the wheel path
        let mut heap = reference::ReferenceQueue::new();
        let times = [5u64, 5, 3, 700, 700, 64, 65, 1_000_000, 12, 13];
        let mut wheel_ids = Vec::new();
        let mut heap_ids = Vec::new();
        for (i, &t) in times.iter().enumerate() {
            wheel_ids.push(wheel.schedule(SimTime::from_micros(t), i));
            heap_ids.push(heap.schedule(SimTime::from_micros(t), i));
        }
        wheel.cancel(wheel_ids[1]);
        heap.cancel(heap_ids[1]);
        wheel.cancel(wheel_ids[3]);
        heap.cancel(heap_ids[3]);
        loop {
            assert_eq!(wheel.peek_time(), heap.peek_time());
            let (a, b) = (wheel.pop(), heap.pop());
            assert_eq!(a, b);
            assert_eq!(wheel.now(), heap.now());
            if a.is_none() {
                break;
            }
        }
    }
}
