//! Deterministic fault injection: seeded, schedule-driven component
//! failures for robustness experiments.
//!
//! The paper's testbed stays healthy for every run; real deployments — and
//! the roadmap's "hundreds of servers" north star — lose servers, links,
//! and disks mid-stream. This module supplies the *when and what* of those
//! outages while leaving the *reaction* to the experiment drivers:
//!
//! * a [`FaultPlan`] declares outage windows — fixed schedules for tests
//!   (e.g. "server 1 crashes at t=1000 s and restarts at t=2000 s"),
//!   or exponentially distributed windows sampled from a [`FaultModel`]
//!   for experiments (same seeded [`Rng`](crate::rng::Rng) discipline as
//!   everything else, so plans replay bit-for-bit),
//! * a [`FaultInjector`] expands the plan into a `(time, seq)`-ordered
//!   event timeline the driver merges into its master event loop exactly
//!   like the other passive resource models.
//!
//! Overlapping windows on one server are legal and compose: the driver is
//! expected to keep a crash depth counter (a server is up only when every
//! crash window covering it has closed) and multiply concurrent capacity
//! factors.

use crate::rng::Rng;
use crate::time::{SimDuration, SimTime};
use crate::topology::ServerId;
use std::collections::BTreeMap;

/// What an outage window does to its server.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// The server process dies: active sessions are lost, reservations
    /// void, and new admissions against it fail until the window closes.
    ServerCrash,
    /// The outbound link runs at `factor` (in `(0, 1]`) of its nominal
    /// capacity for the window.
    LinkDegradation {
        /// Fraction of nominal link bandwidth that survives.
        factor: f64,
    },
    /// The disk delivers `factor` (in `(0, 1]`) of its nominal bandwidth
    /// for the window — binding only when the slowed disk falls below the
    /// outbound link.
    DiskSlowdown {
        /// Fraction of nominal disk bandwidth that survives.
        factor: f64,
    },
}

/// One scheduled outage window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// The afflicted server.
    pub server: ServerId,
    /// When the window opens.
    pub at: SimTime,
    /// How long it stays open; the recovery event fires at `at + duration`.
    pub duration: SimDuration,
    /// What the window does.
    pub kind: FaultKind,
}

impl FaultSpec {
    /// When the window closes (server restarts / capacity restored).
    pub fn end(&self) -> SimTime {
        self.at + self.duration
    }
}

/// Sampling model for randomly generated outage windows: independent
/// exponential inter-failure and repair times per server, the classic
/// availability model (MTBF / (MTBF + MTTR)).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultModel {
    /// Mean time between failures (start to next start), per server.
    pub mtbf: SimDuration,
    /// Mean time to repair (window length), per server.
    pub mttr: SimDuration,
    /// What each sampled window does.
    pub kind: FaultKind,
}

/// A declarative outage schedule.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// The windows, in no particular order; [`FaultInjector`] sorts.
    pub faults: Vec<FaultSpec>,
}

impl FaultPlan {
    /// A plan with no faults (healthy baseline).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// The acceptance scenario: `server` crashes at `at` and restarts at
    /// `restart`.
    pub fn crash_restart(server: ServerId, at: SimTime, restart: SimTime) -> Self {
        assert!(restart > at, "restart must follow the crash");
        FaultPlan {
            faults: vec![FaultSpec {
                server,
                at,
                duration: restart - at,
                kind: FaultKind::ServerCrash,
            }],
        }
    }

    /// Samples exponentially distributed outage windows for every server
    /// over `[0, horizon)`. Each server forks its own stream from `seed`,
    /// so the plan for server `k` is independent of how many servers the
    /// sweep covers — and the whole plan replays bit-for-bit.
    pub fn sample(
        seed: u64,
        servers: impl IntoIterator<Item = ServerId>,
        horizon: SimTime,
        model: FaultModel,
    ) -> Self {
        assert!(!model.mtbf.is_zero(), "MTBF must be positive");
        assert!(!model.mttr.is_zero(), "MTTR must be positive");
        let root = Rng::new(seed ^ 0x00FA_171A_u64);
        let mut faults = Vec::new();
        for server in servers {
            let mut rng = root.fork(server.0 as u64);
            let mut t = SimTime::ZERO;
            loop {
                let gap = SimDuration::from_secs_f64(rng.exp(model.mtbf.as_secs_f64()));
                let at = t + gap;
                if at >= horizon {
                    break;
                }
                let duration = SimDuration::from_secs_f64(rng.exp(model.mttr.as_secs_f64()))
                    .max(SimDuration::from_micros(1));
                faults.push(FaultSpec { server, at, duration, kind: model.kind });
                t = at + duration;
            }
        }
        FaultPlan { faults }
    }

    /// True when the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

/// Edge of an outage window, delivered to the driver in timeline order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultEvent {
    /// The window opens: apply the fault.
    Begin(FaultSpec),
    /// The window closes: undo it.
    End(FaultSpec),
}

impl FaultEvent {
    /// When the edge fires.
    pub fn at(&self) -> SimTime {
        match self {
            FaultEvent::Begin(s) => s.at,
            FaultEvent::End(s) => s.end(),
        }
    }

    /// The afflicted server.
    pub fn server(&self) -> ServerId {
        match self {
            FaultEvent::Begin(s) | FaultEvent::End(s) => s.server,
        }
    }
}

/// Expands a [`FaultPlan`] into an ordered begin/end event timeline — the
/// fault-injection "resource" a driver merges into its event loop via
/// [`next_at`](FaultInjector::next_at) / [`pop_due`](FaultInjector::pop_due).
///
/// Ties at one instant fire begins before ends of *later-listed* windows
/// deterministically: the key is `(time, plan index, edge)`, a pure
/// function of the plan.
pub struct FaultInjector {
    timeline: BTreeMap<(SimTime, usize, u8), FaultEvent>,
}

impl FaultInjector {
    /// Builds the timeline for a plan.
    pub fn new(plan: &FaultPlan) -> Self {
        let mut timeline = BTreeMap::new();
        for (i, spec) in plan.faults.iter().enumerate() {
            timeline.insert((spec.at, i, 0u8), FaultEvent::Begin(*spec));
            timeline.insert((spec.end(), i, 1u8), FaultEvent::End(*spec));
        }
        FaultInjector { timeline }
    }

    /// Earliest pending edge, if any.
    pub fn next_at(&self) -> Option<SimTime> {
        self.timeline.keys().next().map(|&(t, _, _)| t)
    }

    /// Pops the next edge due at or before `now`.
    pub fn pop_due(&mut self, now: SimTime) -> Option<FaultEvent> {
        let &key = self.timeline.keys().next().filter(|&&(t, _, _)| t <= now)?;
        self.timeline.remove(&key)
    }

    /// True when every edge has fired.
    pub fn is_empty(&self) -> bool {
        self.timeline.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_restart_schedules_one_window() {
        let plan = FaultPlan::crash_restart(
            ServerId(1),
            SimTime::from_secs(1000),
            SimTime::from_secs(2000),
        );
        let mut inj = FaultInjector::new(&plan);
        assert_eq!(inj.next_at(), Some(SimTime::from_secs(1000)));
        assert!(inj.pop_due(SimTime::from_secs(999)).is_none());
        match inj.pop_due(SimTime::from_secs(1000)) {
            Some(FaultEvent::Begin(s)) => {
                assert_eq!(s.server, ServerId(1));
                assert_eq!(s.kind, FaultKind::ServerCrash);
            }
            other => panic!("expected Begin, got {other:?}"),
        }
        assert_eq!(inj.next_at(), Some(SimTime::from_secs(2000)));
        match inj.pop_due(SimTime::from_secs(2000)) {
            Some(FaultEvent::End(s)) => assert_eq!(s.end(), SimTime::from_secs(2000)),
            other => panic!("expected End, got {other:?}"),
        }
        assert!(inj.is_empty());
    }

    #[test]
    fn timeline_orders_edges_by_time() {
        let plan = FaultPlan {
            faults: vec![
                FaultSpec {
                    server: ServerId(0),
                    at: SimTime::from_secs(50),
                    duration: SimDuration::from_secs(100),
                    kind: FaultKind::LinkDegradation { factor: 0.5 },
                },
                FaultSpec {
                    server: ServerId(1),
                    at: SimTime::from_secs(10),
                    duration: SimDuration::from_secs(20),
                    kind: FaultKind::ServerCrash,
                },
            ],
        };
        let mut inj = FaultInjector::new(&plan);
        let mut times = Vec::new();
        while let Some(ev) = inj.pop_due(SimTime::from_secs(1_000)) {
            times.push(ev.at());
        }
        let secs: Vec<u64> = times.iter().map(|t| t.as_micros() / 1_000_000).collect();
        assert_eq!(secs, vec![10, 30, 50, 150]);
    }

    #[test]
    fn sampled_plans_are_deterministic_and_server_independent() {
        let servers: Vec<ServerId> = ServerId::first_n(3).collect();
        let model = FaultModel {
            mtbf: SimDuration::from_secs(500),
            mttr: SimDuration::from_secs(60),
            kind: FaultKind::ServerCrash,
        };
        let horizon = SimTime::from_secs(5_000);
        let a = FaultPlan::sample(9, servers.clone(), horizon, model);
        let b = FaultPlan::sample(9, servers.clone(), horizon, model);
        assert_eq!(a, b, "same seed, same plan");
        let c = FaultPlan::sample(10, servers.clone(), horizon, model);
        assert_ne!(a, c, "different seed, different plan");
        // Server 1's windows do not depend on server 2 being in the sweep.
        let narrow = FaultPlan::sample(9, [ServerId(1)], horizon, model);
        let wide_s1: Vec<FaultSpec> =
            a.faults.iter().copied().filter(|f| f.server == ServerId(1)).collect();
        assert_eq!(narrow.faults, wide_s1);
        // Windows fall inside the horizon and never overlap per server.
        for s in &servers {
            let mut windows: Vec<&FaultSpec> = a.faults.iter().filter(|f| f.server == *s).collect();
            windows.sort_by_key(|f| f.at);
            for pair in windows.windows(2) {
                assert!(pair[0].end() <= pair[1].at, "windows overlap on {s:?}");
            }
        }
        assert!(a.faults.iter().all(|f| f.at < horizon));
        assert!(!a.is_empty(), "5000 s at MTBF 500 s over 3 servers should fault");
    }

    #[test]
    fn empty_plan_yields_empty_timeline() {
        let inj = FaultInjector::new(&FaultPlan::none());
        assert!(inj.is_empty());
        assert_eq!(inj.next_at(), None);
    }
}
