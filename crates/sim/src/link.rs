//! Shared-bandwidth resources: network links and disks.
//!
//! The paper's testbed bottleneck is each server's outbound link, with
//! 3200 KB/s of total streaming bandwidth. [`SharedLink`] models such a
//! resource as a fluid-flow server under one of two policies:
//!
//! * [`SharePolicy::FairShare`] — all backlogged flows split the capacity
//!   equally (processor sharing). This is the plain-VDBMS regime: with no
//!   admission control an oversubscribed link stretches every transfer.
//! * [`SharePolicy::Reserved`] — each flow transmits at its reserved rate,
//!   and opening a flow fails if the reservations would exceed capacity.
//!   This is the QoS-API regime.
//!
//! Like the CPU schedulers, the link is a passive incremental simulator:
//! submit transfers, query [`SharedLink::next_event`], advance, drain
//! completions. Disks are the same abstraction with a different capacity,
//! so the storage layer reuses `SharedLink`.
//!
//! # Layout
//!
//! Flow state lives in a struct-of-arrays arena (`slots` plus a free list)
//! instead of a `BTreeMap<FlowId, Flow>`: public [`FlowId`]s stay monotonic
//! (so ids are never reused and stale handles fail cleanly), and a dense
//! `slot_of` table maps them to reusable slots. Two small sorted index
//! vectors track the backlogged set incrementally — `active_by_id`
//! (ascending `FlowId`, the completion-scan and Reserved-allocation order)
//! and `wf` (ascending `(cap, FlowId)`, the water-filling order) — so the
//! fair-share allocation is rebuilt in one O(backlogged) pass with no
//! sorting and no scan over idle flows, and `backlogged_flows` /
//! `backlog_bytes` read running state instead of walking every flow. The
//! arithmetic (water-fill order, per-step drains, completion rounding) is
//! kept operation-for-operation identical to the original map-based
//! implementation so results are bit-identical; the proptests hold the two
//! to exact equality.

use crate::time::{SimDuration, SimTime};
use std::collections::VecDeque;

/// Identifies an open flow (one streaming session's use of a link).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowId(pub u64);

/// Identifies a submitted transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct XferId(pub u64);

/// A finished transfer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct XferDone {
    /// Flow the transfer belonged to.
    pub flow: FlowId,
    /// The completed transfer.
    pub xfer: XferId,
    /// Completion instant.
    pub at: SimTime,
}

/// Bandwidth-sharing discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SharePolicy {
    /// Max-min fair sharing: backlogged flows split capacity equally, up
    /// to each flow's optional pacing cap (water-filling).
    FairShare,
    /// Reservation: each flow transmits at its own reserved rate; admission
    /// keeps the sum within capacity.
    Reserved,
}

/// Why a flow could not be opened.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LinkError {
    /// Requested reservation exceeds the remaining capacity.
    Saturated {
        /// Requested rate in bytes/second.
        requested: u64,
        /// Remaining reservable rate in bytes/second.
        available: u64,
    },
    /// A reservation rate was required (Reserved policy) but not given, or
    /// given under FairShare.
    PolicyMismatch,
    /// The referenced flow is not open on this link — it was never opened
    /// here, or has already been closed (e.g. by a fault-injection path
    /// racing a caller that still holds the id).
    UnknownFlow(FlowId),
}

impl std::fmt::Display for LinkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinkError::Saturated { requested, available } => write!(
                f,
                "link reservation refused: requested {requested} B/s exceeds available {available} B/s"
            ),
            LinkError::PolicyMismatch => {
                write!(f, "reservation rate required under Reserved policy and forbidden under FairShare")
            }
            LinkError::UnknownFlow(id) => {
                write!(f, "flow {} is not open on this link", id.0)
            }
        }
    }
}

impl std::error::Error for LinkError {}

/// Sentinel in `slot_of` for closed flows.
const NO_SLOT: u32 = u32::MAX;

#[derive(Debug)]
struct FlowSlot {
    /// Public id of the flow currently occupying this slot.
    id: u64,
    /// Reserved rate (Reserved policy) or pacing cap (FairShare, 0 = no
    /// cap), in bytes/second.
    rate_bps: u64,
    /// FIFO of `(transfer, remaining bytes)`. Kept allocated across slot
    /// reuse so steady-state churn does not touch the allocator.
    queue: VecDeque<(XferId, f64)>,
}

impl FlowSlot {
    /// Water-filling cap: 0 means unconstrained.
    fn cap(&self) -> f64 {
        if self.rate_bps == 0 {
            f64::INFINITY
        } else {
            self.rate_bps as f64
        }
    }
}

/// A fluid-flow shared bandwidth resource.
#[derive(Debug)]
pub struct SharedLink {
    capacity_bps: u64,
    policy: SharePolicy,
    now: SimTime,
    /// Flow arena; `free` lists reusable entries.
    slots: Vec<FlowSlot>,
    free: Vec<u32>,
    /// Dense map from public flow id to slot (`NO_SLOT` once closed).
    slot_of: Vec<u32>,
    /// Backlogged slots in ascending public-id order: the completion-scan
    /// order and the Reserved allocation order.
    active_by_id: Vec<u32>,
    /// FairShare only: backlogged slots as `(cap, slot)` in ascending
    /// `(cap, FlowId)` order — exactly the order the original
    /// implementation produced by sorting on every allocation rebuild.
    wf: Vec<(f64, u32)>,
    reserved_total: u64,
    /// Sum of the nominal rates of all *open* flows (reserved rates under
    /// `Reserved`, pacing caps under `FairShare`; uncapped flows contribute
    /// nothing). This is the link's offered load — the congestion signal:
    /// backlog is useless for that purpose because fluid senders queue
    /// everything up front, but demand vs capacity says whether the
    /// water-filling allocation is squeezing flows below their caps.
    demand_bps: u64,
    completions: Vec<XferDone>,
    next_flow: u64,
    next_xfer: u64,
    /// True when a zero-byte transfer sits at some flow's queue front and
    /// no advance step has run since: the only way a sub-tolerance front
    /// can exist at rest, and the only case where `advance_to(now)` still
    /// has completions to pop.
    zero_front_pending: bool,
    /// Memoized result of the water-filling allocation as `(slot, rate)`
    /// pairs in allocation order. The allocation depends only on the set of
    /// backlogged flows and their caps, so it stays valid while the fluid
    /// model merely drains bytes; it is invalidated whenever that set
    /// changes (idle->backlogged send, backlogged close, drain-to-idle,
    /// capacity change). Rebuilding is a single pass over the maintained
    /// `wf`/`active_by_id` order — no sort, no idle-flow scan.
    rates_cache: Option<Vec<(u32, f64)>>,
}

impl SharedLink {
    /// Creates a fair-share (processor-sharing) link.
    pub fn fair_share(capacity_bps: u64) -> Self {
        Self::new(capacity_bps, SharePolicy::FairShare)
    }

    /// Creates a reservation-based link.
    pub fn reserved(capacity_bps: u64) -> Self {
        Self::new(capacity_bps, SharePolicy::Reserved)
    }

    fn new(capacity_bps: u64, policy: SharePolicy) -> Self {
        assert!(capacity_bps > 0, "link capacity must be positive");
        SharedLink {
            capacity_bps,
            policy,
            now: SimTime::ZERO,
            slots: Vec::new(),
            free: Vec::new(),
            slot_of: Vec::new(),
            active_by_id: Vec::new(),
            wf: Vec::new(),
            reserved_total: 0,
            demand_bps: 0,
            completions: Vec::new(),
            next_flow: 0,
            next_xfer: 0,
            zero_front_pending: false,
            rates_cache: None,
        }
    }

    /// Total capacity in bytes/second.
    pub fn capacity_bps(&self) -> u64 {
        self.capacity_bps
    }

    /// The sharing policy.
    pub fn policy(&self) -> SharePolicy {
        self.policy
    }

    /// Sum of reserved rates (0 under FairShare).
    pub fn reserved_bps(&self) -> u64 {
        self.reserved_total
    }

    /// Sum of the nominal rates of all open flows — the offered load in
    /// bytes/second. `demand_bps() > capacity_bps()` means the link cannot
    /// serve every flow at its nominal rate (congestion), regardless of
    /// policy. O(1): maintained on open/close.
    pub fn demand_bps(&self) -> u64 {
        self.demand_bps
    }

    /// Rate still reservable. Saturates at zero when a capacity cut (fault
    /// injection) dropped the link below its outstanding reservations.
    pub fn available_bps(&self) -> u64 {
        self.capacity_bps.saturating_sub(self.reserved_total)
    }

    /// Changes the link's capacity mid-run (fault injection: degradation
    /// when lowered, recovery when restored). Existing flows stay open —
    /// under `Reserved` the link may become temporarily oversubscribed, in
    /// which case nothing new is admitted until enough flows close; under
    /// `FairShare` the water-filling allocation simply tightens.
    pub fn set_capacity(&mut self, now: SimTime, capacity_bps: u64) {
        assert!(capacity_bps > 0, "link capacity must be positive");
        // Settle transfers at the old rates before the allocation changes.
        self.advance_to(now);
        if self.capacity_bps != capacity_bps {
            self.capacity_bps = capacity_bps;
            self.rates_cache = None;
        }
    }

    /// Number of open flows.
    pub fn open_flows(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// Number of flows with queued bytes. O(1): reads the maintained
    /// backlogged index.
    pub fn backlogged_flows(&self) -> usize {
        self.active_by_id.len()
    }

    /// Total bytes still queued across all flows. O(backlogged queue
    /// entries): walks only the backlogged index, in the same id-then-FIFO
    /// order (and therefore with the same float rounding) as a scan over
    /// every flow — idle flows contribute no terms.
    pub fn backlog_bytes(&self) -> f64 {
        self.active_by_id
            .iter()
            .flat_map(|&s| self.slots[s as usize].queue.iter().map(|&(_, b)| b))
            .sum()
    }

    /// Looks up a flow's slot, if it is open.
    fn slot(&self, flow: FlowId) -> Option<u32> {
        match self.slot_of.get(flow.0 as usize) {
            Some(&s) if s != NO_SLOT => Some(s),
            _ => None,
        }
    }

    /// Inserts `slot` into the backlogged indexes (idle -> backlogged).
    fn mark_backlogged(&mut self, slot: u32) {
        let id = self.slots[slot as usize].id;
        let slots = &self.slots;
        let pos =
            self.active_by_id.binary_search_by(|&s| slots[s as usize].id.cmp(&id)).unwrap_err();
        self.active_by_id.insert(pos, slot);
        if self.policy == SharePolicy::FairShare {
            let cap = self.slots[slot as usize].cap();
            let pos = self
                .wf
                .binary_search_by(|&(c, s)| c.total_cmp(&cap).then(slots[s as usize].id.cmp(&id)))
                .unwrap_err();
            self.wf.insert(pos, (cap, slot));
        }
    }

    /// Removes `slot` from the backlogged indexes (backlogged -> gone).
    fn unmark_backlogged(&mut self, slot: u32) {
        let id = self.slots[slot as usize].id;
        let slots = &self.slots;
        if let Ok(pos) = self.active_by_id.binary_search_by(|&s| slots[s as usize].id.cmp(&id)) {
            self.active_by_id.remove(pos);
        }
        self.remove_from_wf(slot);
    }

    /// Removes `slot` from the water-filling index (FairShare only).
    fn remove_from_wf(&mut self, slot: u32) {
        if self.policy != SharePolicy::FairShare {
            return;
        }
        let id = self.slots[slot as usize].id;
        let cap = self.slots[slot as usize].cap();
        let slots = &self.slots;
        if let Ok(pos) = self
            .wf
            .binary_search_by(|&(c, s)| c.total_cmp(&cap).then(slots[s as usize].id.cmp(&id)))
        {
            self.wf.remove(pos);
        }
    }

    /// Opens a flow. Under [`SharePolicy::Reserved`] a rate must be given
    /// and is admission-checked; under [`SharePolicy::FairShare`] an
    /// optional rate acts as a pacing cap (no admission check).
    pub fn open_flow(&mut self, now: SimTime, rate_bps: Option<u64>) -> Result<FlowId, LinkError> {
        self.advance_to(now);
        let (rate, reserved) = match (self.policy, rate_bps) {
            (SharePolicy::Reserved, Some(rate)) => {
                let available = self.available_bps();
                if rate > available {
                    return Err(LinkError::Saturated { requested: rate, available });
                }
                (rate, rate)
            }
            (SharePolicy::FairShare, cap) => (cap.unwrap_or(0), 0),
            (SharePolicy::Reserved, None) => return Err(LinkError::PolicyMismatch),
        };
        let id = FlowId(self.next_flow);
        self.next_flow += 1;
        let slot = match self.free.pop() {
            Some(s) => {
                let f = &mut self.slots[s as usize];
                f.id = id.0;
                f.rate_bps = rate;
                debug_assert!(f.queue.is_empty());
                s
            }
            None => {
                self.slots.push(FlowSlot { id: id.0, rate_bps: rate, queue: VecDeque::new() });
                (self.slots.len() - 1) as u32
            }
        };
        self.slot_of.push(slot);
        debug_assert_eq!(self.slot_of.len() as u64, self.next_flow);
        self.reserved_total += reserved;
        self.demand_bps += rate;
        // A new flow opens idle: the backlogged set — and therefore the
        // allocation — is unchanged, so the rates cache stays valid.
        Ok(id)
    }

    /// Closes a flow, discarding any queued transfers and releasing its
    /// reservation.
    pub fn close_flow(&mut self, now: SimTime, flow: FlowId) {
        self.advance_to(now);
        let Some(slot) = self.slot(flow) else { return };
        if !self.slots[slot as usize].queue.is_empty() {
            self.unmark_backlogged(slot);
            self.rates_cache = None;
        }
        let f = &mut self.slots[slot as usize];
        if self.policy == SharePolicy::Reserved {
            self.reserved_total -= f.rate_bps;
        }
        self.demand_bps -= f.rate_bps;
        f.queue.clear();
        self.slot_of[flow.0 as usize] = NO_SLOT;
        self.free.push(slot);
    }

    /// Re-rates an open flow in place (a QoP renegotiation). Under
    /// [`SharePolicy::Reserved`] the new rate is admission-checked against
    /// the headroom left once the flow's own reservation is returned; on
    /// failure the flow is unchanged. Under [`SharePolicy::FairShare`] the
    /// rate is the new pacing cap (`None` = uncapped). Queued transfers
    /// stay queued and drain at the re-computed allocation from `now` on.
    pub fn set_flow_rate(
        &mut self,
        now: SimTime,
        flow: FlowId,
        rate_bps: Option<u64>,
    ) -> Result<(), LinkError> {
        self.advance_to(now);
        let slot = self.slot(flow).ok_or(LinkError::UnknownFlow(flow))?;
        let old = self.slots[slot as usize].rate_bps;
        let rate = match (self.policy, rate_bps) {
            (SharePolicy::Reserved, Some(rate)) => {
                let available = self.available_bps() + old;
                if rate > available {
                    return Err(LinkError::Saturated { requested: rate, available });
                }
                rate
            }
            (SharePolicy::FairShare, cap) => cap.unwrap_or(0),
            (SharePolicy::Reserved, None) => return Err(LinkError::PolicyMismatch),
        };
        if rate == old {
            return Ok(());
        }
        // The rate keys the water-filling order, so a backlogged slot must
        // be re-filed under its new cap and the allocation recomputed.
        let backlogged = !self.slots[slot as usize].queue.is_empty();
        if backlogged {
            self.unmark_backlogged(slot);
        }
        self.slots[slot as usize].rate_bps = rate;
        if backlogged {
            self.mark_backlogged(slot);
            self.rates_cache = None;
        }
        if self.policy == SharePolicy::Reserved {
            self.reserved_total = self.reserved_total - old + rate;
        }
        self.demand_bps = self.demand_bps - old + rate;
        Ok(())
    }

    /// Queues `bytes` for transmission on `flow`. Fails with
    /// [`LinkError::UnknownFlow`] when the flow was never opened or has
    /// already been closed.
    pub fn send(&mut self, now: SimTime, flow: FlowId, bytes: u64) -> Result<XferId, LinkError> {
        self.advance_to(now);
        let slot = self.slot(flow).ok_or(LinkError::UnknownFlow(flow))?;
        let id = XferId(self.next_xfer);
        self.next_xfer += 1;
        let f = &mut self.slots[slot as usize];
        let was_idle = f.queue.is_empty();
        f.queue.push_back((id, bytes as f64));
        if was_idle {
            // Idle -> backlogged changes the active set; queueing behind an
            // existing transfer does not.
            self.mark_backlogged(slot);
            self.rates_cache = None;
            if bytes == 0 {
                self.zero_front_pending = true;
            }
        }
        Ok(id)
    }

    /// Bytes still queued on one flow (0 for unknown/closed flows). This is
    /// what a failover path needs to resume a displaced transfer elsewhere.
    pub fn flow_backlog_bytes(&self, flow: FlowId) -> f64 {
        self.slot(flow)
            .map(|s| self.slots[s as usize].queue.iter().map(|&(_, b)| b).sum())
            .unwrap_or(0.0)
    }

    /// Instantaneous per-flow transmission rates for all backlogged flows.
    ///
    /// Under `Reserved`, each flow runs at its reserved rate. Under
    /// `FairShare`, rates are the max-min fair (water-filling) allocation
    /// of the capacity subject to each flow's pacing cap.
    pub fn current_rates(&self) -> Vec<(FlowId, f64)> {
        let project = |rates: &[(u32, f64)]| -> Vec<(FlowId, f64)> {
            rates.iter().map(|&(s, r)| (FlowId(self.slots[s as usize].id), r)).collect()
        };
        match &self.rates_cache {
            Some(rates) => project(rates),
            None => project(&self.compute_rates_slots()),
        }
    }

    /// Public-id projection of [`Self::compute_rates_slots`] (from-scratch
    /// allocation; the rate-cache regression test diffs it against
    /// [`Self::current_rates`]).
    #[cfg(test)]
    fn compute_rates(&self) -> Vec<(FlowId, f64)> {
        self.compute_rates_slots()
            .into_iter()
            .map(|(s, r)| (FlowId(self.slots[s as usize].id), r))
            .collect()
    }

    /// Computes the allocation from the maintained backlogged indexes
    /// (cache miss path): `active_by_id` already holds the Reserved
    /// allocation order and `wf` the water-filling order, so no sorting and
    /// no scan over idle flows — one pass over the backlogged set. The
    /// water-fill arithmetic is order-identical to sorting the active set
    /// afresh, so the resulting rates are bit-identical.
    fn compute_rates_slots(&self) -> Vec<(u32, f64)> {
        match self.policy {
            SharePolicy::Reserved => self
                .active_by_id
                .iter()
                .map(|&s| (s, self.slots[s as usize].rate_bps as f64))
                .collect(),
            SharePolicy::FairShare => {
                // Water-filling: tight caps first (`wf` order).
                let mut remaining = self.capacity_bps as f64;
                let mut rates = Vec::with_capacity(self.wf.len());
                let mut i = 0;
                while i < self.wf.len() {
                    let share = (remaining / (self.wf.len() - i) as f64).max(0.0);
                    let (cap, slot) = self.wf[i];
                    if cap <= share {
                        rates.push((slot, cap));
                        remaining = (remaining - cap).max(0.0);
                        i += 1;
                    } else {
                        for &(_, s2) in &self.wf[i..] {
                            rates.push((s2, share));
                        }
                        break;
                    }
                }
                rates
            }
        }
    }

    /// Current transmission rate of a flow in bytes/second (0 when idle).
    pub fn flow_rate_bps(&self, flow: FlowId) -> f64 {
        self.current_rates().into_iter().find(|&(id, _)| id == flow).map(|(_, r)| r).unwrap_or(0.0)
    }

    /// Earliest future transfer completion, or `None` when fully idle.
    pub fn next_event(&self) -> Option<SimTime> {
        let computed;
        let rates = match &self.rates_cache {
            Some(rates) => rates.as_slice(),
            None => {
                computed = self.compute_rates_slots();
                computed.as_slice()
            }
        };
        let mut best: Option<SimDuration> = None;
        for &(slot, rate) in rates {
            if rate <= 0.0 {
                continue;
            }
            let Some(&(_, bytes)) = self.slots[slot as usize].queue.front() else { continue };
            let secs = bytes / rate;
            // Round *up* to the next microsecond: the completing transfer
            // must have fully drained by the event time, or residue smaller
            // than the clock tick would stall the fluid loop.
            let d = SimDuration::from_micros((secs * 1e6).ceil() as u64);
            best = Some(match best {
                Some(b) => b.min(d),
                None => d,
            });
        }
        best.map(|d| self.now + d)
    }

    /// Advances the fluid model to `t`.
    pub fn advance_to(&mut self, t: SimTime) {
        assert!(t >= self.now, "advance_to into the past");
        if t == self.now && !self.zero_front_pending {
            // Zero elapsed time drains zero bytes and — absent a zero-byte
            // front — pops nothing, so the state cannot change. This makes
            // the `advance_to(now)` calls inside open/close/send O(1).
            return;
        }
        loop {
            // Take the allocation (computing it only on a cache miss); the
            // owned Vec sidesteps borrowing `self` while flows are mutated.
            let rates = match self.rates_cache.take() {
                Some(rates) => rates,
                None => self.compute_rates_slots(),
            };
            // Earliest completion at these rates (same rounding as
            // `next_event`: up to the next microsecond so the completing
            // transfer has fully drained by the event time).
            let mut best: Option<SimDuration> = None;
            for &(slot, rate) in &rates {
                if rate <= 0.0 {
                    continue;
                }
                let Some(&(_, bytes)) = self.slots[slot as usize].queue.front() else { continue };
                let d = SimDuration::from_micros((bytes / rate * 1e6).ceil() as u64);
                best = Some(match best {
                    Some(b) => b.min(d),
                    None => d,
                });
            }
            let Some(until_done) = best else {
                // Nothing transmitting: the active set cannot change, so the
                // allocation stays valid across the jump.
                self.rates_cache = Some(rates);
                self.now = t;
                return;
            };
            let step_end = (self.now + until_done).min(t);
            let step = step_end - self.now;
            // Drain bytes proportionally to each flow's current rate.
            let secs = step.as_secs_f64();
            for &(slot, rate) in &rates {
                if rate <= 0.0 {
                    continue;
                }
                if let Some(front) = self.slots[slot as usize].queue.front_mut() {
                    front.1 -= rate * secs;
                }
            }
            self.now = step_end;
            // Pop transfers that completed (tolerance for float residue),
            // scanning backlogged flows in id order and compacting the
            // index in place. A flow moving on to its next queued transfer
            // keeps the same allocation; only a backlogged->idle transition
            // invalidates it.
            let mut drained_to_idle = false;
            let mut kept = 0;
            let mut scanned = 0;
            while scanned < self.active_by_id.len() {
                let slot = self.active_by_id[scanned];
                scanned += 1;
                let f = &mut self.slots[slot as usize];
                let id = f.id;
                let mut popped = false;
                while let Some(&(xfer, bytes)) = f.queue.front() {
                    if bytes <= 1e-6 {
                        f.queue.pop_front();
                        popped = true;
                        self.completions.push(XferDone { flow: FlowId(id), xfer, at: step_end });
                    } else {
                        break;
                    }
                }
                if popped && self.slots[slot as usize].queue.is_empty() {
                    drained_to_idle = true;
                    self.remove_from_wf(slot);
                } else {
                    self.active_by_id[kept] = slot;
                    kept += 1;
                }
            }
            self.active_by_id.truncate(kept);
            self.zero_front_pending = false;
            if !drained_to_idle {
                self.rates_cache = Some(rates);
            }
            if self.now >= t {
                return;
            }
        }
    }

    /// Number of completions recorded but not yet drained. Drivers must
    /// check this when scheduling wakes: internal advances (inside `send`,
    /// `open_flow`, `close_flow`) can buffer completions while leaving the
    /// link idle, so `next_event()` alone under-reports pending work.
    pub fn pending_completions(&self) -> usize {
        self.completions.len()
    }

    /// Removes and returns completions recorded so far.
    pub fn drain_completions(&mut self) -> Vec<XferDone> {
        std::mem::take(&mut self.completions)
    }

    /// Appends completions recorded so far onto `out` without giving up the
    /// internal buffer — the allocation-free batching path for per-domain
    /// merge loops.
    pub fn drain_completions_into(&mut self, out: &mut Vec<XferDone>) {
        out.append(&mut self.completions);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_until_idle(link: &mut SharedLink, horizon: SimTime) -> Vec<XferDone> {
        let mut done = Vec::new();
        loop {
            match link.next_event() {
                Some(t) if t <= horizon => {
                    link.advance_to(t);
                    done.extend(link.drain_completions());
                }
                _ => {
                    link.advance_to(horizon);
                    done.extend(link.drain_completions());
                    return done;
                }
            }
        }
    }

    const KB: u64 = 1_000;

    #[test]
    fn reserved_flow_transmits_at_its_rate() {
        let mut link = SharedLink::reserved(3200 * KB);
        let f = link.open_flow(SimTime::ZERO, Some(100 * KB)).unwrap();
        link.send(SimTime::ZERO, f, 50 * KB).unwrap();
        let done = run_until_idle(&mut link, SimTime::from_secs(10));
        assert_eq!(done.len(), 1);
        // 50 KB at 100 KB/s = 0.5 s.
        let at = done[0].at.as_micros();
        assert!((499_000..=501_000).contains(&at), "{at}");
    }

    #[test]
    fn set_flow_rate_renegotiates_reservation_in_place() {
        let mut link = SharedLink::reserved(100 * KB);
        let f = link.open_flow(SimTime::ZERO, Some(80 * KB)).unwrap();
        // Growing past capacity bounces and leaves the flow unchanged...
        let err = link.set_flow_rate(SimTime::ZERO, f, Some(120 * KB)).unwrap_err();
        assert!(matches!(err, LinkError::Saturated { .. }));
        assert_eq!(link.reserved_bps(), 80 * KB);
        // ...growing within own share + headroom succeeds...
        link.set_flow_rate(SimTime::ZERO, f, Some(100 * KB)).unwrap();
        assert_eq!(link.reserved_bps(), 100 * KB);
        // ...and shrinking frees headroom for a newcomer.
        link.set_flow_rate(SimTime::ZERO, f, Some(40 * KB)).unwrap();
        assert_eq!(link.available_bps(), 60 * KB);
        link.open_flow(SimTime::ZERO, Some(60 * KB)).unwrap();
    }

    #[test]
    fn set_flow_rate_repaces_backlogged_transfer() {
        let mut link = SharedLink::reserved(100 * KB);
        let f = link.open_flow(SimTime::ZERO, Some(50 * KB)).unwrap();
        link.send(SimTime::ZERO, f, 100 * KB).unwrap();
        // 1 s at 50 KB/s delivers half; the rest at 25 KB/s lands at 3 s.
        link.advance_to(SimTime::from_secs(1));
        link.set_flow_rate(SimTime::from_secs(1), f, Some(25 * KB)).unwrap();
        assert_eq!(link.demand_bps(), 25 * KB);
        let done = run_until_idle(&mut link, SimTime::from_secs(10));
        assert_eq!(done.len(), 1);
        let at = done[0].at.as_micros();
        assert!((2_990_000..=3_010_000).contains(&at), "{at}");
    }

    #[test]
    fn reserved_flows_do_not_interfere() {
        let mut link = SharedLink::reserved(3200 * KB);
        let a = link.open_flow(SimTime::ZERO, Some(100 * KB)).unwrap();
        let b = link.open_flow(SimTime::ZERO, Some(200 * KB)).unwrap();
        link.send(SimTime::ZERO, a, 100 * KB).unwrap();
        link.send(SimTime::ZERO, b, 100 * KB).unwrap();
        let done = run_until_idle(&mut link, SimTime::from_secs(10));
        let t_a = done.iter().find(|d| d.flow == a).unwrap().at.as_secs_f64();
        let t_b = done.iter().find(|d| d.flow == b).unwrap().at.as_secs_f64();
        assert!((t_a - 1.0).abs() < 1e-3);
        assert!((t_b - 0.5).abs() < 1e-3);
    }

    #[test]
    fn demand_tracks_open_flow_rates() {
        let mut link = SharedLink::fair_share(300 * KB);
        assert_eq!(link.demand_bps(), 0);
        let a = link.open_flow(SimTime::ZERO, Some(200 * KB)).unwrap();
        let b = link.open_flow(SimTime::ZERO, Some(150 * KB)).unwrap();
        // Demand exceeds capacity regardless of queued bytes: it is the
        // offered load, not the backlog.
        assert_eq!(link.demand_bps(), 350 * KB);
        assert!(link.demand_bps() > link.capacity_bps());
        link.close_flow(SimTime::ZERO, a);
        assert_eq!(link.demand_bps(), 150 * KB);
        // Uncapped fair-share flows offer no measurable demand.
        let c = link.open_flow(SimTime::ZERO, None).unwrap();
        assert_eq!(link.demand_bps(), 150 * KB);
        link.close_flow(SimTime::ZERO, b);
        link.close_flow(SimTime::ZERO, c);
        assert_eq!(link.demand_bps(), 0);
    }

    #[test]
    fn reservation_admission_control() {
        let mut link = SharedLink::reserved(1000 * KB);
        link.open_flow(SimTime::ZERO, Some(800 * KB)).unwrap();
        let err = link.open_flow(SimTime::ZERO, Some(300 * KB)).unwrap_err();
        assert_eq!(err, LinkError::Saturated { requested: 300 * KB, available: 200 * KB });
        assert_eq!(link.available_bps(), 200 * KB);
    }

    #[test]
    fn closing_a_flow_releases_its_reservation() {
        let mut link = SharedLink::reserved(1000 * KB);
        let f = link.open_flow(SimTime::ZERO, Some(800 * KB)).unwrap();
        link.close_flow(SimTime::from_secs(1), f);
        assert_eq!(link.available_bps(), 1000 * KB);
        link.open_flow(SimTime::from_secs(1), Some(1000 * KB)).unwrap();
    }

    #[test]
    fn fair_share_splits_capacity() {
        let mut link = SharedLink::fair_share(1000 * KB);
        let a = link.open_flow(SimTime::ZERO, None).unwrap();
        let b = link.open_flow(SimTime::ZERO, None).unwrap();
        link.send(SimTime::ZERO, a, 500 * KB).unwrap();
        link.send(SimTime::ZERO, b, 500 * KB).unwrap();
        let done = run_until_idle(&mut link, SimTime::from_secs(10));
        // Both get 500 KB/s -> both finish at ~1 s.
        for d in &done {
            assert!((d.at.as_secs_f64() - 1.0).abs() < 1e-3, "{}", d.at);
        }
    }

    #[test]
    fn fair_share_speeds_up_when_a_flow_drains() {
        let mut link = SharedLink::fair_share(1000 * KB);
        let a = link.open_flow(SimTime::ZERO, None).unwrap();
        let b = link.open_flow(SimTime::ZERO, None).unwrap();
        link.send(SimTime::ZERO, a, 250 * KB).unwrap();
        link.send(SimTime::ZERO, b, 750 * KB).unwrap();
        let done = run_until_idle(&mut link, SimTime::from_secs(10));
        let t_a = done.iter().find(|d| d.flow == a).unwrap().at.as_secs_f64();
        let t_b = done.iter().find(|d| d.flow == b).unwrap().at.as_secs_f64();
        // a: 250 KB at 500 KB/s = 0.5 s. b: 250 KB by then, 500 KB left at
        // full rate -> 0.5 + 0.5 = 1.0 s.
        assert!((t_a - 0.5).abs() < 1e-3, "{t_a}");
        assert!((t_b - 1.0).abs() < 1e-3, "{t_b}");
    }

    #[test]
    fn fair_share_oversubscription_stretches_transfers() {
        // The plain-VDBMS failure mode: 10 concurrent 100 KB/s-worth
        // streams on a link sized for 5.
        let mut link = SharedLink::fair_share(500 * KB);
        let flows: Vec<FlowId> =
            (0..10).map(|_| link.open_flow(SimTime::ZERO, None).unwrap()).collect();
        for &f in &flows {
            link.send(SimTime::ZERO, f, 100 * KB).unwrap();
        }
        let done = run_until_idle(&mut link, SimTime::from_secs(10));
        // Each flow gets 50 KB/s -> 2 s instead of the nominal 1 s.
        for d in &done {
            assert!((d.at.as_secs_f64() - 2.0).abs() < 1e-2);
        }
    }

    #[test]
    fn per_flow_fifo_order() {
        let mut link = SharedLink::reserved(1000 * KB);
        let f = link.open_flow(SimTime::ZERO, Some(100 * KB)).unwrap();
        let x1 = link.send(SimTime::ZERO, f, 10 * KB).unwrap();
        let x2 = link.send(SimTime::ZERO, f, 10 * KB).unwrap();
        let done = run_until_idle(&mut link, SimTime::from_secs(10));
        assert_eq!(done[0].xfer, x1);
        assert_eq!(done[1].xfer, x2);
        assert!(done[0].at < done[1].at);
    }

    #[test]
    fn policy_mismatch_errors() {
        let mut res = SharedLink::reserved(KB);
        assert_eq!(res.open_flow(SimTime::ZERO, None).unwrap_err(), LinkError::PolicyMismatch);
    }

    #[test]
    fn fair_share_pacing_cap_limits_lone_flow() {
        // A paced streaming flow alone on the link transmits at its
        // bitrate, not the full capacity.
        let mut link = SharedLink::fair_share(1000 * KB);
        let f = link.open_flow(SimTime::ZERO, Some(100 * KB)).unwrap();
        link.send(SimTime::ZERO, f, 100 * KB).unwrap();
        let done = run_until_idle(&mut link, SimTime::from_secs(10));
        assert!((done[0].at.as_secs_f64() - 1.0).abs() < 1e-3);
    }

    #[test]
    fn water_filling_redistributes_capped_slack() {
        // Cap 100 KB/s + uncapped flow on a 1000 KB/s link: the uncapped
        // flow gets 900 KB/s, not 500.
        let mut link = SharedLink::fair_share(1000 * KB);
        let capped = link.open_flow(SimTime::ZERO, Some(100 * KB)).unwrap();
        let free = link.open_flow(SimTime::ZERO, None).unwrap();
        link.send(SimTime::ZERO, capped, 1000 * KB).unwrap();
        link.send(SimTime::ZERO, free, 900 * KB).unwrap();
        let rates = link.current_rates();
        let rate_of = |id| rates.iter().find(|&&(f, _)| f == id).map(|&(_, r)| r).unwrap();
        assert!((rate_of(capped) - 100_000.0).abs() < 1e-6);
        assert!((rate_of(free) - 900_000.0).abs() < 1e-6);
    }

    #[test]
    fn oversubscribed_caps_fall_back_to_equal_share() {
        // Ten 100 KB/s-capped flows on a 500 KB/s link: each gets 50 KB/s.
        let mut link = SharedLink::fair_share(500 * KB);
        let flows: Vec<FlowId> =
            (0..10).map(|_| link.open_flow(SimTime::ZERO, Some(100 * KB)).unwrap()).collect();
        for &f in &flows {
            link.send(SimTime::ZERO, f, KB).unwrap();
        }
        for (_, r) in link.current_rates() {
            assert!((r - 50_000.0).abs() < 1e-6, "rate {r}");
        }
    }

    #[test]
    fn rate_cache_matches_fresh_computation() {
        // Regression for the memoized allocation: after every mutation the
        // cached rates must equal a from-scratch water-filling pass.
        let mut link = SharedLink::fair_share(1000 * KB);
        let check = |link: &SharedLink| {
            assert_eq!(link.current_rates(), link.compute_rates(), "stale rate cache");
        };
        let a = link.open_flow(SimTime::ZERO, Some(100 * KB)).unwrap();
        let b = link.open_flow(SimTime::ZERO, None).unwrap();
        check(&link);
        link.send(SimTime::ZERO, a, 50 * KB).unwrap();
        link.send(SimTime::ZERO, a, 50 * KB).unwrap(); // queued behind — same set
        link.send(SimTime::ZERO, b, 200 * KB).unwrap();
        check(&link);
        link.advance_to(SimTime::from_millis(100));
        check(&link);
        // Drive b idle (900 KB/s drains 200 KB well before 1 s), then past
        // a's queue too.
        link.advance_to(SimTime::from_secs(1));
        check(&link);
        link.advance_to(SimTime::from_secs(5));
        check(&link);
        assert_eq!(link.backlog_bytes(), 0.0);
        link.close_flow(SimTime::from_secs(5), a);
        check(&link);
        assert_eq!(link.drain_completions().len(), 3);
    }

    #[test]
    fn idle_link_reports_no_events() {
        let mut link = SharedLink::fair_share(KB);
        assert_eq!(link.next_event(), None);
        link.advance_to(SimTime::from_secs(100));
        assert_eq!(link.backlog_bytes(), 0.0);
    }

    #[test]
    fn close_flow_discards_queue() {
        let mut link = SharedLink::reserved(1000 * KB);
        let f = link.open_flow(SimTime::ZERO, Some(10 * KB)).unwrap();
        link.send(SimTime::ZERO, f, 1000 * KB).unwrap();
        link.close_flow(SimTime::from_millis(1), f);
        let done = run_until_idle(&mut link, SimTime::from_secs(10));
        assert!(done.is_empty());
        assert_eq!(link.open_flows(), 0);
    }

    #[test]
    fn send_on_closed_flow_is_a_typed_error() {
        let mut link = SharedLink::fair_share(KB);
        let f = link.open_flow(SimTime::ZERO, None).unwrap();
        link.close_flow(SimTime::ZERO, f);
        assert_eq!(link.send(SimTime::ZERO, f, KB).unwrap_err(), LinkError::UnknownFlow(f));
        assert_eq!(
            link.send(SimTime::ZERO, FlowId(99), KB).unwrap_err(),
            LinkError::UnknownFlow(FlowId(99))
        );
    }

    #[test]
    fn flow_backlog_tracks_remaining_bytes() {
        let mut link = SharedLink::reserved(1000 * KB);
        let f = link.open_flow(SimTime::ZERO, Some(100 * KB)).unwrap();
        link.send(SimTime::ZERO, f, 100 * KB).unwrap();
        assert_eq!(link.flow_backlog_bytes(f), 100_000.0);
        link.advance_to(SimTime::from_millis(500));
        assert!((link.flow_backlog_bytes(f) - 50_000.0).abs() < 1.0);
        assert_eq!(link.flow_backlog_bytes(FlowId(42)), 0.0);
    }

    #[test]
    fn capacity_cut_stretches_and_recovery_restores() {
        // 100 KB on a 100 KB/s lone fair-share flow; halve the link at
        // t=0.5 s, restore at t=0.75 s. First half: 50 KB at full rate.
        // Quarter second at 50 KB/s: 12.5 KB. Remaining 37.5 KB at full
        // rate: done at 0.75 + 0.375 = 1.125 s.
        let mut link = SharedLink::fair_share(100 * KB);
        let f = link.open_flow(SimTime::ZERO, None).unwrap();
        link.send(SimTime::ZERO, f, 100 * KB).unwrap();
        link.set_capacity(SimTime::from_millis(500), 50 * KB);
        link.set_capacity(SimTime::from_millis(750), 100 * KB);
        let done = run_until_idle(&mut link, SimTime::from_secs(10));
        assert_eq!(done.len(), 1);
        assert!((done[0].at.as_secs_f64() - 1.125).abs() < 1e-3, "{}", done[0].at);
        // The allocation cache was invalidated on both edges.
        assert_eq!(link.current_rates(), link.compute_rates());
    }

    #[test]
    fn capacity_cut_below_reservations_saturates_available() {
        let mut link = SharedLink::reserved(1000 * KB);
        link.open_flow(SimTime::ZERO, Some(800 * KB)).unwrap();
        link.set_capacity(SimTime::ZERO, 500 * KB);
        assert_eq!(link.available_bps(), 0);
        assert!(link.open_flow(SimTime::ZERO, Some(KB)).is_err());
        link.set_capacity(SimTime::ZERO, 1000 * KB);
        assert_eq!(link.available_bps(), 200 * KB);
    }

    #[test]
    fn late_send_measured_from_submission() {
        let mut link = SharedLink::reserved(1000 * KB);
        let f = link.open_flow(SimTime::ZERO, Some(100 * KB)).unwrap();
        link.send(SimTime::from_secs(5), f, 100 * KB).unwrap();
        let done = run_until_idle(&mut link, SimTime::from_secs(10));
        assert!((done[0].at.as_secs_f64() - 6.0).abs() < 1e-3);
    }

    #[test]
    fn backlog_counters_track_transitions() {
        let mut link = SharedLink::fair_share(1000 * KB);
        assert_eq!(link.backlogged_flows(), 0);
        let a = link.open_flow(SimTime::ZERO, None).unwrap();
        let b = link.open_flow(SimTime::ZERO, None).unwrap();
        assert_eq!((link.open_flows(), link.backlogged_flows()), (2, 0));
        link.send(SimTime::ZERO, a, 100 * KB).unwrap();
        link.send(SimTime::ZERO, a, 100 * KB).unwrap();
        link.send(SimTime::ZERO, b, 50 * KB).unwrap();
        assert_eq!(link.backlogged_flows(), 2);
        assert_eq!(link.backlog_bytes(), 250_000.0);
        // b (500 KB/s share) drains at 0.1 s; a still has its second xfer.
        link.advance_to(SimTime::from_millis(200));
        assert_eq!(link.backlogged_flows(), 1);
        link.close_flow(SimTime::from_millis(200), a);
        assert_eq!((link.open_flows(), link.backlogged_flows()), (1, 0));
        assert_eq!(link.backlog_bytes(), 0.0);
    }

    #[test]
    fn slot_reuse_keeps_public_ids_distinct() {
        let mut link = SharedLink::fair_share(1000 * KB);
        let a = link.open_flow(SimTime::ZERO, None).unwrap();
        link.send(SimTime::ZERO, a, 10 * KB).unwrap();
        link.close_flow(SimTime::ZERO, a);
        // The new flow reuses a's arena slot but gets a fresh public id;
        // a's id stays dead.
        let b = link.open_flow(SimTime::ZERO, None).unwrap();
        assert_ne!(a, b);
        assert_eq!(link.send(SimTime::ZERO, a, KB).unwrap_err(), LinkError::UnknownFlow(a));
        link.send(SimTime::ZERO, b, 10 * KB).unwrap();
        let done = run_until_idle(&mut link, SimTime::from_secs(10));
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].flow, b);
    }

    #[test]
    fn zero_byte_send_completes_at_next_advance() {
        let mut link = SharedLink::fair_share(1000 * KB);
        let f = link.open_flow(SimTime::ZERO, None).unwrap();
        let x = link.send(SimTime::ZERO, f, 0).unwrap();
        assert_eq!(link.next_event(), Some(SimTime::ZERO));
        link.advance_to(SimTime::ZERO);
        let done = link.drain_completions();
        assert_eq!(done.len(), 1);
        assert_eq!((done[0].xfer, done[0].at), (x, SimTime::ZERO));
        assert_eq!(link.backlogged_flows(), 0);
    }
}
