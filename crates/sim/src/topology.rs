//! Minimal cluster-topology vocabulary shared by the resource, storage,
//! and query layers.

use std::fmt;

/// Identifies one database server in the distributed deployment (the
/// paper's testbed has three).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ServerId(pub u32);

impl ServerId {
    /// The ids `0..n`, for building n-server clusters.
    pub fn first_n(n: u32) -> impl Iterator<Item = ServerId> {
        (0..n).map(ServerId)
    }
}

impl fmt::Display for ServerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "server-{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_n_enumerates() {
        let ids: Vec<ServerId> = ServerId::first_n(3).collect();
        assert_eq!(ids, vec![ServerId(0), ServerId(1), ServerId(2)]);
    }

    #[test]
    fn display() {
        assert_eq!(ServerId(2).to_string(), "server-2");
    }
}
