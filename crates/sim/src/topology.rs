//! Minimal cluster-topology vocabulary shared by the resource, storage,
//! and query layers.

use std::fmt;

/// Identifies one database server in the distributed deployment (the
/// paper's testbed has three).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ServerId(pub u32);

impl ServerId {
    /// The ids `0..n`, for building n-server clusters.
    pub fn first_n(n: u32) -> impl Iterator<Item = ServerId> {
        (0..n).map(ServerId)
    }

    /// Builds one per-server domain for each of the ids `0..n`, in id
    /// order — the topology-level constructor for sharded engines (each
    /// domain owns one server's resource state; see [`crate::domain`]).
    pub fn domains<D>(n: u32, build: impl FnMut(ServerId) -> D) -> Vec<D> {
        Self::first_n(n).map(build).collect()
    }

    /// This server's position in the dense `0..n` id space — the index of
    /// its domain in a [`Self::domains`]-built vector and of its slot in
    /// per-server state tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ServerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "server-{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_n_enumerates() {
        let ids: Vec<ServerId> = ServerId::first_n(3).collect();
        assert_eq!(ids, vec![ServerId(0), ServerId(1), ServerId(2)]);
    }

    #[test]
    fn display() {
        assert_eq!(ServerId(2).to_string(), "server-2");
    }

    #[test]
    fn domains_build_in_id_order() {
        let domains = ServerId::domains(3, |s| (s, s.0 * 10));
        assert_eq!(domains, vec![(ServerId(0), 0), (ServerId(1), 10), (ServerId(2), 20)]);
    }
}
