//! Per-server resource domains.
//!
//! Every engine above this crate (the fluid session engine and the
//! frame-level stream engine in `quasaq-stream`, the throughput driver in
//! `quasaq-workload`) shards naturally by server: each server owns its
//! outbound link, its in-flight transfers, and its reaction to faults.
//! This module captures that shape once so the engines stop re-implementing
//! it:
//!
//! * [`LinkDomain`] — one server's outbound link plus its transfer
//!   registry, with the fault reactions (capacity changes on degradation,
//!   the deterministic cut on a crash) implemented here instead of
//!   separately per engine.
//! * [`DomainStepper`] — the strategy for stepping a set of independent
//!   domains to a common instant: [`SerialStepper`] runs them on the
//!   calling thread; `quasaq-workload` provides a persistent worker pool
//!   that steps them concurrently. A domain only ever touches its own
//!   state during a step, so any stepper yields bit-identical results to
//!   the serial one. The cross-domain merge that consumes the buffered
//!   completions is always serial and ordered by [`ServerId`], which
//!   preserves the exact `(time, seq)` event order of the pre-sharding
//!   engines.

use crate::link::{SharePolicy, SharedLink, XferDone};
use crate::time::SimTime;
use crate::topology::ServerId;
use crate::{FlowId, XferId};
use std::cell::UnsafeCell;

/// Strategy for stepping `n` independent per-server domains.
///
/// # Safety
///
/// Callers hand implementations a closure that mutates disjoint state
/// selected by index (see [`step_domains`]). An implementation must invoke
/// `f(i)` **exactly once** for every `i < n` before `for_each` returns,
/// and must never invoke the same index twice — not even sequentially.
/// Callers rely on exactly-once delivery for the memory safety of the
/// underlying exclusive access.
pub unsafe trait DomainStepper {
    /// Invokes `f(i)` exactly once per `i` in `0..n`, possibly
    /// concurrently from several threads, returning only after every
    /// invocation has completed.
    fn for_each(&self, n: usize, f: &(dyn Fn(usize) + Sync));
}

/// Steps domains one after another on the calling thread — the legacy
/// execution order, and the reference every parallel stepper must match
/// bit for bit.
#[derive(Debug, Clone, Copy, Default)]
pub struct SerialStepper;

// SAFETY: the loop below visits every index in 0..n exactly once.
unsafe impl DomainStepper for SerialStepper {
    fn for_each(&self, n: usize, f: &(dyn Fn(usize) + Sync)) {
        for i in 0..n {
            f(i);
        }
    }
}

/// One server's outbound link and its in-flight transfer registry.
///
/// `T` is the engine-specific tag attached to each transfer (a session id
/// for the fluid engine, a `(session, frame)` pair for the frame engine).
/// The domain buffers link completions during [`step_to`]
/// (`LinkDomain::step_to`) so a concurrent stepping phase never touches
/// engine-global state; the engine consumes them afterwards, in
/// `ServerId` order, via [`take_pending`](LinkDomain::take_pending).
pub struct LinkDomain<T> {
    server: ServerId,
    link: SharedLink,
    /// Transfer registry as a slab indexed by `XferId`: the link hands out
    /// ids monotonically from zero, so `xfers[id]` is a dense direct-index
    /// lookup instead of a hash probe on the completion hot path.
    xfers: Vec<Option<(FlowId, T)>>,
    in_flight: usize,
    pending: Vec<XferDone>,
}

impl<T> LinkDomain<T> {
    /// Wraps an existing link as a domain for `server`.
    pub fn new(server: ServerId, link: SharedLink) -> Self {
        LinkDomain { server, link, xfers: Vec::new(), in_flight: 0, pending: Vec::new() }
    }

    /// Builds the domain with a fresh link under the given policy.
    pub fn with_policy(server: ServerId, policy: SharePolicy, capacity_bps: u64) -> Self {
        let link = match policy {
            SharePolicy::FairShare => SharedLink::fair_share(capacity_bps),
            SharePolicy::Reserved => SharedLink::reserved(capacity_bps),
        };
        LinkDomain::new(server, link)
    }

    /// One domain per server, sorted by [`ServerId`] so a serial merge
    /// over the returned vector reproduces the global event order.
    pub fn cluster(
        servers: impl IntoIterator<Item = ServerId>,
        policy: SharePolicy,
        capacity_bps: u64,
    ) -> Vec<LinkDomain<T>> {
        let mut domains: Vec<LinkDomain<T>> =
            servers.into_iter().map(|s| LinkDomain::with_policy(s, policy, capacity_bps)).collect();
        domains.sort_by_key(|d| d.server);
        domains
    }

    /// The owning server.
    pub fn server(&self) -> ServerId {
        self.server
    }

    /// The underlying link.
    pub fn link(&self) -> &SharedLink {
        &self.link
    }

    /// Mutable access to the underlying link (opening flows, sending).
    pub fn link_mut(&mut self) -> &mut SharedLink {
        &mut self.link
    }

    /// Registers an in-flight transfer with its flow and engine tag.
    pub fn register(&mut self, xfer: XferId, flow: FlowId, tag: T) {
        let idx = xfer.0 as usize;
        if idx >= self.xfers.len() {
            self.xfers.resize_with(idx + 1, || None);
        }
        if self.xfers[idx].replace((flow, tag)).is_none() {
            self.in_flight += 1;
        }
    }

    /// Removes a completed transfer from the registry, returning its tag.
    pub fn resolve(&mut self, xfer: XferId) -> Option<T> {
        let entry = self.xfers.get_mut(xfer.0 as usize)?.take();
        if entry.is_some() {
            self.in_flight -= 1;
        }
        entry.map(|(_, tag)| tag)
    }

    /// Number of registered in-flight transfers.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Iterates the tags of all registered in-flight transfers, in
    /// ascending `XferId` order (a pure function of the registry, so the
    /// iteration is deterministic). The adaptation loop uses this to find
    /// which sessions occupy a congested server.
    pub fn tags(&self) -> impl Iterator<Item = &T> {
        self.xfers.iter().flatten().map(|(_, tag)| tag)
    }

    /// Earliest future event on this domain's link.
    pub fn next_event(&self) -> Option<SimTime> {
        self.link.next_event()
    }

    /// Advances the link to `t`, buffering its completions locally. This
    /// is the only operation a [`DomainStepper`] runs concurrently; it
    /// touches nothing outside this domain.
    pub fn step_to(&mut self, t: SimTime) {
        self.link.advance_to(t);
        self.link.drain_completions_into(&mut self.pending);
    }

    /// Removes and returns the completions buffered by [`step_to`]
    /// (`LinkDomain::step_to`), in the order the link produced them.
    pub fn take_pending(&mut self) -> Vec<XferDone> {
        std::mem::take(&mut self.pending)
    }

    /// Number of completions buffered by [`step_to`](LinkDomain::step_to)
    /// and not yet consumed — the merge phase's cheap skip-clean-domain
    /// check.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Appends the buffered completions onto `out`, keeping the internal
    /// buffer's capacity — the allocation-free alternative to
    /// [`take_pending`](LinkDomain::take_pending) for batched merge loops.
    pub fn drain_pending_into(&mut self, out: &mut Vec<XferDone>) {
        out.append(&mut self.pending);
    }

    /// True when completions are waiting — buffered here or still inside
    /// the link (e.g. produced by a `send` or capacity change that
    /// advanced the link internally).
    pub fn has_buffered(&self) -> bool {
        !self.pending.is_empty() || self.link.pending_completions() > 0
    }

    /// Shared fault reaction: applies a capacity change to this server's
    /// link (degradation below nominal, recovery when restored).
    pub fn set_capacity(&mut self, now: SimTime, capacity_bps: u64) {
        self.link.set_capacity(now, capacity_bps);
    }

    /// Drops registry entries whose tag fails `keep` (crash cleanup for
    /// engines that close flows through other bookkeeping).
    pub fn retain(&mut self, mut keep: impl FnMut(&T) -> bool) {
        for entry in self.xfers.iter_mut() {
            if let Some((_, tag)) = entry {
                if !keep(tag) {
                    *entry = None;
                    self.in_flight -= 1;
                }
            }
        }
    }
}

impl<T: Copy + Ord> LinkDomain<T> {
    /// Shared fault reaction: crashes this server's link. Every
    /// registered transfer whose tag passes `live` is cut and returned as
    /// `(tag, bytes still undelivered)`, ordered by tag so reacting to
    /// the cut is deterministic; its flow is closed. The registry is
    /// cleared either way.
    pub fn cut(&mut self, now: SimTime, mut live: impl FnMut(&T) -> bool) -> Vec<(T, f64)> {
        self.link.advance_to(now);
        let mut displaced: Vec<(T, FlowId)> = Vec::new();
        for (flow, tag) in self.xfers.iter().flatten() {
            if live(tag) {
                displaced.push((*tag, *flow));
            }
        }
        self.xfers.clear();
        self.in_flight = 0;
        displaced.sort_by_key(|&(tag, _)| tag);
        let mut out = Vec::with_capacity(displaced.len());
        for (tag, flow) in displaced {
            // Read the backlog before closing: the close tears the flow's
            // queue down. Closing one flow never changes another's queued
            // bytes, so the interleaving is equivalent to reading every
            // backlog first.
            out.push((tag, self.link.flow_backlog_bytes(flow)));
            self.link.close_flow(now, flow);
        }
        out
    }
}

/// `UnsafeCell` wrapper granting `Sync` for the disjoint-index access in
/// [`step_domains`]. Safe because each index is handed to exactly one
/// `f(i)` invocation (the [`DomainStepper`] contract).
#[repr(transparent)]
struct DomainCell<T>(UnsafeCell<LinkDomain<T>>);

// SAFETY: access is partitioned by index — see `step_domains`.
unsafe impl<T: Send> Sync for DomainCell<T> {}

/// Steps every domain to `t` using `stepper`.
///
/// The per-domain work ([`LinkDomain::step_to`]) only touches that
/// domain's own link and buffer, so concurrent stepping performs exactly
/// the same per-link operation sequence as a serial loop — results are
/// bit-identical regardless of the stepper. Completions stay buffered per
/// domain for the caller's ordered merge.
pub fn step_domains<T: Send>(
    stepper: &dyn DomainStepper,
    domains: &mut [LinkDomain<T>],
    t: SimTime,
) {
    let n = domains.len();
    // SAFETY: `DomainCell` is `repr(transparent)` over
    // `UnsafeCell<LinkDomain<T>>`, which is `repr(transparent)` over
    // `LinkDomain<T>`, so the cast preserves layout; the exclusive borrow
    // of `domains` is held for the whole call.
    let cells: &[DomainCell<T>] =
        unsafe { std::slice::from_raw_parts(domains.as_mut_ptr().cast::<DomainCell<T>>(), n) };
    stepper.for_each(n, &|i| {
        // SAFETY: the `DomainStepper` contract delivers each index exactly
        // once, so this is the only reference to domain `i` during the
        // call.
        let domain = unsafe { &mut *cells[i].0.get() };
        domain.step_to(t);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_stepper_visits_every_index_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let hits: Vec<AtomicUsize> = (0..5).map(|_| AtomicUsize::new(0)).collect();
        SerialStepper.for_each(5, &|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        for h in &hits {
            assert_eq!(h.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn cluster_is_sorted_by_server() {
        let domains: Vec<LinkDomain<u32>> = LinkDomain::cluster(
            [ServerId(2), ServerId(0), ServerId(1)],
            SharePolicy::FairShare,
            100_000,
        );
        let ids: Vec<ServerId> = domains.iter().map(|d| d.server()).collect();
        assert_eq!(ids, vec![ServerId(0), ServerId(1), ServerId(2)]);
    }

    #[test]
    fn step_buffers_completions_for_the_merge() {
        let mut d: LinkDomain<u32> =
            LinkDomain::with_policy(ServerId(0), SharePolicy::Reserved, 100_000);
        let flow = d.link_mut().open_flow(SimTime::ZERO, Some(100_000)).unwrap();
        let xfer = d.link_mut().send(SimTime::ZERO, flow, 50_000).unwrap();
        d.register(xfer, flow, 7);
        assert_eq!(d.in_flight(), 1);
        let t = d.next_event().expect("transfer in flight");
        d.step_to(t);
        assert!(d.has_buffered());
        let done = d.take_pending();
        assert_eq!(done.len(), 1);
        assert_eq!(d.resolve(done[0].xfer), Some(7));
        assert!(!d.has_buffered());
        assert_eq!(d.in_flight(), 0);
    }

    #[test]
    fn cut_returns_live_transfers_in_tag_order_with_backlogs() {
        let mut d: LinkDomain<u32> =
            LinkDomain::with_policy(ServerId(0), SharePolicy::Reserved, 300_000);
        // Three transfers at 100 KB/s each; tag 1 is considered dead.
        let mut flows = Vec::new();
        for tag in [2u32, 0, 1] {
            let flow = d.link_mut().open_flow(SimTime::ZERO, Some(100_000)).unwrap();
            let xfer = d.link_mut().send(SimTime::ZERO, flow, 100_000).unwrap();
            d.register(xfer, flow, tag);
            flows.push(flow);
        }
        let cut = d.cut(SimTime::from_millis(500), |&tag| tag != 1);
        let tags: Vec<u32> = cut.iter().map(|&(tag, _)| tag).collect();
        assert_eq!(tags, vec![0, 2], "ordered by tag, dead entry skipped");
        for &(_, backlog) in &cut {
            assert!((backlog - 50_000.0).abs() < 1.0, "{backlog}");
        }
        assert_eq!(d.in_flight(), 0);
        // Only the live transfers' flows are closed: a dead tag means the
        // engine already tore that flow down through its own bookkeeping,
        // so `cut` must not close it a second time.
        assert_eq!(d.link().reserved_bps(), 100_000, "dead tag's flow left alone");
    }

    #[test]
    fn set_capacity_stretches_transfers() {
        let mut d: LinkDomain<u32> =
            LinkDomain::with_policy(ServerId(0), SharePolicy::FairShare, 100_000);
        let flow = d.link_mut().open_flow(SimTime::ZERO, Some(100_000)).unwrap();
        let xfer = d.link_mut().send(SimTime::ZERO, flow, 100_000).unwrap();
        d.register(xfer, flow, 0);
        d.set_capacity(SimTime::ZERO, 50_000);
        d.set_capacity(SimTime::from_secs(1), 100_000);
        let t = d.next_event().expect("still draining");
        d.step_to(t);
        let done = d.take_pending();
        assert_eq!(done.len(), 1);
        // 50 KB in the degraded second, the rest at full rate: 1.5 s.
        assert!((done[0].at.as_secs_f64() - 1.5).abs() < 1e-3, "{}", done[0].at);
    }

    #[test]
    fn step_domains_matches_manual_loop() {
        let build = || {
            let mut domains: Vec<LinkDomain<u32>> =
                LinkDomain::cluster(ServerId::first_n(4), SharePolicy::FairShare, 100_000);
            for (i, d) in domains.iter_mut().enumerate() {
                let flow = d.link_mut().open_flow(SimTime::ZERO, Some(60_000)).unwrap();
                let xfer = d.link_mut().send(SimTime::ZERO, flow, 30_000 * (i as u64 + 1)).unwrap();
                d.register(xfer, flow, i as u32);
            }
            domains
        };
        let t = SimTime::from_secs(1);
        let mut serial = build();
        for d in serial.iter_mut() {
            d.step_to(t);
        }
        let mut stepped = build();
        step_domains(&SerialStepper, &mut stepped, t);
        for (a, b) in serial.iter_mut().zip(stepped.iter_mut()) {
            assert_eq!(a.take_pending(), b.take_pending());
            assert_eq!(a.link().backlog_bytes(), b.link().backlog_bytes());
        }
    }
}
