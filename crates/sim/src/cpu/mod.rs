//! CPU scheduling models.
//!
//! Two schedulers reproduce the two end-point regimes of the paper's
//! evaluation (Fig 5):
//!
//! * [`TimeSharing`] — a round-robin quantum scheduler modelled on the
//!   Solaris time-sharing class the original VDBMS ran under. A streaming
//!   job "waits for its turn of CPU utilization at most of the time. Upon
//!   getting control over CPU, it will try to process all the frames that
//!   are overdue within the quantum assigned by the OS (10ms in Solaris)."
//!   Under contention this produces the bursty inter-frame delays of
//!   Fig 5c.
//!
//! * [`Dsrt`] — a reservation-based soft-real-time scheduler modelled on
//!   DSRT (Chu & Nahrstedt): reserved jobs hold a (slice, period) CPU
//!   reservation, are scheduled earliest-deadline-first at real-time
//!   priority, and best-effort jobs share the leftover. A configurable
//!   per-quantum maintenance overhead reproduces the paper's measured
//!   1.6 % scheduler cost.
//!
//! Both schedulers are *passive incremental simulators*: callers submit
//! work, ask for the next internally interesting time via
//! [`CpuScheduler::next_event`], advance the model with
//! [`CpuScheduler::advance_to`], and drain task completions. This keeps the
//! kernel free of callbacks and lets one driver own many resources.

mod dsrt;
mod timesharing;

pub use dsrt::{Dsrt, DsrtConfig, ReservationError};
pub use timesharing::TimeSharing;

use crate::time::{SimDuration, SimTime};

/// Identifies a job (a schedulable entity, e.g. one streaming session) on a
/// particular CPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

/// Identifies a task (one unit of submitted work) within a CPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub u64);

/// A finished task: `task` of `job` completed at `at`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// Job the task belonged to.
    pub job: JobId,
    /// The completed task.
    pub task: TaskId,
    /// Completion instant.
    pub at: SimTime,
}

/// Why submitted work was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CpuError {
    /// The referenced job is not registered on this CPU — it was never
    /// added here, or has already been removed (e.g. by a fault-injection
    /// path racing a caller that still holds the id).
    UnknownJob(JobId),
}

impl std::fmt::Display for CpuError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CpuError::UnknownJob(id) => {
                write!(f, "job {} is not registered on this CPU", id.0)
            }
        }
    }
}

impl std::error::Error for CpuError {}

/// Common interface over CPU scheduling models.
///
/// Invariants callers rely on:
/// * `advance_to(t)` never produces completions after `t`.
/// * After `advance_to(t)`, `next_event()` is either `None` or `>= t`.
/// * Completions for a single job are reported in task-submission order
///   (each job's tasks form a FIFO).
pub trait CpuScheduler {
    /// Registers a new best-effort job.
    fn add_job(&mut self, now: SimTime) -> JobId;

    /// Removes a job, discarding its queued tasks.
    fn remove_job(&mut self, now: SimTime, job: JobId);

    /// Appends `work` of CPU time to the job's task FIFO. Fails with
    /// [`CpuError::UnknownJob`] when the job was never added or has been
    /// removed.
    fn submit(&mut self, now: SimTime, job: JobId, work: SimDuration) -> Result<TaskId, CpuError>;

    /// The next instant at which the scheduler's externally visible state
    /// can change (a completion, quantum expiry, or budget replenishment),
    /// or `None` if the CPU is idle with no queued work.
    fn next_event(&self) -> Option<SimTime>;

    /// Advances internal state to `t`, executing queued work.
    fn advance_to(&mut self, t: SimTime);

    /// Removes and returns all completions recorded so far, in completion
    /// order.
    fn drain_completions(&mut self) -> Vec<Completion>;

    /// Number of completions recorded but not yet drained (internal
    /// advances inside `submit`/`add_job` can buffer completions while the
    /// scheduler is otherwise idle).
    fn pending_completions(&self) -> usize;

    /// Number of jobs that currently have queued or running work.
    fn backlog_jobs(&self) -> usize;

    /// Total queued (not yet executed) work across all jobs.
    fn backlog_work(&self) -> SimDuration;
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;

    /// Runs a scheduler until it goes idle or `horizon` is reached,
    /// returning all completions. Mimics the driver loop used by the
    /// streaming executor.
    pub fn run_until_idle<S: CpuScheduler>(cpu: &mut S, horizon: SimTime) -> Vec<Completion> {
        let mut done = Vec::new();
        loop {
            match cpu.next_event() {
                Some(t) if t <= horizon => {
                    cpu.advance_to(t);
                    done.extend(cpu.drain_completions());
                }
                _ => {
                    cpu.advance_to(horizon);
                    done.extend(cpu.drain_completions());
                    return done;
                }
            }
        }
    }
}
