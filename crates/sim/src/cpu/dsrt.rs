//! DSRT-style soft-real-time CPU scheduler with (slice, period)
//! reservations.
//!
//! Models the scheduler of Chu & Nahrstedt used by the paper's QoS API:
//! a job reserves `slice` of CPU time per `period`; reserved jobs are
//! scheduled earliest-deadline-first at real-time priority with a per-period
//! budget, and best-effort jobs round-robin in the leftover time. A
//! configurable overhead fraction models the scheduler daemon's own CPU
//! consumption (the paper measures 0.16 ms per 10 ms = 1.6 %).

use super::{Completion, CpuError, CpuScheduler, JobId, TaskId};
use crate::time::{SimDuration, SimTime};
use std::collections::{BTreeMap, VecDeque};

/// Configuration for the [`Dsrt`] scheduler.
#[derive(Debug, Clone, Copy)]
pub struct DsrtConfig {
    /// Maximum admissible total reserved utilization (sum of slice/period),
    /// expressed before overhead. Defaults to 1.0.
    pub utilization_limit: f64,
    /// Fraction of the CPU consumed by scheduler maintenance; work executes
    /// at rate `1 - overhead_fraction`. Defaults to 0.016 (the paper's
    /// measured 1.6 %).
    pub overhead_fraction: f64,
    /// Quantum used for best-effort jobs in leftover time.
    pub best_effort_quantum: SimDuration,
}

impl Default for DsrtConfig {
    fn default() -> Self {
        DsrtConfig {
            utilization_limit: 1.0,
            overhead_fraction: 0.016,
            best_effort_quantum: SimDuration::from_millis(10),
        }
    }
}

/// Why a reservation was refused.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReservationError {
    /// Admitting the reservation would push total utilization past the
    /// admissible limit.
    Overloaded {
        /// Utilization the request would have added.
        requested: f64,
        /// Utilization still available.
        available: f64,
    },
    /// The requested period was zero — utilization would be undefined.
    InvalidPeriod,
    /// The requested slice exceeds its period: utilization above 1 can
    /// never be honoured.
    SliceExceedsPeriod {
        /// Requested guaranteed slice.
        slice: SimDuration,
        /// Requested period.
        period: SimDuration,
    },
}

impl std::fmt::Display for ReservationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReservationError::Overloaded { requested, available } => write!(
                f,
                "CPU reservation refused: requested utilization {requested:.4} exceeds available {available:.4}"
            ),
            ReservationError::InvalidPeriod => {
                write!(f, "CPU reservation refused: period must be positive")
            }
            ReservationError::SliceExceedsPeriod { slice, period } => write!(
                f,
                "CPU reservation refused: slice {slice} exceeds period {period}"
            ),
        }
    }
}

impl std::error::Error for ReservationError {}

#[derive(Debug)]
struct Reservation {
    slice: SimDuration,
    period: SimDuration,
    /// Work budget remaining in the current period.
    budget: SimDuration,
    /// Next period boundary: budget replenishes and the deadline moves.
    next_replenish: SimTime,
}

#[derive(Debug)]
struct Job {
    tasks: VecDeque<(TaskId, SimDuration)>,
    reservation: Option<Reservation>,
    /// Best-effort only: whether the job sits in the run queue.
    be_runnable: bool,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Choice {
    Reserved(JobId),
    BestEffort(JobId),
    Idle,
}

/// The DSRT scheduler.
#[derive(Debug)]
pub struct Dsrt {
    cfg: DsrtConfig,
    now: SimTime,
    // BTreeMap keeps job iteration deterministic.
    jobs: BTreeMap<JobId, Job>,
    be_queue: VecDeque<JobId>,
    /// Best-effort job currently holding (a remainder of) a quantum.
    be_current: Option<(JobId, SimDuration)>,
    completions: Vec<Completion>,
    reserved_utilization: f64,
    next_job: u64,
    next_task: u64,
}

impl Dsrt {
    /// Creates a scheduler with the given configuration.
    pub fn new(cfg: DsrtConfig) -> Self {
        assert!((0.0..1.0).contains(&cfg.overhead_fraction), "overhead fraction must be in [0, 1)");
        assert!(cfg.utilization_limit > 0.0, "utilization limit must be positive");
        assert!(!cfg.best_effort_quantum.is_zero(), "quantum must be positive");
        Dsrt {
            cfg,
            now: SimTime::ZERO,
            jobs: BTreeMap::new(),
            be_queue: VecDeque::new(),
            be_current: None,
            completions: Vec::new(),
            reserved_utilization: 0.0,
            next_job: 0,
            next_task: 0,
        }
    }

    /// Creates a scheduler with the default (paper-calibrated)
    /// configuration.
    pub fn paper_default() -> Self {
        Self::new(DsrtConfig::default())
    }

    /// The configured overhead fraction.
    pub fn overhead_fraction(&self) -> f64 {
        self.cfg.overhead_fraction
    }

    /// Currently reserved utilization (sum of slice/period over admitted
    /// reservations).
    pub fn reserved_utilization(&self) -> f64 {
        self.reserved_utilization
    }

    /// Utilization still admissible.
    pub fn available_utilization(&self) -> f64 {
        (self.effective_limit() - self.reserved_utilization).max(0.0)
    }

    fn effective_limit(&self) -> f64 {
        self.cfg.utilization_limit * (1.0 - self.cfg.overhead_fraction)
    }

    /// Admits a reserved job with `slice` of work guaranteed every
    /// `period`.
    pub fn reserve(
        &mut self,
        now: SimTime,
        slice: SimDuration,
        period: SimDuration,
    ) -> Result<JobId, ReservationError> {
        // Malformed requests come from callers translating user-supplied
        // QoS parameters: refuse them as typed errors, not process aborts.
        if period.is_zero() {
            return Err(ReservationError::InvalidPeriod);
        }
        if slice > period {
            return Err(ReservationError::SliceExceedsPeriod { slice, period });
        }
        self.advance_to(now);
        let requested = slice.as_micros() as f64 / period.as_micros() as f64;
        let available = self.available_utilization();
        if requested > available + 1e-12 {
            return Err(ReservationError::Overloaded { requested, available });
        }
        let id = JobId(self.next_job);
        self.next_job += 1;
        self.jobs.insert(
            id,
            Job {
                tasks: VecDeque::new(),
                reservation: Some(Reservation {
                    slice,
                    period,
                    budget: slice,
                    next_replenish: now + period,
                }),
                be_runnable: false,
            },
        );
        self.reserved_utilization += requested;
        Ok(id)
    }

    /// Applies all period-boundary replenishments due at or before `now`.
    fn settle_replenishments(&mut self) {
        for job in self.jobs.values_mut() {
            if let Some(res) = job.reservation.as_mut() {
                while res.next_replenish <= self.now {
                    res.budget = res.slice;
                    res.next_replenish += res.period;
                }
            }
        }
    }

    /// The earliest future replenishment instant, optionally restricted to
    /// jobs with pending tasks.
    fn next_replenish(&self, only_with_tasks: bool) -> Option<SimTime> {
        self.jobs
            .values()
            .filter(|j| !only_with_tasks || !j.tasks.is_empty())
            .filter_map(|j| j.reservation.as_ref().map(|r| r.next_replenish))
            .min()
    }

    /// EDF choice among runnable reserved jobs (pending tasks and budget).
    fn pick_reserved(&self) -> Option<JobId> {
        self.jobs
            .iter()
            .filter(|(_, j)| !j.tasks.is_empty())
            .filter_map(|(&id, j)| {
                j.reservation
                    .as_ref()
                    .filter(|r| !r.budget.is_zero())
                    .map(|r| (r.next_replenish, id))
            })
            .min()
            .map(|(_, id)| id)
    }

    /// The best-effort job that would run next (the preempted current one,
    /// or the head of the run queue with work).
    fn pick_best_effort(&self) -> Option<JobId> {
        if let Some((id, _)) = self.be_current {
            if self.jobs.get(&id).is_some_and(|j| !j.tasks.is_empty()) {
                return Some(id);
            }
        }
        self.be_queue
            .iter()
            .copied()
            .find(|id| self.jobs.get(id).is_some_and(|j| !j.tasks.is_empty()))
    }

    fn choose(&self) -> Choice {
        if let Some(id) = self.pick_reserved() {
            Choice::Reserved(id)
        } else if let Some(id) = self.pick_best_effort() {
            Choice::BestEffort(id)
        } else {
            Choice::Idle
        }
    }

    /// The absolute time of the next internal state change under the
    /// current choice, assuming no new submissions.
    fn step_until(&self, choice: Choice) -> Option<SimTime> {
        match choice {
            Choice::Reserved(id) => {
                let job = &self.jobs[&id];
                let res = job.reservation.as_ref().expect("reserved job");
                let task_left = job.tasks.front().map(|&(_, w)| w).expect("has task");
                let executable = task_left.min(res.budget);
                let wall = self.wall_for(executable);
                let mut until = self.now + wall;
                // Any replenishment can change the EDF order or wake a job.
                if let Some(r) = self.next_replenish(false) {
                    until = until.min(r);
                }
                Some(until)
            }
            Choice::BestEffort(id) => {
                let job = &self.jobs[&id];
                let task_left = job.tasks.front().map(|&(_, w)| w).expect("has task");
                let quantum_left = match self.be_current {
                    Some((cur, q)) if cur == id => q,
                    _ => self.cfg.best_effort_quantum,
                };
                let wall = self
                    .wall_for(
                        task_left.min(self.work_in(quantum_left)).max(SimDuration::from_micros(1)),
                    )
                    .min(quantum_left);
                let mut until = self.now + wall.max(SimDuration::from_micros(1));
                // A replenished reserved job preempts best-effort work.
                if let Some(r) = self.next_replenish(true) {
                    until = until.min(r);
                }
                Some(until)
            }
            Choice::Idle => self.next_replenish(true),
        }
    }

    /// Executes the current choice up to `until` (which must be
    /// `<= step_until`), mutating budgets/tasks and recording completions.
    fn execute_step(&mut self, choice: Choice, until: SimTime) {
        let wall = until - self.now;
        let rate = 1.0 - self.cfg.overhead_fraction;
        let wall_for = |work: SimDuration| {
            SimDuration::from_micros((work.as_micros() as f64 / rate).ceil() as u64)
        };
        let work_in =
            |w: SimDuration| SimDuration::from_micros((w.as_micros() as f64 * rate).floor() as u64);
        match choice {
            Choice::Reserved(id) => {
                let job = self.jobs.get_mut(&id).expect("reserved job");
                let res = job.reservation.as_mut().expect("reservation");
                let &(task_id, task_left) = job.tasks.front().expect("task");
                let executable = task_left.min(res.budget);
                let wall_needed = wall_for(executable);
                let done =
                    if wall >= wall_needed { executable } else { work_in(wall).min(executable) };
                res.budget -= done;
                if done >= task_left {
                    job.tasks.pop_front();
                    self.completions.push(Completion { job: id, task: task_id, at: until });
                } else {
                    job.tasks[0].1 = task_left - done;
                }
            }
            Choice::BestEffort(id) => {
                let quantum_left = match self.be_current {
                    Some((cur, q)) if cur == id => q,
                    _ => self.cfg.best_effort_quantum,
                };
                let used = wall.min(quantum_left);
                let job = self.jobs.get_mut(&id).expect("be job");
                let &(task_id, task_left) = job.tasks.front().expect("task");
                let wall_needed = wall_for(task_left);
                let done =
                    if used >= wall_needed { task_left } else { work_in(used).min(task_left) };
                let finished_task = done >= task_left;
                if finished_task {
                    job.tasks.pop_front();
                    self.completions.push(Completion { job: id, task: task_id, at: until });
                } else {
                    job.tasks[0].1 = task_left - done;
                }
                let quantum_after = quantum_left - used;
                if finished_task && self.jobs[&id].tasks.is_empty() {
                    // Blocked: drop the quantum remainder and dequeue.
                    self.be_current = None;
                    self.jobs.get_mut(&id).unwrap().be_runnable = false;
                    self.be_queue.retain(|&j| j != id);
                } else if quantum_after.is_zero() {
                    // Quantum expired: rotate to the tail.
                    self.be_current = None;
                    self.be_queue.retain(|&j| j != id);
                    self.be_queue.push_back(id);
                } else {
                    self.be_current = Some((id, quantum_after));
                }
            }
            Choice::Idle => {}
        }
    }

    /// Wall-clock time needed to execute `work` at the effective rate
    /// (scheduler overhead slows execution by `overhead_fraction`).
    fn wall_for(&self, work: SimDuration) -> SimDuration {
        let rate = 1.0 - self.cfg.overhead_fraction;
        SimDuration::from_micros((work.as_micros() as f64 / rate).ceil() as u64)
    }
    fn work_in(&self, wall: SimDuration) -> SimDuration {
        let rate = 1.0 - self.cfg.overhead_fraction;
        SimDuration::from_micros((wall.as_micros() as f64 * rate).floor() as u64)
    }
}

impl CpuScheduler for Dsrt {
    fn add_job(&mut self, now: SimTime) -> JobId {
        self.advance_to(now);
        let id = JobId(self.next_job);
        self.next_job += 1;
        self.jobs.insert(id, Job { tasks: VecDeque::new(), reservation: None, be_runnable: false });
        id
    }

    fn remove_job(&mut self, now: SimTime, job: JobId) {
        self.advance_to(now);
        if let Some(j) = self.jobs.remove(&job) {
            if let Some(res) = j.reservation {
                let u = res.slice.as_micros() as f64 / res.period.as_micros() as f64;
                self.reserved_utilization = (self.reserved_utilization - u).max(0.0);
            }
        }
        self.be_queue.retain(|&id| id != job);
        if self.be_current.map(|(id, _)| id) == Some(job) {
            self.be_current = None;
        }
    }

    fn submit(&mut self, now: SimTime, job: JobId, work: SimDuration) -> Result<TaskId, CpuError> {
        self.advance_to(now);
        let Some(entry) = self.jobs.get_mut(&job) else {
            return Err(CpuError::UnknownJob(job));
        };
        let id = TaskId(self.next_task);
        self.next_task += 1;
        entry.tasks.push_back((id, work));
        if entry.reservation.is_none() && !entry.be_runnable {
            entry.be_runnable = true;
            self.be_queue.push_back(job);
        }
        Ok(id)
    }

    fn next_event(&self) -> Option<SimTime> {
        self.step_until(self.choose())
    }

    fn advance_to(&mut self, t: SimTime) {
        assert!(t >= self.now, "advance_to into the past");
        loop {
            self.settle_replenishments();
            let choice = self.choose();
            let Some(until) = self.step_until(choice) else {
                self.now = t;
                return;
            };
            if choice == Choice::Idle {
                // Nothing runnable until the next replenishment.
                self.now = until.min(t);
                if until > t {
                    return;
                }
                continue;
            }
            if until > t {
                // The next state change lies beyond the horizon: run the
                // chosen job partially up to t and stop.
                if self.now < t {
                    self.execute_step(choice, t);
                    self.now = t;
                }
                return;
            }
            // Full step, possibly zero-length (a zero-work task completes
            // at the current instant — execute_step pops it, guaranteeing
            // progress).
            self.execute_step(choice, until);
            self.now = until;
        }
    }

    fn drain_completions(&mut self) -> Vec<Completion> {
        std::mem::take(&mut self.completions)
    }

    fn pending_completions(&self) -> usize {
        self.completions.len()
    }

    fn backlog_jobs(&self) -> usize {
        self.jobs.values().filter(|j| !j.tasks.is_empty()).count()
    }

    fn backlog_work(&self) -> SimDuration {
        self.jobs.values().flat_map(|j| j.tasks.iter().map(|&(_, w)| w)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::run_until_idle;
    use super::*;

    fn ms(x: u64) -> SimDuration {
        SimDuration::from_millis(x)
    }
    fn at_ms(x: u64) -> SimTime {
        SimTime::from_millis(x)
    }

    fn no_overhead() -> Dsrt {
        Dsrt::new(DsrtConfig { overhead_fraction: 0.0, ..DsrtConfig::default() })
    }

    #[test]
    fn reserved_job_runs_immediately() {
        let mut cpu = no_overhead();
        let j = cpu.reserve(SimTime::ZERO, ms(5), ms(40)).unwrap();
        cpu.submit(SimTime::ZERO, j, ms(2)).unwrap();
        let done = run_until_idle(&mut cpu, at_ms(100));
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].at, at_ms(2));
    }

    #[test]
    fn reserved_preempts_best_effort() {
        let mut cpu = no_overhead();
        let be = cpu.add_job(SimTime::ZERO);
        cpu.submit(SimTime::ZERO, be, ms(50)).unwrap();
        // Let the best-effort hog start, then a reserved task arrives.
        cpu.advance_to(at_ms(3));
        let r = cpu.reserve(at_ms(3), ms(5), ms(40)).unwrap();
        cpu.submit(at_ms(3), r, ms(2)).unwrap();
        let done = run_until_idle(&mut cpu, at_ms(200));
        let reserved_done = done.iter().find(|c| c.job == r).unwrap();
        // The reserved task runs 3..5 ms despite the hog.
        assert_eq!(reserved_done.at, at_ms(5));
        // The hog still finishes, 2 ms later than it would have alone.
        let hog_done = done.iter().find(|c| c.job == be).unwrap();
        assert_eq!(hog_done.at, at_ms(52));
    }

    #[test]
    fn budget_exhaustion_defers_to_next_period() {
        let mut cpu = no_overhead();
        let j = cpu.reserve(SimTime::ZERO, ms(5), ms(20)).unwrap();
        // 12 ms of work against a 5 ms/20 ms reservation and no best-effort
        // competition: DSRT still caps the job at its budget each period.
        cpu.submit(SimTime::ZERO, j, ms(12)).unwrap();
        let done = run_until_idle(&mut cpu, at_ms(200));
        // 5 ms in period 1 (0-20), 5 ms in period 2 (20-40), 2 ms in
        // period 3 -> completes at 42 ms.
        assert_eq!(done[0].at, at_ms(42));
    }

    #[test]
    fn best_effort_consumes_leftover() {
        let mut cpu = no_overhead();
        let r = cpu.reserve(SimTime::ZERO, ms(10), ms(20)).unwrap();
        cpu.submit(SimTime::ZERO, r, ms(10)).unwrap();
        let be = cpu.add_job(SimTime::ZERO);
        cpu.submit(SimTime::ZERO, be, ms(5)).unwrap();
        let done = run_until_idle(&mut cpu, at_ms(100));
        // Reserved runs 0-10, best-effort 10-15.
        assert_eq!(done.iter().find(|c| c.job == r).unwrap().at, at_ms(10));
        assert_eq!(done.iter().find(|c| c.job == be).unwrap().at, at_ms(15));
    }

    #[test]
    fn edf_orders_reserved_jobs() {
        let mut cpu = no_overhead();
        // Job A: deadline at 10 ms; job B: deadline at 30 ms.
        let a = cpu.reserve(SimTime::ZERO, ms(3), ms(10)).unwrap();
        let b = cpu.reserve(SimTime::ZERO, ms(3), ms(30)).unwrap();
        cpu.submit(SimTime::ZERO, b, ms(3)).unwrap();
        cpu.submit(SimTime::ZERO, a, ms(3)).unwrap();
        let done = run_until_idle(&mut cpu, at_ms(100));
        // A has the earlier deadline and runs first even though B was
        // submitted first.
        assert_eq!(done[0].job, a);
        assert_eq!(done[0].at, at_ms(3));
        assert_eq!(done[1].job, b);
        assert_eq!(done[1].at, at_ms(6));
    }

    #[test]
    fn admission_control_rejects_overload() {
        let mut cpu = no_overhead();
        // 60% + 50% > 100%.
        cpu.reserve(SimTime::ZERO, ms(12), ms(20)).unwrap();
        let err = cpu.reserve(SimTime::ZERO, ms(10), ms(20)).unwrap_err();
        match err {
            ReservationError::Overloaded { requested, available } => {
                assert!((requested - 0.5).abs() < 1e-9);
                assert!((available - 0.4).abs() < 1e-9);
            }
            other => panic!("expected Overloaded, got {other:?}"),
        }
    }

    #[test]
    fn removing_reservation_frees_utilization() {
        let mut cpu = no_overhead();
        let j = cpu.reserve(SimTime::ZERO, ms(10), ms(20)).unwrap();
        assert!((cpu.reserved_utilization() - 0.5).abs() < 1e-9);
        cpu.remove_job(at_ms(1), j);
        assert!(cpu.reserved_utilization().abs() < 1e-9);
        // Freed capacity is admissible again.
        cpu.reserve(at_ms(1), ms(18), ms(20)).unwrap();
    }

    #[test]
    fn overhead_limits_admission_and_slows_work() {
        let mut cpu = Dsrt::new(DsrtConfig { overhead_fraction: 0.016, ..DsrtConfig::default() });
        assert!((cpu.available_utilization() - 0.984).abs() < 1e-9);
        let j = cpu.reserve(SimTime::ZERO, ms(10), ms(20)).unwrap();
        cpu.submit(SimTime::ZERO, j, ms(10)).unwrap();
        let done = run_until_idle(&mut cpu, at_ms(100));
        // 10 ms of work at rate 0.984 takes ~10.163 ms of wall time.
        let at = done[0].at.as_micros();
        assert!((10_150..10_180).contains(&at), "completed at {at}us");
    }

    #[test]
    fn periodic_frames_complete_on_time_under_contention() {
        // The Fig 5d scenario in miniature: a reserved streaming job stays
        // timely despite many best-effort competitors.
        let mut cpu = no_overhead();
        let frame_interval = SimDuration::from_micros(41_708); // 23.97 fps
        let stream = cpu.reserve(SimTime::ZERO, ms(4), frame_interval).unwrap();
        let hogs: Vec<JobId> = (0..8).map(|_| cpu.add_job(SimTime::ZERO)).collect();
        let mut t = SimTime::ZERO;
        let mut completions = Vec::new();
        for _ in 0..50 {
            cpu.submit(t, stream, ms(2)).unwrap();
            for &h in &hogs {
                cpu.submit(t, h, ms(20)).unwrap();
            }
            let next = t + frame_interval;
            completions
                .extend(run_until_idle(&mut cpu, next).into_iter().filter(|c| c.job == stream));
            t = next;
        }
        // Drain any stragglers.
        completions.extend(
            run_until_idle(&mut cpu, t + SimDuration::from_secs(5))
                .into_iter()
                .filter(|c| c.job == stream),
        );
        assert_eq!(completions.len(), 50);
        // Each frame completes ~2 ms after its submission instant.
        for (i, c) in completions.iter().enumerate() {
            let ideal = SimTime::ZERO + frame_interval * i as u64 + ms(2);
            let lag = c.at.duration_since(ideal);
            assert!(lag <= ms(1), "frame {i} lagged {lag}");
        }
    }

    #[test]
    fn best_effort_round_robin_without_reservations() {
        let mut cpu = no_overhead();
        let a = cpu.add_job(SimTime::ZERO);
        let b = cpu.add_job(SimTime::ZERO);
        cpu.submit(SimTime::ZERO, a, ms(20)).unwrap();
        cpu.submit(SimTime::ZERO, b, ms(20)).unwrap();
        let done = run_until_idle(&mut cpu, at_ms(100));
        assert_eq!(done.len(), 2);
        // Fair interleave: both finish in 30-40 ms.
        assert_eq!(done[0].job, a);
        assert_eq!(done[0].at, at_ms(30));
        assert_eq!(done[1].at, at_ms(40));
    }

    #[test]
    fn idle_advance_is_cheap_and_correct() {
        let mut cpu = no_overhead();
        cpu.advance_to(SimTime::from_secs(1000));
        assert_eq!(cpu.next_event(), None);
        assert_eq!(cpu.backlog_jobs(), 0);
    }

    #[test]
    fn zero_work_task_completes_at_submission() {
        let mut cpu = no_overhead();
        let j = cpu.reserve(SimTime::ZERO, ms(1), ms(10)).unwrap();
        cpu.submit(at_ms(3), j, SimDuration::ZERO).unwrap();
        let done = run_until_idle(&mut cpu, at_ms(20));
        assert_eq!(done[0].at, at_ms(3));
    }

    #[test]
    fn malformed_reservations_are_typed_errors() {
        let mut cpu = no_overhead();
        assert_eq!(
            cpu.reserve(SimTime::ZERO, ms(30), ms(20)).unwrap_err(),
            ReservationError::SliceExceedsPeriod { slice: ms(30), period: ms(20) }
        );
        assert_eq!(
            cpu.reserve(SimTime::ZERO, ms(1), SimDuration::ZERO).unwrap_err(),
            ReservationError::InvalidPeriod
        );
        // The refusals left no partial state behind.
        assert_eq!(cpu.reserved_utilization(), 0.0);
        cpu.reserve(SimTime::ZERO, ms(5), ms(20)).unwrap();
    }
}
