//! Round-robin time-sharing CPU scheduler (Solaris-like, 10 ms quantum).

use super::{Completion, CpuError, CpuScheduler, JobId, TaskId};
use crate::time::{SimDuration, SimTime};
use std::collections::{HashMap, VecDeque};

#[derive(Debug)]
struct Job {
    /// FIFO of `(task, remaining work)`.
    tasks: VecDeque<(TaskId, SimDuration)>,
    /// Whether the job is in the run queue or currently running. Jobs with
    /// no tasks are "blocked" and leave the run queue.
    runnable: bool,
}

/// A round-robin quantum scheduler.
///
/// Jobs with pending tasks rotate through a run queue; each dispatch grants
/// a fixed quantum (default 10 ms, matching Solaris as cited in the paper).
/// A job that exhausts its task queue blocks and yields the remainder of
/// its quantum; a job that exhausts its quantum with work remaining is
/// requeued at the tail. An optional context-switch overhead is charged on
/// every dispatch.
#[derive(Debug)]
pub struct TimeSharing {
    quantum: SimDuration,
    switch_overhead: SimDuration,
    now: SimTime,
    jobs: HashMap<JobId, Job>,
    run_queue: VecDeque<JobId>,
    /// Currently dispatched job and its remaining quantum.
    current: Option<(JobId, SimDuration)>,
    /// Overhead remaining to be paid before the current dispatch runs.
    pending_overhead: SimDuration,
    completions: Vec<Completion>,
    next_job: u64,
    next_task: u64,
}

impl TimeSharing {
    /// Creates a scheduler with the given quantum and zero context-switch
    /// overhead.
    pub fn new(quantum: SimDuration) -> Self {
        Self::with_overhead(quantum, SimDuration::ZERO)
    }

    /// Creates a scheduler with the Solaris default 10 ms quantum.
    pub fn solaris_default() -> Self {
        Self::new(SimDuration::from_millis(10))
    }

    /// Creates a scheduler charging `switch_overhead` of CPU time on every
    /// dispatch.
    pub fn with_overhead(quantum: SimDuration, switch_overhead: SimDuration) -> Self {
        assert!(!quantum.is_zero(), "quantum must be positive");
        TimeSharing {
            quantum,
            switch_overhead,
            now: SimTime::ZERO,
            jobs: HashMap::new(),
            run_queue: VecDeque::new(),
            current: None,
            pending_overhead: SimDuration::ZERO,
            completions: Vec::new(),
            next_job: 0,
            next_task: 0,
        }
    }

    /// The scheduling quantum.
    pub fn quantum(&self) -> SimDuration {
        self.quantum
    }

    /// Current internal clock.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Dispatches the next runnable job if the CPU is idle.
    fn dispatch(&mut self) {
        if self.current.is_some() {
            return;
        }
        while let Some(job_id) = self.run_queue.pop_front() {
            // A job may have been removed while queued.
            let Some(job) = self.jobs.get(&job_id) else { continue };
            if job.tasks.is_empty() {
                continue;
            }
            self.current = Some((job_id, self.quantum));
            self.pending_overhead = self.switch_overhead;
            return;
        }
    }

    /// Wakes a job that received new work while blocked. A no-op for
    /// removed jobs (callers validate existence first).
    fn make_runnable(&mut self, job_id: JobId) {
        let Some(job) = self.jobs.get_mut(&job_id) else { return };
        if !job.runnable {
            job.runnable = true;
            self.run_queue.push_back(job_id);
        }
    }
}

impl CpuScheduler for TimeSharing {
    fn add_job(&mut self, now: SimTime) -> JobId {
        self.advance_to(now);
        let id = JobId(self.next_job);
        self.next_job += 1;
        self.jobs.insert(id, Job { tasks: VecDeque::new(), runnable: false });
        id
    }

    fn remove_job(&mut self, now: SimTime, job: JobId) {
        self.advance_to(now);
        if let Some((cur, _)) = self.current {
            if cur == job {
                self.current = None;
                self.pending_overhead = SimDuration::ZERO;
            }
        }
        self.jobs.remove(&job);
        // Stale run-queue entries are skipped in dispatch().
    }

    fn submit(&mut self, now: SimTime, job: JobId, work: SimDuration) -> Result<TaskId, CpuError> {
        self.advance_to(now);
        let Some(entry) = self.jobs.get_mut(&job) else {
            return Err(CpuError::UnknownJob(job));
        };
        let id = TaskId(self.next_task);
        self.next_task += 1;
        entry.tasks.push_back((id, work));
        let currently_running = self.current.map(|(j, _)| j) == Some(job);
        if !currently_running {
            self.make_runnable(job);
        }
        Ok(id)
    }

    fn next_event(&self) -> Option<SimTime> {
        if let Some((job_id, quantum_left)) = self.current {
            // `remove_job` clears `current`, so the lookup cannot miss; the
            // defensive fallback treats a missing job as having no work.
            let task_left = self
                .jobs
                .get(&job_id)
                .and_then(|job| job.tasks.front().map(|&(_, w)| w))
                .unwrap_or(SimDuration::ZERO);
            let step = self.pending_overhead + task_left.min(quantum_left);
            Some(self.now + step)
        } else {
            // Peek the job that dispatch() would pick and report its first
            // state change, so a driver advancing to this instant observes
            // the dispatch *and* its outcome in one step.
            for id in &self.run_queue {
                let Some(job) = self.jobs.get(id) else { continue };
                let Some(&(_, w)) = job.tasks.front() else { continue };
                let step = self.switch_overhead + w.min(self.quantum);
                return Some(self.now + step);
            }
            None
        }
    }

    fn advance_to(&mut self, t: SimTime) {
        assert!(t >= self.now, "advance_to into the past");
        loop {
            self.dispatch();
            let Some((job_id, quantum_left)) = self.current else {
                // Idle: jump straight to t.
                self.now = t;
                return;
            };
            let available = t - self.now;

            // Pay any context-switch overhead first.
            if !self.pending_overhead.is_zero() {
                if available.is_zero() {
                    return;
                }
                let pay = self.pending_overhead.min(available);
                self.now += pay;
                self.pending_overhead -= pay;
                continue;
            }

            let Some(job) = self.jobs.get_mut(&job_id) else {
                // `remove_job` clears `current`, so this cannot miss; the
                // defensive fallback yields the CPU.
                self.current = None;
                self.pending_overhead = SimDuration::ZERO;
                continue;
            };
            let Some(&(task_id, task_left)) = job.tasks.front() else {
                // Job blocked (no tasks): yield the CPU.
                job.runnable = false;
                self.current = None;
                continue;
            };

            // Zero-length tasks complete at the current instant, even when
            // the horizon has been reached.
            if task_left.is_zero() {
                job.tasks.pop_front();
                self.completions.push(Completion { job: job_id, task: task_id, at: self.now });
                if job.tasks.is_empty() {
                    job.runnable = false;
                    self.current = None;
                }
                continue;
            }

            if available.is_zero() {
                return;
            }

            let step = task_left.min(quantum_left).min(available);
            self.now += step;
            let task_left = task_left - step;
            let quantum_left = quantum_left - step;

            if task_left.is_zero() {
                job.tasks.pop_front();
                self.completions.push(Completion { job: job_id, task: task_id, at: self.now });
                if job.tasks.is_empty() {
                    // Nothing more to do: block and yield.
                    job.runnable = false;
                    self.current = None;
                } else if quantum_left.is_zero() {
                    // Quantum used up exactly at task boundary: requeue.
                    self.run_queue.push_back(job_id);
                    self.current = None;
                } else {
                    self.current = Some((job_id, quantum_left));
                }
            } else {
                job.tasks[0].1 = task_left;
                if quantum_left.is_zero() {
                    // Preempted: go to the back of the line.
                    self.run_queue.push_back(job_id);
                    self.current = None;
                } else {
                    // Ran out of `available` (reached t).
                    self.current = Some((job_id, quantum_left));
                    debug_assert_eq!(self.now, t);
                    return;
                }
            }
        }
    }

    fn drain_completions(&mut self) -> Vec<Completion> {
        std::mem::take(&mut self.completions)
    }

    fn pending_completions(&self) -> usize {
        self.completions.len()
    }

    fn backlog_jobs(&self) -> usize {
        self.jobs.values().filter(|j| !j.tasks.is_empty()).count()
    }

    fn backlog_work(&self) -> SimDuration {
        self.jobs.values().flat_map(|j| j.tasks.iter().map(|&(_, w)| w)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::run_until_idle;
    use super::*;

    fn ms(x: u64) -> SimDuration {
        SimDuration::from_millis(x)
    }
    fn at_ms(x: u64) -> SimTime {
        SimTime::from_millis(x)
    }

    #[test]
    fn single_job_runs_to_completion() {
        let mut cpu = TimeSharing::new(ms(10));
        let j = cpu.add_job(SimTime::ZERO);
        let t = cpu.submit(SimTime::ZERO, j, ms(25)).unwrap();
        let done = run_until_idle(&mut cpu, at_ms(100));
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].job, j);
        assert_eq!(done[0].task, t);
        // 25 ms of work on an otherwise idle CPU finishes at 25 ms; the
        // quantum does not delay a lone job because it is requeued alone.
        assert_eq!(done[0].at, at_ms(25));
    }

    #[test]
    fn two_jobs_round_robin_fairly() {
        let mut cpu = TimeSharing::new(ms(10));
        let a = cpu.add_job(SimTime::ZERO);
        let b = cpu.add_job(SimTime::ZERO);
        cpu.submit(SimTime::ZERO, a, ms(20)).unwrap();
        cpu.submit(SimTime::ZERO, b, ms(20)).unwrap();
        let done = run_until_idle(&mut cpu, at_ms(100));
        // Interleaving: a 0-10, b 10-20, a 20-30 (done), b 30-40 (done).
        assert_eq!(done.len(), 2);
        assert_eq!(done[0].job, a);
        assert_eq!(done[0].at, at_ms(30));
        assert_eq!(done[1].job, b);
        assert_eq!(done[1].at, at_ms(40));
    }

    #[test]
    fn job_processes_backlog_within_quantum() {
        // The paper's observation: a starved streaming job processes all
        // overdue frames in one quantum once it gets the CPU.
        let mut cpu = TimeSharing::new(ms(10));
        let hog = cpu.add_job(SimTime::ZERO);
        let stream = cpu.add_job(SimTime::ZERO);
        cpu.submit(SimTime::ZERO, hog, ms(10)).unwrap();
        // Four 2 ms "frames" queued while the hog runs.
        for _ in 0..4 {
            cpu.submit(SimTime::ZERO, stream, ms(2)).unwrap();
        }
        let done = run_until_idle(&mut cpu, at_ms(100));
        let frame_times: Vec<SimTime> =
            done.iter().filter(|c| c.job == stream).map(|c| c.at).collect();
        // Stream gets the CPU at 10 ms and burns through all four frames
        // back to back: 12, 14, 16, 18 ms.
        assert_eq!(frame_times, vec![at_ms(12), at_ms(14), at_ms(16), at_ms(18)]);
    }

    #[test]
    fn quantum_expiry_requeues_at_tail() {
        let mut cpu = TimeSharing::new(ms(10));
        let a = cpu.add_job(SimTime::ZERO);
        let b = cpu.add_job(SimTime::ZERO);
        let c = cpu.add_job(SimTime::ZERO);
        cpu.submit(SimTime::ZERO, a, ms(15)).unwrap();
        cpu.submit(SimTime::ZERO, b, ms(5)).unwrap();
        cpu.submit(SimTime::ZERO, c, ms(5)).unwrap();
        let done = run_until_idle(&mut cpu, at_ms(100));
        // a runs 0-10 (preempted), b 10-15, c 15-20, a 20-25.
        let order: Vec<(JobId, SimTime)> = done.iter().map(|d| (d.job, d.at)).collect();
        assert_eq!(order, vec![(b, at_ms(15)), (c, at_ms(20)), (a, at_ms(25))]);
    }

    #[test]
    fn blocked_job_yields_rest_of_quantum() {
        let mut cpu = TimeSharing::new(ms(10));
        let a = cpu.add_job(SimTime::ZERO);
        let b = cpu.add_job(SimTime::ZERO);
        cpu.submit(SimTime::ZERO, a, ms(2)).unwrap();
        cpu.submit(SimTime::ZERO, b, ms(2)).unwrap();
        let done = run_until_idle(&mut cpu, at_ms(100));
        // a finishes at 2 and blocks; b starts immediately, not at 10.
        assert_eq!(done[0].at, at_ms(2));
        assert_eq!(done[1].at, at_ms(4));
    }

    #[test]
    fn late_submission_wakes_job() {
        let mut cpu = TimeSharing::new(ms(10));
        let j = cpu.add_job(SimTime::ZERO);
        cpu.submit(SimTime::ZERO, j, ms(1)).unwrap();
        let done = run_until_idle(&mut cpu, at_ms(10));
        assert_eq!(done[0].at, at_ms(1));
        // Job is now blocked; submit again at t = 30 ms.
        cpu.submit(at_ms(30), j, ms(1)).unwrap();
        let done = run_until_idle(&mut cpu, at_ms(50));
        assert_eq!(done[0].at, at_ms(31));
    }

    #[test]
    fn submit_to_unknown_job_is_a_typed_error() {
        let mut cpu = TimeSharing::new(ms(10));
        let j = cpu.add_job(SimTime::ZERO);
        cpu.remove_job(SimTime::ZERO, j);
        assert_eq!(cpu.submit(SimTime::ZERO, j, ms(1)), Err(CpuError::UnknownJob(j)));
        assert_eq!(
            cpu.submit(SimTime::ZERO, JobId(99), ms(1)),
            Err(CpuError::UnknownJob(JobId(99)))
        );
        // Refused work allocates no task id: the next accepted submission
        // continues the sequence.
        let k = cpu.add_job(SimTime::ZERO);
        assert_eq!(cpu.submit(SimTime::ZERO, k, ms(1)), Ok(TaskId(0)));
    }

    #[test]
    fn removed_job_never_completes() {
        let mut cpu = TimeSharing::new(ms(10));
        let a = cpu.add_job(SimTime::ZERO);
        let b = cpu.add_job(SimTime::ZERO);
        cpu.submit(SimTime::ZERO, a, ms(30)).unwrap();
        cpu.submit(SimTime::ZERO, b, ms(5)).unwrap();
        cpu.advance_to(at_ms(5));
        cpu.remove_job(at_ms(5), a);
        let done = run_until_idle(&mut cpu, at_ms(100));
        assert!(done.iter().all(|c| c.job == b));
        assert_eq!(cpu.backlog_jobs(), 0);
    }

    #[test]
    fn context_switch_overhead_is_charged() {
        let mut cpu = TimeSharing::with_overhead(ms(10), ms(1));
        let j = cpu.add_job(SimTime::ZERO);
        cpu.submit(SimTime::ZERO, j, ms(5)).unwrap();
        let done = run_until_idle(&mut cpu, at_ms(50));
        assert_eq!(done[0].at, at_ms(6));
    }

    #[test]
    fn backlog_accounting() {
        let mut cpu = TimeSharing::new(ms(10));
        let a = cpu.add_job(SimTime::ZERO);
        let b = cpu.add_job(SimTime::ZERO);
        cpu.submit(SimTime::ZERO, a, ms(4)).unwrap();
        cpu.submit(SimTime::ZERO, a, ms(4)).unwrap();
        cpu.submit(SimTime::ZERO, b, ms(4)).unwrap();
        assert_eq!(cpu.backlog_jobs(), 2);
        assert_eq!(cpu.backlog_work(), ms(12));
        cpu.advance_to(at_ms(2));
        assert_eq!(cpu.backlog_work(), ms(10));
    }

    #[test]
    fn zero_length_task_completes_immediately() {
        let mut cpu = TimeSharing::new(ms(10));
        let j = cpu.add_job(SimTime::ZERO);
        cpu.submit(SimTime::ZERO, j, SimDuration::ZERO).unwrap();
        let done = run_until_idle(&mut cpu, at_ms(10));
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].at, SimTime::ZERO);
    }

    #[test]
    fn next_event_none_when_idle() {
        let mut cpu = TimeSharing::new(ms(10));
        let j = cpu.add_job(SimTime::ZERO);
        assert_eq!(cpu.next_event(), None);
        cpu.submit(SimTime::ZERO, j, ms(3)).unwrap();
        assert!(cpu.next_event().is_some());
        run_until_idle(&mut cpu, at_ms(10));
        assert_eq!(cpu.next_event(), None);
    }

    #[test]
    fn per_job_fifo_order_is_preserved() {
        let mut cpu = TimeSharing::new(ms(10));
        let j = cpu.add_job(SimTime::ZERO);
        let t1 = cpu.submit(SimTime::ZERO, j, ms(3)).unwrap();
        let t2 = cpu.submit(SimTime::ZERO, j, ms(3)).unwrap();
        let t3 = cpu.submit(SimTime::ZERO, j, ms(3)).unwrap();
        let done = run_until_idle(&mut cpu, at_ms(100));
        let order: Vec<TaskId> = done.iter().map(|c| c.task).collect();
        assert_eq!(order, vec![t1, t2, t3]);
    }
}
