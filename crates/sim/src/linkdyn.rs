//! Deterministic stochastic link dynamics: seeded, schedule-driven
//! per-server capacity processes for congestion experiments.
//!
//! [`crate::fault`] models *outages* — windows that open and close. Real
//! multimedia serving also sees *continuously varying* capacity: wireless
//! channels fade, shared backbones breathe with the time of day, and
//! peering links hop between discrete quality regimes. This module is the
//! declarative counterpart for that regime, shaped exactly like the fault
//! layer so drivers merge it into the same event loop:
//!
//! * a [`LinkPlan`] declares absolute capacity set-points per server —
//!   fixed schedules for tests, or trajectories sampled from a
//!   [`LinkModel`] (Markov-modulated quality states, fading-style
//!   multiplicative noise, diurnal ramps) under the same seeded
//!   [`Rng`](crate::rng::Rng) discipline as everything else, so plans
//!   replay bit-for-bit and each server's trajectory is independent of the
//!   sweep width,
//! * a [`LinkInjector`] expands the plan into a `(time, seq)`-ordered
//!   timeline of [`LinkSpec`] set-points.
//!
//! Unlike fault windows, set-points do not nest: each [`LinkSpec`]
//! *replaces* the server's current dynamic factor. The driver keeps one
//! factor per server (initially 1.0) and composes it multiplicatively with
//! any concurrent fault-window factors when recomputing effective link
//! capacity.

use crate::rng::Rng;
use crate::time::{SimDuration, SimTime};
use crate::topology::ServerId;
use std::collections::BTreeMap;

/// Smallest factor a sampled trajectory can emit: keeps effective capacity
/// positive (the link layer rejects zero capacity) and bounds how long a
/// stalled transfer can linger.
pub const MIN_FACTOR: f64 = 0.05;

/// Sampling model for a per-server capacity trajectory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LinkModel {
    /// Markov-modulated quality regimes: a three-state birth-death chain
    /// (good ↔ degraded ↔ bad) with exponentially distributed dwell times.
    /// Each transition emits the new state's capacity factor. The chain
    /// starts in the good state, which emits nothing until it first leaves.
    Markov {
        /// Capacity factor per state, `[good, degraded, bad]`, each in
        /// `(0, 1]`.
        factors: [f64; 3],
        /// Mean dwell time per state before transitioning.
        dwell: [SimDuration; 3],
    },
    /// Fading-style multiplicative noise: every `coherence` interval the
    /// factor is resampled as `mean` perturbed by zero-mean Gaussian noise
    /// of standard deviation `spread`, clamped into `[MIN_FACTOR, 1]` —
    /// the quasi-static block-fading shape (the channel holds a level for
    /// one coherence block, then jumps).
    Fading {
        /// Centre of the factor distribution, in `(0, 1]`.
        mean: f64,
        /// Standard deviation of the per-block perturbation.
        spread: f64,
        /// Coherence block length (time between resamples).
        coherence: SimDuration,
    },
    /// Deterministic diurnal ramp with a per-server random phase: the
    /// factor follows a raised cosine between 1.0 (off-peak) and `trough`
    /// (peak congestion) with the given `period`, emitted as a staircase
    /// of set-points every `step`.
    Diurnal {
        /// Factor at the bottom of the ramp, in `(0, 1]`.
        trough: f64,
        /// Full cycle length.
        period: SimDuration,
        /// Staircase discretisation interval.
        step: SimDuration,
    },
}

/// One capacity set-point: at `at`, `server`'s dynamic link factor becomes
/// `factor` (replacing the previous set-point's value).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSpec {
    /// The affected server.
    pub server: ServerId,
    /// When the set-point takes effect.
    pub at: SimTime,
    /// New dynamic capacity factor, in `(0, 1]`.
    pub factor: f64,
}

/// A declarative per-server capacity trajectory.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LinkPlan {
    /// The set-points, grouped by server and time-ordered within each
    /// server; [`LinkInjector`] orders globally.
    pub changes: Vec<LinkSpec>,
}

impl LinkPlan {
    /// A plan with no capacity changes (steady baseline).
    pub fn none() -> Self {
        LinkPlan::default()
    }

    /// Samples a trajectory for every server over `[0, horizon)`. Each
    /// server forks its own stream from `seed`, so server `k`'s trajectory
    /// is independent of how many servers the sweep covers — and the whole
    /// plan replays bit-for-bit.
    pub fn sample(
        seed: u64,
        servers: impl IntoIterator<Item = ServerId>,
        horizon: SimTime,
        model: LinkModel,
    ) -> Self {
        model.validate();
        let root = Rng::new(seed ^ 0x001D_FADE_u64);
        let mut changes = Vec::new();
        for server in servers {
            let mut rng = root.fork(server.0 as u64);
            match model {
                LinkModel::Markov { factors, dwell } => {
                    let mut state = 0usize;
                    let mut t = SimTime::ZERO;
                    loop {
                        let hold = SimDuration::from_secs_f64(rng.exp(dwell[state].as_secs_f64()))
                            .max(SimDuration::from_micros(1));
                        t += hold;
                        if t >= horizon {
                            break;
                        }
                        state = match state {
                            0 => 1,
                            1 => {
                                if rng.chance(0.5) {
                                    0
                                } else {
                                    2
                                }
                            }
                            _ => 1,
                        };
                        changes.push(LinkSpec { server, at: t, factor: factors[state] });
                    }
                }
                LinkModel::Fading { mean, spread, coherence } => {
                    let mut t = SimTime::ZERO + coherence;
                    while t < horizon {
                        let factor = (mean + rng.normal(0.0, spread)).clamp(MIN_FACTOR, 1.0);
                        changes.push(LinkSpec { server, at: t, factor });
                        t += coherence;
                    }
                }
                LinkModel::Diurnal { trough, period, step } => {
                    let phase = rng.range_f64(0.0, period.as_secs_f64());
                    let mut t = SimTime::ZERO + step;
                    while t < horizon {
                        let x = (t.as_secs_f64() + phase) / period.as_secs_f64();
                        let wave = 0.5 + 0.5 * (std::f64::consts::TAU * x).cos();
                        let factor = (trough + (1.0 - trough) * wave).clamp(MIN_FACTOR, 1.0);
                        changes.push(LinkSpec { server, at: t, factor });
                        t += step;
                    }
                }
            }
        }
        LinkPlan { changes }
    }

    /// True when the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.changes.is_empty()
    }
}

impl LinkModel {
    fn validate(self) {
        match self {
            LinkModel::Markov { factors, dwell } => {
                for f in factors {
                    assert!(f > 0.0 && f <= 1.0, "Markov factors must be in (0, 1]");
                }
                for d in dwell {
                    assert!(!d.is_zero(), "Markov dwell means must be positive");
                }
            }
            LinkModel::Fading { mean, spread, coherence } => {
                assert!(mean > 0.0 && mean <= 1.0, "fading mean must be in (0, 1]");
                assert!(spread >= 0.0, "fading spread must be non-negative");
                assert!(!coherence.is_zero(), "coherence block must be positive");
            }
            LinkModel::Diurnal { trough, period, step } => {
                assert!(trough > 0.0 && trough <= 1.0, "diurnal trough must be in (0, 1]");
                assert!(!period.is_zero(), "diurnal period must be positive");
                assert!(!step.is_zero(), "diurnal step must be positive");
            }
        }
    }
}

/// Expands a [`LinkPlan`] into an ordered set-point timeline — the
/// link-dynamics "resource" a driver merges into its event loop via
/// [`next_at`](LinkInjector::next_at) / [`pop_due`](LinkInjector::pop_due).
///
/// Ties at one instant fire in plan order (the key is `(time, plan
/// index)`, a pure function of the plan), which for sampled plans means
/// ascending [`ServerId`].
pub struct LinkInjector {
    timeline: BTreeMap<(SimTime, usize), LinkSpec>,
}

impl LinkInjector {
    /// Builds the timeline for a plan.
    pub fn new(plan: &LinkPlan) -> Self {
        let mut timeline = BTreeMap::new();
        for (i, spec) in plan.changes.iter().enumerate() {
            timeline.insert((spec.at, i), *spec);
        }
        LinkInjector { timeline }
    }

    /// Earliest pending set-point, if any.
    pub fn next_at(&self) -> Option<SimTime> {
        self.timeline.keys().next().map(|&(t, _)| t)
    }

    /// Pops the next set-point due at or before `now`.
    pub fn pop_due(&mut self, now: SimTime) -> Option<LinkSpec> {
        let &key = self.timeline.keys().next().filter(|&&(t, _)| t <= now)?;
        self.timeline.remove(&key)
    }

    /// True when every set-point has fired.
    pub fn is_empty(&self) -> bool {
        self.timeline.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn markov() -> LinkModel {
        LinkModel::Markov {
            factors: [1.0, 0.5, 0.2],
            dwell: [
                SimDuration::from_secs(60),
                SimDuration::from_secs(30),
                SimDuration::from_secs(15),
            ],
        }
    }

    #[test]
    fn sampled_plans_are_deterministic_and_server_independent() {
        let servers: Vec<ServerId> = ServerId::first_n(3).collect();
        let horizon = SimTime::from_secs(3_000);
        let a = LinkPlan::sample(9, servers.clone(), horizon, markov());
        let b = LinkPlan::sample(9, servers.clone(), horizon, markov());
        assert_eq!(a, b, "same seed, same plan");
        let c = LinkPlan::sample(10, servers.clone(), horizon, markov());
        assert_ne!(a, c, "different seed, different plan");
        // Server 1's trajectory does not depend on server 2 being present.
        let narrow = LinkPlan::sample(9, [ServerId(1)], horizon, markov());
        let wide_s1: Vec<LinkSpec> =
            a.changes.iter().copied().filter(|s| s.server == ServerId(1)).collect();
        assert_eq!(narrow.changes, wide_s1);
        assert!(a.changes.iter().all(|s| s.at < horizon));
        assert!(!a.is_empty(), "3000 s of 60 s dwells over 3 servers should transition");
    }

    #[test]
    fn markov_walks_adjacent_states_only() {
        let plan = LinkPlan::sample(7, [ServerId(0)], SimTime::from_secs(10_000), markov());
        let mut prev = 1.0; // good state
        for spec in &plan.changes {
            let legal = if spec.factor == 0.5 {
                prev == 1.0 || prev == 0.2
            } else if spec.factor == 1.0 || spec.factor == 0.2 {
                prev == 0.5
            } else {
                panic!("unexpected factor {}", spec.factor)
            };
            assert!(legal, "illegal jump {prev} -> {}", spec.factor);
            prev = spec.factor;
        }
    }

    #[test]
    fn fading_emits_one_setpoint_per_coherence_block() {
        let model =
            LinkModel::Fading { mean: 0.7, spread: 0.2, coherence: SimDuration::from_secs(10) };
        let plan = LinkPlan::sample(3, [ServerId(0)], SimTime::from_secs(100), model);
        assert_eq!(plan.changes.len(), 9, "blocks at 10..=90 s");
        for (i, spec) in plan.changes.iter().enumerate() {
            assert_eq!(spec.at, SimTime::from_secs(10 * (i as u64 + 1)));
            assert!(spec.factor >= MIN_FACTOR && spec.factor <= 1.0, "{}", spec.factor);
        }
    }

    #[test]
    fn diurnal_ramps_down_and_back_up() {
        let model = LinkModel::Diurnal {
            trough: 0.3,
            period: SimDuration::from_secs(1_000),
            step: SimDuration::from_secs(50),
        };
        let plan = LinkPlan::sample(5, [ServerId(2)], SimTime::from_secs(1_000), model);
        assert_eq!(plan.changes.len(), 19);
        let lo = plan.changes.iter().map(|s| s.factor).fold(f64::INFINITY, f64::min);
        let hi = plan.changes.iter().map(|s| s.factor).fold(0.0, f64::max);
        assert!(lo < 0.45, "trough reached: {lo}");
        assert!(hi > 0.85, "peak reached: {hi}");
        // One full cosine period: adjacent samples differ, none jump wildly.
        for pair in plan.changes.windows(2) {
            assert!((pair[0].factor - pair[1].factor).abs() < 0.25);
        }
    }

    #[test]
    fn injector_orders_setpoints_by_time_then_plan_index() {
        let plan = LinkPlan {
            changes: vec![
                LinkSpec { server: ServerId(1), at: SimTime::from_secs(20), factor: 0.5 },
                LinkSpec { server: ServerId(0), at: SimTime::from_secs(10), factor: 0.8 },
                LinkSpec { server: ServerId(2), at: SimTime::from_secs(10), factor: 0.9 },
            ],
        };
        let mut inj = LinkInjector::new(&plan);
        assert_eq!(inj.next_at(), Some(SimTime::from_secs(10)));
        assert!(inj.pop_due(SimTime::from_secs(9)).is_none());
        let order: Vec<(ServerId, u64)> =
            std::iter::from_fn(|| inj.pop_due(SimTime::from_secs(60)))
                .map(|s| (s.server, s.at.as_micros() / 1_000_000))
                .collect();
        assert_eq!(order, vec![(ServerId(0), 10), (ServerId(2), 10), (ServerId(1), 20)]);
        assert!(inj.is_empty());
    }

    #[test]
    fn empty_plan_yields_empty_timeline() {
        let inj = LinkInjector::new(&LinkPlan::none());
        assert!(inj.is_empty());
        assert_eq!(inj.next_at(), None);
    }
}
