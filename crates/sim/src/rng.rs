//! Deterministic pseudo-random number generation for simulations.
//!
//! Experiments must be exactly reproducible from a single `u64` seed, and
//! independent components (per-video traces, per-query arrivals) need
//! statistically independent streams derived from that seed. This module
//! implements xoshiro256++ seeded through SplitMix64 — the standard
//! construction recommended by the xoshiro authors — plus the handful of
//! distributions the workloads need (uniform, exponential, normal,
//! log-normal, Zipf).
//!
//! The kernel deliberately does not depend on the `rand` crate: keeping the
//! generator in-tree guarantees that results cannot drift when an external
//! crate changes its stream.

/// SplitMix64 step; used for seeding and for hashing stream identifiers.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256++ generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator from a seed. Any seed (including 0) is valid.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // xoshiro256++ requires a non-zero state; SplitMix64 cannot produce
        // four consecutive zeros, but guard anyway.
        if s == [0; 4] {
            s = [0x1, 0x9E3779B97F4A7C15, 0xBF58476D1CE4E5B9, 0x94D049BB133111EB];
        }
        Rng { s }
    }

    /// Derives an independent child stream from this generator's seed and a
    /// stream identifier. Forking does not advance `self`.
    pub fn fork(&self, stream: u64) -> Rng {
        let mut sm =
            self.s[0] ^ self.s[1].rotate_left(17) ^ stream.wrapping_mul(0xD1B54A32D192ED03);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        Rng { s }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform double in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`. Panics if `bound == 0`.
    /// Uses Lemire's multiply-shift rejection method for unbiased output.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "Rng::below called with bound 0");
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let low = m as u64;
            if low >= bound || low >= low.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "invalid range");
        if lo == hi {
            return lo;
        }
        lo + self.below(hi - lo + 1)
    }

    /// Uniform `usize` index in `[0, len)`; convenience for slice indexing.
    pub fn index(&mut self, len: usize) -> usize {
        self.below(len as u64) as usize
    }

    /// Uniform double in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "invalid range");
        lo + (hi - lo) * self.next_f64()
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0,1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Exponentially distributed double with the given mean (> 0).
    pub fn exp(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "exponential mean must be positive");
        // Avoid ln(0); next_f64 is in [0,1) so 1-u is in (0,1].
        let u = 1.0 - self.next_f64();
        -mean * u.ln()
    }

    /// Standard normal via Box-Muller (one value per call; the pair's
    /// second value is discarded to keep state handling simple).
    pub fn normal(&mut self, mean: f64, sd: f64) -> f64 {
        assert!(sd >= 0.0, "standard deviation must be non-negative");
        let u1 = 1.0 - self.next_f64();
        let u2 = self.next_f64();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        mean + sd * z
    }

    /// Log-normal: `exp(N(mu, sigma))`.
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Zipf-distributed rank in `[0, n)` with exponent `s >= 0`
    /// (s = 0 degenerates to uniform). Uses inverse-CDF over precomputable
    /// weights; n is expected to be small (video catalogs), so O(n) per draw
    /// is acceptable.
    pub fn zipf(&mut self, n: usize, s: f64) -> usize {
        assert!(n > 0, "zipf over empty domain");
        assert!(s >= 0.0, "zipf exponent must be non-negative");
        let norm: f64 = (1..=n).map(|k| 1.0 / (k as f64).powf(s)).sum();
        let mut u = self.next_f64() * norm;
        for k in 1..=n {
            let w = 1.0 / (k as f64).powf(s);
            if u < w {
                return k - 1;
            }
            u -= w;
        }
        n - 1
    }

    /// Fisher-Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }

    /// Picks a uniformly random element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choose from empty slice");
        &items[self.index(items.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 3);
    }

    #[test]
    fn fork_is_independent_and_stable() {
        let root = Rng::new(7);
        let mut c1 = root.fork(0);
        let mut c2 = root.fork(1);
        let mut c1_again = root.fork(0);
        assert_eq!(c1.next_u64(), c1_again.next_u64());
        // Distinct stream ids should diverge immediately with overwhelming
        // probability.
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::new(3);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_respects_bound_and_covers() {
        let mut r = Rng::new(9);
        let mut seen = [false; 7];
        for _ in 0..10_000 {
            let x = r.below(7) as usize;
            assert!(x < 7);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn range_inclusive() {
        let mut r = Rng::new(11);
        for _ in 0..1_000 {
            let x = r.range_u64(5, 8);
            assert!((5..=8).contains(&x));
        }
        assert_eq!(r.range_u64(4, 4), 4);
    }

    #[test]
    fn exponential_mean_close() {
        let mut r = Rng::new(12);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| r.exp(2.0)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean was {mean}");
    }

    #[test]
    fn normal_moments_close() {
        let mut r = Rng::new(13);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal(10.0, 3.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean was {mean}");
        assert!((var.sqrt() - 3.0).abs() < 0.05, "sd was {}", var.sqrt());
    }

    #[test]
    fn lognormal_positive() {
        let mut r = Rng::new(14);
        for _ in 0..1_000 {
            assert!(r.lognormal(0.0, 1.0) > 0.0);
        }
    }

    #[test]
    fn zipf_skews_to_low_ranks() {
        let mut r = Rng::new(15);
        let mut counts = [0u32; 10];
        for _ in 0..50_000 {
            counts[r.zipf(10, 1.0)] += 1;
        }
        assert!(counts[0] > counts[4]);
        assert!(counts[4] > counts[9]);
    }

    #[test]
    fn zipf_zero_exponent_is_roughly_uniform() {
        let mut r = Rng::new(16);
        let mut counts = [0u32; 4];
        for _ in 0..40_000 {
            counts[r.zipf(4, 0.0)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "counts {counts:?}");
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Rng::new(17);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn chance_extremes() {
        let mut r = Rng::new(18);
        assert!(!(0..100).any(|_| r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
    }
}
