//! # quasaq-sim — deterministic discrete-event simulation kernel
//!
//! The QuaSAQ reproduction evaluates a distributed multimedia database on a
//! simulated testbed instead of the paper's three Solaris servers. This
//! crate is that testbed's foundation:
//!
//! * [`time`] — integer-microsecond virtual time ([`SimTime`],
//!   [`SimDuration`]).
//! * [`queue`] — a deterministic event queue generic over the driver's
//!   event type.
//! * [`rng`] — an in-tree xoshiro256++ generator with forkable streams so
//!   experiments replay bit-for-bit from one seed.
//! * [`cpu`] — two CPU scheduling models: the Solaris-like round-robin
//!   [`cpu::TimeSharing`] (the plain VDBMS regime of Fig 5a/5c) and the
//!   DSRT-style reservation scheduler [`cpu::Dsrt`] (the QuaSAQ regime of
//!   Fig 5b/5d).
//! * [`link`] — fluid-flow shared bandwidth for server outbound links and
//!   disks, with fair-share and reservation policies.
//! * [`fault`] — seeded, schedule-driven fault injection (server crashes,
//!   link degradation, disk slowdown) for robustness experiments.
//! * [`linkdyn`] — seeded stochastic link-capacity trajectories (Markov
//!   quality regimes, fading noise, diurnal ramps) for congestion
//!   experiments.
//! * [`stats`] — accumulators for the measurements the paper reports
//!   (mean/S.D. tables, delay traces, session counts, completion rates).
//!
//! All resource models are *passive incremental simulators*: an experiment
//! driver owns the [`queue::EventQueue`], asks each resource for its next
//! interesting instant, advances it, and drains typed completions. Nothing
//! in this crate spawns threads or reads wall-clock time.

pub mod cpu;
pub mod domain;
pub mod fault;
pub mod link;
pub mod linkdyn;
pub mod queue;
pub mod rng;
pub mod stats;
pub mod time;
pub mod topology;

pub use cpu::{
    Completion, CpuError, CpuScheduler, Dsrt, DsrtConfig, JobId, ReservationError, TaskId,
    TimeSharing,
};
pub use domain::{step_domains, DomainStepper, LinkDomain, SerialStepper};
pub use fault::{FaultEvent, FaultInjector, FaultKind, FaultModel, FaultPlan, FaultSpec};
pub use link::{FlowId, LinkError, SharePolicy, SharedLink, XferDone, XferId};
pub use linkdyn::{LinkInjector, LinkModel, LinkPlan, LinkSpec};
pub use queue::{EventId, EventQueue};
pub use rng::Rng;
pub use stats::{Histogram, LevelTracker, OnlineStats, RateCounter, Series};
pub use time::{SimDuration, SimTime};
pub use topology::ServerId;
