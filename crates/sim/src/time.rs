//! Virtual time for the discrete-event simulation.
//!
//! All simulation time is kept in integer **microseconds** so that event
//! ordering is exact and runs are bit-for-bit reproducible. Two newtypes are
//! provided: [`SimTime`] (an absolute instant since simulation start) and
//! [`SimDuration`] (a span between instants). The arithmetic mirrors
//! `std::time::{Instant, Duration}` but saturates instead of panicking on
//! underflow, which is convenient for "how late is this frame" computations.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant in simulated time, in microseconds since simulation
/// start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as "never" in schedulers.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Builds an instant from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Builds an instant from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Builds an instant from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Builds an instant from fractional seconds (rounds to the nearest
    /// microsecond; negative values clamp to zero).
    pub fn from_secs_f64(s: f64) -> Self {
        SimTime((s.max(0.0) * 1e6).round() as u64)
    }

    /// Raw microseconds since simulation start.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds since simulation start (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds since simulation start as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Time elapsed since `earlier`, saturating to zero if `earlier` is in
    /// the future.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition of a duration.
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }

    /// The instant halfway between the epoch and this one (truncating on odd
    /// microsecond counts, like integer division).
    pub const fn halved(self) -> SimTime {
        SimTime(self.0 / 2)
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Builds a span from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Builds a span from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Builds a span from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Builds a span from fractional seconds (rounds to the nearest
    /// microsecond; negative values clamp to zero).
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration((s.max(0.0) * 1e6).round() as u64)
    }

    /// Raw microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Milliseconds as a float.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// True when this span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Checked integer division of two spans (how many times `other` fits).
    pub fn div_duration(self, other: SimDuration) -> u64 {
        assert!(other.0 != 0, "division by zero-length SimDuration");
        self.0 / other.0
    }

    /// Multiplies the span by a non-negative float, rounding to the nearest
    /// microsecond.
    pub fn mul_f64(self, k: f64) -> SimDuration {
        assert!(k >= 0.0, "negative scale factor for SimDuration");
        SimDuration((self.0 as f64 * k).round() as u64)
    }

    /// Half of this span (truncating on odd microsecond counts).
    pub const fn halved(self) -> SimDuration {
        SimDuration(self.0 / 2)
    }

    /// The smaller of two spans.
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The larger of two spans.
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(d.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, other: SimTime) -> SimDuration {
        self.duration_since(other)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0 + other.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, other: SimDuration) {
        self.0 += other.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, other: SimDuration) {
        self.0 = self.0.saturating_sub(other.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, k: u64) -> SimDuration {
        SimDuration(self.0 * k)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, k: u64) -> SimDuration {
        SimDuration(self.0 / k)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_secs(3).as_micros(), 3_000_000);
        assert_eq!(SimTime::from_millis(5).as_micros(), 5_000);
        assert_eq!(SimDuration::from_secs(1).as_millis(), 1_000);
        assert_eq!(SimTime::from_secs_f64(0.5).as_micros(), 500_000);
        assert_eq!(SimDuration::from_secs_f64(1.25).as_micros(), 1_250_000);
    }

    #[test]
    fn negative_float_clamps_to_zero() {
        assert_eq!(SimTime::from_secs_f64(-1.0), SimTime::ZERO);
        assert_eq!(SimDuration::from_secs_f64(-0.1), SimDuration::ZERO);
    }

    #[test]
    fn instant_arithmetic() {
        let t = SimTime::from_secs(10);
        let d = SimDuration::from_secs(3);
        assert_eq!(t + d, SimTime::from_secs(13));
        assert_eq!(t - d, SimTime::from_secs(7));
        assert_eq!(t - SimTime::from_secs(4), SimDuration::from_secs(6));
        // Subtraction saturates rather than panicking.
        assert_eq!(SimTime::from_secs(1) - SimDuration::from_secs(5), SimTime::ZERO);
        assert_eq!(SimTime::from_secs(1).duration_since(SimTime::from_secs(9)), SimDuration::ZERO);
    }

    #[test]
    fn duration_arithmetic() {
        let a = SimDuration::from_millis(30);
        let b = SimDuration::from_millis(12);
        assert_eq!(a + b, SimDuration::from_millis(42));
        assert_eq!(a - b, SimDuration::from_millis(18));
        assert_eq!(b - a, SimDuration::ZERO);
        assert_eq!(a * 2, SimDuration::from_millis(60));
        assert_eq!(a / 3, SimDuration::from_millis(10));
        assert_eq!(a.div_duration(b), 2);
        assert_eq!(a.mul_f64(0.5), SimDuration::from_millis(15));
    }

    #[test]
    fn halving_truncates_odd_microseconds() {
        assert_eq!(SimTime::from_micros(7).halved(), SimTime::from_micros(3));
        assert_eq!(SimTime::from_micros(8).halved(), SimTime::from_micros(4));
        assert_eq!(SimTime::ZERO.halved(), SimTime::ZERO);
        assert_eq!(SimDuration::from_micros(1_000_001).halved(), SimDuration::from_micros(500_000));
        assert_eq!(SimDuration::from_secs(2).halved(), SimDuration::from_secs(1));
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_millis).sum();
        assert_eq!(total, SimDuration::from_millis(10));
    }

    #[test]
    fn min_max() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        let x = SimDuration::from_millis(1);
        let y = SimDuration::from_millis(2);
        assert_eq!(x.min(y), x);
        assert_eq!(x.max(y), y);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimDuration::from_micros(12).to_string(), "12us");
        assert_eq!(SimDuration::from_millis(42).to_string(), "42.000ms");
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
        assert_eq!(SimTime::from_millis(1500).to_string(), "1.500000s");
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_duration_panics() {
        let _ = SimDuration::from_secs(1).div_duration(SimDuration::ZERO);
    }
}
