//! The pre-arena, map-based `SharedLink` implementation, preserved
//! verbatim (modulo imports) as a differential-testing oracle. The live
//! implementation in `quasaq_sim::link` keeps flow state in a
//! struct-of-arrays arena with incrementally maintained fair-share order;
//! the property tests drive both through identical operation traces and
//! require bit-identical observable behavior.
#![allow(dead_code)]

use quasaq_sim::link::{FlowId, LinkError, SharePolicy, XferDone, XferId};
use quasaq_sim::{SimDuration, SimTime};
use std::collections::{BTreeMap, VecDeque};

#[derive(Debug)]
struct Flow {
    /// Reserved rate (Reserved policy) or pacing cap (FairShare, 0 = no
    /// cap), in bytes/second.
    rate_bps: u64,
    /// FIFO of `(transfer, remaining bytes)`.
    queue: VecDeque<(XferId, f64)>,
}

/// The old tree-backed fluid-flow shared bandwidth resource.
#[derive(Debug)]
pub struct OracleLink {
    capacity_bps: u64,
    policy: SharePolicy,
    now: SimTime,
    flows: BTreeMap<FlowId, Flow>,
    reserved_total: u64,
    completions: Vec<XferDone>,
    next_flow: u64,
    next_xfer: u64,
    /// Memoized water-filling allocation, invalidated whenever the
    /// backlogged set can change.
    rates_cache: Option<Vec<(FlowId, f64)>>,
}

impl OracleLink {
    /// Creates a fair-share (processor-sharing) link.
    pub fn fair_share(capacity_bps: u64) -> Self {
        Self::new(capacity_bps, SharePolicy::FairShare)
    }

    /// Creates a reservation-based link.
    pub fn reserved(capacity_bps: u64) -> Self {
        Self::new(capacity_bps, SharePolicy::Reserved)
    }

    fn new(capacity_bps: u64, policy: SharePolicy) -> Self {
        assert!(capacity_bps > 0, "link capacity must be positive");
        OracleLink {
            capacity_bps,
            policy,
            now: SimTime::ZERO,
            flows: BTreeMap::new(),
            reserved_total: 0,
            completions: Vec::new(),
            next_flow: 0,
            next_xfer: 0,
            rates_cache: None,
        }
    }

    /// Total capacity in bytes/second.
    pub fn capacity_bps(&self) -> u64 {
        self.capacity_bps
    }

    /// Sum of reserved rates (0 under FairShare).
    pub fn reserved_bps(&self) -> u64 {
        self.reserved_total
    }

    /// Rate still reservable.
    pub fn available_bps(&self) -> u64 {
        self.capacity_bps.saturating_sub(self.reserved_total)
    }

    /// Changes the link's capacity mid-run.
    pub fn set_capacity(&mut self, now: SimTime, capacity_bps: u64) {
        assert!(capacity_bps > 0, "link capacity must be positive");
        self.advance_to(now);
        if self.capacity_bps != capacity_bps {
            self.capacity_bps = capacity_bps;
            self.rates_cache = None;
        }
    }

    /// Number of open flows.
    pub fn open_flows(&self) -> usize {
        self.flows.len()
    }

    /// Number of flows with queued bytes.
    pub fn backlogged_flows(&self) -> usize {
        self.flows.values().filter(|f| !f.queue.is_empty()).count()
    }

    /// Total bytes still queued across all flows.
    pub fn backlog_bytes(&self) -> f64 {
        self.flows.values().flat_map(|f| f.queue.iter().map(|&(_, b)| b)).sum()
    }

    /// Opens a flow.
    pub fn open_flow(&mut self, now: SimTime, rate_bps: Option<u64>) -> Result<FlowId, LinkError> {
        self.advance_to(now);
        let (rate, reserved) = match (self.policy, rate_bps) {
            (SharePolicy::Reserved, Some(rate)) => {
                let available = self.available_bps();
                if rate > available {
                    return Err(LinkError::Saturated { requested: rate, available });
                }
                (rate, rate)
            }
            (SharePolicy::FairShare, cap) => (cap.unwrap_or(0), 0),
            (SharePolicy::Reserved, None) => return Err(LinkError::PolicyMismatch),
        };
        let id = FlowId(self.next_flow);
        self.next_flow += 1;
        self.flows.insert(id, Flow { rate_bps: rate, queue: VecDeque::new() });
        self.reserved_total += reserved;
        self.rates_cache = None;
        Ok(id)
    }

    /// Closes a flow, discarding any queued transfers and releasing its
    /// reservation.
    pub fn close_flow(&mut self, now: SimTime, flow: FlowId) {
        self.advance_to(now);
        if let Some(f) = self.flows.remove(&flow) {
            if self.policy == SharePolicy::Reserved {
                self.reserved_total -= f.rate_bps;
            }
            self.rates_cache = None;
        }
    }

    /// Queues `bytes` for transmission on `flow`.
    pub fn send(&mut self, now: SimTime, flow: FlowId, bytes: u64) -> Result<XferId, LinkError> {
        self.advance_to(now);
        let f = self.flows.get_mut(&flow).ok_or(LinkError::UnknownFlow(flow))?;
        let id = XferId(self.next_xfer);
        self.next_xfer += 1;
        if f.queue.is_empty() {
            self.rates_cache = None;
        }
        f.queue.push_back((id, bytes as f64));
        Ok(id)
    }

    /// Bytes still queued on one flow (0 for unknown/closed flows).
    pub fn flow_backlog_bytes(&self, flow: FlowId) -> f64 {
        self.flows.get(&flow).map(|f| f.queue.iter().map(|&(_, b)| b).sum()).unwrap_or(0.0)
    }

    /// Instantaneous per-flow transmission rates for all backlogged flows.
    pub fn current_rates(&self) -> Vec<(FlowId, f64)> {
        match &self.rates_cache {
            Some(rates) => rates.clone(),
            None => self.compute_rates(),
        }
    }

    /// Computes the allocation from scratch (cache miss path).
    fn compute_rates(&self) -> Vec<(FlowId, f64)> {
        match self.policy {
            SharePolicy::Reserved => self
                .flows
                .iter()
                .filter(|(_, f)| !f.queue.is_empty())
                .map(|(&id, f)| (id, f.rate_bps as f64))
                .collect(),
            SharePolicy::FairShare => {
                let mut active: Vec<(FlowId, f64)> = self
                    .flows
                    .iter()
                    .filter(|(_, f)| !f.queue.is_empty())
                    .map(|(&id, f)| {
                        let cap = if f.rate_bps == 0 { f64::INFINITY } else { f.rate_bps as f64 };
                        (id, cap)
                    })
                    .collect();
                // Water-filling: tight caps first.
                active.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
                let mut remaining = self.capacity_bps as f64;
                let mut rates = Vec::with_capacity(active.len());
                let mut i = 0;
                while i < active.len() {
                    let share = (remaining / (active.len() - i) as f64).max(0.0);
                    let (id, cap) = active[i];
                    if cap <= share {
                        rates.push((id, cap));
                        remaining = (remaining - cap).max(0.0);
                        i += 1;
                    } else {
                        for &(id2, _) in &active[i..] {
                            rates.push((id2, share));
                        }
                        break;
                    }
                }
                rates
            }
        }
    }

    /// Current transmission rate of a flow in bytes/second (0 when idle).
    pub fn flow_rate_bps(&self, flow: FlowId) -> f64 {
        self.current_rates().into_iter().find(|&(id, _)| id == flow).map(|(_, r)| r).unwrap_or(0.0)
    }

    /// Earliest future transfer completion, or `None` when fully idle.
    pub fn next_event(&self) -> Option<SimTime> {
        let mut best: Option<SimDuration> = None;
        for (id, rate) in self.current_rates() {
            if rate <= 0.0 {
                continue;
            }
            let f = &self.flows[&id];
            let Some(&(_, bytes)) = f.queue.front() else { continue };
            let secs = bytes / rate;
            let d = SimDuration::from_micros((secs * 1e6).ceil() as u64);
            best = Some(match best {
                Some(b) => b.min(d),
                None => d,
            });
        }
        best.map(|d| self.now + d)
    }

    /// Advances the fluid model to `t`.
    pub fn advance_to(&mut self, t: SimTime) {
        assert!(t >= self.now, "advance_to into the past");
        loop {
            let rates = match self.rates_cache.take() {
                Some(rates) => rates,
                None => self.compute_rates(),
            };
            let mut best: Option<SimDuration> = None;
            for &(id, rate) in &rates {
                if rate <= 0.0 {
                    continue;
                }
                let Some(&(_, bytes)) = self.flows[&id].queue.front() else { continue };
                let d = SimDuration::from_micros((bytes / rate * 1e6).ceil() as u64);
                best = Some(match best {
                    Some(b) => b.min(d),
                    None => d,
                });
            }
            let Some(until_done) = best else {
                self.rates_cache = Some(rates);
                self.now = t;
                return;
            };
            let step_end = (self.now + until_done).min(t);
            let step = step_end - self.now;
            let secs = step.as_secs_f64();
            for &(id, rate) in &rates {
                if rate <= 0.0 {
                    continue;
                }
                let f = self.flows.get_mut(&id).expect("flow");
                if let Some(front) = f.queue.front_mut() {
                    front.1 -= rate * secs;
                }
            }
            self.now = step_end;
            let mut drained_to_idle = false;
            for (&id, f) in self.flows.iter_mut() {
                let mut popped = false;
                while let Some(&(xfer, bytes)) = f.queue.front() {
                    if bytes <= 1e-6 {
                        f.queue.pop_front();
                        popped = true;
                        self.completions.push(XferDone { flow: id, xfer, at: self.now });
                    } else {
                        break;
                    }
                }
                drained_to_idle |= popped && f.queue.is_empty();
            }
            if !drained_to_idle {
                self.rates_cache = Some(rates);
            }
            if self.now >= t {
                return;
            }
        }
    }

    /// Number of completions recorded but not yet drained.
    pub fn pending_completions(&self) -> usize {
        self.completions.len()
    }

    /// Removes and returns completions recorded so far.
    pub fn drain_completions(&mut self) -> Vec<XferDone> {
        std::mem::take(&mut self.completions)
    }
}
