//! Property-based tests of the simulation kernel's invariants.

use proptest::prelude::*;
use quasaq_sim::cpu::{CpuScheduler, Dsrt, DsrtConfig, TimeSharing};
use quasaq_sim::link::SharePolicy;
use quasaq_sim::queue::reference::ReferenceQueue;
use quasaq_sim::{
    step_domains, DomainStepper, EventQueue, LinkDomain, OnlineStats, Rng, SerialStepper, ServerId,
    SharedLink, SimDuration, SimTime,
};

#[path = "support/old_link.rs"]
mod old_link;
use old_link::OracleLink;

/// A deliberately adversarial stepper: spawns one scoped thread per chunk
/// so domain steps genuinely interleave across threads.
struct ChunkStepper(usize);

// SAFETY: the chunks partition 0..n, so every index is passed to `f`
// exactly once.
unsafe impl DomainStepper for ChunkStepper {
    fn for_each(&self, n: usize, f: &(dyn Fn(usize) + Sync)) {
        let indices: Vec<usize> = (0..n).collect();
        std::thread::scope(|scope| {
            for chunk in indices.chunks(self.0.max(1)) {
                scope.spawn(move || {
                    for &i in chunk {
                        f(i);
                    }
                });
            }
        });
    }
}

/// Drives a scheduler until idle, returning completions.
fn drain_cpu<S: CpuScheduler>(cpu: &mut S, horizon: SimTime) -> Vec<quasaq_sim::Completion> {
    let mut done = Vec::new();
    let mut guard = 0u32;
    loop {
        guard += 1;
        assert!(guard < 1_000_000, "scheduler failed to converge");
        match cpu.next_event() {
            Some(t) if t <= horizon => {
                cpu.advance_to(t);
                done.extend(cpu.drain_completions());
            }
            _ => {
                cpu.advance_to(horizon);
                done.extend(cpu.drain_completions());
                return done;
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Events always pop in non-decreasing time order regardless of the
    /// insertion order.
    #[test]
    fn event_queue_pops_in_order(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_micros(t), i);
        }
        let mut last = SimTime::ZERO;
        let mut popped = 0;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
            popped += 1;
        }
        prop_assert_eq!(popped, times.len());
    }

    /// Cancelling an arbitrary subset removes exactly those events.
    #[test]
    fn event_queue_cancellation_is_exact(
        times in proptest::collection::vec(0u64..100_000, 1..100),
        cancel_mask in proptest::collection::vec(any::<bool>(), 1..100),
    ) {
        let mut q = EventQueue::new();
        let ids: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| (i, q.schedule(SimTime::from_micros(t), i)))
            .collect();
        let mut expected: Vec<usize> = Vec::new();
        for (i, id) in &ids {
            if cancel_mask.get(*i).copied().unwrap_or(false) {
                q.cancel(*id);
            } else {
                expected.push(*i);
            }
        }
        let mut got: Vec<usize> = Vec::new();
        while let Some((_, e)) = q.pop() {
            got.push(e);
        }
        got.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(got, expected);
    }

    /// Time-sharing conservation: every submitted task completes exactly
    /// once, no earlier than its total work, and per-job FIFO order holds.
    #[test]
    fn timesharing_conserves_tasks(
        jobs in 1usize..6,
        tasks in proptest::collection::vec((0usize..6, 0u64..20_000), 1..40),
    ) {
        let mut cpu = TimeSharing::solaris_default();
        let ids: Vec<_> = (0..jobs).map(|_| cpu.add_job(SimTime::ZERO)).collect();
        let mut total_work = 0u64;
        let mut submitted = Vec::new();
        for &(j, w) in &tasks {
            let job = ids[j % jobs];
            let task = cpu.submit(SimTime::ZERO, job, SimDuration::from_micros(w)).unwrap();
            submitted.push((job, task));
            total_work += w;
        }
        let done = drain_cpu(&mut cpu, SimTime::from_secs(3600));
        prop_assert_eq!(done.len(), submitted.len());
        // The CPU is work-conserving: the last completion is exactly the
        // total work (single processor, no idling while work pending).
        let last = done.iter().map(|c| c.at).max().unwrap();
        prop_assert_eq!(last.as_micros(), total_work);
        // FIFO per job.
        for &(job, _) in &submitted {
            let seq: Vec<_> = done.iter().filter(|c| c.job == job).map(|c| c.task).collect();
            let mut sorted = seq.clone();
            sorted.sort();
            prop_assert_eq!(seq, sorted);
        }
    }

    /// DSRT admission accounting: utilization never exceeds the effective
    /// limit and releasing restores capacity.
    #[test]
    fn dsrt_admission_accounting(reqs in proptest::collection::vec((1u64..50, 50u64..100), 1..30)) {
        let mut cpu = Dsrt::new(DsrtConfig { overhead_fraction: 0.0, ..DsrtConfig::default() });
        let mut admitted = Vec::new();
        for &(slice, period) in &reqs {
            if let Ok(j) = cpu.reserve(
                SimTime::ZERO,
                SimDuration::from_millis(slice),
                SimDuration::from_millis(period),
            ) {
                admitted.push((j, slice as f64 / period as f64));
            }
            prop_assert!(cpu.reserved_utilization() <= 1.0 + 1e-9);
        }
        let expected: f64 = admitted.iter().map(|&(_, u)| u).sum();
        prop_assert!((cpu.reserved_utilization() - expected).abs() < 1e-9);
        for (j, _) in admitted {
            cpu.remove_job(SimTime::ZERO, j);
        }
        prop_assert!(cpu.reserved_utilization().abs() < 1e-9);
    }

    /// DSRT conservation: all tasks complete (given enough slack) exactly
    /// once.
    #[test]
    fn dsrt_conserves_tasks(
        reserved_tasks in proptest::collection::vec(0u64..5_000, 1..20),
        be_tasks in proptest::collection::vec(0u64..5_000, 0..20),
    ) {
        let mut cpu = Dsrt::new(DsrtConfig { overhead_fraction: 0.0, ..DsrtConfig::default() });
        let r = cpu
            .reserve(SimTime::ZERO, SimDuration::from_millis(5), SimDuration::from_millis(10))
            .unwrap();
        let be = cpu.add_job(SimTime::ZERO);
        let mut n = 0;
        for &w in &reserved_tasks {
            cpu.submit(SimTime::ZERO, r, SimDuration::from_micros(w)).unwrap();
            n += 1;
        }
        for &w in &be_tasks {
            cpu.submit(SimTime::ZERO, be, SimDuration::from_micros(w)).unwrap();
            n += 1;
        }
        let done = drain_cpu(&mut cpu, SimTime::from_secs(3600));
        prop_assert_eq!(done.len(), n);
        prop_assert_eq!(cpu.backlog_jobs(), 0);
    }

    /// Link conservation under fair share: every transfer completes, and
    /// total completion time is at least total_bytes/capacity.
    #[test]
    fn link_conserves_transfers(
        sizes in proptest::collection::vec(1u64..200_000, 1..30),
        nflows in 1usize..5,
    ) {
        let mut link = SharedLink::fair_share(1_000_000);
        let flows: Vec<_> =
            (0..nflows).map(|_| link.open_flow(SimTime::ZERO, None).unwrap()).collect();
        for (i, &s) in sizes.iter().enumerate() {
            link.send(SimTime::ZERO, flows[i % nflows], s).unwrap();
        }
        let mut done = Vec::new();
        let mut guard = 0;
        loop {
            guard += 1;
            prop_assert!(guard < 100_000, "link failed to converge");
            match link.next_event() {
                Some(t) => {
                    link.advance_to(t);
                    done.extend(link.drain_completions());
                }
                None => break,
            }
        }
        prop_assert_eq!(done.len(), sizes.len());
        let total: u64 = sizes.iter().sum();
        let min_finish = total as f64 / 1_000_000.0;
        let last = done.iter().map(|d| d.at).max().unwrap().as_secs_f64();
        // Work-conserving: finishes within a tick of the fluid bound.
        prop_assert!(last >= min_finish - 1e-3, "{} < {}", last, min_finish);
        prop_assert!(last <= min_finish + 0.05 * sizes.len() as f64 + 1e-3);
    }

    /// Reserved-link isolation: a flow's completion times depend only on
    /// its own reservation.
    #[test]
    fn reserved_link_isolation(
        rate_a in 1_000u64..100_000,
        rate_b in 1_000u64..100_000,
        bytes in 1u64..1_000_000,
    ) {
        prop_assume!(rate_a + rate_b <= 3_200_000);
        // Flow A alone.
        let mut solo = SharedLink::reserved(3_200_000);
        let fa = solo.open_flow(SimTime::ZERO, Some(rate_a)).unwrap();
        solo.send(SimTime::ZERO, fa, bytes).unwrap();
        let t_solo = solo.next_event().unwrap();
        // Flow A with a competing reserved flow B.
        let mut both = SharedLink::reserved(3_200_000);
        let fa2 = both.open_flow(SimTime::ZERO, Some(rate_a)).unwrap();
        let fb = both.open_flow(SimTime::ZERO, Some(rate_b)).unwrap();
        both.send(SimTime::ZERO, fb, bytes).unwrap();
        both.send(SimTime::ZERO, fa2, bytes).unwrap();
        both.advance_to(t_solo);
        let done = both.drain_completions();
        prop_assert!(
            done.iter().any(|d| d.flow == fa2 && d.at == t_solo),
            "reserved flow was perturbed"
        );
    }

    /// OnlineStats matches a direct two-pass computation.
    #[test]
    fn online_stats_matches_naive(xs in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        prop_assert!((s.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        prop_assert!((s.variance() - var).abs() < 1e-4 * (1.0 + var));
    }

    /// Sharded stepping is bitwise identical to serial: the same random
    /// transfer mix stepped per-domain on real threads produces the same
    /// completion stream (tags, instants) and the same link state as
    /// [`SerialStepper`], event for event.
    #[test]
    fn domain_parallel_stepping_matches_serial(
        n_servers in 1usize..7,
        chunk in 1usize..4,
        transfers in proptest::collection::vec((0usize..7, 1u64..200_000), 1..40),
    ) {
        let build = || {
            let mut domains: Vec<LinkDomain<usize>> = LinkDomain::cluster(
                ServerId::first_n(n_servers as u32),
                SharePolicy::FairShare,
                1_000_000,
            );
            for (tag, &(s, bytes)) in transfers.iter().enumerate() {
                let d = &mut domains[s % n_servers];
                let flow = d.link_mut().open_flow(SimTime::ZERO, None).unwrap();
                let xfer = d.link_mut().send(SimTime::ZERO, flow, bytes).unwrap();
                d.register(xfer, flow, tag);
            }
            domains
        };
        let (mut serial, mut sharded) = (build(), build());
        let stepper = ChunkStepper(chunk);
        let mut done_serial = 0usize;
        let mut guard = 0u32;
        loop {
            guard += 1;
            prop_assert!(guard < 10_000, "domains failed to converge");
            let next = serial.iter().filter_map(LinkDomain::next_event).min();
            prop_assert_eq!(next, sharded.iter().filter_map(LinkDomain::next_event).min());
            let Some(t) = next else { break };
            step_domains(&SerialStepper, &mut serial, t);
            step_domains(&stepper, &mut sharded, t);
            for (a, b) in serial.iter_mut().zip(sharded.iter_mut()) {
                let da: Vec<_> = a.take_pending().into_iter().map(|d| (d.xfer, d.at)).collect();
                let db: Vec<_> = b.take_pending().into_iter().map(|d| (d.xfer, d.at)).collect();
                prop_assert_eq!(&da, &db, "completion streams diverged");
                for &(x, _) in &da {
                    prop_assert_eq!(a.resolve(x), b.resolve(x));
                }
                done_serial += da.len();
                prop_assert_eq!(a.in_flight(), b.in_flight());
                prop_assert_eq!(a.link().reserved_bps(), b.link().reserved_bps());
            }
        }
        prop_assert_eq!(done_serial, transfers.len(), "every transfer completes once");
    }

    /// Forked RNG streams are reproducible and uniform draws stay in
    /// bounds.
    #[test]
    fn rng_fork_reproducible(seed in any::<u64>(), stream in any::<u64>(), bound in 1u64..1_000_000) {
        let root = Rng::new(seed);
        let mut a = root.fork(stream);
        let mut b = root.fork(stream);
        for _ in 0..32 {
            let x = a.below(bound);
            prop_assert_eq!(x, b.below(bound));
            prop_assert!(x < bound);
        }
    }

    /// The timing-wheel event queue is event-for-event identical to the
    /// reference binary-heap queue under random schedule / cancel / pop /
    /// peek traces, including `(time, seq)` tie order, tombstoned
    /// cancellations, and cancels issued after the event already fired.
    /// The hybrid heap-below-threshold routing is pinned at all three
    /// regimes: pure wheel (0), crossing mid-trace (16 — these traces grow
    /// past 16 live events and drain back), and pure heap (the default
    /// threshold, far above any trace here).
    #[test]
    fn timing_wheel_matches_reference_heap(
        threshold in proptest::sample::select(
            vec![0usize, 16, quasaq_sim::queue::DEFAULT_HEAP_THRESHOLD],
        ),
        ops in proptest::collection::vec((0u8..5, 0u64..200_000, any::<usize>()), 1..400),
    ) {
        let mut wheel: EventQueue<u32> = EventQueue::new();
        wheel.set_heap_threshold(threshold);
        let mut heap: ReferenceQueue<u32> = ReferenceQueue::new();
        // Parallel id logs: the k-th schedule produced ids[k] in each
        // queue. Popped/cancelled ids stay in the log so a later cancel
        // exercises the fired-tombstone path.
        let mut wheel_ids = Vec::new();
        let mut heap_ids = Vec::new();
        for (i, &(op, offset, pick)) in ops.iter().enumerate() {
            match op {
                // Bias towards scheduling (two opcodes) so traces grow.
                0 | 1 => {
                    wheel_ids.push(wheel.schedule_in(SimDuration::from_micros(offset), i as u32));
                    heap_ids.push(heap.schedule_in(SimDuration::from_micros(offset), i as u32));
                }
                2 => {
                    if !wheel_ids.is_empty() {
                        let k = pick % wheel_ids.len();
                        wheel.cancel(wheel_ids[k]);
                        heap.cancel(heap_ids[k]);
                    }
                }
                3 => {
                    prop_assert_eq!(wheel.pop(), heap.pop(), "pop diverged at op {}", i);
                }
                _ => {
                    prop_assert_eq!(wheel.peek_time(), heap.peek_time(), "peek diverged at op {}", i);
                }
            }
            prop_assert_eq!(wheel.live_len(), heap.live_len(), "live_len diverged at op {}", i);
        }
        // Drain both to the end: the full tails must agree element-wise.
        loop {
            let (a, b) = (wheel.pop(), heap.pop());
            prop_assert_eq!(a, b, "tail drain diverged");
            prop_assert_eq!(wheel.now(), heap.now());
            if a.is_none() {
                break;
            }
        }
    }

    /// The arena-backed `SharedLink` behaves bit-identically to the old
    /// map-based implementation under random open / close / send / advance
    /// traces, on both sharing policies: same admission results, same flow
    /// ids, same rates, same event times, and the same completion stream.
    #[test]
    fn arena_link_matches_map_oracle(
        reserved in proptest::bool::ANY,
        ops in proptest::collection::vec((0u8..6, 0u64..8, any::<usize>()), 1..250),
    ) {
        const CAPACITY: u64 = 1_000_000;
        let (mut arena, mut oracle) = if reserved {
            (SharedLink::reserved(CAPACITY), OracleLink::reserved(CAPACITY))
        } else {
            (SharedLink::fair_share(CAPACITY), OracleLink::fair_share(CAPACITY))
        };
        let mut now = SimTime::ZERO;
        let mut flows = Vec::new();
        for (i, &(op, arg, pick)) in ops.iter().enumerate() {
            match op {
                0 | 1 => {
                    // Open with a rate drawn from a small menu so Reserved
                    // links saturate and FairShare caps collide (equal-cap
                    // water-filling ties are the interesting case).
                    let rate = match arg {
                        0 => None,
                        r => Some(r * CAPACITY / 8),
                    };
                    let (ra, ro) = (arena.open_flow(now, rate), oracle.open_flow(now, rate));
                    prop_assert_eq!(&ra, &ro, "open diverged at op {}", i);
                    if let Ok(id) = ra {
                        flows.push(id);
                    }
                }
                2 => {
                    if !flows.is_empty() {
                        // Close ids even after they were closed: the
                        // idempotent path must agree too.
                        let f = flows[pick % flows.len()];
                        arena.close_flow(now, f);
                        oracle.close_flow(now, f);
                    }
                }
                3 => {
                    if !flows.is_empty() {
                        let f = flows[pick % flows.len()];
                        let bytes = (arg + 1) * 40_000;
                        prop_assert_eq!(
                            arena.send(now, f, bytes),
                            oracle.send(now, f, bytes),
                            "send diverged at op {}",
                            i
                        );
                    }
                }
                4 => {
                    now += SimDuration::from_micros(arg * 125_000);
                    arena.advance_to(now);
                    oracle.advance_to(now);
                }
                _ => {
                    prop_assert_eq!(
                        arena.drain_completions(),
                        oracle.drain_completions(),
                        "completion stream diverged at op {}",
                        i
                    );
                }
            }
            prop_assert_eq!(arena.open_flows(), oracle.open_flows());
            prop_assert_eq!(arena.backlogged_flows(), oracle.backlogged_flows());
            prop_assert_eq!(arena.backlog_bytes(), oracle.backlog_bytes(), "backlog at op {}", i);
            prop_assert_eq!(arena.reserved_bps(), oracle.reserved_bps());
            prop_assert_eq!(arena.next_event(), oracle.next_event(), "next_event at op {}", i);
            // Rates must agree per flow; the reporting order is allowed to
            // differ (slot order vs id order inside equal-cap tie groups).
            let mut ra = arena.current_rates();
            let mut ro = oracle.current_rates();
            ra.sort_by_key(|r| r.0);
            ro.sort_by_key(|r| r.0);
            prop_assert_eq!(ra, ro, "rates diverged at op {}", i);
            for &f in &flows {
                prop_assert_eq!(arena.flow_backlog_bytes(f), oracle.flow_backlog_bytes(f));
            }
        }
        // Run every queued byte to completion and compare the final tally.
        loop {
            let (na, no) = (arena.next_event(), oracle.next_event());
            prop_assert_eq!(na, no, "final drain event times diverged");
            let Some(t) = na else { break };
            arena.advance_to(t);
            oracle.advance_to(t);
        }
        prop_assert_eq!(arena.drain_completions(), oracle.drain_completions());
        prop_assert_eq!(arena.backlog_bytes(), 0.0);
    }
}
