//! Edge-case coverage for `sim::linkdyn` trajectory sampling: diurnal
//! wrap-around across period boundaries, the fading clamp near zero
//! capacity, degenerate single-state Markov chains, and sweep-width
//! independence of per-server streams.

use quasaq_sim::linkdyn::{LinkModel, LinkPlan, LinkSpec, MIN_FACTOR};
use quasaq_sim::{ServerId, SimDuration, SimTime};

fn one_server() -> impl Iterator<Item = ServerId> {
    ServerId::first_n(1)
}

fn factors_by_time(plan: &LinkPlan, server: ServerId) -> Vec<(f64, f64)> {
    plan.changes
        .iter()
        .filter(|c| c.server == server)
        .map(|c| (c.at.as_secs_f64(), c.factor))
        .collect()
}

/// The diurnal staircase is periodic: set-points exactly one period apart
/// carry the same factor (up to float argument-reduction noise), including
/// across the wrap-around where `(t + phase) / period` passes an integer.
#[test]
fn diurnal_wraps_around_period_boundary() {
    let period = SimDuration::from_secs(20);
    let step = SimDuration::from_secs(5);
    let horizon = SimTime::from_secs(45);
    let plan = LinkPlan::sample(
        99,
        one_server(),
        horizon,
        LinkModel::Diurnal { trough: 0.3, period, step },
    );
    let points = factors_by_time(&plan, ServerId(0));
    // Staircase from t = step while t < horizon: 5, 10, ..., 40.
    let times: Vec<f64> = points.iter().map(|&(t, _)| t).collect();
    assert_eq!(times, vec![5.0, 10.0, 15.0, 20.0, 25.0, 30.0, 35.0, 40.0]);
    for &(t, f) in &points {
        assert!((0.3..=1.0).contains(&f), "factor {f} at t={t} outside [trough, 1]");
    }
    // Each point vs. its one-period-later twin.
    for &(t, f) in &points {
        if let Some(&(_, g)) = points.iter().find(|&&(u, _)| u == t + period.as_secs_f64()) {
            assert!(
                (f - g).abs() < 1e-9,
                "diurnal factor not periodic: f({t}) = {f} vs f({}) = {g}",
                t + period.as_secs_f64()
            );
        }
    }
}

/// A diurnal trough of 1.0 degenerates to a flat line at full capacity —
/// the raised cosine has zero amplitude.
#[test]
fn diurnal_unit_trough_is_flat() {
    let plan = LinkPlan::sample(
        7,
        one_server(),
        SimTime::from_secs(30),
        LinkModel::Diurnal {
            trough: 1.0,
            period: SimDuration::from_secs(10),
            step: SimDuration::from_secs(3),
        },
    );
    assert!(!plan.is_empty());
    for c in &plan.changes {
        assert!((c.factor - 1.0).abs() < 1e-12, "expected flat 1.0, got {}", c.factor);
    }
}

/// Fading with a near-zero mean and wide spread would sample negative
/// capacity without the clamp; every emitted factor must land inside
/// `[MIN_FACTOR, 1]`, and the floor must actually engage.
#[test]
fn fading_clamps_at_zero_capacity() {
    let coherence = SimDuration::from_secs(1);
    let plan = LinkPlan::sample(
        5,
        one_server(),
        SimTime::from_secs(200),
        LinkModel::Fading { mean: 0.06, spread: 0.5, coherence },
    );
    assert!(!plan.is_empty());
    let mut floored = 0usize;
    let mut ceilinged = 0usize;
    for c in &plan.changes {
        assert!(
            (MIN_FACTOR..=1.0).contains(&c.factor),
            "factor {} escaped the clamp at t={:?}",
            c.factor,
            c.at
        );
        if c.factor == MIN_FACTOR {
            floored += 1;
        }
        if c.factor == 1.0 {
            ceilinged += 1;
        }
    }
    // With mean 0.06 and sigma 0.5 roughly half the raw draws are
    // negative, so the floor must fire many times; the ceiling fires on
    // the upper tail too.
    assert!(floored > 20, "clamp floor engaged only {floored} times");
    assert!(ceilinged > 0, "clamp ceiling never engaged");
    // Resampling starts at t = coherence, never at 0.
    let first = plan.changes.iter().map(|c| c.at).min().expect("non-empty");
    assert_eq!(first, SimTime::ZERO + coherence);
}

/// Zero spread collapses fading to a constant factor at `mean`.
#[test]
fn fading_zero_spread_is_constant() {
    let plan = LinkPlan::sample(
        11,
        one_server(),
        SimTime::from_secs(20),
        LinkModel::Fading { mean: 0.4, spread: 0.0, coherence: SimDuration::from_secs(2) },
    );
    assert!(!plan.is_empty());
    for c in &plan.changes {
        assert_eq!(c.factor, 0.4);
    }
}

/// A Markov chain whose three states share one factor is effectively
/// single-state: the chain still transitions on its dwell clock, but every
/// emitted set-point carries the same factor, strictly inside the horizon.
#[test]
fn single_state_markov_emits_constant_factor() {
    let horizon = SimTime::from_secs(300);
    let plan = LinkPlan::sample(
        3,
        one_server(),
        horizon,
        LinkModel::Markov {
            factors: [0.55, 0.55, 0.55],
            dwell: [
                SimDuration::from_secs(5),
                SimDuration::from_secs(5),
                SimDuration::from_secs(5),
            ],
        },
    );
    assert!(!plan.is_empty(), "300 s horizon with 5 s dwells must transition");
    for c in &plan.changes {
        assert_eq!(c.factor, 0.55, "single-state chain emitted a different factor");
        assert!(c.at > SimTime::ZERO, "chain starts good and only emits on transition");
        assert!(c.at < horizon, "set-point at {:?} past horizon", c.at);
    }
    // Set-points are time-ordered within the server's trajectory.
    for pair in plan.changes.windows(2) {
        assert!(pair[0].at <= pair[1].at);
    }
}

/// The good-state start means a chain that never leaves its first dwell
/// emits nothing: a horizon far shorter than the dwell mean usually yields
/// an empty plan, never a set-point at t = 0.
#[test]
fn markov_good_start_emits_nothing_before_first_transition() {
    let plan = LinkPlan::sample(
        17,
        one_server(),
        SimTime::from_micros(1),
        LinkModel::Markov {
            factors: [1.0, 0.5, 0.2],
            dwell: [
                SimDuration::from_secs(1_000),
                SimDuration::from_secs(1_000),
                SimDuration::from_secs(1_000),
            ],
        },
    );
    assert!(plan.is_empty(), "no transition fits inside a 1 µs horizon");
}

/// Server `k`'s trajectory forks its own stream from the seed, so adding
/// servers to the sweep cannot perturb existing trajectories.
#[test]
fn trajectories_are_independent_of_sweep_width() {
    let model = LinkModel::Fading { mean: 0.5, spread: 0.2, coherence: SimDuration::from_secs(3) };
    let horizon = SimTime::from_secs(60);
    let narrow = LinkPlan::sample(42, ServerId::first_n(2), horizon, model);
    let wide = LinkPlan::sample(42, ServerId::first_n(4), horizon, model);
    for server in ServerId::first_n(2) {
        let a: Vec<LinkSpec> =
            narrow.changes.iter().filter(|c| c.server == server).copied().collect();
        let b: Vec<LinkSpec> =
            wide.changes.iter().filter(|c| c.server == server).copied().collect();
        assert_eq!(a, b, "server {server:?} trajectory changed with sweep width");
    }
    // And the sample is replayable bit-for-bit.
    assert_eq!(narrow, LinkPlan::sample(42, ServerId::first_n(2), horizon, model));
}
