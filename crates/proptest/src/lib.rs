//! Offline stand-in for the `proptest` crate.
//!
//! The container that builds this workspace has no access to crates.io, so
//! the registry `proptest` dev-dependency can never resolve. This crate
//! re-implements exactly the API subset the workspace's property tests use
//! (the `proptest!` macro, `prop_assert*`/`prop_assume`, integer/float range
//! strategies, tuples, `collection::vec`, `sample::select`, `bool::ANY`, and
//! `any::<T>()`) on top of a deterministic SplitMix64 generator.
//!
//! Differences from the real crate, by design:
//! - no shrinking: a failing case reports its inputs via the normal
//!   `assert!` panic message, but is not minimized;
//! - deterministic seeding: each test derives its stream from a hash of its
//!   `module_path!()::name`, so failures reproduce exactly across runs;
//! - `prop_assume!` skips the current case instead of resampling it.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Mirror of `proptest::test_runner::Config` — only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic SplitMix64 stream. Public so the `proptest!` expansion can
/// drive it, but not part of the real proptest surface.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed ^ 0x9e37_79b9_7f4a_7c15 }
    }

    /// Seed a stream from a test's fully-qualified name (FNV-1a hash), so
    /// every test owns an independent, stable sequence of cases.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng::new(h)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`; `bound == 0` yields 0.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }

    /// Uniform draw in `[0, bound)` over the full u128 span (used so
    /// inclusive ranges like `i64::MIN..=i64::MAX` cannot overflow).
    pub fn below_u128(&mut self, bound: u128) -> u128 {
        if bound == 0 {
            0
        } else {
            let wide = (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64());
            wide % bound
        }
    }

    /// Uniform f64 in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Generation-only mirror of `proptest::strategy::Strategy`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + rng.below_u128(span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + rng.below_u128(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategies {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (S0.0, S1.1)
    (S0.0, S1.1, S2.2)
    (S0.0, S1.1, S2.2, S3.3)
    (S0.0, S1.1, S2.2, S3.3, S4.4)
    (S0.0, S1.1, S2.2, S3.3, S4.4, S5.5)
}

/// Types with a canonical "any value" strategy (`any::<T>()`).
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric spread; real proptest also generates
        // specials, but no test here relies on NaN/inf inputs.
        (rng.unit_f64() - 0.5) * 2e12
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub mod bool {
    //! Mirror of `proptest::bool`.

    /// Strategy for an unbiased boolean (`prop::bool::ANY`).
    #[derive(Debug, Clone, Copy)]
    pub struct BoolAny;

    pub const ANY: BoolAny = BoolAny;

    impl crate::Strategy for BoolAny {
        type Value = bool;

        fn generate(&self, rng: &mut crate::TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod collection {
    //! Mirror of `proptest::collection` (only `vec`).

    use std::ops::Range;

    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// `vec(strategy, len_range)`: a `Vec` whose length is drawn uniformly
    /// from `len_range` and whose elements come from `strategy`.
    pub fn vec<S: crate::Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: crate::Strategy> crate::Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut crate::TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod sample {
    //! Mirror of `proptest::sample` (only `select`).

    #[derive(Debug, Clone)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// Uniformly pick one of the supplied options.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select { options }
    }

    impl<T: Clone> crate::Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut crate::TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].clone()
        }
    }
}

/// Assert inside a property; maps straight onto `assert!` (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skip the current case when its inputs don't satisfy a precondition.
/// Expands to `continue` targeting the case loop `proptest!` generates, so
/// it must appear at the top level of a property body (which is how every
/// test in this workspace uses it).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

/// Mirror of the `proptest!` macro: turns `fn name(arg in strategy, ...)`
/// items into `#[test]` functions that run `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($body:tt)* ) => {
        $crate::__proptest_items! { ($cfg) $($body)* }
    };
    ( $($body:tt)* ) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($body)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    (
        ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[allow(clippy::needless_range_loop)]
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __seeder =
                $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::TestRng::new(__seeder.next_u64());
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                $body
            }
        }

        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

pub mod prelude {
    //! Mirror of `proptest::prelude`.

    pub use crate::{any, Arbitrary, ProptestConfig, Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
        pub use crate::sample;
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_hit_bounds_and_stay_inside() {
        let mut rng = TestRng::for_test("bounds");
        let (mut lo_seen, mut hi_seen) = (false, false);
        for _ in 0..2000 {
            let v = Strategy::generate(&(3u8..=5), &mut rng);
            assert!((3..=5).contains(&v));
            lo_seen |= v == 3;
            hi_seen |= v == 5;
        }
        assert!(lo_seen && hi_seen, "inclusive range must reach both endpoints");

        for _ in 0..2000 {
            let v = Strategy::generate(&(-10i64..10), &mut rng);
            assert!((-10..10).contains(&v));
            let f = Strategy::generate(&(-1.5f64..2.5), &mut rng);
            assert!((-1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn full_width_inclusive_range_does_not_overflow() {
        let mut rng = TestRng::for_test("full-width");
        for _ in 0..100 {
            let _ = Strategy::generate(&(i64::MIN..=i64::MAX), &mut rng);
            let _ = Strategy::generate(&(u64::MIN..=u64::MAX), &mut rng);
        }
    }

    #[test]
    fn composite_strategies_generate() {
        let mut rng = TestRng::for_test("composite");
        let strat = prop::collection::vec((0u32..10, prop::bool::ANY), 1..8);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((1..8).contains(&v.len()));
            assert!(v.iter().all(|(n, _)| *n < 10));
        }
        let pick = prop::sample::select(vec![8u8, 12, 16, 24]);
        for _ in 0..50 {
            assert!([8, 12, 16, 24].contains(&pick.generate(&mut rng)));
        }
        let mapped = (0u64..5).prop_map(|n| n * 2);
        for _ in 0..50 {
            assert!(mapped.generate(&mut rng) % 2 == 0);
        }
    }

    #[test]
    fn streams_are_deterministic_per_test_name() {
        let mut a = TestRng::for_test("same");
        let mut b = TestRng::for_test("same");
        let mut c = TestRng::for_test("different");
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: doc comments, `#[test]`, multiple args,
        /// trailing comma, and `prop_assume!` all expand.
        #[test]
        fn macro_roundtrip(a in 0u64..100, b in any::<bool>(),) {
            prop_assume!(a != 99);
            prop_assert!(a < 99);
            prop_assert_eq!(b as u64 <= 1, true);
            prop_assert_ne!(a, 100);
        }
    }
}
