//! Offline replication and QoS sampling.
//!
//! "Two major activities, offline replication and QoS sampling, are
//! performed for each media object inserted into the database. As a result
//! of those, relevant information such as the quality, location and
//! resource consumption pattern of each replica of the newly-inserted
//! object is fed into the Distributed Metadata Engine as metadata."
//!
//! The paper's experiments fully replicate every quality tier on every
//! server ("three to four copies … fully replicated on three servers so
//! that each server has all copies"); [`Placement::Full`] reproduces that.
//! [`Placement::RoundRobin`] spreads tiers across servers for
//! storage-constrained deployments. A simple access-frequency-driven
//! online migration pass (the paper defers dynamic replication to a
//! follow-up paper) is provided as an extension.

use crate::engine::MetadataEngine;
use crate::metadata::{ObjectRecord, QosProfile};
use crate::object::{ObjectStore, PhysicalObject, PhysicalOid, StoreError};
use quasaq_media::{DeliveryCostModel, Library, VideoId};
use quasaq_sim::ServerId;
use std::collections::BTreeMap;

/// Computes static QoS profiles for replicas — the paper's "static QoS
/// mapping performed by the QoS sampler".
#[derive(Debug, Clone, Copy, Default)]
pub struct QosSampler {
    /// The delivery cost model shared with the streaming executor.
    pub cost: DeliveryCostModel,
}

impl QosSampler {
    /// Samples the untransformed-delivery profile of a replica encoded at
    /// `rate_bps` and `fps`.
    pub fn profile(&self, rate_bps: u64, fps: f64) -> QosProfile {
        QosProfile {
            cpu_share: self.cost.stream_cpu_share(rate_bps as f64, fps),
            net_bps: rate_bps as f64,
            disk_bps: rate_bps as f64,
            memory_bytes: self.cost.buffer_bytes(rate_bps as f64),
        }
    }
}

/// Replica placement strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Every quality tier of every video on every server (the paper's
    /// experimental setup).
    Full,
    /// Tier `t` of video `v` goes to server `(v + t) mod n` — one copy per
    /// tier, spread across servers.
    RoundRobin,
    /// Tier `t` of video `v` goes to servers `(v + t + c) mod n` for
    /// `c in 0..copies` — `copies`-way replication without `Full`'s
    /// `videos x tiers x servers` object blow-up, so hundred-server
    /// testbeds stay linear in catalog size. `Spread { copies: 1 }` is
    /// `RoundRobin`; `copies >= n` degenerates to `Full` for that video.
    Spread {
        /// Replicas per tier (clamped to the server count).
        copies: u32,
    },
}

/// Performs offline replication of a [`Library`] onto a set of object
/// stores, registering everything with the metadata engine.
pub struct ReplicationPlanner {
    sampler: QosSampler,
    placement: Placement,
    next_oid: u64,
}

impl ReplicationPlanner {
    /// Creates a planner.
    pub fn new(sampler: QosSampler, placement: Placement) -> Self {
        ReplicationPlanner { sampler, placement, next_oid: 0 }
    }

    /// Replicates the whole library. `stores` must cover every server the
    /// placement targets. Returns the number of physical objects created.
    pub fn replicate(
        &mut self,
        library: &Library,
        stores: &mut BTreeMap<ServerId, ObjectStore>,
        engine: &mut MetadataEngine,
    ) -> Result<usize, StoreError> {
        let servers: Vec<ServerId> = stores.keys().copied().collect();
        assert!(!servers.is_empty(), "no object stores");
        let mut created = 0;
        for entry in library.entries() {
            engine.insert_video(entry.meta.clone());
            for (tier_idx, replica) in entry.replicas.iter().enumerate() {
                let targets: Vec<ServerId> = match self.placement {
                    Placement::Full => servers.clone(),
                    Placement::RoundRobin => {
                        let idx = (entry.meta.id.0 as usize + tier_idx) % servers.len();
                        vec![servers[idx]]
                    }
                    Placement::Spread { copies } => {
                        let n = servers.len();
                        let base = entry.meta.id.0 as usize + tier_idx;
                        (0..(copies as usize).clamp(1, n))
                            .map(|c| servers[(base + c) % n])
                            .collect()
                    }
                };
                for server in targets {
                    let oid = PhysicalOid(self.next_oid);
                    self.next_oid += 1;
                    let object = PhysicalObject {
                        oid,
                        video: entry.meta.id,
                        tier: replica.tier,
                        spec: replica.spec,
                        rate_bps: replica.rate_bps,
                        bytes: replica.estimated_bytes(entry.meta.duration),
                        server,
                        trace_seed: replica.trace_seed(&entry.meta),
                    };
                    let profile =
                        self.sampler.profile(replica.rate_bps, replica.spec.frame_rate.fps());
                    let store = stores.get_mut(&server).expect("placement targets a known store");
                    store.insert(object.clone())?;
                    if let Err(err) = engine.insert_object(object, profile) {
                        // Roll back the disk charge so a malformed
                        // placement leaves store and metadata consistent.
                        let _ = store.remove(oid);
                        return Err(err);
                    }
                    created += 1;
                }
            }
        }
        Ok(created)
    }
}

/// Access statistics driving online migration (extension beyond the
/// paper's prototype, which defers dynamic replication to future work).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AccessStats {
    counts: BTreeMap<(VideoId, ServerId), u64>,
}

impl AccessStats {
    /// Creates empty statistics.
    pub fn new() -> Self {
        AccessStats::default()
    }

    /// Records one access of `video` served by `server`.
    pub fn record(&mut self, video: VideoId, server: ServerId) {
        *self.counts.entry((video, server)).or_insert(0) += 1;
    }

    /// Total accesses of a video across servers.
    pub fn video_total(&self, video: VideoId) -> u64 {
        self.counts.iter().filter(|((v, _), _)| *v == video).map(|(_, &c)| c).sum()
    }

    /// Total accesses served by a server.
    pub fn server_total(&self, server: ServerId) -> u64 {
        self.counts.iter().filter(|((_, s), _)| *s == server).map(|(_, &c)| c).sum()
    }
}

/// One migration decision: copy replica `oid` to `to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Migration {
    /// Replica to copy.
    pub oid: PhysicalOid,
    /// Destination server.
    pub to: ServerId,
}

impl ReplicationPlanner {
    /// Executes previously planned migrations: copies each replica to its
    /// destination store (fresh physical OID, same quality and profile)
    /// and registers the copy with the metadata engine. Returns how many
    /// copies were created; migrations whose source vanished are skipped.
    pub fn apply_migrations(
        &mut self,
        migrations: &[Migration],
        stores: &mut BTreeMap<ServerId, ObjectStore>,
        engine: &mut MetadataEngine,
    ) -> Result<usize, StoreError> {
        // Guard against OID collisions when this planner did not perform
        // the original replication.
        if let Some(max) = engine.max_oid() {
            self.next_oid = self.next_oid.max(max.0 + 1);
        }
        let mut applied = 0;
        for m in migrations {
            let Some(source) = engine.record(m.oid).cloned() else { continue };
            if source.object.server == m.to {
                continue;
            }
            let mut object = source.object.clone();
            object.oid = PhysicalOid(self.next_oid);
            self.next_oid += 1;
            object.server = m.to;
            let store = stores.get_mut(&m.to).expect("migration targets a known store");
            let oid = object.oid;
            store.insert(object.clone())?;
            if let Err(err) = engine.insert_object(object, source.profile) {
                let _ = store.remove(oid);
                return Err(err);
            }
            applied += 1;
        }
        Ok(applied)
    }
}

/// Proposes replica copies so the layout "converges to the current status
/// of user requests": for every hot video (at least `hot_threshold`
/// recorded accesses), each quality tier missing from the least-loaded
/// server gets copied there. Cold videos are untouched.
pub fn plan_migrations(
    engine: &MetadataEngine,
    stats: &AccessStats,
    hot_threshold: u64,
) -> Vec<Migration> {
    let servers: Vec<ServerId> = engine.sites().collect();
    let mut migrations = Vec::new();
    let videos: Vec<VideoId> = engine.videos().map(|m| m.id).collect();
    for video in videos {
        if stats.video_total(video) < hot_threshold {
            continue;
        }
        let replicas = engine.replicas(video);
        let Some(&coldest) = servers.iter().min_by_key(|&&s| (stats.server_total(s), s)) else {
            continue;
        };
        // Distinct tiers in stable order (highest rate first).
        let mut tiers: Vec<&ObjectRecord> = replicas.clone();
        tiers.sort_by(|a, b| {
            b.object.rate_bps.cmp(&a.object.rate_bps).then(a.object.oid.cmp(&b.object.oid))
        });
        tiers.dedup_by_key(|r| r.object.tier);
        for rec in tiers {
            let already_there = replicas
                .iter()
                .any(|r| r.object.server == coldest && r.object.tier == rec.object.tier);
            if !already_there {
                migrations.push(Migration { oid: rec.object.oid, to: coldest });
            }
        }
    }
    migrations
}

#[cfg(test)]
mod tests {
    use super::*;
    use quasaq_media::LibraryConfig;

    fn setup(placement: Placement) -> (Library, BTreeMap<ServerId, ObjectStore>, MetadataEngine) {
        let library = Library::generate(42, &LibraryConfig::default());
        let mut stores = BTreeMap::new();
        for s in ServerId::first_n(3) {
            stores.insert(s, ObjectStore::new(s, 1 << 40));
        }
        let mut engine = MetadataEngine::new(ServerId::first_n(3), 16);
        let mut planner = ReplicationPlanner::new(QosSampler::default(), placement);
        planner.replicate(&library, &mut stores, &mut engine).unwrap();
        (library, stores, engine)
    }

    #[test]
    fn full_replication_puts_every_copy_everywhere() {
        let (library, stores, engine) = setup(Placement::Full);
        let total_tiers: usize = library.entries().iter().map(|e| e.replicas.len()).sum();
        assert_eq!(engine.object_count(), total_tiers * 3);
        for entry in library.entries() {
            let reps = engine.replicas(entry.meta.id);
            assert_eq!(reps.len(), entry.replicas.len() * 3);
            // Each server holds all tiers of this video.
            for s in ServerId::first_n(3) {
                let on_s = reps.iter().filter(|r| r.object.server == s).count();
                assert_eq!(on_s, entry.replicas.len());
            }
        }
        for store in stores.values() {
            assert_eq!(store.object_count(), total_tiers);
        }
    }

    #[test]
    fn round_robin_places_one_copy_per_tier() {
        let (library, _stores, engine) = setup(Placement::RoundRobin);
        let total_tiers: usize = library.entries().iter().map(|e| e.replicas.len()).sum();
        assert_eq!(engine.object_count(), total_tiers);
        // Tiers of one video land on distinct servers (3-4 tiers, 3
        // servers -> at least 3 distinct).
        let entry = &library.entries()[0];
        let reps = engine.replicas(entry.meta.id);
        let mut servers: Vec<ServerId> = reps.iter().map(|r| r.object.server).collect();
        servers.sort();
        servers.dedup();
        assert!(servers.len() >= entry.replicas.len().min(3));
    }

    #[test]
    fn spread_places_exactly_copies_per_tier_on_distinct_servers() {
        let (library, _stores, engine) = setup(Placement::Spread { copies: 2 });
        let total_tiers: usize = library.entries().iter().map(|e| e.replicas.len()).sum();
        assert_eq!(engine.object_count(), total_tiers * 2);
        for entry in library.entries() {
            let reps = engine.replicas(entry.meta.id);
            for replica in &entry.replicas {
                let holders: Vec<ServerId> = reps
                    .iter()
                    .filter(|r| r.object.tier == replica.tier)
                    .map(|r| r.object.server)
                    .collect();
                assert_eq!(holders.len(), 2, "two copies of every tier");
                assert_ne!(holders[0], holders[1], "copies land on distinct servers");
            }
        }
    }

    #[test]
    fn spread_clamps_copies_to_the_cluster() {
        // copies > n degenerates to full replication, never a double-place.
        let (library, _stores, engine) = setup(Placement::Spread { copies: 99 });
        let total_tiers: usize = library.entries().iter().map(|e| e.replicas.len()).sum();
        assert_eq!(engine.object_count(), total_tiers * 3);
    }

    #[test]
    fn sampler_profiles_are_registered() {
        let (_, _, engine) = setup(Placement::Full);
        for meta in engine.videos() {
            for rec in engine.replicas(meta.id) {
                assert!(rec.profile.cpu_share > 0.0);
                assert_eq!(rec.profile.net_bps, rec.object.rate_bps as f64);
                assert!(rec.profile.memory_bytes > 0.0);
            }
        }
    }

    #[test]
    fn disk_accounting_reflects_replicas() {
        let (library, stores, _) = setup(Placement::Full);
        let per_server_bytes: u64 = library
            .entries()
            .iter()
            .flat_map(|e| e.replicas.iter().map(move |r| r.estimated_bytes(e.meta.duration)))
            .sum();
        for store in stores.values() {
            assert_eq!(store.used_bytes(), per_server_bytes);
        }
    }

    #[test]
    fn disk_full_propagates() {
        let library = Library::generate(42, &LibraryConfig::default());
        let mut stores = BTreeMap::new();
        // One tiny store: replication must fail.
        stores.insert(ServerId(0), ObjectStore::new(ServerId(0), 1_000));
        let mut engine = MetadataEngine::new([ServerId(0)], 4);
        let mut planner = ReplicationPlanner::new(QosSampler::default(), Placement::Full);
        assert!(matches!(
            planner.replicate(&library, &mut stores, &mut engine),
            Err(StoreError::DiskFull { .. })
        ));
    }

    #[test]
    fn malformed_placement_errors_instead_of_aborting() {
        let library = Library::generate(42, &LibraryConfig::default());
        // The stores cover a server the metadata engine does not span —
        // previously this placement aborted the process via panic.
        let mut stores = BTreeMap::new();
        stores.insert(ServerId(7), ObjectStore::new(ServerId(7), 1 << 40));
        let mut engine = MetadataEngine::new([ServerId(0)], 4);
        let mut planner = ReplicationPlanner::new(QosSampler::default(), Placement::Full);
        let err = planner.replicate(&library, &mut stores, &mut engine).unwrap_err();
        assert_eq!(err, StoreError::UnknownSite(ServerId(7)));
        // The failed registration rolled back its disk charge.
        assert_eq!(stores[&ServerId(7)].used_bytes(), 0);
        assert_eq!(engine.object_count(), 0);
    }

    #[test]
    fn malformed_migration_errors_and_rolls_back() {
        let (_, mut stores, mut engine) = setup(Placement::RoundRobin);
        let existing = engine.replicas(VideoId(0))[0].object.clone();
        // Target store exists but the engine never registered the site.
        let rogue = ServerId(9);
        stores.insert(rogue, ObjectStore::new(rogue, 1 << 40));
        let migrations = vec![Migration { oid: existing.oid, to: rogue }];
        let mut planner = ReplicationPlanner::new(QosSampler::default(), Placement::RoundRobin);
        let err = planner.apply_migrations(&migrations, &mut stores, &mut engine).unwrap_err();
        assert_eq!(err, StoreError::UnknownSite(rogue));
        assert_eq!(stores[&rogue].used_bytes(), 0);
    }

    #[test]
    fn migration_targets_hot_videos_on_cold_servers() {
        let (_, _, engine) = setup(Placement::RoundRobin);
        let mut stats = AccessStats::new();
        // Video 0 is hot and all load lands on server 0.
        for _ in 0..100 {
            stats.record(VideoId(0), ServerId(0));
        }
        stats.record(VideoId(1), ServerId(1));
        let migrations = plan_migrations(&engine, &stats, 50);
        // Every tier of the hot video missing from the coldest server
        // (server 2, which serves nothing) is proposed.
        let replicas = engine.replicas(VideoId(0));
        let mut missing_tiers: Vec<&str> = replicas.iter().map(|r| r.object.tier).collect();
        missing_tiers.sort();
        missing_tiers.dedup();
        let expected = missing_tiers
            .iter()
            .filter(|t| {
                !replicas.iter().any(|r| r.object.server == ServerId(2) && &r.object.tier == *t)
            })
            .count();
        assert_eq!(migrations.len(), expected);
        assert!(!migrations.is_empty());
        assert!(migrations.iter().all(|m| m.to == ServerId(2)));
        assert_eq!(stats.video_total(VideoId(0)), 100);
        assert_eq!(stats.server_total(ServerId(0)), 100);
    }

    #[test]
    fn no_migrations_below_threshold() {
        let (_, _, engine) = setup(Placement::RoundRobin);
        let stats = AccessStats::new();
        assert!(plan_migrations(&engine, &stats, 1).is_empty());
    }

    #[test]
    fn apply_migrations_copies_replicas() {
        let (_, mut stores, mut engine) = setup(Placement::RoundRobin);
        let mut stats = AccessStats::new();
        for _ in 0..100 {
            stats.record(VideoId(0), ServerId(0));
        }
        let migrations = plan_migrations(&engine, &stats, 50);
        assert!(!migrations.is_empty());
        let before = engine.replicas(VideoId(0)).len();
        // A fresh planner (simulating a later maintenance pass) must not
        // collide with existing OIDs.
        let mut planner = ReplicationPlanner::new(QosSampler::default(), Placement::RoundRobin);
        let applied = planner.apply_migrations(&migrations, &mut stores, &mut engine).unwrap();
        assert_eq!(applied, migrations.len());
        let after = engine.replicas(VideoId(0));
        assert_eq!(after.len(), before + applied);
        // The copy landed on the planned server with the same tier.
        let m = migrations[0];
        let source_tier = engine.record(m.oid).unwrap().object.tier;
        assert!(after.iter().any(|r| r.object.server == m.to && r.object.tier == source_tier));
        // OIDs stay unique.
        let mut oids: Vec<_> = after.iter().map(|r| r.object.oid).collect();
        oids.sort();
        oids.dedup();
        assert_eq!(oids.len(), before + applied);
    }

    #[test]
    fn apply_migrations_skips_same_server_and_missing() {
        let (_, mut stores, mut engine) = setup(Placement::RoundRobin);
        let existing = engine.replicas(VideoId(0))[0].object.clone();
        let migrations = vec![
            // No-op: already on that server.
            Migration { oid: existing.oid, to: existing.server },
            // Missing source.
            Migration { oid: crate::object::PhysicalOid(9_999_999), to: ServerId(0) },
        ];
        let mut planner = ReplicationPlanner::new(QosSampler::default(), Placement::RoundRobin);
        let applied = planner.apply_migrations(&migrations, &mut stores, &mut engine).unwrap();
        assert_eq!(applied, 0);
    }
}
