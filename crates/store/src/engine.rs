//! The Distributed Metadata Engine.
//!
//! "We distribute the metadata in various locations enabling ease of use
//! and migration. Caching is used to accelerate non-local metadata
//! accesses." Content metadata is small and fully replicated; object
//! records are partitioned by owning server, and each site keeps a
//! bounded FIFO cache of remote records with hit/miss accounting.

use crate::metadata::{ObjectRecord, QosProfile};
use crate::object::{PhysicalObject, PhysicalOid, StoreError};
use quasaq_media::{VideoId, VideoMeta};
use quasaq_sim::ServerId;
use std::collections::{BTreeMap, HashMap, VecDeque};

/// Per-site cache of remote object records.
#[derive(Debug, Default)]
struct SiteCache {
    entries: HashMap<PhysicalOid, ObjectRecord>,
    order: VecDeque<PhysicalOid>,
    capacity: usize,
    hits: u64,
    misses: u64,
}

impl SiteCache {
    fn new(capacity: usize) -> Self {
        SiteCache { capacity, ..Default::default() }
    }

    fn get(&mut self, oid: PhysicalOid) -> Option<ObjectRecord> {
        match self.entries.get(&oid) {
            Some(rec) => {
                self.hits += 1;
                Some(rec.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    fn put(&mut self, rec: ObjectRecord) {
        if self.capacity == 0 {
            return;
        }
        let oid = rec.object.oid;
        if self.entries.insert(oid, rec).is_none() {
            self.order.push_back(oid);
            while self.order.len() > self.capacity {
                if let Some(evict) = self.order.pop_front() {
                    self.entries.remove(&evict);
                }
            }
        }
    }

    fn invalidate(&mut self, oid: PhysicalOid) {
        self.entries.remove(&oid);
        self.order.retain(|&o| o != oid);
    }
}

/// Cache hit/miss statistics for one site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Remote lookups served from the local cache.
    pub hits: u64,
    /// Remote lookups that had to go to the owning site.
    pub misses: u64,
}

/// The distributed metadata engine.
#[derive(Debug)]
pub struct MetadataEngine {
    /// Fully replicated content metadata.
    content: BTreeMap<VideoId, VideoMeta>,
    /// Object records partitioned by owning server.
    sites: BTreeMap<ServerId, BTreeMap<PhysicalOid, ObjectRecord>>,
    /// Distribution metadata: logical OID -> replica locations.
    directory: BTreeMap<VideoId, Vec<(PhysicalOid, ServerId)>>,
    /// Per-site caches of remote records.
    caches: BTreeMap<ServerId, SiteCache>,
}

impl MetadataEngine {
    /// Creates an engine for the given sites, each with a remote-record
    /// cache of `cache_capacity` entries.
    pub fn new(servers: impl IntoIterator<Item = ServerId>, cache_capacity: usize) -> Self {
        let mut sites = BTreeMap::new();
        let mut caches = BTreeMap::new();
        for s in servers {
            sites.insert(s, BTreeMap::new());
            caches.insert(s, SiteCache::new(cache_capacity));
        }
        MetadataEngine { content: BTreeMap::new(), sites, directory: BTreeMap::new(), caches }
    }

    /// Registers a logical video's content metadata.
    pub fn insert_video(&mut self, meta: VideoMeta) {
        self.content.insert(meta.id, meta);
    }

    /// Content metadata of a video.
    pub fn video(&self, id: VideoId) -> Option<&VideoMeta> {
        self.content.get(&id)
    }

    /// All registered videos in id order.
    pub fn videos(&self) -> impl Iterator<Item = &VideoMeta> {
        self.content.values()
    }

    /// Registers a stored replica and its QoS profile; updates the
    /// distribution directory.
    ///
    /// A placement naming a server this engine does not span is rejected
    /// with [`StoreError::UnknownSite`] before any state is touched, so a
    /// malformed placement leaves directory and partitions consistent.
    pub fn insert_object(
        &mut self,
        object: PhysicalObject,
        profile: QosProfile,
    ) -> Result<(), StoreError> {
        let Some(site) = self.sites.get_mut(&object.server) else {
            return Err(StoreError::UnknownSite(object.server));
        };
        self.directory.entry(object.video).or_default().push((object.oid, object.server));
        site.insert(object.oid, ObjectRecord { object, profile });
        Ok(())
    }

    /// Removes a replica from its site and the directory, invalidating
    /// caches.
    pub fn remove_object(&mut self, oid: PhysicalOid) -> Option<ObjectRecord> {
        let mut removed = None;
        for site in self.sites.values_mut() {
            if let Some(rec) = site.remove(&oid) {
                removed = Some(rec);
                break;
            }
        }
        if let Some(rec) = &removed {
            if let Some(locs) = self.directory.get_mut(&rec.object.video) {
                locs.retain(|&(o, _)| o != oid);
            }
            for cache in self.caches.values_mut() {
                cache.invalidate(oid);
            }
        }
        removed
    }

    /// All replica records of a logical video, across all sites — the
    /// Plan Generator's raw material ("A given logical object may be
    /// replicated at multiple sites and further with different formats").
    pub fn replicas(&self, video: VideoId) -> Vec<&ObjectRecord> {
        let Some(locs) = self.directory.get(&video) else { return Vec::new() };
        locs.iter()
            .filter_map(|&(oid, server)| self.sites.get(&server).and_then(|s| s.get(&oid)))
            .collect()
    }

    /// Direct (location-transparent) record lookup.
    pub fn record(&self, oid: PhysicalOid) -> Option<&ObjectRecord> {
        self.sites.values().find_map(|s| s.get(&oid))
    }

    /// A lookup issued *from* a particular site: local records are free;
    /// remote records go through the site's cache (hit) or to the owning
    /// site (miss, then cached). Returns the record and whether the access
    /// was remote-and-missed.
    pub fn lookup_from(
        &mut self,
        from: ServerId,
        oid: PhysicalOid,
    ) -> Option<(ObjectRecord, bool)> {
        // Local partition first.
        if let Some(rec) = self.sites.get(&from).and_then(|s| s.get(&oid)) {
            return Some((rec.clone(), false));
        }
        // Remote: consult the cache.
        if let Some(cache) = self.caches.get_mut(&from) {
            if let Some(rec) = cache.get(oid) {
                return Some((rec, false));
            }
        }
        // Miss: fetch from the owning site and fill the cache.
        let rec = self
            .sites
            .iter()
            .filter(|&(&s, _)| s != from)
            .find_map(|(_, site)| site.get(&oid))?
            .clone();
        if let Some(cache) = self.caches.get_mut(&from) {
            cache.put(rec.clone());
        }
        Some((rec, true))
    }

    /// Cache statistics for a site.
    pub fn cache_stats(&self, site: ServerId) -> Option<CacheStats> {
        self.caches.get(&site).map(|c| CacheStats { hits: c.hits, misses: c.misses })
    }

    /// Total number of object records across all sites.
    pub fn object_count(&self) -> usize {
        self.sites.values().map(|s| s.len()).sum()
    }

    /// The largest physical OID registered anywhere (for allocating fresh
    /// OIDs after engine state was rebuilt).
    pub fn max_oid(&self) -> Option<PhysicalOid> {
        self.sites.values().flat_map(|s| s.keys().copied()).max()
    }

    /// Simulates the loss of a site: its object partition and cache are
    /// dropped, the directory forgets its replicas, and other sites'
    /// caches are purged of its records. Returns the lost physical OIDs.
    pub fn fail_site(&mut self, server: ServerId) -> Vec<PhysicalOid> {
        let Some(partition) = self.sites.remove(&server) else { return Vec::new() };
        self.caches.remove(&server);
        let lost: Vec<PhysicalOid> = partition.keys().copied().collect();
        for locs in self.directory.values_mut() {
            locs.retain(|&(_, s)| s != server);
        }
        for cache in self.caches.values_mut() {
            for &oid in &lost {
                cache.invalidate(oid);
            }
        }
        lost
    }

    /// The sites this engine spans.
    pub fn sites(&self) -> impl Iterator<Item = ServerId> + '_ {
        self.sites.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quasaq_media::{ColorDepth, FrameRate, GopPattern, QualitySpec, Resolution, VideoFormat};
    use quasaq_sim::SimDuration;

    fn meta(id: u32) -> VideoMeta {
        VideoMeta {
            id: VideoId(id),
            title: format!("video {id}"),
            keywords: vec!["test".into()],
            features: [0.0; quasaq_media::FEATURE_DIMS],
            duration: SimDuration::from_secs(60),
            gop: GopPattern::mpeg1_classic(),
            trace_seed: id as u64,
        }
    }

    fn obj(oid: u64, video: u32, server: u32) -> PhysicalObject {
        PhysicalObject {
            oid: PhysicalOid(oid),
            video: VideoId(video),
            tier: "dsl",
            spec: QualitySpec::new(
                Resolution::CIF,
                ColorDepth::TRUE_COLOR,
                FrameRate::NTSC_FILM,
                VideoFormat::Mpeg1,
            ),
            rate_bps: 48_000,
            bytes: 1_000_000,
            server: ServerId(server),
            trace_seed: oid,
        }
    }

    fn engine() -> MetadataEngine {
        MetadataEngine::new(ServerId::first_n(3), 8)
    }

    #[test]
    fn video_registration() {
        let mut e = engine();
        e.insert_video(meta(0));
        e.insert_video(meta(1));
        assert_eq!(e.videos().count(), 2);
        assert_eq!(e.video(VideoId(1)).unwrap().title, "video 1");
        assert!(e.video(VideoId(9)).is_none());
    }

    #[test]
    fn replicas_span_sites() {
        let mut e = engine();
        e.insert_video(meta(0));
        e.insert_object(obj(1, 0, 0), QosProfile::ZERO).unwrap();
        e.insert_object(obj(2, 0, 1), QosProfile::ZERO).unwrap();
        e.insert_object(obj(3, 1, 2), QosProfile::ZERO).unwrap();
        let reps = e.replicas(VideoId(0));
        assert_eq!(reps.len(), 2);
        assert!(e.replicas(VideoId(7)).is_empty());
        assert_eq!(e.object_count(), 3);
    }

    #[test]
    fn local_lookup_bypasses_cache() {
        let mut e = engine();
        e.insert_object(obj(1, 0, 0), QosProfile::ZERO).unwrap();
        let (rec, missed) = e.lookup_from(ServerId(0), PhysicalOid(1)).unwrap();
        assert_eq!(rec.object.oid, PhysicalOid(1));
        assert!(!missed);
        let stats = e.cache_stats(ServerId(0)).unwrap();
        assert_eq!(stats, CacheStats { hits: 0, misses: 0 });
    }

    #[test]
    fn remote_lookup_caches() {
        let mut e = engine();
        e.insert_object(obj(1, 0, 1), QosProfile::ZERO).unwrap();
        // First remote access misses.
        let (_, missed) = e.lookup_from(ServerId(0), PhysicalOid(1)).unwrap();
        assert!(missed);
        // Second hits the cache.
        let (_, missed) = e.lookup_from(ServerId(0), PhysicalOid(1)).unwrap();
        assert!(!missed);
        let stats = e.cache_stats(ServerId(0)).unwrap();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn cache_eviction_is_bounded() {
        let mut e = MetadataEngine::new(ServerId::first_n(2), 2);
        for i in 0..5 {
            e.insert_object(obj(i, 0, 1), QosProfile::ZERO).unwrap();
        }
        for i in 0..5 {
            e.lookup_from(ServerId(0), PhysicalOid(i));
        }
        // Re-access the first: evicted, so it misses again.
        let (_, missed) = e.lookup_from(ServerId(0), PhysicalOid(0)).unwrap();
        assert!(missed);
    }

    #[test]
    fn removal_updates_directory_and_caches() {
        let mut e = engine();
        e.insert_object(obj(1, 0, 1), QosProfile::ZERO).unwrap();
        e.lookup_from(ServerId(0), PhysicalOid(1));
        let removed = e.remove_object(PhysicalOid(1)).unwrap();
        assert_eq!(removed.object.oid, PhysicalOid(1));
        assert!(e.replicas(VideoId(0)).is_empty());
        assert!(e.lookup_from(ServerId(0), PhysicalOid(1)).is_none());
        assert!(e.remove_object(PhysicalOid(1)).is_none());
    }

    #[test]
    fn site_failure_forgets_its_replicas() {
        let mut e = engine();
        e.insert_video(meta(0));
        e.insert_object(obj(1, 0, 0), QosProfile::ZERO).unwrap();
        e.insert_object(obj(2, 0, 1), QosProfile::ZERO).unwrap();
        // Warm server 0's cache with server 1's record.
        e.lookup_from(ServerId(0), PhysicalOid(2));
        let lost = e.fail_site(ServerId(1));
        assert_eq!(lost, vec![PhysicalOid(2)]);
        // Directory and caches no longer serve the lost replica.
        assert_eq!(e.replicas(VideoId(0)).len(), 1);
        assert!(e.lookup_from(ServerId(0), PhysicalOid(2)).is_none());
        assert_eq!(e.sites().count(), 2);
        // Failing an unknown site is a no-op.
        assert!(e.fail_site(ServerId(9)).is_empty());
    }

    #[test]
    fn unknown_site_is_typed_error_not_abort() {
        let mut e = engine();
        let err = e.insert_object(obj(1, 0, 9), QosProfile::ZERO).unwrap_err();
        assert_eq!(err, StoreError::UnknownSite(ServerId(9)));
        // The rejected placement left no trace: directory and partitions
        // are untouched, and the engine keeps working.
        assert!(e.replicas(VideoId(0)).is_empty());
        assert_eq!(e.object_count(), 0);
        e.insert_object(obj(1, 0, 0), QosProfile::ZERO).unwrap();
        assert_eq!(e.replicas(VideoId(0)).len(), 1);
    }
}
