//! # quasaq-store — storage and metadata substrate
//!
//! Stands in for the paper's Shore storage manager plus QuaSAQ's
//! Distributed Metadata Engine:
//!
//! * [`object`] — physical OIDs, stored replicas, and per-server
//!   disk-space accounting ([`ObjectStore`]).
//! * [`metadata`] — object records and static per-replica QoS profiles.
//! * [`engine`] — the [`MetadataEngine`]: replicated content metadata,
//!   per-site object partitions, a distribution directory mapping logical
//!   to physical OIDs, and bounded caches for non-local lookups.
//! * [`replication`] — offline replication ([`ReplicationPlanner`], full
//!   or round-robin placement), the [`QosSampler`], and an online
//!   access-driven migration planner (extension).

pub mod engine;
pub mod metadata;
pub mod object;
pub mod replication;

pub use engine::{CacheStats, MetadataEngine};
pub use metadata::{ObjectRecord, QosProfile};
pub use object::{ObjectStore, PhysicalObject, PhysicalOid, StoreError};
pub use replication::{
    plan_migrations, AccessStats, Migration, Placement, QosSampler, ReplicationPlanner,
};
