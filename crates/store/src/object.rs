//! Physical media objects and per-server storage accounting.
//!
//! "In VDBMS, the query processor returns an object ID (OID), by which
//! Shore retrieves the video from disk. With QuaSAQ, these OIDs refer to
//! the video content (represented by logical OID) rather than the entity
//! in storage (physical OID) since multiple copies of the same video
//! exist." The logical OID is [`VideoId`]; this module defines the
//! physical side.

use quasaq_media::{QualitySpec, VideoId};
use quasaq_sim::ServerId;
use std::collections::BTreeMap;
use std::fmt;

/// Identifies one stored replica (the paper's physical OID).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PhysicalOid(pub u64);

impl fmt::Display for PhysicalOid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pobj#{}", self.0)
    }
}

/// A stored replica: one quality tier of one video on one server.
#[derive(Debug, Clone, PartialEq)]
pub struct PhysicalObject {
    /// Physical OID.
    pub oid: PhysicalOid,
    /// Logical video this replica encodes.
    pub video: VideoId,
    /// Quality-ladder tier name ("full", "t1", "dsl", "modem").
    pub tier: &'static str,
    /// Delivered application QoS.
    pub spec: QualitySpec,
    /// Encoded bitrate in bytes/second.
    pub rate_bps: u64,
    /// Stored size in bytes.
    pub bytes: u64,
    /// Server holding the replica.
    pub server: ServerId,
    /// Seed of this replica's deterministic frame trace.
    pub trace_seed: u64,
}

/// Why a store operation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreError {
    /// Disk capacity would be exceeded.
    DiskFull {
        /// The server that is full.
        server: ServerId,
        /// Bytes requested.
        requested: u64,
        /// Bytes free.
        free: u64,
    },
    /// The physical OID is not stored here.
    NotFound(PhysicalOid),
    /// The placement names a server the metadata engine does not span.
    UnknownSite(ServerId),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::DiskFull { server, requested, free } => {
                write!(f, "{server} disk full: need {requested} B, {free} B free")
            }
            StoreError::NotFound(oid) => write!(f, "{oid} not found"),
            StoreError::UnknownSite(server) => write!(f, "unknown site {server}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// One server's object store (the Shore-like storage manager): disk-space
/// accounting over physical objects.
#[derive(Debug, Clone)]
pub struct ObjectStore {
    server: ServerId,
    disk_capacity: u64,
    used: u64,
    objects: BTreeMap<PhysicalOid, PhysicalObject>,
}

impl ObjectStore {
    /// Creates an empty store with `disk_capacity` bytes.
    pub fn new(server: ServerId, disk_capacity: u64) -> Self {
        assert!(disk_capacity > 0, "disk capacity must be positive");
        ObjectStore { server, disk_capacity, used: 0, objects: BTreeMap::new() }
    }

    /// The owning server.
    pub fn server(&self) -> ServerId {
        self.server
    }

    /// Total disk capacity in bytes.
    pub fn disk_capacity(&self) -> u64 {
        self.disk_capacity
    }

    /// Bytes used.
    pub fn used_bytes(&self) -> u64 {
        self.used
    }

    /// Bytes free.
    pub fn free_bytes(&self) -> u64 {
        self.disk_capacity - self.used
    }

    /// Number of stored objects.
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }

    /// Stores an object, charging its size against the disk.
    ///
    /// # Panics
    /// Panics if the object's `server` field disagrees with this store.
    pub fn insert(&mut self, obj: PhysicalObject) -> Result<(), StoreError> {
        assert_eq!(obj.server, self.server, "object placed on the wrong server");
        if obj.bytes > self.free_bytes() {
            return Err(StoreError::DiskFull {
                server: self.server,
                requested: obj.bytes,
                free: self.free_bytes(),
            });
        }
        self.used += obj.bytes;
        self.objects.insert(obj.oid, obj);
        Ok(())
    }

    /// Removes an object, freeing its space.
    pub fn remove(&mut self, oid: PhysicalOid) -> Result<PhysicalObject, StoreError> {
        match self.objects.remove(&oid) {
            Some(obj) => {
                self.used -= obj.bytes;
                Ok(obj)
            }
            None => Err(StoreError::NotFound(oid)),
        }
    }

    /// Looks up an object.
    pub fn get(&self, oid: PhysicalOid) -> Option<&PhysicalObject> {
        self.objects.get(&oid)
    }

    /// All objects in OID order.
    pub fn objects(&self) -> impl Iterator<Item = &PhysicalObject> {
        self.objects.values()
    }

    /// All replicas of a logical video held here.
    pub fn replicas_of(&self, video: VideoId) -> impl Iterator<Item = &PhysicalObject> {
        self.objects.values().filter(move |o| o.video == video)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quasaq_media::{ColorDepth, FrameRate, Resolution, VideoFormat};

    fn spec() -> QualitySpec {
        QualitySpec::new(
            Resolution::CIF,
            ColorDepth::TRUE_COLOR,
            FrameRate::NTSC_FILM,
            VideoFormat::Mpeg1,
        )
    }

    fn obj(oid: u64, video: u32, bytes: u64) -> PhysicalObject {
        PhysicalObject {
            oid: PhysicalOid(oid),
            video: VideoId(video),
            tier: "dsl",
            spec: spec(),
            rate_bps: 48_000,
            bytes,
            server: ServerId(0),
            trace_seed: oid * 7,
        }
    }

    #[test]
    fn insert_accounts_space() {
        let mut s = ObjectStore::new(ServerId(0), 1_000);
        s.insert(obj(1, 0, 400)).unwrap();
        assert_eq!(s.used_bytes(), 400);
        assert_eq!(s.free_bytes(), 600);
        assert_eq!(s.object_count(), 1);
        assert!(s.get(PhysicalOid(1)).is_some());
    }

    #[test]
    fn disk_full_rejected() {
        let mut s = ObjectStore::new(ServerId(0), 1_000);
        s.insert(obj(1, 0, 900)).unwrap();
        let err = s.insert(obj(2, 0, 200)).unwrap_err();
        assert_eq!(err, StoreError::DiskFull { server: ServerId(0), requested: 200, free: 100 });
        assert_eq!(s.object_count(), 1);
    }

    #[test]
    fn remove_frees_space() {
        let mut s = ObjectStore::new(ServerId(0), 1_000);
        s.insert(obj(1, 0, 900)).unwrap();
        let removed = s.remove(PhysicalOid(1)).unwrap();
        assert_eq!(removed.bytes, 900);
        assert_eq!(s.used_bytes(), 0);
        assert!(matches!(s.remove(PhysicalOid(1)), Err(StoreError::NotFound(_))));
    }

    #[test]
    fn replicas_of_filters_by_video() {
        let mut s = ObjectStore::new(ServerId(0), 10_000);
        s.insert(obj(1, 0, 100)).unwrap();
        s.insert(obj(2, 0, 100)).unwrap();
        s.insert(obj(3, 1, 100)).unwrap();
        assert_eq!(s.replicas_of(VideoId(0)).count(), 2);
        assert_eq!(s.replicas_of(VideoId(1)).count(), 1);
        assert_eq!(s.replicas_of(VideoId(9)).count(), 0);
    }

    #[test]
    #[should_panic(expected = "wrong server")]
    fn wrong_server_placement_panics() {
        let mut s = ObjectStore::new(ServerId(1), 1_000);
        let _ = s.insert(obj(1, 0, 100));
    }
}
