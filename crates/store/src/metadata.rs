//! Metadata records kept by the distributed metadata engine.
//!
//! The paper requires four metadata types for a QoS-aware DBMS
//! (§3.3): Content Metadata (descriptors for search — carried by
//! [`quasaq_media::VideoMeta`]), Quality Metadata (resolution, color
//! depth, frame rate, file format — carried by
//! [`quasaq_media::QualitySpec`] on each object), Distribution Metadata
//! (logical→physical OID mapping with locations), and the QoS profile
//! ("describe the resource consumption in the delivery of individual
//! media objects … the basis for cost estimation").

use crate::object::PhysicalObject;

/// Static per-replica resource-consumption profile produced by the QoS
/// sampler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QosProfile {
    /// Mean CPU share (fraction of one processor) to stream the replica
    /// untransformed.
    pub cpu_share: f64,
    /// Network bandwidth in bytes/second.
    pub net_bps: f64,
    /// Disk read bandwidth in bytes/second.
    pub disk_bps: f64,
    /// Session buffer memory in bytes.
    pub memory_bytes: f64,
}

impl QosProfile {
    /// A zero profile (useful as an accumulator identity).
    pub const ZERO: QosProfile =
        QosProfile { cpu_share: 0.0, net_bps: 0.0, disk_bps: 0.0, memory_bytes: 0.0 };

    /// Component-wise scaling (e.g. when frame dropping reduces the
    /// delivered stream).
    pub fn scaled(&self, k: f64) -> QosProfile {
        assert!(k >= 0.0, "scale factor must be non-negative");
        QosProfile {
            cpu_share: self.cpu_share * k,
            net_bps: self.net_bps * k,
            disk_bps: self.disk_bps * k,
            memory_bytes: self.memory_bytes * k,
        }
    }

    /// Component-wise sum.
    pub fn plus(&self, other: &QosProfile) -> QosProfile {
        QosProfile {
            cpu_share: self.cpu_share + other.cpu_share,
            net_bps: self.net_bps + other.net_bps,
            disk_bps: self.disk_bps + other.disk_bps,
            memory_bytes: self.memory_bytes + other.memory_bytes,
        }
    }
}

/// One object's full metadata entry: the physical object (quality +
/// distribution metadata) and its QoS profile.
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectRecord {
    /// The stored replica.
    pub object: PhysicalObject,
    /// Its sampled resource-consumption profile.
    pub profile: QosProfile,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_and_sum() {
        let p = QosProfile { cpu_share: 0.1, net_bps: 100.0, disk_bps: 100.0, memory_bytes: 10.0 };
        let half = p.scaled(0.5);
        assert!((half.cpu_share - 0.05).abs() < 1e-12);
        assert!((half.net_bps - 50.0).abs() < 1e-12);
        let sum = p.plus(&half);
        assert!((sum.net_bps - 150.0).abs() < 1e-12);
        let zero = QosProfile::ZERO.plus(&QosProfile::ZERO);
        assert_eq!(zero, QosProfile::ZERO);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_scale_panics() {
        let _ = QosProfile::ZERO.scaled(-1.0);
    }
}
