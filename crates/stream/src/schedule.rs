//! Delivery schedules: what a session actually sends, when, and at what
//! CPU cost.
//!
//! A [`FrameSchedule`] is the fully resolved per-frame plan of one
//! streaming session: the source trace filtered through the plan's
//! transforms (transcode, frame dropping, encryption) and laid out on the
//! transmission timeline.
//!
//! ## Decode-order bursting
//!
//! MPEG senders transmit in *decode* order, not display order: an anchor
//! frame (I/P) must precede the B frames that reference it, so the anchor
//! is sent at the slot of the first B frame that depends on it and the
//! B frames follow in a short burst. This clumping is what gives the
//! paper's *uncontended* traces an inter-frame-delay standard deviation of
//! ~30 ms around a 41.72 ms mean (Fig 5a/5b, Table 2) while the inter-GOP
//! delays stay tight — the variance is intrinsic to the stream, not to
//! scheduling. [`DispatchConfig`] controls the bursting and the pacing gap
//! inside a burst.

use crate::transforms::Transforms;
use quasaq_media::{DeliveryCostModel, FrameTrace, FrameType};
use quasaq_sim::{SimDuration, SimTime};

/// How frames are laid out on the transmission timeline.
#[derive(Debug, Clone, Copy)]
pub struct DispatchConfig {
    /// Transmit in decode order with anchors pulled ahead of their B
    /// frames (true reproduces the paper's VBR jitter; false sends each
    /// frame at its display slot).
    pub decode_order_burst: bool,
    /// Pacing gap between frames inside one burst, as a fraction of the
    /// frame interval. Calibrated to ~0.45 to match Table 2's frame-level
    /// standard deviation.
    pub intra_burst_spacing: f64,
}

impl Default for DispatchConfig {
    fn default() -> Self {
        DispatchConfig { decode_order_burst: true, intra_burst_spacing: 0.45 }
    }
}

impl DispatchConfig {
    /// Display-slot dispatch without bursting.
    pub fn uniform() -> Self {
        DispatchConfig { decode_order_burst: false, intra_burst_spacing: 0.0 }
    }
}

/// One frame of a resolved delivery schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduledFrame {
    /// Display-order index in the source trace.
    pub display_index: u64,
    /// GOP number in the source trace.
    pub gop: u64,
    /// Coding type.
    pub ftype: FrameType,
    /// Transmission due time as an offset from session start.
    pub due: SimDuration,
    /// Delivered bytes (after transcode scaling).
    pub bytes: u32,
    /// Server CPU work for this frame (streaming + transcode +
    /// encryption).
    pub cpu: SimDuration,
}

/// A session's fully resolved delivery plan.
#[derive(Debug, Clone)]
pub struct FrameSchedule {
    frames: Vec<ScheduledFrame>,
    playback: SimDuration,
    gop_len: usize,
}

impl FrameSchedule {
    /// Resolves `trace` through `transforms` and lays frames out per
    /// `dispatch`.
    pub fn build(
        trace: &FrameTrace,
        transforms: &Transforms,
        cost: &DeliveryCostModel,
        dispatch: &DispatchConfig,
    ) -> FrameSchedule {
        let interval = trace.frame_rate().frame_interval();
        let gop = trace.gop().clone();
        let mut filter = transforms.drop_filter();

        // Pass 1: which frames are delivered and at what size/CPU.
        struct Kept {
            display_index: u64,
            gop: u64,
            ftype: FrameType,
            bytes: u32,
            cpu: SimDuration,
        }
        let mut kept: Vec<Kept> = Vec::with_capacity(trace.len());
        for frame in trace.frames() {
            if let Some(t) = &transforms.transcode {
                if !t.keeps_frame(frame.index) {
                    continue;
                }
            }
            if !filter.admit(frame.ftype) {
                continue;
            }
            let bytes = match &transforms.transcode {
                Some(t) => t.output_bytes(frame.bytes),
                None => frame.bytes,
            };
            let mut cpu = cost.stream_cpu_per_frame(bytes);
            if let Some(t) = &transforms.transcode {
                cpu += t.cpu_per_frame(&cost.transcode);
            }
            cpu += transforms.cipher.cpu_for(bytes as u64);
            kept.push(Kept {
                display_index: frame.index,
                gop: gop.gop_of(frame.index),
                ftype: frame.ftype,
                bytes,
                cpu,
            });
        }

        // Pass 2: dispatch times.
        let spacing = interval.mul_f64(dispatch.intra_burst_spacing.max(0.0));
        let mut frames: Vec<ScheduledFrame> = Vec::with_capacity(kept.len());
        if dispatch.decode_order_burst {
            // Group: pending B frames attach to the next anchor; the group
            // dispatches at the earliest member's display slot, anchor
            // first.
            let mut pending_b: Vec<usize> = Vec::new();
            let emit_group = |anchor: Option<usize>,
                              pending: &mut Vec<usize>,
                              out: &mut Vec<ScheduledFrame>| {
                let mut members: Vec<usize> = Vec::with_capacity(pending.len() + 1);
                if let Some(a) = anchor {
                    members.push(a);
                }
                members.append(pending);
                if members.is_empty() {
                    return;
                }
                let slot =
                    members.iter().map(|&i| kept[i].display_index).min().expect("non-empty group");
                let base = interval * slot;
                for (j, &i) in members.iter().enumerate() {
                    let k = &kept[i];
                    out.push(ScheduledFrame {
                        display_index: k.display_index,
                        gop: k.gop,
                        ftype: k.ftype,
                        due: base + spacing * j as u64,
                        bytes: k.bytes,
                        cpu: k.cpu,
                    });
                }
            };
            for (i, k) in kept.iter().enumerate() {
                match k.ftype {
                    FrameType::B => pending_b.push(i),
                    FrameType::I | FrameType::P => emit_group(Some(i), &mut pending_b, &mut frames),
                }
            }
            // Trailing B frames with no following anchor.
            emit_group(None, &mut pending_b, &mut frames);
            frames.sort_by_key(|f| (f.due, f.display_index));
        } else {
            for k in &kept {
                frames.push(ScheduledFrame {
                    display_index: k.display_index,
                    gop: k.gop,
                    ftype: k.ftype,
                    due: interval * k.display_index,
                    bytes: k.bytes,
                    cpu: k.cpu,
                });
            }
        }

        FrameSchedule { frames, playback: trace.duration(), gop_len: gop.len() }
    }

    /// The scheduled frames in due order.
    pub fn frames(&self) -> &[ScheduledFrame] {
        &self.frames
    }

    /// Number of delivered frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// True when nothing is delivered.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Source playback duration (streaming time is fixed regardless of
    /// the plan, as the paper notes).
    pub fn playback(&self) -> SimDuration {
        self.playback
    }

    /// Frames per source GOP.
    pub fn gop_len(&self) -> usize {
        self.gop_len
    }

    /// Total delivered bytes.
    pub fn delivered_bytes(&self) -> u64 {
        self.frames.iter().map(|f| f.bytes as u64).sum()
    }

    /// Mean delivered rate in bytes/second.
    pub fn delivered_rate_bps(&self) -> f64 {
        let secs = self.playback.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.delivered_bytes() as f64 / secs
        }
    }

    /// Total CPU work.
    pub fn total_cpu(&self) -> SimDuration {
        self.frames.iter().map(|f| f.cpu).sum()
    }

    /// Mean CPU share (fraction of one processor) over playback.
    pub fn mean_cpu_share(&self) -> f64 {
        let secs = self.playback.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.total_cpu().as_secs_f64() / secs
        }
    }

    /// Peak single-frame CPU work (used to size DSRT slices).
    pub fn peak_frame_cpu(&self) -> SimDuration {
        self.frames.iter().map(|f| f.cpu).max().unwrap_or(SimDuration::ZERO)
    }

    /// The absolute due time of frame `i` for a session starting at
    /// `start`.
    pub fn due_at(&self, start: SimTime, i: usize) -> SimTime {
        start + self.frames[i].due
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quasaq_media::{CipherAlgo, DropStrategy, FrameRate, GopPattern, TraceParams};

    fn trace() -> FrameTrace {
        FrameTrace::generate(
            7,
            &TraceParams::with_bitrate(
                FrameRate::NTSC_FILM,
                SimDuration::from_secs(30),
                GopPattern::mpeg1_n15(),
                193_000.0,
            ),
        )
    }

    fn cost() -> DeliveryCostModel {
        DeliveryCostModel::default()
    }

    #[test]
    fn uniform_dispatch_matches_display_slots() {
        let t = trace();
        let s = FrameSchedule::build(&t, &Transforms::none(), &cost(), &DispatchConfig::uniform());
        assert_eq!(s.len(), t.len());
        let interval = t.frame_rate().frame_interval();
        for f in s.frames() {
            assert_eq!(f.due, interval * f.display_index);
        }
        assert_eq!(s.delivered_bytes(), t.total_bytes());
    }

    #[test]
    fn burst_dispatch_preserves_frames_and_mean_rate() {
        let t = trace();
        let s = FrameSchedule::build(&t, &Transforms::none(), &cost(), &DispatchConfig::default());
        assert_eq!(s.len(), t.len());
        // Due times are sorted and within the playback window (+ slack).
        for w in s.frames().windows(2) {
            assert!(w[0].due <= w[1].due);
        }
        let last = s.frames().last().unwrap().due;
        assert!(last <= s.playback() + t.frame_rate().frame_interval() * 2);
    }

    #[test]
    fn burst_pulls_anchor_before_its_b_frames() {
        let t = trace();
        let s = FrameSchedule::build(&t, &Transforms::none(), &cost(), &DispatchConfig::default());
        // Pattern IBBPBB…: P at display 3 groups with Bs at 1, 2 and the
        // group dispatches at slot 1 — so the P is due *before* its
        // display time, and before both Bs in the schedule order.
        let interval = t.frame_rate().frame_interval();
        let p3 = s.frames().iter().find(|f| f.display_index == 3).unwrap();
        assert_eq!(p3.due, interval * 1);
        let b1 = s.frames().iter().find(|f| f.display_index == 1).unwrap();
        assert!(b1.due > p3.due);
    }

    #[test]
    fn burst_interframe_stats_match_table2_shape() {
        // The schedule's dispatch pattern alone (no contention) should
        // produce a frame-level delay SD of roughly 0.6-0.9x the mean, and
        // GOP-level SD far smaller — the paper's low-contention signature.
        let t = trace();
        let s = FrameSchedule::build(&t, &Transforms::none(), &cost(), &DispatchConfig::default());
        let mut frame_stats = quasaq_sim::OnlineStats::new();
        for w in s.frames().windows(2) {
            frame_stats.push((w[1].due - w[0].due).as_millis_f64());
        }
        let mean = frame_stats.mean();
        let sd = frame_stats.std_dev();
        assert!((mean - 41.72).abs() < 1.5, "mean {mean}");
        assert!((20.0..45.0).contains(&sd), "sd {sd}");
        // GOP level: first frame of each GOP.
        let mut gop_stats = quasaq_sim::OnlineStats::new();
        let mut last: Option<(u64, SimDuration)> = None;
        for f in s.frames() {
            if last.is_none_or(|(g, _)| f.gop > g) {
                if let Some((_, prev)) = last {
                    gop_stats.push((f.due - prev).as_millis_f64());
                }
                last = Some((f.gop, f.due));
            }
        }
        assert!((gop_stats.mean() - 625.8).abs() < 10.0, "gop mean {}", gop_stats.mean());
        assert!(gop_stats.std_dev() < sd, "gop sd {}", gop_stats.std_dev());
    }

    #[test]
    fn drop_strategy_removes_frames() {
        let t = trace();
        let all =
            FrameSchedule::build(&t, &Transforms::none(), &cost(), &DispatchConfig::default());
        let no_b = FrameSchedule::build(
            &t,
            &Transforms { drop: DropStrategy::AllB, ..Transforms::none() },
            &cost(),
            &DispatchConfig::default(),
        );
        assert!(no_b.len() < all.len());
        assert!(no_b.frames().iter().all(|f| f.ftype != FrameType::B));
        assert!(no_b.delivered_bytes() < all.delivered_bytes());
        // Exactly the I and P frames of the source survive.
        let anchors = t.frames().iter().filter(|f| f.ftype != FrameType::B).count();
        assert_eq!(no_b.len(), anchors);
    }

    #[test]
    fn encryption_adds_cpu_only() {
        let t = trace();
        let plain =
            FrameSchedule::build(&t, &Transforms::none(), &cost(), &DispatchConfig::default());
        let enc = FrameSchedule::build(
            &t,
            &Transforms { cipher: CipherAlgo::Block, ..Transforms::none() },
            &cost(),
            &DispatchConfig::default(),
        );
        assert_eq!(plain.delivered_bytes(), enc.delivered_bytes());
        assert!(enc.total_cpu() > plain.total_cpu());
        assert!(enc.mean_cpu_share() > plain.mean_cpu_share());
    }

    #[test]
    fn cpu_share_is_plausible() {
        let t = trace();
        let s = FrameSchedule::build(&t, &Transforms::none(), &cost(), &DispatchConfig::default());
        let share = s.mean_cpu_share();
        // A T1-class stream should cost a few percent of a CPU.
        assert!((0.01..0.15).contains(&share), "share {share}");
        assert!(s.peak_frame_cpu() > SimDuration::ZERO);
    }

    #[test]
    fn due_at_offsets_by_start() {
        let t = trace();
        let s = FrameSchedule::build(&t, &Transforms::none(), &cost(), &DispatchConfig::uniform());
        let start = SimTime::from_secs(100);
        assert_eq!(s.due_at(start, 0), start);
        assert!(s.due_at(start, 5) > start);
    }
}
