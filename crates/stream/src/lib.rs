//! # quasaq-stream — streaming execution on the simulated testbed
//!
//! The Transport-API layer of the reproduction: it executes delivery
//! pipelines (retrieve → transcode → drop frames → encrypt → send) over
//! the simulation kernel's CPUs and links and records the measurements
//! the paper reports.
//!
//! * [`transforms`] — the per-session transform pipeline.
//! * [`schedule`] — resolved per-frame delivery plans with decode-order
//!   bursting (the source of the paper's intrinsic VBR jitter).
//! * [`cpumodel`] — concrete CPU model selection (time sharing vs DSRT).
//! * [`engine`] — the frame-level multi-server executor (Fig 5 /
//!   Table 2 fidelity).
//! * [`fluid`] — the byte-level session engine for throughput-scale
//!   experiments (Fig 6 / Fig 7).
//! * [`report`] — per-session inter-frame / inter-GOP delay measurements.

pub mod cpumodel;
pub mod engine;
pub mod fluid;
pub mod report;
pub mod schedule;
pub mod transforms;

pub use cpumodel::{CpuKind, CpuModel};
pub use engine::{CpuPolicy, NodeConfig, SessionConfig, SessionError, SessionId, StreamEngine};
pub use fluid::{
    CongestionConfig, CongestionEdge, CongestionEvent, FluidDone, FluidEngine, FluidSessionId,
};
pub use report::{FrameRecord, SessionReport};
pub use schedule::{DispatchConfig, FrameSchedule, ScheduledFrame};
pub use transforms::Transforms;
