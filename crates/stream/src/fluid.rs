//! Fluid session model for throughput-scale experiments.
//!
//! The Fig 6/7 experiments run thousands of sessions for thousands of
//! simulated seconds; frame-level fidelity is unnecessary there because
//! the measured quantities (outstanding sessions, completions per minute,
//! rejects) are governed by bandwidth occupancy, not per-frame jitter. A
//! [`FluidEngine`] models each session as one paced byte transfer on the
//! serving node's outbound link:
//!
//! * Reserved links (QuaSAQ / QoS-API): the session transmits at its
//!   reserved rate, so it completes after exactly `bytes/rate` — the
//!   fixed streaming time the paper notes.
//! * Fair-share links (plain VDBMS): the session is paced at its bitrate
//!   but squeezed when the link oversubscribes, so "it took much longer
//!   time to finish each job" — the plain-VDBMS signature of Fig 6.
//!
//! The engine is sharded into one [`LinkDomain`] per server. Advancing
//! time is two-phase: phase A steps every domain to the target instant
//! (link recomputation and completion buffering stay strictly inside the
//! domain, so a [`DomainStepper`] may run domains concurrently); phase B
//! merges the buffered completions serially in `ServerId` order, which
//! reproduces the exact event order of the pre-sharding engine — results
//! are bit-for-bit identical under any stepper.
//!
//! The engine is passive (`next_event`/`advance_to`/`drain_completions`)
//! so the experiment driver owns the master event loop.

use quasaq_sim::link::{LinkError, SharePolicy, SharedLink, XferDone};
use quasaq_sim::{
    step_domains, DomainStepper, FlowId, LinkDomain, SerialStepper, ServerId, SimTime,
};

/// Identifies a fluid session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FluidSessionId(pub usize);

/// A finished fluid session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FluidDone {
    /// The session.
    pub id: FluidSessionId,
    /// Its serving node.
    pub server: ServerId,
    /// Completion instant.
    pub at: SimTime,
}

struct FluidSession {
    server: ServerId,
    flow: FlowId,
    done: bool,
}

/// Sentinel in the dense server index for servers this engine doesn't own.
const NO_DOMAIN: u32 = u32::MAX;

/// Byte-level session engine over per-server link domains.
pub struct FluidEngine {
    /// Sorted by `ServerId`; the phase-B merge walks this order.
    domains: Vec<LinkDomain<FluidSessionId>>,
    /// Dense `ServerId.0` → index into `domains` (`NO_DOMAIN` for gaps).
    index: Vec<u32>,
    sessions: Vec<FluidSession>,
    /// Open (not-`done`) session count, maintained on every transition.
    active: usize,
    completions: Vec<FluidDone>,
    /// Reused buffer for the phase-B merge (keeps the per-advance merge
    /// allocation-free).
    merge_scratch: Vec<XferDone>,
}

impl FluidEngine {
    /// Builds an engine with one link domain per server under the given
    /// policy.
    pub fn new(
        servers: impl IntoIterator<Item = ServerId>,
        policy: SharePolicy,
        capacity_bps: u64,
    ) -> Self {
        let domains = LinkDomain::cluster(servers, policy, capacity_bps);
        let max_id = domains.iter().map(|d| d.server().0 as usize).max().map_or(0, |m| m + 1);
        let mut index = vec![NO_DOMAIN; max_id];
        for (i, d) in domains.iter().enumerate() {
            index[d.server().0 as usize] = i as u32;
        }
        FluidEngine {
            domains,
            index,
            sessions: Vec::new(),
            active: 0,
            completions: Vec::new(),
            merge_scratch: Vec::new(),
        }
    }

    fn domain_index(&self, server: ServerId) -> Option<usize> {
        match self.index.get(server.0 as usize) {
            Some(&i) if i != NO_DOMAIN => Some(i as usize),
            _ => None,
        }
    }

    fn domain(&self, server: ServerId) -> &LinkDomain<FluidSessionId> {
        &self.domains[self.domain_index(server).expect("unknown server")]
    }

    fn domain_mut(&mut self, server: ServerId) -> &mut LinkDomain<FluidSessionId> {
        let i = self.domain_index(server).expect("unknown server");
        &mut self.domains[i]
    }

    /// Link state of a server.
    pub fn link(&self, server: ServerId) -> &SharedLink {
        self.domain(server).link()
    }

    /// Starts a session streaming `bytes` at `rate_bps` from `server`.
    /// Under reserved links this performs admission control; under fair
    /// share the rate is a pacing cap.
    pub fn add_session(
        &mut self,
        now: SimTime,
        server: ServerId,
        bytes: u64,
        rate_bps: u64,
    ) -> Result<FluidSessionId, LinkError> {
        let id = FluidSessionId(self.sessions.len());
        let domain = self.domain_mut(server);
        let flow = domain.link_mut().open_flow(now, Some(rate_bps))?;
        let xfer = domain.link_mut().send(now, flow, bytes).expect("flow just opened");
        domain.register(xfer, flow, id);
        self.sessions.push(FluidSession { server, flow, done: false });
        self.active += 1;
        Ok(id)
    }

    /// Aborts a session, freeing its bandwidth. The session's transfer
    /// registration is left in place (it resolves to a dead session and is
    /// discarded), so `active_on` counts it until the link would have
    /// finished it — matching the historical accounting the availability
    /// experiments were calibrated against.
    pub fn cancel_session(&mut self, now: SimTime, id: FluidSessionId) {
        let session = &mut self.sessions[id.0];
        if session.done {
            return;
        }
        session.done = true;
        self.active -= 1;
        let (server, flow) = (session.server, session.flow);
        self.domain_mut(server).link_mut().close_flow(now, flow);
    }

    /// Earliest future completion across all links.
    pub fn next_event(&self) -> Option<SimTime> {
        self.domains.iter().filter_map(|d| d.next_event()).min()
    }

    /// Advances every link to `t` serially, collecting completions.
    pub fn advance_to(&mut self, t: SimTime) {
        self.advance_domains(t, &SerialStepper);
    }

    /// Advances every link domain to `t` using `stepper` (phase A, safe to
    /// run concurrently), then merges the buffered completions serially in
    /// `ServerId` order (phase B) — bit-identical to [`advance_to`]
    /// (`FluidEngine::advance_to`) under any stepper.
    pub fn advance_domains(&mut self, t: SimTime, stepper: &dyn DomainStepper) {
        step_domains(stepper, &mut self.domains, t);
        // Phase B: one serial pass over the domains, consuming each one's
        // completion buffer as a batch (clean domains are skipped outright)
        // into a reused scratch vector.
        let mut batch = std::mem::take(&mut self.merge_scratch);
        for domain in self.domains.iter_mut() {
            if domain.pending_len() == 0 {
                continue;
            }
            batch.clear();
            domain.drain_pending_into(&mut batch);
            let server = domain.server();
            for done in &batch {
                if let Some(id) = domain.resolve(done.xfer) {
                    let session = &mut self.sessions[id.0];
                    if !session.done {
                        session.done = true;
                        self.active -= 1;
                        domain.link_mut().close_flow(done.at.max(t), session.flow);
                        self.completions.push(FluidDone { id, server, at: done.at });
                    }
                }
            }
        }
        batch.clear();
        self.merge_scratch = batch;
    }

    /// Removes and returns completions recorded so far.
    pub fn drain_completions(&mut self) -> Vec<FluidDone> {
        std::mem::take(&mut self.completions)
    }

    /// Number of sessions still streaming. O(1): maintained on every
    /// open/complete/cancel/fail transition.
    pub fn active_sessions(&self) -> usize {
        self.active
    }

    /// Number of sessions still streaming from one server (O(1), not
    /// O(all sessions)).
    pub fn active_on(&self, server: ServerId) -> usize {
        self.domain_index(server).map(|i| self.domains[i].in_flight()).unwrap_or(0)
    }

    /// Crashes a server: every session streaming from it is killed and
    /// returned as `(session, bytes still undelivered)` — what a failover
    /// path needs to resume the remainder elsewhere. The returned list is
    /// ordered by session id, so reacting to it is deterministic.
    pub fn fail_server(&mut self, now: SimTime, server: ServerId) -> Vec<(FluidSessionId, f64)> {
        let Some(i) = self.domain_index(server) else { return Vec::new() };
        let sessions = &self.sessions;
        let displaced = self.domains[i].cut(now, |id| !sessions[id.0].done);
        for &(id, _) in &displaced {
            self.sessions[id.0].done = true;
            self.active -= 1;
        }
        displaced
    }

    /// Applies a fault-injection capacity change to a server's outbound
    /// link (degradation when below nominal, recovery when restored).
    pub fn set_link_capacity(&mut self, now: SimTime, server: ServerId, capacity_bps: u64) {
        self.domain_mut(server).set_capacity(now, capacity_bps);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quasaq_sim::SimDuration;

    fn drain_all(eng: &mut FluidEngine, horizon: SimTime) -> Vec<FluidDone> {
        let mut out = Vec::new();
        loop {
            match eng.next_event() {
                Some(t) if t <= horizon => {
                    eng.advance_to(t);
                    out.extend(eng.drain_completions());
                }
                _ => {
                    eng.advance_to(horizon);
                    out.extend(eng.drain_completions());
                    return out;
                }
            }
        }
    }

    #[test]
    fn reserved_session_takes_exactly_playback_time() {
        let mut eng = FluidEngine::new([ServerId(0)], SharePolicy::Reserved, 3_200_000);
        // 60 s of a 48 KB/s stream.
        let id = eng.add_session(SimTime::ZERO, ServerId(0), 48_000 * 60, 48_000).unwrap();
        let done = drain_all(&mut eng, SimTime::from_secs(120));
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].id, id);
        assert!((done[0].at.as_secs_f64() - 60.0).abs() < 0.01);
        assert_eq!(eng.active_sessions(), 0);
    }

    #[test]
    fn reserved_admission_saturates() {
        let mut eng = FluidEngine::new([ServerId(0)], SharePolicy::Reserved, 100_000);
        eng.add_session(SimTime::ZERO, ServerId(0), 1_000, 60_000).unwrap();
        assert!(eng.add_session(SimTime::ZERO, ServerId(0), 1_000, 60_000).is_err());
    }

    #[test]
    fn fair_share_admits_everything_but_stretches() {
        let mut eng = FluidEngine::new([ServerId(0)], SharePolicy::FairShare, 100_000);
        // Four 60 s sessions at 50 KB/s each on a 100 KB/s link: each gets
        // 25 KB/s, so they take 120 s instead of 60.
        for _ in 0..4 {
            eng.add_session(SimTime::ZERO, ServerId(0), 50_000 * 60, 50_000).unwrap();
        }
        assert_eq!(eng.active_sessions(), 4);
        let done = drain_all(&mut eng, SimTime::from_secs(600));
        assert_eq!(done.len(), 4);
        for d in &done {
            assert!((d.at.as_secs_f64() - 120.0).abs() < 0.5, "{}", d.at);
        }
    }

    #[test]
    fn completion_frees_bandwidth_for_followers() {
        let mut eng = FluidEngine::new([ServerId(0)], SharePolicy::Reserved, 100_000);
        let a = eng.add_session(SimTime::ZERO, ServerId(0), 100_000, 100_000).unwrap();
        let _ = a;
        // Saturated now; after ~1 s the first completes and frees the rate.
        assert!(eng.add_session(SimTime::ZERO, ServerId(0), 1_000, 50_000).is_err());
        let done = drain_all(&mut eng, SimTime::from_secs(2));
        assert_eq!(done.len(), 1);
        eng.add_session(SimTime::from_secs(2), ServerId(0), 1_000, 100_000).unwrap();
    }

    #[test]
    fn cancel_releases_immediately() {
        let mut eng = FluidEngine::new([ServerId(0)], SharePolicy::Reserved, 100_000);
        let a = eng.add_session(SimTime::ZERO, ServerId(0), 1 << 30, 100_000).unwrap();
        eng.cancel_session(SimTime::from_secs(1), a);
        assert_eq!(eng.active_sessions(), 0);
        eng.add_session(SimTime::from_secs(1), ServerId(0), 1_000, 100_000).unwrap();
        // The cancelled session never completes.
        let done = drain_all(&mut eng, SimTime::from_secs(10));
        assert_eq!(done.len(), 1);
        assert_ne!(done[0].id, a);
    }

    #[test]
    fn fail_server_displaces_active_sessions_with_remaining_bytes() {
        let mut eng = FluidEngine::new(ServerId::first_n(2), SharePolicy::Reserved, 200_000);
        // 100 KB at 100 KB/s: half delivered after 0.5 s.
        let a = eng.add_session(SimTime::ZERO, ServerId(0), 100_000, 100_000).unwrap();
        let b = eng.add_session(SimTime::ZERO, ServerId(0), 100_000, 100_000).unwrap();
        let other = eng.add_session(SimTime::ZERO, ServerId(1), 100_000, 100_000).unwrap();
        eng.advance_to(SimTime::from_millis(500));
        assert_eq!(eng.active_on(ServerId(0)), 2);
        let displaced = eng.fail_server(SimTime::from_millis(500), ServerId(0));
        assert_eq!(displaced.len(), 2);
        assert_eq!(displaced[0].0, a, "ordered by session id");
        assert_eq!(displaced[1].0, b);
        for &(_, remaining) in &displaced {
            assert!((remaining - 50_000.0).abs() < 1.0, "{remaining}");
        }
        assert_eq!(eng.active_on(ServerId(0)), 0);
        // The freed link admits new reservations immediately.
        let c = eng.add_session(SimTime::from_millis(500), ServerId(0), 1_000, 200_000).unwrap();
        // The survivor and the re-admission complete; the displaced never do.
        let done = drain_all(&mut eng, SimTime::from_secs(10));
        assert_eq!(done.len(), 2);
        assert!(done.iter().any(|d| d.id == other));
        assert!(done.iter().any(|d| d.id == c));
    }

    #[test]
    fn fail_server_skips_already_finished_sessions() {
        let mut eng = FluidEngine::new([ServerId(0)], SharePolicy::Reserved, 200_000);
        eng.add_session(SimTime::ZERO, ServerId(0), 100_000, 100_000).unwrap();
        eng.advance_to(SimTime::from_secs(2));
        assert_eq!(eng.drain_completions().len(), 1);
        assert!(eng.fail_server(SimTime::from_secs(2), ServerId(0)).is_empty());
    }

    #[test]
    fn link_degradation_stretches_fair_share_sessions() {
        let mut eng = FluidEngine::new([ServerId(0)], SharePolicy::FairShare, 100_000);
        // 100 KB paced at 100 KB/s; halve the link for the first second.
        eng.add_session(SimTime::ZERO, ServerId(0), 100_000, 100_000).unwrap();
        eng.set_link_capacity(SimTime::ZERO, ServerId(0), 50_000);
        eng.set_link_capacity(SimTime::from_secs(1), ServerId(0), 100_000);
        let done = drain_all(&mut eng, SimTime::from_secs(10));
        assert_eq!(done.len(), 1);
        // 50 KB in the degraded second, the rest at full rate: 1.5 s.
        assert!((done[0].at.as_secs_f64() - 1.5).abs() < 1e-3, "{}", done[0].at);
    }

    #[test]
    fn servers_are_independent() {
        let mut eng = FluidEngine::new(ServerId::first_n(2), SharePolicy::Reserved, 100_000);
        eng.add_session(SimTime::ZERO, ServerId(0), 100_000 * 5, 100_000).unwrap();
        // Server 0 is saturated; server 1 is free.
        assert!(eng.add_session(SimTime::ZERO, ServerId(0), 1_000, 1_000).is_err());
        eng.add_session(SimTime::ZERO, ServerId(1), 100_000, 100_000).unwrap();
        let done = drain_all(&mut eng, SimTime::from_secs(10));
        assert_eq!(done.len(), 2);
        let _ = SimDuration::ZERO;
    }

    #[test]
    fn parallel_stepper_is_bit_identical_to_serial() {
        struct ThreadedStepper;
        // SAFETY: chunked scoped threads — each index in 0..n is claimed by
        // exactly one thread, exactly once.
        unsafe impl DomainStepper for ThreadedStepper {
            fn for_each(&self, n: usize, f: &(dyn Fn(usize) + Sync)) {
                std::thread::scope(|scope| {
                    for chunk_start in (0..n).step_by(2) {
                        scope.spawn(move || {
                            for i in chunk_start..(chunk_start + 2).min(n) {
                                f(i);
                            }
                        });
                    }
                });
            }
        }

        let build = || {
            let mut eng = FluidEngine::new(ServerId::first_n(5), SharePolicy::FairShare, 100_000);
            for i in 0..20u64 {
                let server = ServerId((i % 5) as u32);
                eng.add_session(SimTime::ZERO, server, 10_000 + 7_000 * i, 50_000).unwrap();
            }
            eng
        };
        let mut serial = build();
        let mut parallel = build();
        loop {
            let next = serial.next_event();
            assert_eq!(next, parallel.next_event());
            let Some(t) = next else { break };
            serial.advance_to(t);
            parallel.advance_domains(t, &ThreadedStepper);
            assert_eq!(serial.drain_completions(), parallel.drain_completions());
        }
        assert_eq!(serial.active_sessions(), 0);
        assert_eq!(parallel.active_sessions(), 0);
    }
}
