//! Fluid session model for throughput-scale experiments.
//!
//! The Fig 6/7 experiments run thousands of sessions for thousands of
//! simulated seconds; frame-level fidelity is unnecessary there because
//! the measured quantities (outstanding sessions, completions per minute,
//! rejects) are governed by bandwidth occupancy, not per-frame jitter. A
//! [`FluidEngine`] models each session as one paced byte transfer on the
//! serving node's outbound link:
//!
//! * Reserved links (QuaSAQ / QoS-API): the session transmits at its
//!   reserved rate, so it completes after exactly `bytes/rate` — the
//!   fixed streaming time the paper notes.
//! * Fair-share links (plain VDBMS): the session is paced at its bitrate
//!   but squeezed when the link oversubscribes, so "it took much longer
//!   time to finish each job" — the plain-VDBMS signature of Fig 6.
//!
//! The engine is sharded into one [`LinkDomain`] per server. Advancing
//! time is two-phase: phase A steps every domain to the target instant
//! (link recomputation and completion buffering stay strictly inside the
//! domain, so a [`DomainStepper`] may run domains concurrently); phase B
//! merges the buffered completions serially in `ServerId` order, which
//! reproduces the exact event order of the pre-sharding engine — results
//! are bit-for-bit identical under any stepper.
//!
//! The engine is passive (`next_event`/`advance_to`/`drain_completions`)
//! so the experiment driver owns the master event loop.

use quasaq_sim::link::{LinkError, SharePolicy, SharedLink, XferDone};
use quasaq_sim::{
    step_domains, DomainStepper, FlowId, LinkDomain, SerialStepper, ServerId, SimDuration, SimTime,
};

/// Identifies a fluid session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FluidSessionId(pub usize);

/// A finished fluid session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FluidDone {
    /// The session.
    pub id: FluidSessionId,
    /// Its serving node.
    pub server: ServerId,
    /// Completion instant.
    pub at: SimTime,
}

struct FluidSession {
    server: ServerId,
    flow: FlowId,
    done: bool,
}

/// Watermarks for per-link congestion detection, applied to the offered
/// load ratio `demand_bps / capacity_bps` with hysteresis in both level
/// (distinct high/low thresholds) and time (a sustain dwell before either
/// edge fires), so transient blips emit nothing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CongestionConfig {
    /// Ratio at or above which the link starts ramping toward congested.
    pub high_ratio: f64,
    /// Ratio at or below which a congested link starts ramping toward
    /// clear. Must be below `high_ratio`.
    pub low_ratio: f64,
    /// How long a crossing must be sustained before the edge fires.
    pub dwell: SimDuration,
}

impl Default for CongestionConfig {
    fn default() -> Self {
        CongestionConfig { high_ratio: 1.1, low_ratio: 0.9, dwell: SimDuration::from_secs(5) }
    }
}

/// Which way a link crossed the congestion watermark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CongestionEdge {
    /// Offered load held at or above the high watermark for the dwell.
    Onset,
    /// Offered load held at or below the low watermark for the dwell.
    Cleared,
}

/// A sustained watermark crossing on one server's outbound link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CongestionEvent {
    /// The server whose link crossed.
    pub server: ServerId,
    /// Which way.
    pub edge: CongestionEdge,
    /// When the dwell elapsed (the feedback instant).
    pub at: SimTime,
}

/// Per-link hysteresis state. `Congested` and `RampDown` both count as
/// congested — the link stays flagged until `Cleared` actually fires.
#[derive(Debug, Clone, Copy, PartialEq)]
enum CongState {
    Clear,
    RampUp { since: SimTime },
    Congested,
    RampDown { since: SimTime },
}

struct CongestionWatch {
    cfg: CongestionConfig,
    /// Parallel to `FluidEngine::domains`.
    states: Vec<CongState>,
    /// Servers currently flagged congested (`Congested` or `RampDown`).
    congested: usize,
}

/// Sentinel in the dense server index for servers this engine doesn't own.
const NO_DOMAIN: u32 = u32::MAX;

/// Byte-level session engine over per-server link domains.
pub struct FluidEngine {
    /// Sorted by `ServerId`; the phase-B merge walks this order.
    domains: Vec<LinkDomain<FluidSessionId>>,
    /// Dense `ServerId.0` → index into `domains` (`NO_DOMAIN` for gaps).
    index: Vec<u32>,
    sessions: Vec<FluidSession>,
    /// Open (not-`done`) session count, maintained on every transition.
    active: usize,
    completions: Vec<FluidDone>,
    /// Reused buffer for the phase-B merge (keeps the per-advance merge
    /// allocation-free).
    merge_scratch: Vec<XferDone>,
    /// Per-link congestion detection, off unless enabled.
    congestion: Option<CongestionWatch>,
}

impl FluidEngine {
    /// Builds an engine with one link domain per server under the given
    /// policy.
    pub fn new(
        servers: impl IntoIterator<Item = ServerId>,
        policy: SharePolicy,
        capacity_bps: u64,
    ) -> Self {
        let domains = LinkDomain::cluster(servers, policy, capacity_bps);
        let max_id = domains.iter().map(|d| d.server().0 as usize).max().map_or(0, |m| m + 1);
        let mut index = vec![NO_DOMAIN; max_id];
        for (i, d) in domains.iter().enumerate() {
            index[d.server().0 as usize] = i as u32;
        }
        FluidEngine {
            domains,
            index,
            sessions: Vec::new(),
            active: 0,
            completions: Vec::new(),
            merge_scratch: Vec::new(),
            congestion: None,
        }
    }

    fn domain_index(&self, server: ServerId) -> Option<usize> {
        match self.index.get(server.0 as usize) {
            Some(&i) if i != NO_DOMAIN => Some(i as usize),
            _ => None,
        }
    }

    fn domain(&self, server: ServerId) -> &LinkDomain<FluidSessionId> {
        &self.domains[self.domain_index(server).expect("unknown server")]
    }

    fn domain_mut(&mut self, server: ServerId) -> &mut LinkDomain<FluidSessionId> {
        let i = self.domain_index(server).expect("unknown server");
        &mut self.domains[i]
    }

    /// Link state of a server.
    pub fn link(&self, server: ServerId) -> &SharedLink {
        self.domain(server).link()
    }

    /// Starts a session streaming `bytes` at `rate_bps` from `server`.
    /// Under reserved links this performs admission control; under fair
    /// share the rate is a pacing cap.
    pub fn add_session(
        &mut self,
        now: SimTime,
        server: ServerId,
        bytes: u64,
        rate_bps: u64,
    ) -> Result<FluidSessionId, LinkError> {
        let id = FluidSessionId(self.sessions.len());
        let domain = self.domain_mut(server);
        let flow = domain.link_mut().open_flow(now, Some(rate_bps))?;
        let xfer = domain.link_mut().send(now, flow, bytes).expect("flow just opened");
        domain.register(xfer, flow, id);
        self.sessions.push(FluidSession { server, flow, done: false });
        self.active += 1;
        Ok(id)
    }

    /// Aborts a session, freeing its bandwidth. The session's transfer
    /// registration is left in place (it resolves to a dead session and is
    /// discarded), so `active_on` counts it until the link would have
    /// finished it — matching the historical accounting the availability
    /// experiments were calibrated against.
    pub fn cancel_session(&mut self, now: SimTime, id: FluidSessionId) {
        let session = &mut self.sessions[id.0];
        if session.done {
            return;
        }
        session.done = true;
        self.active -= 1;
        let (server, flow) = (session.server, session.flow);
        self.domain_mut(server).link_mut().close_flow(now, flow);
    }

    /// Drops a finished or cancelled session's transfer registration so
    /// `active_on` stops counting it. [`cancel_session`]
    /// (`FluidEngine::cancel_session`) deliberately leaves the
    /// registration for the historical availability accounting; the
    /// renegotiation path must *not* inherit that — it replaces the
    /// victim with a new session at once, and counting both would charge
    /// the server a ghost stream forever.
    pub fn forget_session(&mut self, id: FluidSessionId) {
        let server = self.sessions[id.0].server;
        if let Some(i) = self.domain_index(server) {
            self.domains[i].retain(|&tag| tag != id);
        }
    }

    /// Earliest future completion across all links.
    pub fn next_event(&self) -> Option<SimTime> {
        self.domains.iter().filter_map(|d| d.next_event()).min()
    }

    /// Advances every link to `t` serially, collecting completions.
    pub fn advance_to(&mut self, t: SimTime) {
        self.advance_domains(t, &SerialStepper);
    }

    /// Advances every link domain to `t` using `stepper` (phase A, safe to
    /// run concurrently), then merges the buffered completions serially in
    /// `ServerId` order (phase B) — bit-identical to [`advance_to`]
    /// (`FluidEngine::advance_to`) under any stepper.
    pub fn advance_domains(&mut self, t: SimTime, stepper: &dyn DomainStepper) {
        step_domains(stepper, &mut self.domains, t);
        // Phase B: one serial pass over the domains, consuming each one's
        // completion buffer as a batch (clean domains are skipped outright)
        // into a reused scratch vector.
        let mut batch = std::mem::take(&mut self.merge_scratch);
        for domain in self.domains.iter_mut() {
            if domain.pending_len() == 0 {
                continue;
            }
            batch.clear();
            domain.drain_pending_into(&mut batch);
            let server = domain.server();
            for done in &batch {
                if let Some(id) = domain.resolve(done.xfer) {
                    let session = &mut self.sessions[id.0];
                    if !session.done {
                        session.done = true;
                        self.active -= 1;
                        domain.link_mut().close_flow(done.at.max(t), session.flow);
                        self.completions.push(FluidDone { id, server, at: done.at });
                    }
                }
            }
        }
        batch.clear();
        self.merge_scratch = batch;
    }

    /// Removes and returns completions recorded so far.
    pub fn drain_completions(&mut self) -> Vec<FluidDone> {
        std::mem::take(&mut self.completions)
    }

    /// Number of sessions still streaming. O(1): maintained on every
    /// open/complete/cancel/fail transition.
    pub fn active_sessions(&self) -> usize {
        self.active
    }

    /// Number of sessions still streaming from one server (O(1), not
    /// O(all sessions)).
    pub fn active_on(&self, server: ServerId) -> usize {
        self.domain_index(server).map(|i| self.domains[i].in_flight()).unwrap_or(0)
    }

    /// Crashes a server: every session streaming from it is killed and
    /// returned as `(session, bytes still undelivered)` — what a failover
    /// path needs to resume the remainder elsewhere. The returned list is
    /// ordered by session id, so reacting to it is deterministic.
    pub fn fail_server(&mut self, now: SimTime, server: ServerId) -> Vec<(FluidSessionId, f64)> {
        let Some(i) = self.domain_index(server) else { return Vec::new() };
        let sessions = &self.sessions;
        let displaced = self.domains[i].cut(now, |id| !sessions[id.0].done);
        for &(id, _) in &displaced {
            self.sessions[id.0].done = true;
            self.active -= 1;
        }
        displaced
    }

    /// Applies a fault-injection capacity change to a server's outbound
    /// link (degradation when below nominal, recovery when restored).
    pub fn set_link_capacity(&mut self, now: SimTime, server: ServerId, capacity_bps: u64) {
        self.domain_mut(server).set_capacity(now, capacity_bps);
    }

    /// The serving node of a session (valid for done sessions too).
    pub fn session_server(&self, id: FluidSessionId) -> ServerId {
        self.sessions[id.0].server
    }

    /// Bytes a session still has queued (0 once done). This is what a
    /// renegotiation path needs to scale the remainder to a new bitrate.
    pub fn session_backlog(&self, id: FluidSessionId) -> f64 {
        let s = &self.sessions[id.0];
        if s.done {
            return 0.0;
        }
        self.domain(s.server).link().flow_backlog_bytes(s.flow)
    }

    /// The sessions still streaming from one server, in ascending session
    /// id — the deterministic iteration order for an adaptation loop
    /// picking downshift victims.
    pub fn sessions_on(&self, server: ServerId) -> Vec<FluidSessionId> {
        let Some(i) = self.domain_index(server) else { return Vec::new() };
        let mut ids: Vec<FluidSessionId> =
            self.domains[i].tags().copied().filter(|id| !self.sessions[id.0].done).collect();
        ids.sort_unstable();
        ids
    }

    /// Turns on per-link congestion detection with the given watermarks.
    /// Every link starts clear.
    pub fn enable_congestion(&mut self, cfg: CongestionConfig) {
        assert!(cfg.low_ratio < cfg.high_ratio, "hysteresis band must be non-empty");
        self.congestion = Some(CongestionWatch {
            cfg,
            states: vec![CongState::Clear; self.domains.len()],
            congested: 0,
        });
    }

    /// Offered load ratio of one server's link (`demand / capacity`).
    pub fn demand_ratio(&self, server: ServerId) -> f64 {
        let link = self.domain(server).link();
        link.demand_bps() as f64 / link.capacity_bps() as f64
    }

    /// True when the server's link is currently flagged congested (between
    /// an `Onset` and the matching `Cleared`).
    pub fn is_congested(&self, server: ServerId) -> bool {
        let Some(watch) = &self.congestion else { return false };
        let Some(i) = self.domain_index(server) else { return false };
        matches!(watch.states[i], CongState::Congested | CongState::RampDown { .. })
    }

    /// Number of servers currently flagged congested. O(1).
    pub fn congested_servers(&self) -> usize {
        self.congestion.as_ref().map_or(0, |w| w.congested)
    }

    /// Earliest pending congestion dwell deadline — a time source for the
    /// driver's event loop. `None` when detection is off or no link is
    /// mid-ramp.
    pub fn congestion_next_at(&self) -> Option<SimTime> {
        let watch = self.congestion.as_ref()?;
        watch
            .states
            .iter()
            .filter_map(|s| match *s {
                CongState::RampUp { since } | CongState::RampDown { since } => {
                    Some(since + watch.cfg.dwell)
                }
                _ => None,
            })
            .min()
    }

    /// Re-evaluates every link's watermark state at `now`, returning the
    /// edges that fired, in `ServerId` order. Call after any instant that
    /// can move demand or capacity (admission, completion, cancel, re-rate)
    /// and at each [`congestion_next_at`](Self::congestion_next_at)
    /// deadline; between such instants the ratio cannot change, so
    /// event-driven sampling is exact.
    pub fn poll_congestion(&mut self, now: SimTime) -> Vec<CongestionEvent> {
        let Some(watch) = &mut self.congestion else { return Vec::new() };
        let cfg = watch.cfg;
        let mut events = Vec::new();
        for (i, domain) in self.domains.iter().enumerate() {
            let link = domain.link();
            let ratio = link.demand_bps() as f64 / link.capacity_bps() as f64;
            // Iterate to a fixpoint so chained transitions (level crossing
            // followed by an already-elapsed dwell, e.g. dwell zero) settle
            // within one poll. The chain is at most two steps long: the
            // guards are mutually exclusive for a fixed ratio.
            loop {
                let next = match watch.states[i] {
                    CongState::Clear if ratio >= cfg.high_ratio => {
                        Some(CongState::RampUp { since: now })
                    }
                    // Level crossings resolve before dwell expiry, so a
                    // ratio that dropped back by the deadline fires nothing.
                    CongState::RampUp { .. } if ratio < cfg.high_ratio => Some(CongState::Clear),
                    CongState::RampUp { since } if now >= since + cfg.dwell => {
                        watch.congested += 1;
                        events.push(CongestionEvent {
                            server: domain.server(),
                            edge: CongestionEdge::Onset,
                            at: now,
                        });
                        Some(CongState::Congested)
                    }
                    CongState::Congested if ratio <= cfg.low_ratio => {
                        Some(CongState::RampDown { since: now })
                    }
                    CongState::RampDown { .. } if ratio > cfg.low_ratio => {
                        Some(CongState::Congested)
                    }
                    CongState::RampDown { since } if now >= since + cfg.dwell => {
                        watch.congested -= 1;
                        events.push(CongestionEvent {
                            server: domain.server(),
                            edge: CongestionEdge::Cleared,
                            at: now,
                        });
                        Some(CongState::Clear)
                    }
                    _ => None,
                };
                match next {
                    Some(s) => watch.states[i] = s,
                    None => break,
                }
            }
        }
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quasaq_sim::SimDuration;

    fn drain_all(eng: &mut FluidEngine, horizon: SimTime) -> Vec<FluidDone> {
        let mut out = Vec::new();
        loop {
            match eng.next_event() {
                Some(t) if t <= horizon => {
                    eng.advance_to(t);
                    out.extend(eng.drain_completions());
                }
                _ => {
                    eng.advance_to(horizon);
                    out.extend(eng.drain_completions());
                    return out;
                }
            }
        }
    }

    #[test]
    fn reserved_session_takes_exactly_playback_time() {
        let mut eng = FluidEngine::new([ServerId(0)], SharePolicy::Reserved, 3_200_000);
        // 60 s of a 48 KB/s stream.
        let id = eng.add_session(SimTime::ZERO, ServerId(0), 48_000 * 60, 48_000).unwrap();
        let done = drain_all(&mut eng, SimTime::from_secs(120));
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].id, id);
        assert!((done[0].at.as_secs_f64() - 60.0).abs() < 0.01);
        assert_eq!(eng.active_sessions(), 0);
    }

    #[test]
    fn reserved_admission_saturates() {
        let mut eng = FluidEngine::new([ServerId(0)], SharePolicy::Reserved, 100_000);
        eng.add_session(SimTime::ZERO, ServerId(0), 1_000, 60_000).unwrap();
        assert!(eng.add_session(SimTime::ZERO, ServerId(0), 1_000, 60_000).is_err());
    }

    #[test]
    fn fair_share_admits_everything_but_stretches() {
        let mut eng = FluidEngine::new([ServerId(0)], SharePolicy::FairShare, 100_000);
        // Four 60 s sessions at 50 KB/s each on a 100 KB/s link: each gets
        // 25 KB/s, so they take 120 s instead of 60.
        for _ in 0..4 {
            eng.add_session(SimTime::ZERO, ServerId(0), 50_000 * 60, 50_000).unwrap();
        }
        assert_eq!(eng.active_sessions(), 4);
        let done = drain_all(&mut eng, SimTime::from_secs(600));
        assert_eq!(done.len(), 4);
        for d in &done {
            assert!((d.at.as_secs_f64() - 120.0).abs() < 0.5, "{}", d.at);
        }
    }

    #[test]
    fn completion_frees_bandwidth_for_followers() {
        let mut eng = FluidEngine::new([ServerId(0)], SharePolicy::Reserved, 100_000);
        let a = eng.add_session(SimTime::ZERO, ServerId(0), 100_000, 100_000).unwrap();
        let _ = a;
        // Saturated now; after ~1 s the first completes and frees the rate.
        assert!(eng.add_session(SimTime::ZERO, ServerId(0), 1_000, 50_000).is_err());
        let done = drain_all(&mut eng, SimTime::from_secs(2));
        assert_eq!(done.len(), 1);
        eng.add_session(SimTime::from_secs(2), ServerId(0), 1_000, 100_000).unwrap();
    }

    #[test]
    fn cancel_releases_immediately() {
        let mut eng = FluidEngine::new([ServerId(0)], SharePolicy::Reserved, 100_000);
        let a = eng.add_session(SimTime::ZERO, ServerId(0), 1 << 30, 100_000).unwrap();
        eng.cancel_session(SimTime::from_secs(1), a);
        assert_eq!(eng.active_sessions(), 0);
        eng.add_session(SimTime::from_secs(1), ServerId(0), 1_000, 100_000).unwrap();
        // The cancelled session never completes.
        let done = drain_all(&mut eng, SimTime::from_secs(10));
        assert_eq!(done.len(), 1);
        assert_ne!(done[0].id, a);
    }

    #[test]
    fn forget_clears_transfer_registration_cancel_leaves() {
        let mut eng = FluidEngine::new([ServerId(0)], SharePolicy::FairShare, 100_000);
        let a = eng.add_session(SimTime::ZERO, ServerId(0), 1 << 30, 100_000).unwrap();
        let b = eng.add_session(SimTime::ZERO, ServerId(0), 1 << 30, 100_000).unwrap();
        eng.cancel_session(SimTime::from_secs(1), a);
        // Historical semantics: a cancelled transfer still registers on the
        // server for availability accounting.
        assert_eq!(eng.active_on(ServerId(0)), 2);
        eng.forget_session(a);
        assert_eq!(eng.active_on(ServerId(0)), 1);
        assert_eq!(eng.sessions_on(ServerId(0)), vec![b]);
    }

    #[test]
    fn fail_server_displaces_active_sessions_with_remaining_bytes() {
        let mut eng = FluidEngine::new(ServerId::first_n(2), SharePolicy::Reserved, 200_000);
        // 100 KB at 100 KB/s: half delivered after 0.5 s.
        let a = eng.add_session(SimTime::ZERO, ServerId(0), 100_000, 100_000).unwrap();
        let b = eng.add_session(SimTime::ZERO, ServerId(0), 100_000, 100_000).unwrap();
        let other = eng.add_session(SimTime::ZERO, ServerId(1), 100_000, 100_000).unwrap();
        eng.advance_to(SimTime::from_millis(500));
        assert_eq!(eng.active_on(ServerId(0)), 2);
        let displaced = eng.fail_server(SimTime::from_millis(500), ServerId(0));
        assert_eq!(displaced.len(), 2);
        assert_eq!(displaced[0].0, a, "ordered by session id");
        assert_eq!(displaced[1].0, b);
        for &(_, remaining) in &displaced {
            assert!((remaining - 50_000.0).abs() < 1.0, "{remaining}");
        }
        assert_eq!(eng.active_on(ServerId(0)), 0);
        // The freed link admits new reservations immediately.
        let c = eng.add_session(SimTime::from_millis(500), ServerId(0), 1_000, 200_000).unwrap();
        // The survivor and the re-admission complete; the displaced never do.
        let done = drain_all(&mut eng, SimTime::from_secs(10));
        assert_eq!(done.len(), 2);
        assert!(done.iter().any(|d| d.id == other));
        assert!(done.iter().any(|d| d.id == c));
    }

    #[test]
    fn fail_server_skips_already_finished_sessions() {
        let mut eng = FluidEngine::new([ServerId(0)], SharePolicy::Reserved, 200_000);
        eng.add_session(SimTime::ZERO, ServerId(0), 100_000, 100_000).unwrap();
        eng.advance_to(SimTime::from_secs(2));
        assert_eq!(eng.drain_completions().len(), 1);
        assert!(eng.fail_server(SimTime::from_secs(2), ServerId(0)).is_empty());
    }

    #[test]
    fn link_degradation_stretches_fair_share_sessions() {
        let mut eng = FluidEngine::new([ServerId(0)], SharePolicy::FairShare, 100_000);
        // 100 KB paced at 100 KB/s; halve the link for the first second.
        eng.add_session(SimTime::ZERO, ServerId(0), 100_000, 100_000).unwrap();
        eng.set_link_capacity(SimTime::ZERO, ServerId(0), 50_000);
        eng.set_link_capacity(SimTime::from_secs(1), ServerId(0), 100_000);
        let done = drain_all(&mut eng, SimTime::from_secs(10));
        assert_eq!(done.len(), 1);
        // 50 KB in the degraded second, the rest at full rate: 1.5 s.
        assert!((done[0].at.as_secs_f64() - 1.5).abs() < 1e-3, "{}", done[0].at);
    }

    #[test]
    fn servers_are_independent() {
        let mut eng = FluidEngine::new(ServerId::first_n(2), SharePolicy::Reserved, 100_000);
        eng.add_session(SimTime::ZERO, ServerId(0), 100_000 * 5, 100_000).unwrap();
        // Server 0 is saturated; server 1 is free.
        assert!(eng.add_session(SimTime::ZERO, ServerId(0), 1_000, 1_000).is_err());
        eng.add_session(SimTime::ZERO, ServerId(1), 100_000, 100_000).unwrap();
        let done = drain_all(&mut eng, SimTime::from_secs(10));
        assert_eq!(done.len(), 2);
        let _ = SimDuration::ZERO;
    }

    fn cong_cfg(dwell_secs: u64) -> CongestionConfig {
        CongestionConfig {
            high_ratio: 1.1,
            low_ratio: 0.9,
            dwell: SimDuration::from_secs(dwell_secs),
        }
    }

    #[test]
    fn congestion_onset_requires_sustained_overload() {
        let mut eng = FluidEngine::new([ServerId(0)], SharePolicy::FairShare, 100_000);
        eng.enable_congestion(cong_cfg(5));
        // Offered load 1.5x capacity: three 50 KB/s sessions on 100 KB/s.
        for _ in 0..3 {
            eng.add_session(SimTime::ZERO, ServerId(0), 1 << 24, 50_000).unwrap();
        }
        assert!(eng.demand_ratio(ServerId(0)) > 1.1);
        // Crossing alone fires nothing; the dwell must elapse.
        assert!(eng.poll_congestion(SimTime::ZERO).is_empty());
        assert!(!eng.is_congested(ServerId(0)));
        assert_eq!(eng.congestion_next_at(), Some(SimTime::from_secs(5)));
        assert!(eng.poll_congestion(SimTime::from_secs(4)).is_empty());
        let events = eng.poll_congestion(SimTime::from_secs(5));
        assert_eq!(
            events,
            vec![CongestionEvent {
                server: ServerId(0),
                edge: CongestionEdge::Onset,
                at: SimTime::from_secs(5),
            }]
        );
        assert!(eng.is_congested(ServerId(0)));
        assert_eq!(eng.congested_servers(), 1);
    }

    #[test]
    fn transient_blip_fires_nothing() {
        let mut eng = FluidEngine::new([ServerId(0)], SharePolicy::FairShare, 100_000);
        eng.enable_congestion(cong_cfg(5));
        let a = eng.add_session(SimTime::ZERO, ServerId(0), 1 << 24, 80_000).unwrap();
        let b = eng.add_session(SimTime::ZERO, ServerId(0), 1 << 24, 80_000).unwrap();
        assert!(eng.poll_congestion(SimTime::ZERO).is_empty());
        // Load drops back below the high watermark before the dwell ends.
        eng.cancel_session(SimTime::from_secs(2), b);
        assert!(eng.poll_congestion(SimTime::from_secs(2)).is_empty());
        assert_eq!(eng.congestion_next_at(), None, "ramp abandoned");
        assert!(eng.poll_congestion(SimTime::from_secs(60)).is_empty());
        assert!(!eng.is_congested(ServerId(0)));
        let _ = a;
    }

    #[test]
    fn congestion_clears_with_hysteresis_after_load_drops() {
        let mut eng = FluidEngine::new(ServerId::first_n(2), SharePolicy::FairShare, 100_000);
        eng.enable_congestion(cong_cfg(5));
        let mut ids = Vec::new();
        for _ in 0..3 {
            ids.push(eng.add_session(SimTime::ZERO, ServerId(0), 1 << 24, 50_000).unwrap());
        }
        eng.poll_congestion(SimTime::ZERO);
        assert_eq!(eng.poll_congestion(SimTime::from_secs(5)).len(), 1);
        // Dropping to 2 sessions (ratio 1.0) sits inside the hysteresis
        // band: still congested, no ramp-down.
        eng.cancel_session(SimTime::from_secs(10), ids[0]);
        assert!(eng.poll_congestion(SimTime::from_secs(10)).is_empty());
        assert!(eng.is_congested(ServerId(0)));
        assert_eq!(eng.congestion_next_at(), None);
        // Dropping to 1 session (ratio 0.5) starts the ramp-down dwell.
        eng.cancel_session(SimTime::from_secs(20), ids[1]);
        assert!(eng.poll_congestion(SimTime::from_secs(20)).is_empty());
        assert!(eng.is_congested(ServerId(0)), "flagged until Cleared fires");
        assert_eq!(eng.congestion_next_at(), Some(SimTime::from_secs(25)));
        let events = eng.poll_congestion(SimTime::from_secs(25));
        assert_eq!(
            events,
            vec![CongestionEvent {
                server: ServerId(0),
                edge: CongestionEdge::Cleared,
                at: SimTime::from_secs(25),
            }]
        );
        assert!(!eng.is_congested(ServerId(0)));
        assert_eq!(eng.congested_servers(), 0);
    }

    #[test]
    fn sessions_on_and_backlog_expose_victims_in_sid_order() {
        let mut eng = FluidEngine::new(ServerId::first_n(2), SharePolicy::FairShare, 100_000);
        let a = eng.add_session(SimTime::ZERO, ServerId(1), 100_000, 50_000).unwrap();
        let b = eng.add_session(SimTime::ZERO, ServerId(0), 100_000, 50_000).unwrap();
        let c = eng.add_session(SimTime::ZERO, ServerId(1), 100_000, 50_000).unwrap();
        assert_eq!(eng.sessions_on(ServerId(1)), vec![a, c]);
        assert_eq!(eng.sessions_on(ServerId(0)), vec![b]);
        assert_eq!(eng.session_server(a), ServerId(1));
        assert!((eng.session_backlog(a) - 100_000.0).abs() < 1e-6);
        eng.advance_to(SimTime::from_secs(1));
        assert!((eng.session_backlog(a) - 50_000.0).abs() < 1.0);
        eng.cancel_session(SimTime::from_secs(1), c);
        assert_eq!(eng.sessions_on(ServerId(1)), vec![a]);
        assert_eq!(eng.session_backlog(c), 0.0);
    }

    #[test]
    fn parallel_stepper_is_bit_identical_to_serial() {
        struct ThreadedStepper;
        // SAFETY: chunked scoped threads — each index in 0..n is claimed by
        // exactly one thread, exactly once.
        unsafe impl DomainStepper for ThreadedStepper {
            fn for_each(&self, n: usize, f: &(dyn Fn(usize) + Sync)) {
                std::thread::scope(|scope| {
                    for chunk_start in (0..n).step_by(2) {
                        scope.spawn(move || {
                            for i in chunk_start..(chunk_start + 2).min(n) {
                                f(i);
                            }
                        });
                    }
                });
            }
        }

        let build = || {
            let mut eng = FluidEngine::new(ServerId::first_n(5), SharePolicy::FairShare, 100_000);
            for i in 0..20u64 {
                let server = ServerId((i % 5) as u32);
                eng.add_session(SimTime::ZERO, server, 10_000 + 7_000 * i, 50_000).unwrap();
            }
            eng
        };
        let mut serial = build();
        let mut parallel = build();
        loop {
            let next = serial.next_event();
            assert_eq!(next, parallel.next_event());
            let Some(t) = next else { break };
            serial.advance_to(t);
            parallel.advance_domains(t, &ThreadedStepper);
            assert_eq!(serial.drain_completions(), parallel.drain_completions());
        }
        assert_eq!(serial.active_sessions(), 0);
        assert_eq!(parallel.active_sessions(), 0);
    }
}
