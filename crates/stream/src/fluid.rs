//! Fluid session model for throughput-scale experiments.
//!
//! The Fig 6/7 experiments run thousands of sessions for thousands of
//! simulated seconds; frame-level fidelity is unnecessary there because
//! the measured quantities (outstanding sessions, completions per minute,
//! rejects) are governed by bandwidth occupancy, not per-frame jitter. A
//! [`FluidEngine`] models each session as one paced byte transfer on the
//! serving node's outbound link:
//!
//! * Reserved links (QuaSAQ / QoS-API): the session transmits at its
//!   reserved rate, so it completes after exactly `bytes/rate` — the
//!   fixed streaming time the paper notes.
//! * Fair-share links (plain VDBMS): the session is paced at its bitrate
//!   but squeezed when the link oversubscribes, so "it took much longer
//!   time to finish each job" — the plain-VDBMS signature of Fig 6.
//!
//! The engine is passive (`next_event`/`advance_to`/`drain_completions`)
//! so the experiment driver owns the master event loop.

use quasaq_sim::link::{LinkError, SharePolicy, SharedLink};
use quasaq_sim::{FlowId, ServerId, SimTime, XferId};
use std::collections::{BTreeMap, HashMap};

/// Identifies a fluid session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FluidSessionId(pub usize);

/// A finished fluid session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FluidDone {
    /// The session.
    pub id: FluidSessionId,
    /// Its serving node.
    pub server: ServerId,
    /// Completion instant.
    pub at: SimTime,
}

struct FluidSession {
    server: ServerId,
    flow: FlowId,
    done: bool,
}

/// Byte-level session engine over per-server links.
pub struct FluidEngine {
    links: BTreeMap<ServerId, SharedLink>,
    sessions: Vec<FluidSession>,
    xfers: BTreeMap<ServerId, HashMap<XferId, FluidSessionId>>,
    completions: Vec<FluidDone>,
}

impl FluidEngine {
    /// Builds an engine with one link per server under the given policy.
    pub fn new(
        servers: impl IntoIterator<Item = ServerId>,
        policy: SharePolicy,
        capacity_bps: u64,
    ) -> Self {
        let mut links = BTreeMap::new();
        let mut xfers = BTreeMap::new();
        for s in servers {
            let link = match policy {
                SharePolicy::FairShare => SharedLink::fair_share(capacity_bps),
                SharePolicy::Reserved => SharedLink::reserved(capacity_bps),
            };
            links.insert(s, link);
            xfers.insert(s, HashMap::new());
        }
        FluidEngine { links, sessions: Vec::new(), xfers, completions: Vec::new() }
    }

    /// Link state of a server.
    pub fn link(&self, server: ServerId) -> &SharedLink {
        &self.links[&server]
    }

    /// Starts a session streaming `bytes` at `rate_bps` from `server`.
    /// Under reserved links this performs admission control; under fair
    /// share the rate is a pacing cap.
    pub fn add_session(
        &mut self,
        now: SimTime,
        server: ServerId,
        bytes: u64,
        rate_bps: u64,
    ) -> Result<FluidSessionId, LinkError> {
        let link = self.links.get_mut(&server).expect("unknown server");
        let flow = link.open_flow(now, Some(rate_bps))?;
        let xfer = link.send(now, flow, bytes).expect("flow just opened");
        let id = FluidSessionId(self.sessions.len());
        self.sessions.push(FluidSession { server, flow, done: false });
        self.xfers.get_mut(&server).expect("server").insert(xfer, id);
        Ok(id)
    }

    /// Aborts a session, freeing its bandwidth.
    pub fn cancel_session(&mut self, now: SimTime, id: FluidSessionId) {
        let session = &mut self.sessions[id.0];
        if session.done {
            return;
        }
        session.done = true;
        let link = self.links.get_mut(&session.server).expect("server");
        link.close_flow(now, session.flow);
    }

    /// Earliest future completion across all links.
    pub fn next_event(&self) -> Option<SimTime> {
        self.links.values().filter_map(|l| l.next_event()).min()
    }

    /// Advances every link to `t`, collecting completions.
    pub fn advance_to(&mut self, t: SimTime) {
        for (server, link) in self.links.iter_mut() {
            link.advance_to(t);
            for done in link.drain_completions() {
                if let Some(id) = self.xfers.get_mut(server).expect("server").remove(&done.xfer) {
                    let session = &mut self.sessions[id.0];
                    if !session.done {
                        session.done = true;
                        link.close_flow(done.at.max(t), session.flow);
                        self.completions.push(FluidDone { id, server: *server, at: done.at });
                    }
                }
            }
        }
    }

    /// Removes and returns completions recorded so far.
    pub fn drain_completions(&mut self) -> Vec<FluidDone> {
        std::mem::take(&mut self.completions)
    }

    /// Number of sessions still streaming.
    pub fn active_sessions(&self) -> usize {
        self.sessions.iter().filter(|s| !s.done).count()
    }

    /// Number of sessions still streaming from one server (O(active) on
    /// that server, not O(all sessions)).
    pub fn active_on(&self, server: ServerId) -> usize {
        self.xfers.get(&server).map(HashMap::len).unwrap_or(0)
    }

    /// Crashes a server: every session streaming from it is killed and
    /// returned as `(session, bytes still undelivered)` — what a failover
    /// path needs to resume the remainder elsewhere. The returned list is
    /// ordered by session id, so reacting to it is deterministic.
    pub fn fail_server(&mut self, now: SimTime, server: ServerId) -> Vec<(FluidSessionId, f64)> {
        let link = self.links.get_mut(&server).expect("unknown server");
        link.advance_to(now);
        let Some(map) = self.xfers.get_mut(&server) else { return Vec::new() };
        let mut displaced: Vec<(FluidSessionId, f64)> = Vec::new();
        for (_, &id) in map.iter() {
            let session = &self.sessions[id.0];
            if !session.done {
                displaced.push((id, link.flow_backlog_bytes(session.flow)));
            }
        }
        map.clear();
        displaced.sort_by_key(|&(id, _)| id);
        for &(id, _) in &displaced {
            let session = &mut self.sessions[id.0];
            session.done = true;
            link.close_flow(now, session.flow);
        }
        displaced
    }

    /// Applies a fault-injection capacity change to a server's outbound
    /// link (degradation when below nominal, recovery when restored).
    pub fn set_link_capacity(&mut self, now: SimTime, server: ServerId, capacity_bps: u64) {
        self.links.get_mut(&server).expect("unknown server").set_capacity(now, capacity_bps);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quasaq_sim::SimDuration;

    fn drain_all(eng: &mut FluidEngine, horizon: SimTime) -> Vec<FluidDone> {
        let mut out = Vec::new();
        loop {
            match eng.next_event() {
                Some(t) if t <= horizon => {
                    eng.advance_to(t);
                    out.extend(eng.drain_completions());
                }
                _ => {
                    eng.advance_to(horizon);
                    out.extend(eng.drain_completions());
                    return out;
                }
            }
        }
    }

    #[test]
    fn reserved_session_takes_exactly_playback_time() {
        let mut eng = FluidEngine::new([ServerId(0)], SharePolicy::Reserved, 3_200_000);
        // 60 s of a 48 KB/s stream.
        let id = eng.add_session(SimTime::ZERO, ServerId(0), 48_000 * 60, 48_000).unwrap();
        let done = drain_all(&mut eng, SimTime::from_secs(120));
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].id, id);
        assert!((done[0].at.as_secs_f64() - 60.0).abs() < 0.01);
        assert_eq!(eng.active_sessions(), 0);
    }

    #[test]
    fn reserved_admission_saturates() {
        let mut eng = FluidEngine::new([ServerId(0)], SharePolicy::Reserved, 100_000);
        eng.add_session(SimTime::ZERO, ServerId(0), 1_000, 60_000).unwrap();
        assert!(eng.add_session(SimTime::ZERO, ServerId(0), 1_000, 60_000).is_err());
    }

    #[test]
    fn fair_share_admits_everything_but_stretches() {
        let mut eng = FluidEngine::new([ServerId(0)], SharePolicy::FairShare, 100_000);
        // Four 60 s sessions at 50 KB/s each on a 100 KB/s link: each gets
        // 25 KB/s, so they take 120 s instead of 60.
        for _ in 0..4 {
            eng.add_session(SimTime::ZERO, ServerId(0), 50_000 * 60, 50_000).unwrap();
        }
        assert_eq!(eng.active_sessions(), 4);
        let done = drain_all(&mut eng, SimTime::from_secs(600));
        assert_eq!(done.len(), 4);
        for d in &done {
            assert!((d.at.as_secs_f64() - 120.0).abs() < 0.5, "{}", d.at);
        }
    }

    #[test]
    fn completion_frees_bandwidth_for_followers() {
        let mut eng = FluidEngine::new([ServerId(0)], SharePolicy::Reserved, 100_000);
        let a = eng.add_session(SimTime::ZERO, ServerId(0), 100_000, 100_000).unwrap();
        let _ = a;
        // Saturated now; after ~1 s the first completes and frees the rate.
        assert!(eng.add_session(SimTime::ZERO, ServerId(0), 1_000, 50_000).is_err());
        let done = drain_all(&mut eng, SimTime::from_secs(2));
        assert_eq!(done.len(), 1);
        eng.add_session(SimTime::from_secs(2), ServerId(0), 1_000, 100_000).unwrap();
    }

    #[test]
    fn cancel_releases_immediately() {
        let mut eng = FluidEngine::new([ServerId(0)], SharePolicy::Reserved, 100_000);
        let a = eng.add_session(SimTime::ZERO, ServerId(0), 1 << 30, 100_000).unwrap();
        eng.cancel_session(SimTime::from_secs(1), a);
        assert_eq!(eng.active_sessions(), 0);
        eng.add_session(SimTime::from_secs(1), ServerId(0), 1_000, 100_000).unwrap();
        // The cancelled session never completes.
        let done = drain_all(&mut eng, SimTime::from_secs(10));
        assert_eq!(done.len(), 1);
        assert_ne!(done[0].id, a);
    }

    #[test]
    fn fail_server_displaces_active_sessions_with_remaining_bytes() {
        let mut eng = FluidEngine::new(ServerId::first_n(2), SharePolicy::Reserved, 200_000);
        // 100 KB at 100 KB/s: half delivered after 0.5 s.
        let a = eng.add_session(SimTime::ZERO, ServerId(0), 100_000, 100_000).unwrap();
        let b = eng.add_session(SimTime::ZERO, ServerId(0), 100_000, 100_000).unwrap();
        let other = eng.add_session(SimTime::ZERO, ServerId(1), 100_000, 100_000).unwrap();
        eng.advance_to(SimTime::from_millis(500));
        assert_eq!(eng.active_on(ServerId(0)), 2);
        let displaced = eng.fail_server(SimTime::from_millis(500), ServerId(0));
        assert_eq!(displaced.len(), 2);
        assert_eq!(displaced[0].0, a, "ordered by session id");
        assert_eq!(displaced[1].0, b);
        for &(_, remaining) in &displaced {
            assert!((remaining - 50_000.0).abs() < 1.0, "{remaining}");
        }
        assert_eq!(eng.active_on(ServerId(0)), 0);
        // The freed link admits new reservations immediately.
        let c = eng.add_session(SimTime::from_millis(500), ServerId(0), 1_000, 200_000).unwrap();
        // The survivor and the re-admission complete; the displaced never do.
        let done = drain_all(&mut eng, SimTime::from_secs(10));
        assert_eq!(done.len(), 2);
        assert!(done.iter().any(|d| d.id == other));
        assert!(done.iter().any(|d| d.id == c));
    }

    #[test]
    fn fail_server_skips_already_finished_sessions() {
        let mut eng = FluidEngine::new([ServerId(0)], SharePolicy::Reserved, 200_000);
        eng.add_session(SimTime::ZERO, ServerId(0), 100_000, 100_000).unwrap();
        eng.advance_to(SimTime::from_secs(2));
        assert_eq!(eng.drain_completions().len(), 1);
        assert!(eng.fail_server(SimTime::from_secs(2), ServerId(0)).is_empty());
    }

    #[test]
    fn link_degradation_stretches_fair_share_sessions() {
        let mut eng = FluidEngine::new([ServerId(0)], SharePolicy::FairShare, 100_000);
        // 100 KB paced at 100 KB/s; halve the link for the first second.
        eng.add_session(SimTime::ZERO, ServerId(0), 100_000, 100_000).unwrap();
        eng.set_link_capacity(SimTime::ZERO, ServerId(0), 50_000);
        eng.set_link_capacity(SimTime::from_secs(1), ServerId(0), 100_000);
        let done = drain_all(&mut eng, SimTime::from_secs(10));
        assert_eq!(done.len(), 1);
        // 50 KB in the degraded second, the rest at full rate: 1.5 s.
        assert!((done[0].at.as_secs_f64() - 1.5).abs() < 1e-3, "{}", done[0].at);
    }

    #[test]
    fn servers_are_independent() {
        let mut eng = FluidEngine::new(ServerId::first_n(2), SharePolicy::Reserved, 100_000);
        eng.add_session(SimTime::ZERO, ServerId(0), 100_000 * 5, 100_000).unwrap();
        // Server 0 is saturated; server 1 is free.
        assert!(eng.add_session(SimTime::ZERO, ServerId(0), 1_000, 1_000).is_err());
        eng.add_session(SimTime::ZERO, ServerId(1), 100_000, 100_000).unwrap();
        let done = drain_all(&mut eng, SimTime::from_secs(10));
        assert_eq!(done.len(), 2);
        let _ = SimDuration::ZERO;
    }
}
