//! The per-session transform pipeline: transcode → frame dropping →
//! encryption.
//!
//! These are the server activities of the paper's plan space (Fig 2, sets
//! A3–A5) as they apply to an individual delivery. The pruning rule that
//! "encryption should always follow the frame dropping since it is a
//! waste of CPU cycles to encrypt the data in frames that will be
//! dropped" is structural here: the pipeline only ever encrypts delivered
//! frames.

use quasaq_media::{CipherAlgo, DropFilter, DropStrategy, Transcode};

/// The transforms applied by one delivery session.
#[derive(Debug, Clone, Default)]
pub struct Transforms {
    /// Optional online transcode of the stored replica.
    pub transcode: Option<Transcode>,
    /// Runtime frame-dropping strategy.
    pub drop: DropStrategy,
    /// Encryption of delivered frames.
    pub cipher: CipherAlgo,
}

impl Transforms {
    /// The identity pipeline: deliver the replica untouched.
    pub fn none() -> Self {
        Transforms::default()
    }

    /// A fresh stateful drop filter for this pipeline.
    pub fn drop_filter(&self) -> DropFilter {
        DropFilter::new(self.drop)
    }

    /// True when nothing transforms the stream.
    pub fn is_identity(&self) -> bool {
        self.transcode.as_ref().is_none_or(|t| t.is_identity())
            && self.drop == DropStrategy::None
            && self.cipher == CipherAlgo::None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quasaq_media::{ColorDepth, FrameRate, QualitySpec, Resolution, VideoFormat};

    #[test]
    fn identity_detection() {
        assert!(Transforms::none().is_identity());
        let t = Transforms { drop: DropStrategy::AllB, ..Transforms::none() };
        assert!(!t.is_identity());
        let t = Transforms { cipher: CipherAlgo::Aes, ..Transforms::none() };
        assert!(!t.is_identity());
        let full = QualitySpec::new(
            Resolution::FULL,
            ColorDepth::TRUE_COLOR,
            FrameRate::NTSC_FILM,
            VideoFormat::Mpeg2,
        );
        let ident = Transcode::plan(full, full).unwrap();
        let t = Transforms { transcode: Some(ident), ..Transforms::none() };
        assert!(t.is_identity());
    }
}
