//! Frame-level streaming executor.
//!
//! Drives any number of concurrent sessions over per-server CPUs and
//! outbound links: each scheduled frame is submitted as CPU work at its
//! due time; when the CPU finishes it ("the processing time is when the
//! video frame is first handled" — the paper's server-side measurement
//! point) the frame's bytes are queued on the server's outbound link; when
//! the transfer completes the frame is delivered client-side. Sessions may
//! hold DSRT CPU reservations and link reservations (the QuaSAQ regime) or
//! run best-effort over time sharing and fair-share links (the plain VDBMS
//! regime).

use crate::cpumodel::{CpuKind, CpuModel};
use crate::report::SessionReport;
use crate::schedule::FrameSchedule;
use quasaq_sim::cpu::{CpuError, CpuScheduler, JobId, ReservationError, TaskId};
use quasaq_sim::link::{LinkError, SharePolicy};
use quasaq_sim::queue::{EventId, EventQueue};
use quasaq_sim::{FlowId, LinkDomain, ServerId, SimDuration, SimTime};
use std::collections::HashMap;

/// Per-server hardware/OS configuration.
#[derive(Debug, Clone, Copy)]
pub struct NodeConfig {
    /// CPU scheduling model.
    pub cpu: CpuKind,
    /// Outbound-link sharing policy.
    pub link_policy: SharePolicy,
    /// Outbound-link capacity in bytes/second (the paper's servers each
    /// have 3200 KB/s of streaming bandwidth).
    pub link_capacity_bps: u64,
    /// One-way propagation delay to the client (the paper's clients sit
    /// "2-3 hops away from the servers"). Applied to the delivery
    /// timestamp of every frame.
    pub client_latency: SimDuration,
}

impl NodeConfig {
    /// The paper's plain-VDBMS node: time sharing + fair-share link.
    pub fn vdbms(link_capacity_bps: u64) -> Self {
        NodeConfig {
            cpu: CpuKind::vdbms_default(),
            link_policy: SharePolicy::FairShare,
            link_capacity_bps,
            client_latency: SimDuration::from_micros(1500),
        }
    }

    /// The paper's QoS node: DSRT + reserved link.
    pub fn qos(link_capacity_bps: u64) -> Self {
        NodeConfig {
            cpu: CpuKind::dsrt_default(),
            link_policy: SharePolicy::Reserved,
            link_capacity_bps,
            client_latency: SimDuration::from_micros(1500),
        }
    }
}

/// Per-session CPU policy.
#[derive(Debug, Clone, Copy)]
pub enum CpuPolicy {
    /// Compete in the time-shared (or leftover) CPU.
    BestEffort,
    /// Hold a DSRT reservation of `share` of one processor, delivered as a
    /// slice per frame-interval period.
    Reserved {
        /// CPU share in (0, 1].
        share: f64,
        /// Reservation period (typically the stream's frame interval).
        period: SimDuration,
    },
}

/// A new session's full specification.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Serving node.
    pub server: ServerId,
    /// Resolved delivery schedule.
    pub schedule: FrameSchedule,
    /// CPU policy.
    pub cpu: CpuPolicy,
    /// Link rate: reservation (Reserved links, admission-checked) or
    /// pacing cap (FairShare links). `None` = uncapped fair share.
    pub link_rate_bps: Option<u64>,
}

/// Why a session could not start.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionError {
    /// CPU reservation refused.
    Cpu(ReservationError),
    /// Link reservation refused.
    Link(LinkError),
    /// Unknown server.
    UnknownServer(ServerId),
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::Cpu(e) => write!(f, "cpu admission failed: {e}"),
            SessionError::Link(e) => write!(f, "link admission failed: {e}"),
            SessionError::UnknownServer(s) => write!(f, "unknown server {s}"),
        }
    }
}

impl std::error::Error for SessionError {}

/// Identifies a session within a [`StreamEngine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(pub usize);

#[derive(Debug)]
enum Ev {
    FrameDue(SessionId),
    CpuWake(ServerId),
    LinkWake(ServerId),
}

struct Node {
    cpu: CpuModel,
    /// The server's outbound link plus its in-flight `(session, frame)`
    /// transfers, with the shared fault reactions (crash cut, capacity
    /// change) supplied by the domain layer.
    domain: LinkDomain<(SessionId, usize)>,
    client_latency: SimDuration,
    cpu_wake: Option<(EventId, SimTime)>,
    link_wake: Option<(EventId, SimTime)>,
    tasks: HashMap<TaskId, (SessionId, usize)>,
}

struct Session {
    server: ServerId,
    schedule: FrameSchedule,
    start: SimTime,
    job: JobId,
    flow: FlowId,
    next_frame: usize,
    delivered: usize,
    report: SessionReport,
    closed: bool,
}

/// Sentinel in the dense server index for servers this engine doesn't own.
const NO_NODE: u32 = u32::MAX;

/// The multi-server frame-level executor.
pub struct StreamEngine {
    queue: EventQueue<Ev>,
    /// Node arena; `node_index` maps `ServerId.0` onto it densely.
    nodes: Vec<Node>,
    node_index: Vec<u32>,
    sessions: Vec<Session>,
    /// Open (not-`closed`) session count, maintained on every transition.
    active: usize,
}

impl StreamEngine {
    /// Builds an engine with one node per `(server, config)` pair.
    pub fn new(nodes: impl IntoIterator<Item = (ServerId, NodeConfig)>) -> Self {
        let mut arena = Vec::new();
        let mut node_index = Vec::new();
        for (id, cfg) in nodes {
            let slot = id.0 as usize;
            if slot >= node_index.len() {
                node_index.resize(slot + 1, NO_NODE);
            }
            node_index[slot] = arena.len() as u32;
            arena.push(Node {
                cpu: CpuModel::new(cfg.cpu),
                domain: LinkDomain::with_policy(id, cfg.link_policy, cfg.link_capacity_bps),
                client_latency: cfg.client_latency,
                cpu_wake: None,
                link_wake: None,
                tasks: HashMap::new(),
            });
        }
        StreamEngine {
            queue: EventQueue::new(),
            nodes: arena,
            node_index,
            sessions: Vec::new(),
            active: 0,
        }
    }

    fn node_slot(&self, server: ServerId) -> Option<usize> {
        match self.node_index.get(server.0 as usize) {
            Some(&i) if i != NO_NODE => Some(i as usize),
            _ => None,
        }
    }

    fn node(&self, server: ServerId) -> &Node {
        &self.nodes[self.node_slot(server).expect("node")]
    }

    fn node_mut(&mut self, server: ServerId) -> &mut Node {
        let i = self.node_slot(server).expect("node");
        &mut self.nodes[i]
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Starts a session at `start` (must not be in the past). Admission is
    /// node-local: CPU and link reservations are taken immediately.
    pub fn add_session(
        &mut self,
        start: SimTime,
        cfg: SessionConfig,
    ) -> Result<SessionId, SessionError> {
        let now = self.queue.now().max(start);
        let slot = self.node_slot(cfg.server).ok_or(SessionError::UnknownServer(cfg.server))?;
        let node = &mut self.nodes[slot];
        let job = match cfg.cpu {
            CpuPolicy::BestEffort => node.cpu.add_job(now),
            CpuPolicy::Reserved { share, period } => {
                let slice = period.mul_f64(share.clamp(0.0, 1.0));
                node.cpu.reserve(now, slice, period).map_err(SessionError::Cpu)?
            }
        };
        let flow = match node.domain.link_mut().open_flow(now, cfg.link_rate_bps) {
            Ok(f) => f,
            Err(e) => {
                node.cpu.remove_job(now, job);
                return Err(SessionError::Link(e));
            }
        };
        let mut report = SessionReport::new(start, cfg.schedule.playback());
        for f in cfg.schedule.frames() {
            report.push_frame(f.display_index, f.gop, start + f.due);
        }
        let id = SessionId(self.sessions.len());
        let empty = cfg.schedule.is_empty();
        self.sessions.push(Session {
            server: cfg.server,
            schedule: cfg.schedule,
            start,
            job,
            flow,
            next_frame: 0,
            delivered: 0,
            report,
            closed: false,
        });
        self.active += 1;
        if empty {
            self.finish_session(id, start);
        } else {
            let due = self.sessions[id.0].schedule.due_at(start, 0).max(now);
            self.queue.schedule(due, Ev::FrameDue(id));
        }
        Ok(id)
    }

    /// A session's measurements so far.
    pub fn report(&self, id: SessionId) -> &SessionReport {
        &self.sessions[id.0].report
    }

    /// Number of sessions ever added.
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// Number of sessions still streaming. O(1): maintained on every
    /// open/finish/fail transition.
    pub fn active_sessions(&self) -> usize {
        self.active
    }

    /// Runs until no event at or before `t` remains. Returns the sessions
    /// that finished during this call.
    pub fn run_until(&mut self, t: SimTime) -> Vec<SessionId> {
        let before: Vec<bool> = self.sessions.iter().map(|s| s.closed).collect();
        while let Some(et) = self.queue.peek_time() {
            if et > t {
                break;
            }
            let (at, ev) = self.queue.pop().expect("peeked event exists");
            match ev {
                Ev::FrameDue(id) => self.on_frame_due(at, id),
                Ev::CpuWake(server) => self.on_cpu_wake(at, server),
                Ev::LinkWake(server) => self.on_link_wake(at, server),
            }
        }
        self.sessions
            .iter()
            .enumerate()
            .filter(|&(i, s)| s.closed && !before.get(i).copied().unwrap_or(false))
            .map(|(i, _)| SessionId(i))
            .collect()
    }

    /// Runs until every session completes or `horizon` is reached; returns
    /// true when all completed.
    pub fn run_to_completion(&mut self, horizon: SimTime) -> bool {
        self.run_until(horizon);
        self.sessions.iter().all(|s| s.closed)
    }

    fn on_frame_due(&mut self, now: SimTime, id: SessionId) {
        let session = &mut self.sessions[id.0];
        if session.closed {
            return;
        }
        let idx = session.next_frame;
        let frame = session.schedule.frames()[idx];
        session.next_frame += 1;
        let server = session.server;
        let job = session.job;
        let next = if session.next_frame < session.schedule.len() {
            Some(session.schedule.due_at(session.start, session.next_frame).max(now))
        } else {
            None
        };
        let node = self.node_mut(server);
        match node.cpu.submit(now, job, frame.cpu) {
            Ok(task) => {
                node.tasks.insert(task, (id, idx));
            }
            // The job only vanishes through a teardown path that already
            // closed the session; a frame racing that teardown is dropped
            // like the rest of the session's future frames.
            Err(CpuError::UnknownJob(_)) => {}
        }
        if let Some(due) = next {
            self.queue.schedule(due, Ev::FrameDue(id));
        }
        self.reschedule_cpu(server);
        // Submission may have immediately produced completions (zero-work
        // frames); pick them up on the scheduled wake.
    }

    fn on_cpu_wake(&mut self, now: SimTime, server: ServerId) {
        let slot = self.node_slot(server).expect("wake for known node");
        let node = &mut self.nodes[slot];
        node.cpu_wake = None;
        node.cpu.advance_to(now);
        let completions = node.cpu.drain_completions();
        for c in completions {
            let Some((sid, idx)) = node.tasks.remove(&c.task) else { continue };
            let session = &mut self.sessions[sid.0];
            session.report.mark_processed(idx, c.at);
            if session.closed {
                continue;
            }
            let bytes = session.schedule.frames()[idx].bytes;
            let flow = session.flow;
            let xfer =
                node.domain.link_mut().send(now, flow, bytes as u64).expect("open session flow");
            node.domain.register(xfer, flow, (sid, idx));
        }
        self.reschedule_cpu(server);
        self.reschedule_link(server);
    }

    fn on_link_wake(&mut self, now: SimTime, server: ServerId) {
        let slot = self.node_slot(server).expect("wake for known node");
        let node = &mut self.nodes[slot];
        node.link_wake = None;
        node.domain.step_to(now);
        let completions = node.domain.take_pending();
        let mut finished: Vec<(SessionId, SimTime)> = Vec::new();
        for c in completions {
            let Some((sid, idx)) = node.domain.resolve(c.xfer) else { continue };
            let session = &mut self.sessions[sid.0];
            let arrived = c.at + node.client_latency;
            session.report.mark_delivered(idx, arrived);
            session.delivered += 1;
            if session.delivered == session.schedule.len() {
                finished.push((sid, arrived));
            }
        }
        for (sid, at) in finished {
            self.finish_session(sid, at);
        }
        self.reschedule_link(server);
    }

    fn finish_session(&mut self, id: SessionId, at: SimTime) {
        let session = &mut self.sessions[id.0];
        if session.closed {
            return;
        }
        session.closed = true;
        self.active -= 1;
        // `at` is the client-side arrival timestamp (it may include
        // propagation latency beyond the current simulation instant); it
        // is a measurement only. Resources are released at server time.
        session.report.mark_finished(at);
        let server = session.server;
        let flow = session.flow;
        let job = session.job;
        let now = self.queue.now();
        let node = self.node_mut(server);
        node.domain.link_mut().close_flow(now, flow);
        node.cpu.remove_job(now, job);
        self.reschedule_cpu(server);
        self.reschedule_link(server);
    }

    fn reschedule_cpu(&mut self, server: ServerId) {
        let now = self.queue.now();
        let slot = self.node_slot(server).expect("node");
        let node = &mut self.nodes[slot];
        // Undrained completions (buffered by internal advances) require an
        // immediate wake even when the scheduler itself reports idle.
        let want = if node.cpu.pending_completions() > 0 {
            Some(now)
        } else {
            node.cpu.next_event().map(|t| t.max(now))
        };
        match (node.cpu_wake, want) {
            (Some((_, at)), Some(w)) if at == w => {}
            (old, Some(w)) => {
                if let Some((eid, _)) = old {
                    self.queue.cancel(eid);
                }
                let eid = self.queue.schedule(w, Ev::CpuWake(server));
                self.nodes[slot].cpu_wake = Some((eid, w));
            }
            (Some((eid, _)), None) => {
                self.queue.cancel(eid);
                self.nodes[slot].cpu_wake = None;
            }
            (None, None) => {}
        }
    }

    fn reschedule_link(&mut self, server: ServerId) {
        let now = self.queue.now();
        let slot = self.node_slot(server).expect("node");
        let node = &mut self.nodes[slot];
        // Undrained completions (buffered by internal advances inside
        // send/close_flow) require an immediate wake even when the fluid
        // model reports idle.
        let want = if node.domain.has_buffered() {
            Some(now)
        } else {
            node.domain.next_event().map(|t| t.max(now))
        };
        match (node.link_wake, want) {
            (Some((_, at)), Some(w)) if at == w => {}
            (old, Some(w)) => {
                if let Some((eid, _)) = old {
                    self.queue.cancel(eid);
                }
                let eid = self.queue.schedule(w, Ev::LinkWake(server));
                self.nodes[slot].link_wake = Some((eid, w));
            }
            (Some((eid, _)), None) => {
                self.queue.cancel(eid);
                self.nodes[slot].link_wake = None;
            }
            (None, None) => {}
        }
    }

    /// Crashes a server mid-run: every session it was streaming is cut
    /// short — marked interrupted (not finished), its CPU job and link
    /// flow torn down, in-flight frames dropped. Pending frame-due events
    /// die against the closed-session guard. Returns the interrupted
    /// sessions in id order so a caller can attempt failover for each.
    pub fn fail_server(&mut self, server: ServerId) -> Vec<SessionId> {
        let now = self.queue.now();
        let Some(slot) = self.node_slot(server) else {
            return Vec::new();
        };
        let hit: Vec<SessionId> = self
            .sessions
            .iter()
            .enumerate()
            .filter(|&(_, s)| s.server == server && !s.closed)
            .map(|(i, _)| SessionId(i))
            .collect();
        for &id in &hit {
            let session = &mut self.sessions[id.0];
            session.closed = true;
            self.active -= 1;
            session.report.mark_interrupted(now);
            let (flow, job) = (session.flow, session.job);
            let node = &mut self.nodes[slot];
            node.domain.link_mut().close_flow(now, flow);
            node.cpu.remove_job(now, job);
        }
        let dead: std::collections::BTreeSet<SessionId> = hit.iter().copied().collect();
        let node = &mut self.nodes[slot];
        node.tasks.retain(|_, &mut (sid, _)| !dead.contains(&sid));
        node.domain.retain(|&(sid, _)| !dead.contains(&sid));
        self.reschedule_cpu(server);
        self.reschedule_link(server);
        hit
    }

    /// Applies a fault-injection capacity change to a server's outbound
    /// link (degradation when below nominal, recovery when restored) —
    /// the same domain-layer reaction the fluid engine uses. Transfers in
    /// flight are re-paced from the current instant.
    pub fn set_link_capacity(&mut self, server: ServerId, capacity_bps: u64) {
        let now = self.queue.now();
        self.node_mut(server).domain.set_capacity(now, capacity_bps);
        self.reschedule_link(server);
    }

    /// Renegotiates a running session's delivery rate mid-stream (the
    /// frame-level face of a QoP downshift or restoration): the link
    /// reservation — or fair-share pacing cap — moves to `new_rate_bps`
    /// and the report records the instant. The frame schedule keeps its
    /// due times; what changes is the bandwidth serving it, so frames
    /// start running late (or catch back up) from here on. Closed
    /// sessions reject with an unknown-flow error rather than panicking —
    /// the adaptation loop races session completion by construction.
    pub fn renegotiate_session(
        &mut self,
        at: SimTime,
        id: SessionId,
        new_rate_bps: Option<u64>,
    ) -> Result<(), SessionError> {
        let now = self.queue.now().max(at);
        let (server, flow, closed) = {
            let s = &self.sessions[id.0];
            (s.server, s.flow, s.closed)
        };
        if closed {
            return Err(SessionError::Link(LinkError::UnknownFlow(flow)));
        }
        self.node_mut(server)
            .domain
            .link_mut()
            .set_flow_rate(now, flow, new_rate_bps)
            .map_err(SessionError::Link)?;
        // A changed allocation moves in-flight completion times.
        self.reschedule_link(server);
        self.sessions[id.0].report.mark_renegotiated(now);
        Ok(())
    }

    /// Reserved CPU utilization on a server (0 for time-sharing nodes).
    pub fn cpu_utilization(&self, server: ServerId) -> f64 {
        self.node(server).cpu.reserved_utilization()
    }

    /// Reserved link bandwidth on a server.
    pub fn link_reserved_bps(&self, server: ServerId) -> u64 {
        self.node(server).domain.link().reserved_bps()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::DispatchConfig;
    use crate::transforms::Transforms;
    use quasaq_media::{DeliveryCostModel, FrameRate, FrameTrace, GopPattern, TraceParams};

    fn schedule(seconds: u64, rate_bps: f64, seed: u64) -> FrameSchedule {
        let trace = FrameTrace::generate(
            seed,
            &TraceParams::with_bitrate(
                FrameRate::NTSC_FILM,
                SimDuration::from_secs(seconds),
                GopPattern::mpeg1_n15(),
                rate_bps,
            ),
        );
        FrameSchedule::build(
            &trace,
            &Transforms::none(),
            &DeliveryCostModel::default(),
            &DispatchConfig::default(),
        )
    }

    fn one_server(cfg: NodeConfig) -> StreamEngine {
        StreamEngine::new([(ServerId(0), cfg)])
    }

    #[test]
    fn lone_session_completes_with_timely_frames() {
        let mut eng = one_server(NodeConfig::vdbms(3_200_000));
        let sched = schedule(30, 193_000.0, 1);
        let n = sched.len();
        let id = eng
            .add_session(
                SimTime::ZERO,
                SessionConfig {
                    server: ServerId(0),
                    schedule: sched,
                    cpu: CpuPolicy::BestEffort,
                    link_rate_bps: Some(250_000),
                },
            )
            .unwrap();
        assert!(eng.run_to_completion(SimTime::from_secs(120)));
        let report = eng.report(id);
        assert!(report.is_complete());
        assert_eq!(report.frames().len(), n);
        // Uncontended: every frame processed within a few ms of its due
        // time.
        assert!(
            report.max_lateness() < SimDuration::from_millis(20),
            "lateness {}",
            report.max_lateness()
        );
        let stats = report.frame_delay_stats();
        assert!((stats.mean() - 41.72).abs() < 2.0, "mean {}", stats.mean());
    }

    #[test]
    fn renegotiated_session_is_repaced_and_recorded() {
        let mut eng = one_server(NodeConfig::qos(3_200_000));
        let sched = schedule(30, 193_000.0, 3);
        let id = eng
            .add_session(
                SimTime::ZERO,
                SessionConfig {
                    server: ServerId(0),
                    schedule: sched,
                    cpu: CpuPolicy::BestEffort,
                    link_rate_bps: Some(250_000),
                },
            )
            .unwrap();
        eng.run_until(SimTime::from_secs(10));
        // Starve the stream: an eighth of the source bitrate from t = 10 s.
        eng.renegotiate_session(SimTime::from_secs(10), id, Some(25_000)).unwrap();
        assert_eq!(eng.link_reserved_bps(ServerId(0)), 25_000);
        assert!(eng.run_to_completion(SimTime::from_secs(600)));
        let r = eng.report(id);
        assert_eq!(r.renegotiations(), &[SimTime::from_secs(10)]);
        assert!(r.is_complete());
        // Processing is CPU-side and unaffected; it is *delivery* that the
        // starved link stretches far past the 30 s playback window.
        let last_delivered =
            r.frames().iter().filter_map(|f| f.delivered).max().expect("complete session");
        assert!(
            last_delivered > SimTime::from_secs(60),
            "starved tail must deliver late: {last_delivered}"
        );
        // A finished session has no flow left to re-rate.
        let now = eng.now();
        assert!(eng.renegotiate_session(now, id, Some(50_000)).is_err());
    }

    #[test]
    fn uncontended_delay_stats_match_low_contention_table2() {
        let mut eng = one_server(NodeConfig::qos(3_200_000));
        let sched = schedule(60, 193_000.0, 2);
        let share = sched.mean_cpu_share() * 1.3;
        let id = eng
            .add_session(
                SimTime::ZERO,
                SessionConfig {
                    server: ServerId(0),
                    schedule: sched,
                    cpu: CpuPolicy::Reserved {
                        share,
                        period: FrameRate::NTSC_FILM.frame_interval(),
                    },
                    link_rate_bps: Some(250_000),
                },
            )
            .unwrap();
        assert!(eng.run_to_completion(SimTime::from_secs(300)));
        let r = eng.report(id);
        let f = r.frame_delay_stats();
        let g = r.gop_delay_stats();
        // Table 2 low-contention shape: mean ~41.7-42.2 ms, SD ~30 ms;
        // inter-GOP mean ~625 ms with small SD.
        assert!((f.mean() - 41.9).abs() < 1.5, "frame mean {}", f.mean());
        assert!((20.0..45.0).contains(&f.std_dev()), "frame sd {}", f.std_dev());
        assert!((g.mean() - 625.8).abs() < 15.0, "gop mean {}", g.mean());
        assert!(g.std_dev() < 40.0, "gop sd {}", g.std_dev());
    }

    #[test]
    fn timesharing_contention_explodes_variance() {
        // Fig 5c: many best-effort streams on a time-shared CPU.
        let mut eng = one_server(NodeConfig::vdbms(30_000_000));
        let monitored = eng
            .add_session(
                SimTime::ZERO,
                SessionConfig {
                    server: ServerId(0),
                    schedule: schedule(30, 193_000.0, 3),
                    cpu: CpuPolicy::BestEffort,
                    link_rate_bps: Some(250_000),
                },
            )
            .unwrap();
        for i in 0..24 {
            eng.add_session(
                SimTime::ZERO,
                SessionConfig {
                    server: ServerId(0),
                    schedule: schedule(30, 193_000.0, 100 + i),
                    cpu: CpuPolicy::BestEffort,
                    link_rate_bps: Some(250_000),
                },
            )
            .unwrap();
        }
        eng.run_until(SimTime::from_secs(40));
        let contended_sd = eng.report(monitored).frame_delay_stats().std_dev();

        // Same monitored stream alone.
        let mut solo = one_server(NodeConfig::vdbms(30_000_000));
        let alone = solo
            .add_session(
                SimTime::ZERO,
                SessionConfig {
                    server: ServerId(0),
                    schedule: schedule(30, 193_000.0, 3),
                    cpu: CpuPolicy::BestEffort,
                    link_rate_bps: Some(250_000),
                },
            )
            .unwrap();
        solo.run_until(SimTime::from_secs(40));
        let solo_sd = solo.report(alone).frame_delay_stats().std_dev();
        assert!(contended_sd > 2.0 * solo_sd, "contended sd {contended_sd} vs solo {solo_sd}");
    }

    #[test]
    fn dsrt_reservation_shields_stream_from_contention() {
        // Fig 5d: the reserved stream stays timely despite competitors.
        let mut eng = one_server(NodeConfig::qos(30_000_000));
        let sched = schedule(30, 193_000.0, 4);
        let share = sched.mean_cpu_share() * 1.3;
        let monitored = eng
            .add_session(
                SimTime::ZERO,
                SessionConfig {
                    server: ServerId(0),
                    schedule: sched,
                    cpu: CpuPolicy::Reserved {
                        share,
                        period: FrameRate::NTSC_FILM.frame_interval(),
                    },
                    link_rate_bps: Some(250_000),
                },
            )
            .unwrap();
        // Best-effort hogs soak the leftover CPU.
        for i in 0..24 {
            eng.add_session(
                SimTime::ZERO,
                SessionConfig {
                    server: ServerId(0),
                    schedule: schedule(30, 300_000.0, 200 + i),
                    cpu: CpuPolicy::BestEffort,
                    link_rate_bps: Some(350_000),
                },
            )
            .unwrap();
        }
        eng.run_until(SimTime::from_secs(40));
        let r = eng.report(monitored);
        let f = r.frame_delay_stats();
        assert!((f.mean() - 41.9).abs() < 2.0, "mean {}", f.mean());
        assert!(f.std_dev() < 45.0, "sd {}", f.std_dev());
    }

    #[test]
    fn link_admission_rejects_when_saturated() {
        let mut eng = one_server(NodeConfig::qos(300_000));
        eng.add_session(
            SimTime::ZERO,
            SessionConfig {
                server: ServerId(0),
                schedule: schedule(10, 193_000.0, 5),
                cpu: CpuPolicy::BestEffort,
                link_rate_bps: Some(250_000),
            },
        )
        .unwrap();
        let err = eng
            .add_session(
                SimTime::ZERO,
                SessionConfig {
                    server: ServerId(0),
                    schedule: schedule(10, 193_000.0, 6),
                    cpu: CpuPolicy::BestEffort,
                    link_rate_bps: Some(100_000),
                },
            )
            .unwrap_err();
        assert!(matches!(err, SessionError::Link(_)));
    }

    #[test]
    fn cpu_admission_rejects_when_saturated() {
        let mut eng = one_server(NodeConfig::qos(30_000_000));
        let period = FrameRate::NTSC_FILM.frame_interval();
        eng.add_session(
            SimTime::ZERO,
            SessionConfig {
                server: ServerId(0),
                schedule: schedule(10, 193_000.0, 7),
                cpu: CpuPolicy::Reserved { share: 0.9, period },
                link_rate_bps: Some(250_000),
            },
        )
        .unwrap();
        let err = eng
            .add_session(
                SimTime::ZERO,
                SessionConfig {
                    server: ServerId(0),
                    schedule: schedule(10, 193_000.0, 8),
                    cpu: CpuPolicy::Reserved { share: 0.2, period },
                    link_rate_bps: Some(250_000),
                },
            )
            .unwrap_err();
        assert!(matches!(err, SessionError::Cpu(_)));
        // The failed session must not leak a link reservation.
        assert_eq!(eng.link_reserved_bps(ServerId(0)), 250_000);
    }

    #[test]
    fn finished_sessions_release_resources() {
        let mut eng = one_server(NodeConfig::qos(3_200_000));
        let period = FrameRate::NTSC_FILM.frame_interval();
        let id = eng
            .add_session(
                SimTime::ZERO,
                SessionConfig {
                    server: ServerId(0),
                    schedule: schedule(5, 193_000.0, 9),
                    cpu: CpuPolicy::Reserved { share: 0.1, period },
                    link_rate_bps: Some(250_000),
                },
            )
            .unwrap();
        assert!(eng.cpu_utilization(ServerId(0)) > 0.05);
        assert!(eng.run_to_completion(SimTime::from_secs(60)));
        assert!(eng.report(id).is_complete());
        assert_eq!(eng.active_sessions(), 0);
        assert!(eng.cpu_utilization(ServerId(0)) < 1e-9);
        assert_eq!(eng.link_reserved_bps(ServerId(0)), 0);
    }

    #[test]
    fn unknown_server_rejected() {
        let mut eng = one_server(NodeConfig::vdbms(1_000_000));
        let err = eng
            .add_session(
                SimTime::ZERO,
                SessionConfig {
                    server: ServerId(9),
                    schedule: schedule(5, 193_000.0, 10),
                    cpu: CpuPolicy::BestEffort,
                    link_rate_bps: None,
                },
            )
            .unwrap_err();
        assert_eq!(err, SessionError::UnknownServer(ServerId(9)));
    }

    #[test]
    fn staggered_starts_complete_independently() {
        let mut eng = one_server(NodeConfig::qos(3_200_000));
        let a = eng
            .add_session(
                SimTime::ZERO,
                SessionConfig {
                    server: ServerId(0),
                    schedule: schedule(5, 48_000.0, 11),
                    cpu: CpuPolicy::BestEffort,
                    link_rate_bps: Some(60_000),
                },
            )
            .unwrap();
        eng.run_until(SimTime::from_secs(2));
        let b = eng
            .add_session(
                SimTime::from_secs(2),
                SessionConfig {
                    server: ServerId(0),
                    schedule: schedule(5, 48_000.0, 12),
                    cpu: CpuPolicy::BestEffort,
                    link_rate_bps: Some(60_000),
                },
            )
            .unwrap();
        assert!(eng.run_to_completion(SimTime::from_secs(60)));
        let fa = eng.report(a).finish().unwrap();
        let fb = eng.report(b).finish().unwrap();
        assert!(fb > fa);
        assert!(fb >= SimTime::from_secs(7) - SimDuration::from_millis(200));
    }

    #[test]
    fn fail_server_interrupts_its_sessions_and_spares_others() {
        let mut eng = StreamEngine::new([
            (ServerId(0), NodeConfig::vdbms(3_200_000)),
            (ServerId(1), NodeConfig::vdbms(3_200_000)),
        ]);
        let doomed = eng
            .add_session(
                SimTime::ZERO,
                SessionConfig {
                    server: ServerId(0),
                    schedule: schedule(10, 193_000.0, 21),
                    cpu: CpuPolicy::BestEffort,
                    link_rate_bps: Some(250_000),
                },
            )
            .unwrap();
        let survivor = eng
            .add_session(
                SimTime::ZERO,
                SessionConfig {
                    server: ServerId(1),
                    schedule: schedule(10, 193_000.0, 22),
                    cpu: CpuPolicy::BestEffort,
                    link_rate_bps: Some(250_000),
                },
            )
            .unwrap();
        eng.run_until(SimTime::from_secs(3));
        let hit = eng.fail_server(ServerId(0));
        assert_eq!(hit, vec![doomed]);
        // Repeated crashes of an already-empty server are a no-op.
        assert!(eng.fail_server(ServerId(0)).is_empty());
        assert!(eng.run_to_completion(SimTime::from_secs(60)));
        let cut = eng.report(doomed);
        // The engine clock sits at the last event processed before the
        // crash, just shy of the 3 s run_until bound.
        let at = cut.interrupted_at().expect("marked interrupted");
        assert!(at <= SimTime::from_secs(3) && at > SimTime::from_secs(2));
        assert!(!cut.is_complete());
        // Frames delivered before the crash keep their measurements.
        assert!(cut.frames().iter().any(|f| f.delivered.is_some()));
        let ok = eng.report(survivor);
        assert!(ok.is_complete());
        assert_eq!(ok.interrupted_at(), None);
        // The failed node's resources are released for later re-admission.
        assert_eq!(eng.link_reserved_bps(ServerId(0)), 0);
    }

    #[test]
    fn link_degradation_delays_delivery() {
        let run = |degrade: bool| {
            let mut eng = one_server(NodeConfig::vdbms(3_200_000));
            let id = eng
                .add_session(
                    SimTime::ZERO,
                    SessionConfig {
                        server: ServerId(0),
                        schedule: schedule(10, 193_000.0, 31),
                        cpu: CpuPolicy::BestEffort,
                        link_rate_bps: Some(250_000),
                    },
                )
                .unwrap();
            eng.run_until(SimTime::from_secs(2));
            if degrade {
                // Starve the link to 5 KB/s for most of the stream.
                eng.set_link_capacity(ServerId(0), 5_000);
                eng.run_until(SimTime::from_secs(30));
                eng.set_link_capacity(ServerId(0), 3_200_000);
            }
            assert!(eng.run_to_completion(SimTime::from_secs(300)));
            eng.report(id).finish().expect("completed")
        };
        let normal = run(false);
        let degraded = run(true);
        assert!(
            degraded > normal + SimDuration::from_secs(5),
            "degraded {degraded} vs normal {normal}"
        );
    }
}
