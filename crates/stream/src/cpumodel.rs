//! Concrete CPU model selection for a streaming server node.

use quasaq_sim::cpu::{
    Completion, CpuError, CpuScheduler, Dsrt, DsrtConfig, JobId, ReservationError, TaskId,
    TimeSharing,
};
use quasaq_sim::{SimDuration, SimTime};

/// Which scheduler a node runs.
#[derive(Debug, Clone, Copy)]
pub enum CpuKind {
    /// Solaris-like round-robin time sharing (plain VDBMS).
    TimeSharing {
        /// Scheduling quantum (the paper cites 10 ms on Solaris).
        quantum: SimDuration,
    },
    /// DSRT-style reservation scheduling (QuaSAQ / VDBMS+QoS-API).
    Dsrt(DsrtConfig),
}

impl CpuKind {
    /// The paper's plain-VDBMS CPU: 10 ms quantum time sharing.
    pub fn vdbms_default() -> Self {
        CpuKind::TimeSharing { quantum: SimDuration::from_millis(10) }
    }

    /// The paper's QoS-API CPU: DSRT with 1.6 % overhead.
    pub fn dsrt_default() -> Self {
        CpuKind::Dsrt(DsrtConfig::default())
    }
}

/// A scheduler instance behind a single concrete type so nodes can hold
/// either model without dynamic dispatch.
#[derive(Debug)]
pub enum CpuModel {
    /// Round-robin time sharing.
    TimeSharing(TimeSharing),
    /// DSRT reservations.
    Dsrt(Dsrt),
}

impl CpuModel {
    /// Instantiates the chosen kind.
    pub fn new(kind: CpuKind) -> Self {
        match kind {
            CpuKind::TimeSharing { quantum } => CpuModel::TimeSharing(TimeSharing::new(quantum)),
            CpuKind::Dsrt(cfg) => CpuModel::Dsrt(Dsrt::new(cfg)),
        }
    }

    /// Admits a reserved job when the underlying scheduler supports
    /// reservations; errors on a time-sharing CPU (which cannot guarantee
    /// anything — callers fall back to best-effort jobs).
    pub fn reserve(
        &mut self,
        now: SimTime,
        slice: SimDuration,
        period: SimDuration,
    ) -> Result<JobId, ReservationError> {
        match self {
            CpuModel::Dsrt(d) => d.reserve(now, slice, period),
            CpuModel::TimeSharing(_) => Err(ReservationError::Overloaded {
                requested: slice.as_micros() as f64 / period.as_micros() as f64,
                available: 0.0,
            }),
        }
    }

    /// True when the model supports CPU reservations.
    pub fn supports_reservation(&self) -> bool {
        matches!(self, CpuModel::Dsrt(_))
    }

    /// Reserved utilization (0 for time sharing).
    pub fn reserved_utilization(&self) -> f64 {
        match self {
            CpuModel::Dsrt(d) => d.reserved_utilization(),
            CpuModel::TimeSharing(_) => 0.0,
        }
    }
}

impl CpuScheduler for CpuModel {
    fn add_job(&mut self, now: SimTime) -> JobId {
        match self {
            CpuModel::TimeSharing(c) => c.add_job(now),
            CpuModel::Dsrt(c) => c.add_job(now),
        }
    }

    fn remove_job(&mut self, now: SimTime, job: JobId) {
        match self {
            CpuModel::TimeSharing(c) => c.remove_job(now, job),
            CpuModel::Dsrt(c) => c.remove_job(now, job),
        }
    }

    fn submit(&mut self, now: SimTime, job: JobId, work: SimDuration) -> Result<TaskId, CpuError> {
        match self {
            CpuModel::TimeSharing(c) => c.submit(now, job, work),
            CpuModel::Dsrt(c) => c.submit(now, job, work),
        }
    }

    fn next_event(&self) -> Option<SimTime> {
        match self {
            CpuModel::TimeSharing(c) => c.next_event(),
            CpuModel::Dsrt(c) => c.next_event(),
        }
    }

    fn advance_to(&mut self, t: SimTime) {
        match self {
            CpuModel::TimeSharing(c) => c.advance_to(t),
            CpuModel::Dsrt(c) => c.advance_to(t),
        }
    }

    fn drain_completions(&mut self) -> Vec<Completion> {
        match self {
            CpuModel::TimeSharing(c) => c.drain_completions(),
            CpuModel::Dsrt(c) => c.drain_completions(),
        }
    }

    fn pending_completions(&self) -> usize {
        match self {
            CpuModel::TimeSharing(c) => c.pending_completions(),
            CpuModel::Dsrt(c) => c.pending_completions(),
        }
    }

    fn backlog_jobs(&self) -> usize {
        match self {
            CpuModel::TimeSharing(c) => c.backlog_jobs(),
            CpuModel::Dsrt(c) => c.backlog_jobs(),
        }
    }

    fn backlog_work(&self) -> SimDuration {
        match self {
            CpuModel::TimeSharing(c) => c.backlog_work(),
            CpuModel::Dsrt(c) => c.backlog_work(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timesharing_rejects_reservations() {
        let mut m = CpuModel::new(CpuKind::vdbms_default());
        assert!(!m.supports_reservation());
        assert!(m
            .reserve(SimTime::ZERO, SimDuration::from_millis(1), SimDuration::from_millis(10))
            .is_err());
        assert_eq!(m.reserved_utilization(), 0.0);
    }

    #[test]
    fn dsrt_accepts_reservations() {
        let mut m = CpuModel::new(CpuKind::dsrt_default());
        assert!(m.supports_reservation());
        let j = m
            .reserve(SimTime::ZERO, SimDuration::from_millis(1), SimDuration::from_millis(10))
            .unwrap();
        assert!(m.reserved_utilization() > 0.09);
        m.remove_job(SimTime::ZERO, j);
        assert!(m.reserved_utilization() < 1e-9);
    }

    #[test]
    fn delegation_runs_work() {
        for kind in [CpuKind::vdbms_default(), CpuKind::dsrt_default()] {
            let mut m = CpuModel::new(kind);
            let j = m.add_job(SimTime::ZERO);
            m.submit(SimTime::ZERO, j, SimDuration::from_millis(3)).unwrap();
            assert_eq!(m.backlog_jobs(), 1);
            let t = m.next_event().unwrap();
            m.advance_to(t);
            let done = m.drain_completions();
            assert_eq!(done.len(), 1);
            assert_eq!(m.backlog_work(), SimDuration::ZERO);
        }
    }
}
